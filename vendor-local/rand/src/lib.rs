//! Offline shim for the subset of `rand` this workspace uses.
//!
//! [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64 — a
//! high-quality, *stable* deterministic generator. It intentionally
//! does not match upstream `StdRng`'s stream (upstream explicitly
//! reserves the right to change theirs across versions); everything in
//! this workspace that cares about reproducibility seeds explicitly
//! and only requires self-consistency.

/// Low-level generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// High-level sampling helpers, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Sample a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (only the `u64` entry point is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Map a `u64` to a uniform `f64` in `[0, 1)` using the top 53 bits.
#[inline]
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable uniformly over their "natural" domain (`[0,1)` for
/// floats, the full range for integers, fair coin for `bool`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state,
            // as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self::from_state(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Re-export mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = r.gen_range(0.5..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 11];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
