//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! Backed by `std::sync`. Poisoning is ignored (parking_lot has no
//! poisoning), so a panicking holder does not wedge other threads into
//! `Err` paths — matching upstream semantics for the APIs we expose.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Mutual exclusion primitive, `parking_lot`-flavoured: `lock()`
/// returns the guard directly instead of a `Result`.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: match self.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Reader-writer lock with the same ignore-poisoning policy.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: match self.inner.read() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: match self.inner.write() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5u32);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
