//! Offline shim for the subset of `rand_distr` this workspace uses.

use rand::RngCore;
use std::fmt;

/// Uniform `f64` in `[0, 1)` from the top 53 bits of one draw.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A distribution samplable with any [`RngCore`].
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution from invalid parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for ParamError {}

/// Exponential distribution with rate `lambda` (mean `1/lambda`),
/// sampled by inversion.
#[derive(Clone, Copy, Debug)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Exp { lambda })
        } else {
            Err(ParamError("Exp rate must be positive and finite"))
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // u is in [0, 1); 1 - u is in (0, 1], so ln() is finite and
        // the sample is non-negative.
        let u = unit_f64(rng);
        -(1.0 - u).ln() / self.lambda
    }
}

/// Uniform distribution over `[low, high)`.
#[derive(Clone, Copy, Debug)]
pub struct Uniform {
    low: f64,
    high: f64,
}

impl Uniform {
    pub fn new(low: f64, high: f64) -> Result<Self, ParamError> {
        if low < high && low.is_finite() && high.is_finite() {
            Ok(Uniform { low, high })
        } else {
            Err(ParamError("Uniform requires finite low < high"))
        }
    }
}

impl Distribution<f64> for Uniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.low + unit_f64(rng) * (self.high - self.low)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exp_mean_close_to_inverse_rate() {
        let exp = Exp::new(0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(123);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exp.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn exp_rejects_bad_rates() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(-1.0).is_err());
        assert!(Exp::new(f64::NAN).is_err());
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let u = Uniform::new(2.0, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x = u.sample(&mut rng);
            assert!((2.0..3.0).contains(&x));
        }
    }
}
