//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! A [`Strategy`] is just a deterministic sampler: no shrinking, no
//! persistence. Each `proptest!` test derives its RNG seed from the
//! test name so failures replay exactly, and runs
//! [`ProptestConfig::cases`] random cases.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::collections::BTreeSet;
use std::fmt;
use std::ops::Range;

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 48 keeps the workspace's property
        // suites fast while still exploring a useful sample.
        ProptestConfig { cases: 48 }
    }
}

/// Deterministic test RNG.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seed derived from the test name (FNV-1a) so each test gets a
    /// stable, distinct stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A failed property-test assertion.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A deterministic value sampler.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe boxed strategy (what `prop_oneof!` unifies on).
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// Always yields a clone of the wrapped value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `strategy.prop_map(f)`.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`proptest::collection::{vec, btree_set}`).
pub mod collection {
    use super::*;

    /// Element-count specification; built from a `Range<usize>`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.size.min..self.size.max_exclusive);
            let mut set = BTreeSet::new();
            // Duplicates shrink the set below n; retry a bounded number
            // of times (the element domain may be smaller than n).
            let mut attempts = 0;
            while set.len() < n && attempts < n * 20 + 100 {
                set.insert(self.element.sample(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $arg = $crate::Strategy::sample(&$strategy, &mut rng);)+
                    $body
                    Ok(())
                })();
                if let Err(e) = result {
                    panic!("proptest {} failed on case {}/{}:\n{}",
                           stringify!($name), case + 1, config.cases, e);
                }
            }
        }
        $crate::__proptest_cases! { $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..500 {
            let v = Strategy::sample(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::for_test("union");
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[Strategy::sample(&s, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn vec_strategy_respects_size() {
        let s = crate::collection::vec(any::<u8>(), 2..5);
        let mut rng = TestRng::for_test("vec");
        for _ in 0..100 {
            let v = Strategy::sample(&s, &mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = TestRng::for_test("same");
        let mut b = TestRng::for_test("same");
        let s = crate::collection::vec(any::<u64>(), 1..10);
        assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself works end-to-end, doc comment included.
        #[test]
        fn macro_end_to_end(x in 0u64..100, mut v in crate::collection::vec(any::<u8>(), 0..8)) {
            v.push(x as u8);
            prop_assert!(x < 100);
            prop_assert_eq!(v.last().copied(), Some(x as u8), "tail {:?} mismatched", v);
        }
    }
}
