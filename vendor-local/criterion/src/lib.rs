//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! Each benchmark warms up briefly, then times batches until a small
//! wall-clock budget is spent, and prints mean ns/iter (plus
//! throughput when configured). No statistics, plots, or baselines —
//! just honest timings with the upstream API shape so benches compile
//! and run offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export so benches can use either path.
pub use std::hint::black_box;

/// Wall-clock budget spent measuring each benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
const WARMUP_BUDGET: Duration = Duration::from_millis(20);

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Throughput annotation for per-byte/element reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Runs closures and accumulates timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warmup: establish a rough per-iter cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP_BUDGET {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start
            .elapsed()
            .checked_div(warm_iters as u32)
            .unwrap_or_default();
        let batch =
            (MEASURE_BUDGET.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = batch;
    }

    fn ns_per_iter(&self) -> f64 {
        self.elapsed.as_nanos() as f64 / self.iters.max(1) as f64
    }
}

fn run_one(label: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let ns = b.ns_per_iter();
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let gib_s = bytes as f64 / ns * 1e9 / (1u64 << 30) as f64;
            format!("  ({gib_s:.2} GiB/s)")
        }
        Some(Throughput::Elements(n)) => {
            let elem_s = n as f64 / ns * 1e9;
            format!("  ({elem_s:.0} elem/s)")
        }
        None => String::new(),
    };
    println!("bench: {label:<50} {ns:>12.0} ns/iter{rate}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.throughput, &mut |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _parent: self,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&id.into().id, None, &mut f);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_work() {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            black_box(count)
        });
        assert!(b.iters > 0);
        assert!(b.elapsed > Duration::ZERO);
        assert!(b.ns_per_iter() > 0.0);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(10)
            .throughput(Throughput::Bytes(1024))
            .bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &v| {
            b.iter(|| black_box(v * 2))
        });
        g.finish();
        c.bench_function("top_level", |b| b.iter(|| black_box(3)));
    }
}
