//! Offline shim for the subset of `serde` this workspace uses.
//!
//! Unlike upstream serde's visitor-based data model, this shim
//! serializes through an owned JSON-shaped [`Value`] tree: `Serialize`
//! renders a value *to* a tree, `Deserialize` rebuilds one *from* a
//! tree. `serde_json` (the sibling shim) is then just a printer and a
//! parser for [`Value`]. The derive macros in `serde_derive` generate
//! field-by-field `to_value`/`from_value` implementations with the
//! same JSON shape upstream serde produces for plain derives: structs
//! as objects in field order, newtype structs as their inner value,
//! unit enum variants as strings, data-carrying variants as
//! single-key objects.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree. Object keys keep insertion order so
/// serialized output is stable and matches struct declaration order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

/// A JSON number: unsigned, signed, or floating.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    U64(u64),
    I64(i64),
    F64(f64),
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        self.as_f64() == other.as_f64()
    }
}

impl Number {
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U64(v) => Some(v),
            Number::I64(v) => u64::try_from(v).ok(),
            Number::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::F64(_) => None,
        }
    }

    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::U64(v) => i64::try_from(v).ok(),
            Number::I64(v) => Some(v),
            Number::F64(v)
                if v.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&v) =>
            {
                Some(v as i64)
            }
            Number::F64(_) => None,
        }
    }
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|fields| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Deserialization error.
#[derive(Clone, Debug)]
pub struct DeError(pub String);

impl DeError {
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Render `self` as a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Helper used by derived code: fetch an object field, treating a
/// missing key as `null` (so `Option` fields tolerate absence).
pub fn field<'a>(fields: &'a [(String, Value)], name: &str) -> &'a Value {
    static NULL: Value = Value::Null;
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

// ---- primitive impls -------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => n
                        .as_u64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| DeError::custom(concat!("number out of range for ", stringify!($t)))),
                    _ => Err(DeError::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| DeError::custom(concat!("number out of range for ", stringify!($t)))),
                    _ => Err(DeError::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            _ => Err(DeError::custom("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(DeError::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::custom("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| DeError::custom(format!("expected {N} elements, got {}", items.len())))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::custom("expected tuple array"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected {expected}-tuple, got {} elements", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic regardless of hasher.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn option_null_round_trip() {
        let none: Option<u32> = None;
        assert!(none.to_value().is_null());
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_value(&Some(3u32).to_value()).unwrap(),
            Some(3)
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let arr = [1u8, 2];
        assert_eq!(<[u8; 2]>::from_value(&arr.to_value()).unwrap(), arr);
        let pair = (5usize, "x".to_string());
        assert_eq!(
            <(usize, String)>::from_value(&pair.to_value()).unwrap(),
            pair
        );
    }

    #[test]
    fn missing_field_reads_as_null() {
        let fields = vec![("a".to_string(), Value::Bool(true))];
        assert!(field(&fields, "missing").is_null());
        assert_eq!(field(&fields, "a"), &Value::Bool(true));
    }

    #[test]
    fn out_of_range_numbers_error() {
        assert!(u8::from_value(&300u64.to_value()).is_err());
        assert!(u64::from_value(&(-1i64).to_value()).is_err());
    }
}
