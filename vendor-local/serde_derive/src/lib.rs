//! Hand-rolled `Serialize`/`Deserialize` derive macros.
//!
//! The real `serde_derive` leans on `syn`/`quote`; this offline shim
//! parses the item's `TokenStream` directly, which is enough for the
//! plain (attribute-free, non-generic) structs and enums this
//! workspace derives on. Generated code targets the value-tree model
//! of the sibling `serde` shim:
//!
//! * named struct      -> object with fields in declaration order
//! * newtype struct    -> the inner value, transparently
//! * tuple struct      -> array
//! * unit enum variant -> `"VariantName"`
//! * data variant      -> `{"VariantName": ...}` (externally tagged)

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shapes of items we can derive on.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Skip `#[...]` attribute pairs starting at `i`; returns the new index.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...) at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Split a field/variant list on top-level commas (commas inside
/// `<...>` or any delimited group do not count).
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if !cur.is_empty() {
                        out.push(std::mem::take(&mut cur));
                    }
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Extract named-field names from the brace group of a struct or
/// struct variant.
fn parse_named_fields(group_tokens: &[TokenTree]) -> Vec<String> {
    split_top_level(group_tokens)
        .into_iter()
        .filter_map(|field| {
            let i = skip_vis(&field, skip_attrs(&field, 0));
            match field.get(i) {
                Some(TokenTree::Ident(id)) => Some(id.to_string()),
                _ => None,
            }
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));

    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Item::NamedStruct {
                    name,
                    fields: parse_named_fields(&body),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Item::TupleStruct {
                    name,
                    arity: split_top_level(&body).len(),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("serde_derive shim: unsupported struct body for {name}: {other:?}"),
        },
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    g.stream().into_iter().collect::<Vec<_>>()
                }
                other => panic!("serde_derive shim: expected enum body for {name}: {other:?}"),
            };
            let variants = split_top_level(&body)
                .into_iter()
                .map(|var| {
                    let j = skip_attrs(&var, 0);
                    let vname = match var.get(j) {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        other => panic!("serde_derive shim: bad variant in {name}: {other:?}"),
                    };
                    // Next token (if any): payload group, or `=` for an
                    // explicit discriminant (payload-less either way).
                    let kind = match var.get(j + 1) {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            let body: Vec<TokenTree> = g.stream().into_iter().collect();
                            VariantKind::Struct(parse_named_fields(&body))
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            let body: Vec<TokenTree> = g.stream().into_iter().collect();
                            VariantKind::Tuple(split_top_level(&body).len())
                        }
                        _ => VariantKind::Unit,
                    };
                    Variant { name: vname, kind }
                })
                .collect();
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive shim: cannot derive on `{other}` items"),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in &fields {
                pushes.push_str(&format!(
                    "obj.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 let mut obj: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(obj)\n\
                 }}\n}}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ ::serde::Serialize::to_value(&self.0) }}\n}}"
        ),
        Item::TupleStruct { name, arity } => {
            let items = (0..arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Array(vec![{items}]) }}\n}}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n}}"
        ),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(x0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                         ::serde::Serialize::to_value(x0))]),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let binds = (0..*arity)
                            .map(|i| format!("x{i}"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        let items = (0..*arity)
                            .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                             ::serde::Value::Array(vec![{items}]))]),\n"
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds = fields.join(", ");
                        let pushes = fields
                            .iter()
                            .map(|f| {
                                format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))")
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                             ::serde::Value::Object(vec![{pushes}]))]),\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n\
                 }}\n}}"
            )
        }
    };
    body.parse()
        .expect("serde_derive shim: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::NamedStruct { name, fields } => {
            let inits = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::field(obj, \"{f}\"))\
                         .map_err(|e| ::serde::DeError::custom(format!(\
                         \"{name}.{f}: {{e}}\")))?"
                    )
                })
                .collect::<Vec<_>>()
                .join(",\n");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 let obj = v.as_object().ok_or_else(|| \
                 ::serde::DeError::custom(\"expected object for {name}\"))?;\n\
                 Ok({name} {{\n{inits}\n}})\n\
                 }}\n}}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
             Ok({name}(::serde::Deserialize::from_value(v)?))\n\
             }}\n}}"
        ),
        Item::TupleStruct { name, arity } => {
            let inits = (0..arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 let items = v.as_array().ok_or_else(|| \
                 ::serde::DeError::custom(\"expected array for {name}\"))?;\n\
                 if items.len() != {arity} {{ return Err(::serde::DeError::custom(\
                 \"wrong arity for {name}\")); }}\n\
                 Ok({name}({inits}))\n\
                 }}\n}}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(_v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
             Ok({name})\n\
             }}\n}}"
        ),
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => return Ok({name}::{vn}),\n"));
                    }
                    VariantKind::Tuple(1) => keyed_arms.push_str(&format!(
                        "\"{vn}\" => return Ok({name}::{vn}(\
                         ::serde::Deserialize::from_value(payload)?)),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let inits = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        keyed_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let items = payload.as_array().ok_or_else(|| \
                             ::serde::DeError::custom(\"expected array for {name}::{vn}\"))?;\n\
                             if items.len() != {arity} {{ return Err(::serde::DeError::custom(\
                             \"wrong arity for {name}::{vn}\")); }}\n\
                             return Ok({name}::{vn}({inits}));\n}}\n"
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(\
                                     ::serde::field(fields, \"{f}\"))?"
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        keyed_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let fields = payload.as_object().ok_or_else(|| \
                             ::serde::DeError::custom(\"expected object for {name}::{vn}\"))?;\n\
                             return Ok({name}::{vn} {{ {inits} }});\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 if let Some(s) = v.as_str() {{\n\
                 match s {{\n{unit_arms}_ => {{}}\n}}\n\
                 }}\n\
                 if let Some(fields) = v.as_object() {{\n\
                 if fields.len() == 1 {{\n\
                 let (tag, payload) = (&fields[0].0, &fields[0].1);\n\
                 let _ = payload;\n\
                 match tag.as_str() {{\n{keyed_arms}_ => {{}}\n}}\n\
                 }}\n\
                 }}\n\
                 Err(::serde::DeError::custom(\"unrecognized {name} value\"))\n\
                 }}\n}}"
            )
        }
    };
    body.parse()
        .expect("serde_derive shim: generated invalid Deserialize impl")
}
