//! Offline shim for the subset of `serde_json` this workspace uses:
//! `to_string`, `to_string_pretty`, `to_vec`, `from_str`, `from_slice`
//! plus `to_value`/`from_value`, all over the `serde` shim's
//! JSON-shaped [`Value`] tree.

use serde::{DeError, Deserialize, Number, Serialize};
use std::fmt;

pub use serde::Value;

/// Serialization/deserialization error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ---- printer ---------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U64(v) => out.push_str(&v.to_string()),
        Number::I64(v) => out.push_str(&v.to_string()),
        Number::F64(v) if v.is_finite() => {
            // {:?} keeps a decimal point on integral floats ("1.0"),
            // matching serde_json, and prints the shortest round-trip
            // representation otherwise.
            out.push_str(&format!("{v:?}"));
        }
        // JSON has no NaN/Infinity; serde_json errors, we emit null.
        Number::F64(_) => out.push_str("null"),
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs are not reconstructed;
                            // our printer never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error(format!("bad escape '\\{}'", other as char)));
                        }
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error("truncated UTF-8".into()))?;
                    let s =
                        std::str::from_utf8(chunk).map_err(|_| Error("invalid UTF-8".into()))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| Error(format!("invalid number '{text}'")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for json in ["null", "true", "false", "42", "-7", "1.5", "\"hi\""] {
            let v = parse_value(json).unwrap();
            assert_eq!(to_string(&v).unwrap(), json);
        }
    }

    #[test]
    fn containers_round_trip() {
        let json = r#"{"a":[1,2,3],"b":{"c":null,"d":"x"}}"#;
        let v = parse_value(json).unwrap();
        assert_eq!(to_string(&v).unwrap(), json);
    }

    #[test]
    fn pretty_printing_is_reparseable() {
        let json = r#"{"a":[1,2],"b":"x"}"#;
        let v = parse_value(json).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": ["));
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line\nquote\"back\\slash\ttab\u{1}".to_string();
        let json = to_string(&original).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn unicode_passes_through() {
        let original = "héllo → 世界".to_string();
        let back: String = from_str(&to_string(&original).unwrap()).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn integral_floats_keep_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
    }

    #[test]
    fn typed_round_trip_through_bytes() {
        let rows = vec![(1u64, 2.5f64), (3, 4.0)];
        let bytes = to_vec(&rows).unwrap();
        let back: Vec<(u64, f64)> = from_slice(&bytes).unwrap();
        assert_eq!(back, rows);
    }

    #[test]
    fn errors_on_garbage() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("12 34").is_err());
        assert!(from_slice::<u64>(b"\xff\xfe").is_err());
    }
}
