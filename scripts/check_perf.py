#!/usr/bin/env python3
"""Ratio-based perf-regression gate for the nvm-perf bench suite.

Reads the stdout of `cargo bench -p nvm-perf --bench hotpaths` (lines
shaped `bench: <label> <ns> ns/iter`), divides every benchmark's
ns/iter by the calibration benchmark's ns/iter on the same run, and
compares those machine-normalized ratios against the committed
baseline `experiments/perf_baseline.json`. Raw nanoseconds differ
wildly across runners; the ratio to a fixed pure-ALU spin loop is
stable enough to gate on with a generous relative threshold.

Usage:
    cargo bench -p nvm-perf --bench hotpaths | tee bench.out
    python3 scripts/check_perf.py bench.out            # gate
    python3 scripts/check_perf.py --bless bench.out    # rewrite baseline

Exit codes: 0 pass, 1 regression or structural mismatch, 2 bad input.
"""

import argparse
import json
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "experiments" / "perf_baseline.json"
BENCH_LINE = re.compile(r"^bench:\s+(\S+)\s+(\d+(?:\.\d+)?)\s+ns/iter")
CALIBRATION = "calibration/spin_64k"
# Fail only on >25% regression of the normalized ratio: wide enough
# that shared-runner noise does not flake, tight enough that a real
# hot-path regression (typically 2x+) cannot hide.
THRESHOLD = 1.25


def parse_bench_output(text):
    """Map of label -> ns/iter from criterion-shim stdout."""
    results = {}
    for line in text.splitlines():
        m = BENCH_LINE.match(line.strip())
        if m:
            results[m.group(1)] = float(m.group(2))
    return results


def normalize(results):
    """Map of label -> ratio to the calibration benchmark."""
    cal = results.get(CALIBRATION)
    if not cal or cal <= 0:
        raise ValueError(f"calibration benchmark {CALIBRATION!r} missing from output")
    return {
        label: ns / cal for label, ns in results.items() if label != CALIBRATION
    }


def bless(results, baseline_path):
    ratios = normalize(results)
    baseline = {
        "calibration": CALIBRATION,
        "threshold": THRESHOLD,
        "calibration_ns_when_blessed": results[CALIBRATION],
        "benches": {
            label: {
                "ns_per_iter_when_blessed": results[label],
                "ratio_to_calibration": round(ratios[label], 4),
            }
            for label in sorted(ratios)
        },
    }
    baseline_path.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"blessed {len(ratios)} benchmarks -> {baseline_path}")


def gate(results, baseline_path):
    baseline = json.loads(baseline_path.read_text())
    threshold = baseline.get("threshold", THRESHOLD)
    ratios = normalize(results)
    expected = baseline["benches"]

    failures = []
    missing = sorted(set(expected) - set(ratios))
    for label in missing:
        failures.append(f"benchmark {label!r} in baseline but not in output")
    for label in sorted(set(ratios) - set(expected)):
        failures.append(
            f"benchmark {label!r} not in baseline; re-bless with --bless"
        )

    print(f"{'benchmark':<42} {'baseline':>10} {'current':>10} {'ratio':>7}  verdict")
    for label in sorted(set(ratios) & set(expected)):
        base = expected[label]["ratio_to_calibration"]
        cur = ratios[label]
        rel = cur / base if base > 0 else float("inf")
        if rel > threshold:
            verdict = f"FAIL (> {threshold:.2f}x)"
            failures.append(
                f"{label}: normalized ratio {cur:.4f} vs baseline {base:.4f} "
                f"({rel:.2f}x, threshold {threshold:.2f}x)"
            )
        elif rel < 1 / threshold:
            verdict = "ok (improved; consider --bless)"
        else:
            verdict = "ok"
        print(f"{label:<42} {base:>10.4f} {cur:>10.4f} {rel:>6.2f}x  {verdict}")

    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"\nperf gate passed ({len(ratios)} benchmarks within {threshold:.2f}x).")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("bench_output", help="file with `cargo bench` stdout, or - for stdin")
    ap.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    ap.add_argument(
        "--bless", action="store_true", help="rewrite the baseline from this run"
    )
    args = ap.parse_args()

    if args.bench_output == "-":
        text = sys.stdin.read()
    else:
        text = Path(args.bench_output).read_text()
    results = parse_bench_output(text)
    if not results:
        print("no `bench:` lines found in input", file=sys.stderr)
        return 2
    try:
        if args.bless:
            bless(results, args.baseline)
            return 0
        return gate(results, args.baseline)
    except (ValueError, KeyError, FileNotFoundError) as e:
        print(f"perf gate error: {e}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
