//! Shared helpers for the cross-crate integration tests.
//!
//! The actual tests live in the sibling `*.rs` files, wired up as
//! `[[test]]` targets in `Cargo.toml`.
