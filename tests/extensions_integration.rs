//! Cross-crate integration of the extension features: lazy restart
//! feeding computation, parity-based node recovery of real engine
//! state, compression on the remote path, and wear accounting under
//! engine traffic.

use nvm_chkpt::compress::{compress, decompress};
use nvm_chkpt::{CheckpointEngine, EngineConfig, RestartStrategy};
use nvm_emu::{MemoryDevice, SimDuration, VirtualClock};
use nvm_paging::genid;
use rdma_sim::{Link, ParityStore};

const MB: usize = 1 << 20;

fn engine_on(
    dram: &MemoryDevice,
    nvm: &MemoryDevice,
    clock: &VirtualClock,
    pid: u64,
) -> CheckpointEngine {
    CheckpointEngine::new(
        pid,
        dram,
        nvm,
        64 * MB,
        clock.clone(),
        EngineConfig::default(),
    )
    .unwrap()
}

#[test]
fn lazy_restart_supports_immediate_forward_progress() {
    let dram = MemoryDevice::dram(128 * MB);
    let nvm = MemoryDevice::pcm(128 * MB);
    let clock = VirtualClock::new();
    let mut e = engine_on(&dram, &nvm, &clock, 0);
    let hot = e.nvmalloc("hot", 4 * MB, true).unwrap();
    let cold = e.nvmalloc("cold_history", 16 * MB, true).unwrap();
    e.write(hot, 0, &vec![1u8; 4 * MB]).unwrap();
    e.write(cold, 0, &vec![2u8; 16 * MB]).unwrap();
    e.nvchkptall().unwrap();
    let region = e.metadata_region();
    drop(e);

    let t0 = clock.now();
    let (mut e, report) = CheckpointEngine::restart_with(
        &dram,
        &nvm,
        region,
        clock.clone(),
        EngineConfig::default(),
        RestartStrategy::Lazy,
    )
    .unwrap();
    assert_eq!(report.deferred.len(), 2);
    let control = clock.now().since(t0);

    // The app immediately iterates on the hot chunk only; the cold
    // 16 MB history never pays its restore.
    for step in 0..3u8 {
        e.write(hot, 0, &vec![step + 10; 4 * MB]).unwrap();
        e.compute(SimDuration::from_millis(200));
        e.nvchkptall().unwrap();
    }
    assert_eq!(e.lazy_pending_count(), 1, "cold chunk still deferred");
    // Forward progress happened with a near-zero restart stall.
    assert!(control < SimDuration::from_millis(5), "control {control}");
    // The cold data is still intact when finally touched.
    let mut buf = vec![0u8; 16 * MB];
    e.read(cold, 0, &mut buf).unwrap();
    assert_eq!(buf, vec![2u8; 16 * MB]);
    assert_eq!(e.lazy_pending_count(), 0);
}

#[test]
fn parity_group_recovers_lost_engine_state() {
    // Four ranks commit real checkpoints; a parity node encodes their
    // committed chunks; rank 2's node dies; survivors + parity rebuild
    // its state byte-for-byte into a fresh engine.
    let clock = VirtualClock::new();
    let nodes: Vec<(MemoryDevice, MemoryDevice)> = (0..4)
        .map(|_| (MemoryDevice::dram(64 * MB), MemoryDevice::pcm(160 * MB)))
        .collect();
    let mut engines: Vec<CheckpointEngine> = nodes
        .iter()
        .enumerate()
        .map(|(i, (d, n))| engine_on(d, n, &clock, i as u64))
        .collect();
    let id = {
        let mut ids = Vec::new();
        for (i, e) in engines.iter_mut().enumerate() {
            let id = e.nvmalloc("field", 2 * MB, true).unwrap();
            e.write(id, 0, &vec![0x30 + i as u8; 2 * MB]).unwrap();
            e.nvchkptall().unwrap();
            ids.push(id);
        }
        assert!(ids.windows(2).all(|w| w[0] == w[1]), "same name, same id");
        ids[0]
    };

    let parity_nvm = MemoryDevice::pcm(32 * MB);
    let mut parity = ParityStore::new(&parity_nvm, 4);
    let blocks: Vec<Vec<u8>> = engines
        .iter()
        .map(|e| e.committed_bytes(id).unwrap())
        .collect();
    let refs: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
    parity.encode(id, &refs).unwrap();

    // Node 2 dies hard.
    nodes[2].1.destroy();

    // Recovery: survivors re-read their committed chunks, XOR with the
    // parity, ship the block to a replacement node over the link.
    let survivors: Vec<Vec<u8>> = engines
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != 2)
        .map(|(_, e)| e.committed_bytes(id).unwrap())
        .collect();
    let refs: Vec<&[u8]> = survivors.iter().map(|b| b.as_slice()).collect();
    let (rebuilt, _) = parity.recover(id, &refs).unwrap();
    assert_eq!(rebuilt, vec![0x32u8; 2 * MB]);

    let mut link = Link::infiniband_40g();
    let wire = link.transfer(clock.now(), rebuilt.len() as u64, 1);
    clock.advance(wire);

    let fresh = (MemoryDevice::dram(64 * MB), MemoryDevice::pcm(160 * MB));
    let mut replacement = engine_on(&fresh.0, &fresh.1, &clock, 2);
    let new_id = replacement.nvmalloc("field", 2 * MB, true).unwrap();
    assert_eq!(new_id, genid("field"));
    replacement.write(new_id, 0, &rebuilt).unwrap();
    replacement.nvchkptid(new_id).unwrap();
    assert_eq!(
        replacement.committed_bytes(new_id).unwrap(),
        vec![0x32u8; 2 * MB]
    );
}

#[test]
fn compressed_remote_shipping_roundtrips_engine_state() {
    let dram = MemoryDevice::dram(64 * MB);
    let nvm = MemoryDevice::pcm(160 * MB);
    let clock = VirtualClock::new();
    let mut e = engine_on(&dram, &nvm, &clock, 0);
    // Zero-heavy field array: the common HPC case compression targets.
    let id = e.nvmalloc("sparse_field", 8 * MB, true).unwrap();
    let mut data = vec![0u8; 8 * MB];
    for i in (0..data.len()).step_by(4096) {
        data[i] = (i / 4096) as u8;
    }
    e.write(id, 0, &data).unwrap();
    e.nvchkptall().unwrap();

    // Helper compresses the committed bytes before the wire.
    let committed = e.committed_bytes(id).unwrap();
    let packed = compress(&committed);
    assert!(packed.len() * 50 < committed.len(), "sparse data shrinks");

    let mut link = Link::infiniband_40g();
    let t_packed = link.transfer(clock.now(), packed.len() as u64, 1);
    let t_raw = link.transfer(clock.now(), committed.len() as u64, 1);
    assert!(t_packed < t_raw / 10, "wire time collapses");

    // Receiver decompresses to the exact original.
    assert_eq!(decompress(&packed).unwrap(), committed);
    assert_eq!(committed, data);
}

#[test]
fn wear_accounting_tracks_engine_checkpoint_traffic() {
    let dram = MemoryDevice::dram(64 * MB);
    let nvm = MemoryDevice::pcm(160 * MB);
    let clock = VirtualClock::new();
    let mut e = engine_on(&dram, &nvm, &clock, 0);
    let id = e.nvmalloc("state", MB, true).unwrap();
    for round in 0..10u8 {
        e.write(id, 0, &vec![round; MB]).unwrap();
        e.nvchkptall().unwrap();
    }
    // Double versioning alternates slots, so per-page wear on the
    // container is ~half the checkpoint count (plus metadata traffic).
    let container_wear = nvm.max_wear(e.heap().container()).unwrap();
    assert!(
        (5..=10).contains(&container_wear),
        "container wear {container_wear}"
    );
    assert!(nvm.wear_fraction() > 0.0);
}
