//! Sanity gate for thread scaling on the quick preset: running the
//! same cluster on 4 worker threads must be strictly faster than
//! serial on the wall clock — and bit-identical in result.
//!
//! The wall-clock assertion only holds where it can: on a host with
//! at least 2 usable cores. Single-core runners (common in CI
//! sandboxes) physically cannot show thread speedup, so there the
//! test falls back to asserting the *projected* speedup from the
//! serial run's measured busy/serial decomposition — the same figure
//! `experiments/scaling_threads.json` reports — is materially above
//! 1x. Both variants take the best of several runs, which makes the
//! comparison robust to scheduler noise without loosening it into
//! meaninglessness.

use cluster_sim::{Cluster, ClusterConfig, RunOptions, RunProfile};
use hpc_workloads::SyntheticApp;
use nvm_chkpt::PrecopyPolicy;
use nvm_emu::SimDuration;
use std::time::{Duration, Instant};

const MB: usize = 1 << 20;

/// Quick-preset-shaped cluster (2 nodes x 2 ranks, LAMMPS profile).
fn quick_config(threads: usize) -> ClusterConfig {
    let mut c = ClusterConfig::new(2, 2);
    c.container_bytes = 54 * MB;
    c.engine = c.engine.with_precopy(PrecopyPolicy::Dcpcp);
    c.local_interval = Some(SimDuration::from_secs(10));
    c.iterations = 8;
    c.threads = threads;
    c
}

fn run_once(threads: usize) -> (String, Duration, RunProfile) {
    let sim = Cluster::new(quick_config(threads), |_| {
        Box::new(SyntheticApp::lammps_scaled(0.05).with_compute(SimDuration::from_secs(5)))
    });
    let start = Instant::now();
    let outcome = sim
        .run(RunOptions::new().with_profile(true))
        .expect("cluster run");
    let wall = start.elapsed();
    let (result, profile) = (outcome.result, outcome.profile.expect("profile requested"));
    (
        serde_json::to_string(&result).expect("serialize"),
        wall,
        profile,
    )
}

/// Best wall time over `rounds` runs, plus one result JSON and the
/// last run's profile.
fn best_of(threads: usize, rounds: usize) -> (String, Duration, RunProfile) {
    let mut best: Option<(String, Duration, RunProfile)> = None;
    for _ in 0..rounds {
        let sample = run_once(threads);
        match &best {
            Some((_, wall, _)) if *wall <= sample.1 => {}
            _ => best = Some(sample),
        }
    }
    best.expect("at least one round")
}

#[test]
fn threads_4_beats_serial_on_quick_preset() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let (serial_json, serial_wall, serial_profile) = best_of(1, 3);
    let (par_json, par_wall, _) = best_of(4, 3);

    // Non-negotiable regardless of host: identical results.
    assert_eq!(
        serial_json, par_json,
        "threads=4 result diverged from serial"
    );

    if cores >= 2 {
        // Strictly below serial. The quick preset's rank work is the
        // bulk of the wall, so even 2 real cores give well under
        // 1.0x; comparing best-of-3 keeps scheduler noise out.
        assert!(
            par_wall < serial_wall,
            "threads=4 wall {par_wall:?} not below serial {serial_wall:?} on {cores}-core host"
        );
    } else {
        // One core: measured wall cannot scale. Gate the projection
        // instead so a re-serialized hot loop still fails this test.
        let projected = serial_profile.projected_speedup(4);
        assert!(
            projected > 1.5,
            "projected 4-thread speedup {projected:.2}x too low \
             (parallel fraction {:.2}) — rank work has gone coordinator-serial",
            serial_profile.parallel_fraction()
        );
        eprintln!(
            "single-core host: skipped wall comparison \
             (serial {serial_wall:?}, threads=4 {par_wall:?}, projected {projected:.2}x)"
        );
    }
}
