//! End-to-end recovery across the full stack with *real bytes*:
//! engine + paging + heap + remote store, byte-perfect verification
//! through soft failures, silent corruption, and hard node loss.

use nvm_chkpt::{CheckpointEngine, EngineConfig, EngineError};
use nvm_emu::{MemoryDevice, SimDuration, VirtualClock};
use rdma_sim::{Link, RemoteStore};

const MB: usize = 1 << 20;

struct Node {
    dram: MemoryDevice,
    nvm: MemoryDevice,
}

impl Node {
    fn new() -> Self {
        Node {
            dram: MemoryDevice::dram(128 * MB),
            nvm: MemoryDevice::pcm(128 * MB),
        }
    }
}

fn fill(engine: &mut CheckpointEngine, id: nvm_chkpt::ChunkId, seed: u8, len: usize) {
    let data: Vec<u8> = (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
        .collect();
    engine.write(id, 0, &data).unwrap();
}

fn expect(engine: &mut CheckpointEngine, id: nvm_chkpt::ChunkId, seed: u8, len: usize) {
    let mut buf = vec![0u8; len];
    engine.read(id, 0, &mut buf).unwrap();
    let want: Vec<u8> = (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
        .collect();
    assert_eq!(buf, want, "chunk {id:?} content mismatch for seed {seed}");
}

#[test]
fn soft_failure_restarts_from_local_nvm() {
    let node = Node::new();
    let clock = VirtualClock::new();
    let mut engine = CheckpointEngine::new(
        0,
        &node.dram,
        &node.nvm,
        64 * MB,
        clock.clone(),
        EngineConfig::default(),
    )
    .unwrap();
    let a = engine.nvmalloc("a", MB, true).unwrap();
    let b = engine.nvmalloc("b", 2 * MB, true).unwrap();

    for epoch in 0..3u8 {
        fill(&mut engine, a, epoch, MB);
        fill(&mut engine, b, epoch + 100, 2 * MB);
        engine.compute(SimDuration::from_secs(1));
        engine.nvchkptall().unwrap();
    }
    // Un-checkpointed garbage, then crash.
    fill(&mut engine, a, 0xEE, MB);
    let region = engine.metadata_region();
    drop(engine);

    let (mut engine, report) = CheckpointEngine::restart(
        &node.dram,
        &node.nvm,
        region,
        clock,
        EngineConfig::default(),
    )
    .unwrap();
    assert_eq!(report.restored.len(), 2);
    assert!(report.corrupt.is_empty());
    expect(&mut engine, a, 2, MB);
    expect(&mut engine, b, 102, 2 * MB);
}

#[test]
fn repeated_crash_restart_cycles_converge() {
    let node = Node::new();
    let clock = VirtualClock::new();
    let mut engine = CheckpointEngine::new(
        0,
        &node.dram,
        &node.nvm,
        64 * MB,
        clock.clone(),
        EngineConfig::default(),
    )
    .unwrap();
    let a = engine.nvmalloc("state", MB, true).unwrap();

    for round in 0..5u8 {
        fill(&mut engine, a, round, MB);
        engine.compute(SimDuration::from_millis(100));
        engine.nvchkptall().unwrap();
        let region = engine.metadata_region();
        drop(engine);
        let (e2, report) = CheckpointEngine::restart(
            &node.dram,
            &node.nvm,
            region,
            clock.clone(),
            EngineConfig::default(),
        )
        .unwrap();
        engine = e2;
        assert_eq!(report.restored.len(), 1, "round {round}");
        expect(&mut engine, a, round, MB);
    }
}

#[test]
fn corruption_falls_back_to_remote_copy() {
    let node = Node::new();
    let buddy = Node::new();
    let clock = VirtualClock::new();
    let mut link = Link::infiniband_40g();
    let mut remote = RemoteStore::new(&buddy.nvm, true);

    let mut engine = CheckpointEngine::new(
        3,
        &node.dram,
        &node.nvm,
        64 * MB,
        clock.clone(),
        EngineConfig::default(),
    )
    .unwrap();
    let a = engine.nvmalloc("a", MB, true).unwrap();
    let b = engine.nvmalloc("b", MB, true).unwrap();
    fill(&mut engine, a, 1, MB);
    fill(&mut engine, b, 2, MB);
    engine.nvchkptall().unwrap();

    // Remote checkpoint of the committed state.
    for id in engine.remote_dirty_chunks() {
        let data = engine.committed_bytes(id).unwrap();
        let wire = link.transfer(clock.now(), data.len() as u64, 1);
        clock.advance(wire);
        remote.put(3, id, &data).unwrap();
        engine.mark_remote_copied(id);
    }
    remote.commit_rank(3, 0);

    // Corrupt both locally.
    engine.corrupt_committed(a).unwrap();
    engine.corrupt_committed(b).unwrap();
    let region = engine.metadata_region();
    drop(engine);

    let (mut engine, report) = CheckpointEngine::restart(
        &node.dram,
        &node.nvm,
        region,
        clock,
        EngineConfig::default(),
    )
    .unwrap();
    assert_eq!(report.corrupt.len(), 2, "both chunks must fail checksums");
    for &id in &report.corrupt {
        let (data, _) = remote.fetch(3, id).unwrap();
        engine.write(id, 0, &data).unwrap();
        engine.nvchkptid(id).unwrap();
    }
    expect(&mut engine, a, 1, MB);
    expect(&mut engine, b, 2, MB);
}

#[test]
fn hard_failure_rebuilds_entirely_from_remote() {
    let node = Node::new();
    let buddy = Node::new();
    let clock = VirtualClock::new();
    let mut remote = RemoteStore::new(&buddy.nvm, true);

    // Original process life.
    let (names, seeds): (Vec<&str>, Vec<u8>) = (vec!["ions", "fields", "moments"], vec![7, 8, 9]);
    {
        let mut engine = CheckpointEngine::new(
            0,
            &node.dram,
            &node.nvm,
            64 * MB,
            clock.clone(),
            EngineConfig::default(),
        )
        .unwrap();
        let mut ids = Vec::new();
        for (n, s) in names.iter().zip(&seeds) {
            let id = engine.nvmalloc(n, MB, true).unwrap();
            fill(&mut engine, id, *s, MB);
            ids.push(id);
        }
        engine.nvchkptall().unwrap();
        for id in engine.remote_dirty_chunks() {
            let data = engine.committed_bytes(id).unwrap();
            remote.put(0, id, &data).unwrap();
            engine.mark_remote_copied(id);
        }
        remote.commit_rank(0, 0);
        // Hard failure: the node's NVM is gone entirely.
        node.nvm.destroy();
    }

    // Replacement node: a fresh engine re-allocates by the same names
    // (same ids via genid) and pulls data from the buddy store.
    let fresh = Node::new();
    let mut engine = CheckpointEngine::new(
        0,
        &fresh.dram,
        &fresh.nvm,
        64 * MB,
        clock,
        EngineConfig::default(),
    )
    .unwrap();
    for (n, s) in names.iter().zip(&seeds) {
        let id = engine.nvmalloc(n, MB, true).unwrap();
        let (data, _) = remote.fetch(0, id).expect("remote copy exists");
        engine.write(id, 0, &data).unwrap();
        engine.nvchkptid(id).unwrap();
        expect(&mut engine, id, *s, MB);
    }
}

#[test]
fn restart_of_never_checkpointed_process_reports_it() {
    let node = Node::new();
    let clock = VirtualClock::new();
    let mut engine = CheckpointEngine::new(
        0,
        &node.dram,
        &node.nvm,
        64 * MB,
        clock.clone(),
        EngineConfig::default(),
    )
    .unwrap();
    let a = engine.nvmalloc("a", MB, true).unwrap();
    fill(&mut engine, a, 1, MB);
    let region = engine.metadata_region();
    drop(engine); // crash before any checkpoint

    let (engine, report) = CheckpointEngine::restart(
        &node.dram,
        &node.nvm,
        region,
        clock,
        EngineConfig::default(),
    )
    .unwrap();
    assert_eq!(report.never_committed, vec![a]);
    assert!(report.restored.is_empty());
    assert!(matches!(
        engine.committed_bytes(a),
        Err(EngineError::NoCommittedData(_))
    ));
}
