//! Property-based invariants of the checkpoint engine.
//!
//! The paper's pre-copy schemes are *performance* optimizations; they
//! must never change what a checkpoint contains. These properties run
//! arbitrary write/compute/checkpoint scripts through every policy and
//! demand identical committed content — plus crash-safety and
//! dirty-tracking invariants.

use nvm_chkpt::{CheckpointEngine, ChunkId, EngineConfig, PrecopyPolicy, Versioning};
use nvm_emu::{MemoryDevice, SimDuration, VirtualClock};
use proptest::prelude::*;

const MB: usize = 1 << 20;
const CHUNKS: usize = 4;
const CHUNK_BYTES: usize = 64 * 1024;

/// A step of the generated application script.
#[derive(Clone, Debug)]
enum Step {
    /// Overwrite chunk `i` with byte `v`.
    Write(usize, u8),
    /// Partial write into chunk `i` at quarter `q`.
    PartialWrite(usize, u8, usize),
    /// Compute for `ms` milliseconds.
    Compute(u16),
    /// Coordinated checkpoint.
    Checkpoint,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..CHUNKS, any::<u8>()).prop_map(|(i, v)| Step::Write(i, v)),
        (0..CHUNKS, any::<u8>(), 0..4usize).prop_map(|(i, v, q)| Step::PartialWrite(i, v, q)),
        (1..2000u16).prop_map(Step::Compute),
        Just(Step::Checkpoint),
    ]
}

fn engine(policy: PrecopyPolicy) -> (CheckpointEngine, Vec<ChunkId>) {
    let dram = MemoryDevice::dram(64 * MB);
    let nvm = MemoryDevice::pcm(64 * MB);
    let clock = VirtualClock::new();
    let cfg = EngineConfig::default().with_precopy(policy);
    let mut e = CheckpointEngine::new(0, &dram, &nvm, 32 * MB, clock, cfg).unwrap();
    let ids = (0..CHUNKS)
        .map(|i| e.nvmalloc(&format!("c{i}"), CHUNK_BYTES, true).unwrap())
        .collect();
    (e, ids)
}

/// Replay a script and return the committed bytes of every chunk.
fn replay(policy: PrecopyPolicy, script: &[Step]) -> Vec<Option<Vec<u8>>> {
    let (mut e, ids) = engine(policy);
    for step in script {
        match step {
            Step::Write(i, v) => e.write(ids[*i], 0, &vec![*v; CHUNK_BYTES]).unwrap(),
            Step::PartialWrite(i, v, q) => {
                let quarter = CHUNK_BYTES / 4;
                e.write(ids[*i], q * quarter, &vec![*v; quarter]).unwrap()
            }
            Step::Compute(ms) => e.compute(SimDuration::from_millis(*ms as u64)),
            Step::Checkpoint => {
                e.nvchkptall().unwrap();
            }
        }
    }
    ids.iter().map(|&id| e.committed_bytes(id).ok()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every pre-copy policy commits identical content for identical
    /// scripts: pre-copy changes *when* bytes move, never *what*.
    #[test]
    fn policies_commit_identical_content(
        script in proptest::collection::vec(step_strategy(), 1..40)
    ) {
        let baseline = replay(PrecopyPolicy::None, &script);
        for policy in [PrecopyPolicy::Cpc, PrecopyPolicy::Dcpc, PrecopyPolicy::Dcpcp] {
            let got = replay(policy, &script);
            prop_assert_eq!(&got, &baseline, "policy {:?} diverged", policy);
        }
    }

    /// After any script ending in a checkpoint, the committed bytes of
    /// each chunk equal its working copy (nothing is torn or stale).
    #[test]
    fn checkpoint_commits_working_copy(
        mut script in proptest::collection::vec(step_strategy(), 1..30)
    ) {
        script.push(Step::Checkpoint);
        let (mut e, ids) = engine(PrecopyPolicy::Dcpcp);
        for step in &script {
            match step {
                Step::Write(i, v) => e.write(ids[*i], 0, &vec![*v; CHUNK_BYTES]).unwrap(),
                Step::PartialWrite(i, v, q) => {
                    let quarter = CHUNK_BYTES / 4;
                    e.write(ids[*i], q * quarter, &vec![*v; quarter]).unwrap()
                }
                Step::Compute(ms) => e.compute(SimDuration::from_millis(*ms as u64)),
                Step::Checkpoint => { e.nvchkptall().unwrap(); }
            }
        }
        for &id in &ids {
            let committed = e.committed_bytes(id).unwrap();
            let mut working = vec![0u8; CHUNK_BYTES];
            e.read(id, 0, &mut working).unwrap();
            prop_assert_eq!(committed, working);
        }
    }

    /// Crashing at an arbitrary point and restarting always recovers
    /// the *last committed* state, byte for byte.
    #[test]
    fn restart_recovers_last_commit(
        script in proptest::collection::vec(step_strategy(), 1..40)
    ) {
        let dram = MemoryDevice::dram(64 * MB);
        let nvm = MemoryDevice::pcm(64 * MB);
        let clock = VirtualClock::new();
        let cfg = EngineConfig::default();
        let mut e = CheckpointEngine::new(0, &dram, &nvm, 32 * MB, clock.clone(), cfg).unwrap();
        let ids: Vec<ChunkId> = (0..CHUNKS)
            .map(|i| e.nvmalloc(&format!("c{i}"), CHUNK_BYTES, true).unwrap())
            .collect();
        let mut committed_model: Vec<Option<Vec<u8>>> = vec![None; CHUNKS];
        let mut working_model: Vec<Vec<u8>> = vec![vec![0; CHUNK_BYTES]; CHUNKS];
        for step in &script {
            match step {
                Step::Write(i, v) => {
                    working_model[*i] = vec![*v; CHUNK_BYTES];
                    e.write(ids[*i], 0, &vec![*v; CHUNK_BYTES]).unwrap();
                }
                Step::PartialWrite(i, v, q) => {
                    let quarter = CHUNK_BYTES / 4;
                    working_model[*i][q * quarter..(q + 1) * quarter].fill(*v);
                    e.write(ids[*i], q * quarter, &vec![*v; quarter]).unwrap();
                }
                Step::Compute(ms) => e.compute(SimDuration::from_millis(*ms as u64)),
                Step::Checkpoint => {
                    e.nvchkptall().unwrap();
                    for (m, w) in committed_model.iter_mut().zip(&working_model) {
                        *m = Some(w.clone());
                    }
                }
            }
        }
        // Crash now.
        let region = e.metadata_region();
        drop(e);
        let (e2, report) =
            CheckpointEngine::restart(&dram, &nvm, region, clock, EngineConfig::default())
                .unwrap();
        prop_assert!(report.corrupt.is_empty());
        for (i, &id) in ids.iter().enumerate() {
            match &committed_model[i] {
                Some(want) => {
                    prop_assert_eq!(&e2.committed_bytes(id).unwrap(), want);
                }
                None => prop_assert!(e2.committed_bytes(id).is_err()),
            }
        }
    }

    /// Single-version mode commits the same content as double-version
    /// mode (it only gives up crash-overlap protection, not
    /// correctness of completed checkpoints).
    #[test]
    fn single_versioning_matches_double(
        mut script in proptest::collection::vec(step_strategy(), 1..25)
    ) {
        script.push(Step::Checkpoint);
        let run = |versioning| {
            let dram = MemoryDevice::dram(64 * MB);
            let nvm = MemoryDevice::pcm(64 * MB);
            let cfg = EngineConfig::builder().versioning(versioning).build().unwrap();
            let mut e =
                CheckpointEngine::new(0, &dram, &nvm, 32 * MB, VirtualClock::new(), cfg).unwrap();
            let ids: Vec<ChunkId> = (0..CHUNKS)
                .map(|i| e.nvmalloc(&format!("c{i}"), CHUNK_BYTES, true).unwrap())
                .collect();
            for step in &script {
                match step {
                    Step::Write(i, v) => e.write(ids[*i], 0, &vec![*v; CHUNK_BYTES]).unwrap(),
                    Step::PartialWrite(i, v, q) => {
                        let quarter = CHUNK_BYTES / 4;
                        e.write(ids[*i], q * quarter, &vec![*v; quarter]).unwrap()
                    }
                    Step::Compute(ms) => e.compute(SimDuration::from_millis(*ms as u64)),
                    Step::Checkpoint => { e.nvchkptall().unwrap(); }
                }
            }
            ids.iter().map(|&id| e.committed_bytes(id).unwrap()).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(Versioning::Double), run(Versioning::Single));
    }

    /// The clock never runs backwards, whatever the script does.
    #[test]
    fn virtual_time_is_monotone(
        script in proptest::collection::vec(step_strategy(), 1..40)
    ) {
        let (mut e, ids) = engine(PrecopyPolicy::Dcpcp);
        let mut last = e.clock().now();
        for step in &script {
            match step {
                Step::Write(i, v) => e.write(ids[*i], 0, &vec![*v; CHUNK_BYTES]).unwrap(),
                Step::PartialWrite(i, v, q) => {
                    let quarter = CHUNK_BYTES / 4;
                    e.write(ids[*i], q * quarter, &vec![*v; quarter]).unwrap()
                }
                Step::Compute(ms) => e.compute(SimDuration::from_millis(*ms as u64)),
                Step::Checkpoint => { e.nvchkptall().unwrap(); }
            }
            let now = e.clock().now();
            prop_assert!(now >= last);
            last = now;
        }
    }
}
