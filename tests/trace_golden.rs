//! Golden-trace tests for the nvm-trace subsystem.
//!
//! Two guarantees pinned here:
//!
//! * a canonical 3-epoch CPC run emits an exact, stable event sequence
//!   (the trace is part of the public behavior, not a debug aid);
//! * cluster traces are byte-identical between `--threads 1` and
//!   `--threads 4` once serialized to JSONL — per-rank buffers merge
//!   in `(time, rank)` order regardless of execution interleaving.

use cluster_sim::{Cluster, ClusterConfig, RemoteConfig, RunOptions, Workload};
use hpc_workloads::SyntheticApp;
use nvm_chkpt::{
    BufferSink, CheckpointEngine, EngineConfig, PrecopyPolicy, TraceEventKind, Tracer,
};
use nvm_emu::{MemoryDevice, SimDuration, VirtualClock};
use nvm_trace::{from_jsonl, to_jsonl, JsonlSink};
use std::sync::Arc;

const MB: usize = 1 << 20;
const CHUNK: usize = 64 * 1024;

/// The canonical run: one 64 KiB persistent chunk, CPC pre-copy,
/// three write/compute/checkpoint epochs.
fn canonical_cpc_events() -> Vec<nvm_trace::TraceEvent> {
    let dram = MemoryDevice::dram(64 * MB);
    let nvm = MemoryDevice::pcm(64 * MB);
    let clock = VirtualClock::new();
    let config = EngineConfig::builder()
        .precopy(PrecopyPolicy::Cpc)
        .build()
        .unwrap();
    let mut engine = CheckpointEngine::new(0, &dram, &nvm, 32 * MB, clock, config).unwrap();
    // Ring-buffer sink: large enough to keep everything here, but the
    // same sink type a long-running job would cap.
    let sink = Arc::new(BufferSink::with_capacity(256));
    engine.set_tracer(Tracer::new(sink.clone()));

    let id = engine.nvmalloc("field", CHUNK, true).unwrap();
    for epoch in 0..3u8 {
        engine.write(id, 0, &[epoch + 1; CHUNK]).unwrap();
        engine.compute(SimDuration::from_secs(1));
        engine.nvchkptall().unwrap();
    }
    sink.snapshot()
}

#[test]
fn canonical_cpc_run_matches_golden_sequence() {
    let events = canonical_cpc_events();
    let chunk = nvm_paging::genid("field").0;
    // Drain cost and interference come from the device cost model; pin
    // the observed values as self-consistent rather than hardcoding
    // device constants: every epoch drains the same 64 KiB chunk, so
    // every drain (and every pre-copy window) must charge identically.
    let drain_cost = events
        .iter()
        .find_map(|e| match e.kind {
            TraceEventKind::PrecopyDrain { cost_ns, .. } => Some(cost_ns),
            _ => None,
        })
        .expect("canonical run drains at least once");
    assert!(drain_cost > 0, "a 64 KiB drain must charge virtual time");
    let interference = events
        .iter()
        .find_map(|e| match e.kind {
            TraceEventKind::PrecopyEnd {
                interference_ns, ..
            } => Some(interference_ns),
            _ => None,
        })
        .expect("canonical run closes its pre-copy windows");
    let golden: Vec<TraceEventKind> = vec![
        // Epoch 0: fresh chunk (no fault — new allocations start
        // writable). CPC pre-copies constantly, so the chunk drains in
        // the background even before the first checkpoint and the
        // coordinated phase finds nothing dirty.
        TraceEventKind::PrecopyStart {
            epoch: 0,
            candidates: 1,
        },
        TraceEventKind::PrecopyDrain {
            chunk,
            bytes: CHUNK as u64,
            cost_ns: drain_cost,
        },
        TraceEventKind::PrecopyEnd {
            epoch: 0,
            busy_ns: drain_cost,
            interference_ns: interference,
        },
        TraceEventKind::CoordinatedBegin { epoch: 0, dirty: 0 },
        TraceEventKind::CommitFlip { chunk, slot: 0 },
        TraceEventKind::CoordinatedEnd {
            epoch: 0,
            copied_bytes: 0,
        },
        // Epoch 1: the checkpoint re-protected the chunk, so the write
        // faults; CPC drains it in the background; the coordinated
        // phase finds nothing left to copy.
        TraceEventKind::ProtectionFault { chunk },
        TraceEventKind::PrecopyStart {
            epoch: 1,
            candidates: 1,
        },
        TraceEventKind::PrecopyDrain {
            chunk,
            bytes: CHUNK as u64,
            cost_ns: drain_cost,
        },
        TraceEventKind::PrecopyEnd {
            epoch: 1,
            busy_ns: drain_cost,
            interference_ns: interference,
        },
        TraceEventKind::CoordinatedBegin { epoch: 1, dirty: 0 },
        TraceEventKind::CommitFlip { chunk, slot: 1 },
        TraceEventKind::CoordinatedEnd {
            epoch: 1,
            copied_bytes: 0,
        },
        // Epoch 2: same shape; the commit slot flips back.
        TraceEventKind::ProtectionFault { chunk },
        TraceEventKind::PrecopyStart {
            epoch: 2,
            candidates: 1,
        },
        TraceEventKind::PrecopyDrain {
            chunk,
            bytes: CHUNK as u64,
            cost_ns: drain_cost,
        },
        TraceEventKind::PrecopyEnd {
            epoch: 2,
            busy_ns: drain_cost,
            interference_ns: interference,
        },
        TraceEventKind::CoordinatedBegin { epoch: 2, dirty: 0 },
        TraceEventKind::CommitFlip { chunk, slot: 0 },
        TraceEventKind::CoordinatedEnd {
            epoch: 2,
            copied_bytes: 0,
        },
    ];
    let kinds: Vec<TraceEventKind> = events.iter().map(|e| e.kind.clone()).collect();
    assert_eq!(kinds, golden);
    // Timestamps are monotone and the stream round-trips through JSONL.
    assert!(events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
    let jsonl = to_jsonl(&events);
    assert_eq!(from_jsonl(&jsonl).unwrap(), events);
}

fn traced_config(threads: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(2, 2).with_threads(threads);
    cfg.container_bytes = 24 * MB;
    cfg.local_interval = Some(SimDuration::from_secs(5));
    cfg.remote = Some(RemoteConfig::infiniband(SimDuration::from_secs(10), true));
    cfg.iterations = 8;
    cfg
}

fn gtc_factory(_g: u64) -> Box<dyn Workload> {
    Box::new(SyntheticApp::gtc_scaled(0.01).with_compute(SimDuration::from_secs(2)))
}

#[test]
fn jsonl_trace_is_byte_identical_across_thread_counts() {
    let dir = std::env::temp_dir();
    let mut paths = Vec::new();
    for threads in [1usize, 4] {
        let result = Cluster::new(traced_config(threads), gtc_factory)
            .run(RunOptions::new().with_trace(true))
            .unwrap()
            .result;
        assert!(!result.trace.is_empty());
        let path = dir.join(format!("nvm_trace_golden_t{threads}.jsonl"));
        let sink = JsonlSink::create(&path).unwrap();
        for event in &result.trace {
            nvm_trace::TraceSink::record(&sink, event.clone());
        }
        drop(sink); // flush
        paths.push(path);
    }
    let a = std::fs::read(&paths[0]).unwrap();
    let b = std::fs::read(&paths[1]).unwrap();
    assert!(!a.is_empty());
    assert_eq!(
        a, b,
        "serial and 4-thread traces must serialize identically"
    );
    for p in paths {
        let _ = std::fs::remove_file(p);
    }
}
