//! Pins the allocation behaviour of the coordinator-side merge paths.
//!
//! The trace merge used to copy event-by-event; it now drains whole
//! per-rank buffers into one capacity-preallocated vector, and the
//! metrics fold walks pre-resolved shared cells. Both are therefore
//! O(ranks) in allocator traffic, not O(events) — this test counts
//! actual global-allocator calls around each merge and fails if
//! per-event allocation ever sneaks back in.
//!
//! Everything runs inside ONE `#[test]` so no concurrent test can
//! pollute the process-wide counter between the two samples.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};

/// System allocator wrapped with an allocation-call counter.
struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.load(Relaxed);
    f();
    ALLOCATIONS.load(Relaxed) - before
}

#[test]
fn coordinator_merges_allocate_per_rank_not_per_event() {
    const RANKS: usize = 48;
    const EVENTS_PER_RANK: usize = 256;

    // --- Trace merge: quick-preset-sized per-rank buffers. ---
    let buffers: Vec<Vec<nvm_trace::TraceEvent>> = (0..RANKS as u64)
        .map(|rank| {
            (0..EVENTS_PER_RANK as u64)
                .map(|i| nvm_trace::TraceEvent {
                    t_ns: i * 1_000 + rank,
                    rank,
                    kind: nvm_trace::TraceEventKind::ProtectionFault { chunk: i % 13 },
                })
                .collect()
        })
        .collect();
    let total_events = RANKS * EVENTS_PER_RANK;

    let mut merged = Vec::new();
    let trace_allocs = allocations_during(|| {
        merged = nvm_trace::merge_ranked(buffers);
    });
    assert_eq!(merged.len(), total_events);
    // One preallocated output vector plus sort scratch — nowhere near
    // one allocation per event. (Measured: ~2; bound leaves room for
    // allocator/std drift while still catching per-event copying,
    // which would cost thousands.)
    assert!(
        trace_allocs <= RANKS,
        "trace merge made {trace_allocs} allocations for {total_events} events \
         (expected O(ranks) = <= {RANKS})"
    );

    // --- Metrics fold: per-rank registries with touched hot cells. ---
    let ranks: Vec<nvm_metrics::Metrics> = (0..RANKS)
        .map(|r| {
            let m = nvm_metrics::Metrics::new();
            let faults = m.counter_handle("chkpt_faults_total");
            let hist = m.histogram_handle("chkpt_fault_ns");
            for i in 0..EVENTS_PER_RANK as u64 {
                faults.add(1);
                hist.observe(500 + i * 31 + r as u64);
            }
            m
        })
        .collect();

    let mut folded = nvm_metrics::MetricsRegistry::new();
    let fold_allocs = allocations_during(|| {
        for m in &ranks {
            m.merge_into(&mut folded);
        }
    });
    assert_eq!(
        folded.snapshot().counter("chkpt_faults_total"),
        (RANKS * EVENTS_PER_RANK) as u64
    );
    // Each rank folds a fixed set of metric cells into the shared
    // registry: allocations scale with ranks x metrics, never with
    // the event count behind each counter.
    assert!(
        fold_allocs <= RANKS * 8,
        "metrics fold made {fold_allocs} allocations for {} observations \
         (expected O(ranks) = <= {})",
        RANKS * EVENTS_PER_RANK,
        RANKS * 8
    );

    // --- The hot update itself is allocation-free. ---
    let handle = ranks[0].counter_handle("chkpt_faults_total");
    let hist = ranks[0].histogram_handle("chkpt_fault_ns");
    let hot_allocs = allocations_during(|| {
        for i in 0..10_000u64 {
            handle.add(1);
            hist.observe(i);
        }
    });
    assert_eq!(
        hot_allocs, 0,
        "pre-resolved metric updates must not allocate (got {hot_allocs})"
    );
}
