//! The paper's headline claims, asserted at reduced (CI) scale.
//!
//! Absolute numbers differ from the paper (our substrate is an
//! emulation, theirs was a 12-core Xeon cluster); the *shape* of every
//! claim — who wins, in which direction — must hold. Paper-scale runs
//! live in the `nvm-bench` binaries; EXPERIMENTS.md records both.

use cluster_sim::{Cluster, ClusterConfig, RemoteConfig, RunOptions, RunResult, Workload};
use hpc_workloads::madbench::{run_madbench, MadBenchConfig};
use hpc_workloads::SyntheticApp;
use nvm_chkpt::PrecopyPolicy;
use nvm_emu::SimDuration;
use ramdisk_baseline::{MemorySink, RamdiskSink};

const SIZE_SCALE: f64 = 0.05;

fn config(policy: PrecopyPolicy) -> ClusterConfig {
    let mut c = ClusterConfig::new(2, 2);
    c.container_bytes = (900.0 * SIZE_SCALE * (1 << 20) as f64) as usize + (8 << 20);
    c.engine = c.engine.with_precopy(policy);
    c.local_interval = Some(SimDuration::from_secs(10));
    c.iterations = 12;
    c
}

fn run_cluster(
    cfg: ClusterConfig,
    factory: impl FnMut(u64) -> Box<dyn Workload> + 'static,
) -> RunResult {
    Cluster::new(cfg, factory)
        .run(RunOptions::new())
        .expect("cluster run")
        .result
}

fn app(name: &'static str) -> impl FnMut(u64) -> Box<dyn Workload> {
    move |_| {
        let a = match name {
            "gtc" => SyntheticApp::gtc_scaled(SIZE_SCALE),
            "lammps" => SyntheticApp::lammps_scaled(SIZE_SCALE),
            "cm1" => SyntheticApp::cm1_scaled(SIZE_SCALE),
            _ => unreachable!(),
        };
        Box::new(a.with_compute(SimDuration::from_secs(5)))
    }
}

/// Claim (Sec. IV): in-memory checkpointing beats ramdisk, ~46% at
/// 300 MB, 3x sync calls, 31% more lock wait.
#[test]
fn claim_ramdisk_is_much_slower_than_memory() {
    let cfg = MadBenchConfig::with_data_mb(300);
    let mut mem = MemorySink::new();
    let mut rd = RamdiskSink::new();
    let rm = run_madbench(&cfg, &mut mem);
    let rr = run_madbench(&cfg, &mut rd);
    let slowdown = rr.checkpoint_time.as_secs_f64() / rm.checkpoint_time.as_secs_f64();
    assert!((1.40..1.52).contains(&slowdown), "slowdown {slowdown}");
    assert!(rr.kernel_sync_calls as f64 / rm.kernel_sync_calls as f64 > 2.8);
    assert!(rr.lock_wait > rm.lock_wait);
}

/// Claim (Fig. 7): pre-copy cuts LAMMPS local-checkpoint overhead
/// roughly in half vs no pre-copy.
#[test]
fn claim_precopy_halves_local_overhead() {
    let factory = app("lammps");
    let ideal = run_cluster(config(PrecopyPolicy::None).ideal_variant(), factory);
    let pre = run_cluster(config(PrecopyPolicy::Dcpcp), app("lammps"));
    let nopre = run_cluster(config(PrecopyPolicy::None), app("lammps"));
    let ideal_s = ideal.total_time.as_secs_f64();
    let ovh_pre = pre.total_time.as_secs_f64() / ideal_s - 1.0;
    let ovh_no = nopre.total_time.as_secs_f64() / ideal_s - 1.0;
    assert!(
        ovh_pre < ovh_no * 0.75,
        "pre-copy {ovh_pre:.3} vs no-pre-copy {ovh_no:.3}"
    );
}

/// Claim (Fig. 8): with dirty tracking, GTC checkpoints *less* data
/// than the no-pre-copy baseline (init-only arrays skipped).
#[test]
fn claim_gtc_checkpoints_less_data_with_tracking() {
    let pre = run_cluster(config(PrecopyPolicy::Dcpcp), app("gtc"));
    let nopre = run_cluster(config(PrecopyPolicy::None), app("gtc"));
    assert!(pre.engine_stats.skipped_bytes > 0);
    assert!(
        pre.engine_stats.total_copied_bytes() < nopre.engine_stats.total_copied_bytes(),
        "GTC pre-copy must move less data"
    );
}

/// Claim (Sec. VI): the pre-copy benefit ordering across apps follows
/// their chunk-size profiles — CM1 gains least. The effect comes from
/// chunk *sizes* (large chunks hit the contended-bandwidth regime;
/// CM1's mostly-small chunks do not), so this test runs paper-sized
/// chunks on a small rank count with the contended bandwidth model.
#[test]
fn claim_cm1_benefits_least() {
    let full_config = |policy: PrecopyPolicy| {
        let mut c = ClusterConfig::new(1, 4);
        c.container_bytes = 940 << 20;
        c.engine = c.engine.with_precopy(policy);
        c.local_interval = Some(SimDuration::from_secs(40));
        c.iterations = 12;
        c
    };
    let full_app = |name: &'static str| {
        move |_: u64| -> Box<dyn Workload> {
            let a = match name {
                "lammps" => SyntheticApp::lammps(),
                "cm1" => SyntheticApp::cm1(),
                _ => unreachable!(),
            };
            Box::new(a.with_compute(SimDuration::from_secs(10)))
        }
    };
    let benefit = |name: &'static str| {
        let pre = run_cluster(full_config(PrecopyPolicy::Dcpcp), full_app(name));
        let nopre = run_cluster(full_config(PrecopyPolicy::None), full_app(name));
        1.0 - pre.total_time.as_secs_f64() / nopre.total_time.as_secs_f64()
    };
    let lammps = benefit("lammps");
    let cm1 = benefit("cm1");
    assert!(
        cm1 < lammps,
        "CM1 benefit {cm1:.4} must be below LAMMPS {lammps:.4}"
    );
}

/// Claim (Figs. 9/10): remote pre-copy lowers both peak interconnect
/// usage and total runtime vs the async burst approach.
#[test]
fn claim_remote_precopy_cuts_peak_and_runtime() {
    // Paper-sized checkpoints: the peak difference comes from staging
    // rates, which only shows once per-node volume exceeds a trace
    // bucket's worth of wire time.
    let full_config = |policy: PrecopyPolicy, precopy: bool| {
        let mut c = ClusterConfig::new(2, 2);
        c.container_bytes = 940 << 20;
        c.engine = c.engine.with_precopy(policy);
        c.local_interval = Some(SimDuration::from_secs(40));
        c.remote = Some(RemoteConfig::infiniband(
            SimDuration::from_secs(80),
            precopy,
        ));
        c.iterations = 16;
        c
    };
    let full_app = |_: u64| -> Box<dyn Workload> {
        Box::new(SyntheticApp::gtc().with_compute(SimDuration::from_secs(10)))
    };

    let pre = run_cluster(full_config(PrecopyPolicy::Dcpcp, true), full_app);
    let burst = run_cluster(full_config(PrecopyPolicy::None, false), full_app);
    assert!(pre.remote_checkpoints >= 1 && burst.remote_checkpoints >= 1);
    assert!(
        pre.peak_link_bytes() < burst.peak_link_bytes(),
        "peak {} vs {}",
        pre.peak_link_bytes(),
        burst.peak_link_bytes()
    );
    assert!(pre.total_time <= burst.total_time);
}

/// Claim (Table V): the helper core works roughly twice as hard under
/// pre-copy, yet remains a small fraction of one core.
#[test]
fn claim_helper_utilization_doubles_but_stays_small() {
    let mut pre_cfg = config(PrecopyPolicy::Dcpcp);
    pre_cfg.iterations = 16;
    pre_cfg.remote = Some(RemoteConfig::infiniband(SimDuration::from_secs(20), true));
    let mut burst_cfg = config(PrecopyPolicy::None);
    burst_cfg.iterations = 16;
    burst_cfg.remote = Some(RemoteConfig::infiniband(SimDuration::from_secs(20), false));

    let pre = run_cluster(pre_cfg, app("gtc"));
    let burst = run_cluster(burst_cfg, app("gtc"));
    let u_pre = pre.helper_utilization[0];
    let u_burst = burst.helper_utilization[0];
    assert!(u_pre > u_burst, "{u_pre} vs {u_burst}");
    assert!(u_pre < 0.5, "helper must stay well below one core: {u_pre}");
}

/// Claim (Sec. IV): chunk-level protection avoids the page-fault storm
/// of page-level protection for fully-rewritten checkpoint data.
#[test]
fn claim_chunk_protection_avoids_fault_storm() {
    use nvm_chkpt::Granularity;
    let run = |g: Granularity| {
        let mut cfg = config(PrecopyPolicy::Cpc);
        cfg.engine = cfg.engine.with_granularity(g);
        run_cluster(cfg, app("lammps"))
    };
    let chunk = run(Granularity::Chunk);
    let page = run(Granularity::Page);
    assert!(
        page.engine_stats.faults > 50 * chunk.engine_stats.faults,
        "page {} vs chunk {} faults",
        page.engine_stats.faults,
        chunk.engine_stats.faults
    );
}
