//! Parallel rank execution must be bit-identical to serial.
//!
//! The cluster runs ranks on a worker pool when `threads > 1`. The
//! acceptance bar for that parallelism is strict: the serialized
//! [`cluster_sim::RunResult`] — epochs, schedule trace, link traces,
//! engine statistics, everything — must match the serial run byte for
//! byte on the same seed. These tests cover the three regimes where an
//! ordering bug would show up: plain local checkpointing, the remote
//! pre-copy path (shared per-node links and helpers), and seeded
//! failure injection with rollbacks.

use cluster_sim::{
    Cluster, ClusterConfig, FailureConfig, RemoteConfig, RunOptions, UniformWorkload, Workload,
};
use nvm_chkpt::PrecopyPolicy;
use nvm_emu::SimDuration;

const MB: usize = 1 << 20;
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn factory(_global: u64) -> Box<dyn Workload> {
    Box::new(UniformWorkload::new(
        4,
        2 * MB,
        SimDuration::from_secs(2),
        1 << 20,
    ))
}

/// Run the same configuration at each thread count and return the
/// serialized results (thread count itself is not part of RunResult).
fn runs_at_all_thread_counts(cfg: &ClusterConfig) -> Vec<String> {
    THREAD_COUNTS
        .iter()
        .map(|&threads| {
            let mut c = cfg.clone();
            c.threads = threads;
            let result = Cluster::new(c, factory)
                .run(RunOptions::new())
                .unwrap()
                .result;
            serde_json::to_string(&result).unwrap()
        })
        .collect()
}

fn assert_all_identical(jsons: &[String], what: &str) {
    for (i, json) in jsons.iter().enumerate().skip(1) {
        assert_eq!(
            &jsons[0], json,
            "{what}: run with {} threads diverged from serial",
            THREAD_COUNTS[i]
        );
    }
    // A trivially empty result would make the comparison vacuous.
    assert!(jsons[0].contains("\"total_time\""));
}

fn base_config() -> ClusterConfig {
    let mut c = ClusterConfig::new(2, 3);
    c.container_bytes = 24 * MB;
    c.local_interval = Some(SimDuration::from_secs(5));
    c.iterations = 8;
    c
}

#[test]
fn local_checkpointing_is_thread_count_invariant() {
    let cfg = base_config();
    assert_all_identical(&runs_at_all_thread_counts(&cfg), "local");
}

#[test]
fn remote_precopy_is_thread_count_invariant() {
    let mut cfg = base_config();
    cfg.iterations = 12;
    cfg.engine = cfg.engine.with_precopy(PrecopyPolicy::Dcpcp);
    cfg.remote = Some(RemoteConfig::infiniband(SimDuration::from_secs(10), true));
    let jsons = runs_at_all_thread_counts(&cfg);
    assert!(jsons[0].contains("\"remote_checkpoints\""));
    assert_all_identical(&jsons, "remote pre-copy");
}

#[test]
fn failure_injection_is_thread_count_invariant() {
    let mut cfg = base_config();
    cfg.iterations = 10;
    cfg.failures = Some(FailureConfig {
        seed: 11,
        mtbf_soft: SimDuration::from_secs(15),
        mtbf_hard: SimDuration::from_secs(120),
    });
    cfg.failure_horizon = SimDuration::from_secs(300);
    let jsons = runs_at_all_thread_counts(&cfg);
    // The seeded schedule must actually inject something, or this test
    // degenerates into the plain local case.
    assert!(
        !jsons[0].contains("\"soft_failures\":0") || !jsons[0].contains("\"hard_failures\":0"),
        "failure schedule injected nothing: {}",
        &jsons[0][..200.min(jsons[0].len())]
    );
    assert_all_identical(&jsons, "failure injection");
}
