//! Crash-consistency sweep for the `nvm-kv` serving layer.
//!
//! The kv store's durability claim composes two protocols: CPR tokens
//! (a `checkpoint()` publishes token + log prefix + session
//! watermarks into the `kv_meta` chunk) and the engine's container
//! mirror (`nvchkptall` makes the chunk state durable with the
//! shadow-slot + atomic-record protocol). The invariant under test:
//!
//! > After a crash at *any* media-operation boundary — clean cut,
//! > dropped unsynced writes, or a torn in-flight write — recovering
//! > the container, restarting the engine from it, and running
//! > `KvStore::recover` yields exactly the contents at the last
//! > *durably committed* CPR token, bit-for-bit. Operations
//! > acknowledged after that token (even ones physically in the
//! > durable log) are dropped; tokens published but never committed
//! > by an `nvchkptall` roll back to the previous durable token.
//!
//! The scripted run exercises overwrite, delete (tombstone), rmw,
//! back-to-back tokens, and post-token writes that must be dropped;
//! the proptest half drives random op sequences through random crash
//! points.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use nvm_chkpt::{CheckpointEngine, EngineConfig, RestartStrategy};
use nvm_emu::{MemoryDevice, VirtualClock};
use nvm_kv::{KvConfig, KvStore, SessionId};
use nvm_store::{
    surviving_image, Container, CrashMode, CrashPoint, Media, OpRecord, PersistError,
    RecordingMedia,
};
use nvm_trace::Tracer;
use proptest::prelude::*;

const MB: usize = 1 << 20;
const PID: u64 = 42;
const CONTAINER_CAP: usize = 8 * MB;

/// [`RecordingMedia`] behind a shared handle: the container (boxed
/// into the engine as its persistence backend) writes through one
/// clone while the harness reads the op log from the other after the
/// run.
#[derive(Clone, Default)]
struct SharedMedia(Arc<Mutex<RecordingMedia>>);

impl SharedMedia {
    fn ops(&self) -> Vec<OpRecord> {
        self.0.lock().unwrap().ops().to_vec()
    }
}

impl Media for SharedMedia {
    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<(), PersistError> {
        self.0.lock().unwrap().write_at(offset, data)
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<usize, PersistError> {
        self.0.lock().unwrap().read_at(offset, buf)
    }

    fn fsync(&mut self) -> Result<(), PersistError> {
        self.0.lock().unwrap().fsync()
    }

    fn len(&self) -> u64 {
        self.0.lock().unwrap().len()
    }
}

fn kv_cfg() -> KvConfig {
    KvConfig {
        initial_index_slots: 16,
        segment_bytes: 4096,
        max_sessions: 4,
        trace_ops: false,
    }
}

fn mk_engine() -> CheckpointEngine {
    let dram = MemoryDevice::dram(64 * MB);
    let nvm = MemoryDevice::pcm(64 * MB);
    CheckpointEngine::new(
        PID,
        &dram,
        &nvm,
        16 * MB,
        VirtualClock::new(),
        EngineConfig::default(),
    )
    .unwrap()
}

/// Oracle entry: what a crash recovering this engine commit must find.
#[derive(Clone, Debug)]
struct KvMark {
    /// Media ops recorded once `nvchkptall` returned. The commit
    /// record write is op `ops_after - 2`, its fsync `ops_after - 1`
    /// (same container protocol the nvm-store sweep pins down).
    ops_after: usize,
    /// CPR token this commit made durable (0 = none published yet).
    token: u64,
    /// Exact kv contents at that token.
    expected: BTreeMap<Vec<u8>, Vec<u8>>,
}

/// Which mark a crash at `point` must recover to (None = virgin).
/// Same durability rule as `nvm_store::expected_mark`: under
/// Keep/Torn the commit is durable once the crash lands at or after
/// its fsync op (tearing the record itself fails its CRC and is
/// discarded); under Drop only once the fsync completed.
fn expected_kv_mark<'a>(marks: &'a [KvMark], point: &CrashPoint) -> Option<&'a KvMark> {
    marks
        .iter()
        .filter(|m| match point.mode {
            CrashMode::Keep | CrashMode::Torn { .. } => point.at_op >= m.ops_after - 1,
            CrashMode::Drop => point.at_op >= m.ops_after,
        })
        .max_by_key(|m| m.ops_after)
}

/// A serving run whose media ops were recorded for crash replay.
struct KvCrashRun {
    ops: Vec<OpRecord>,
    marks: Vec<KvMark>,
}

/// Harness state for scripting a run: engine + store + the oracle
/// bookkeeping (contents snapshot at the last published token).
struct Driver {
    engine: CheckpointEngine,
    kv: KvStore,
    session: SessionId,
    media: SharedMedia,
    /// (token, contents) at the last `checkpoint()` call.
    at_token: (u64, BTreeMap<Vec<u8>, Vec<u8>>),
    marks: Vec<KvMark>,
}

impl Driver {
    fn new() -> Driver {
        let mut engine = mk_engine();
        let media = SharedMedia::default();
        engine.set_persistence(Box::new(
            Container::open(media.clone(), PID, CONTAINER_CAP).unwrap(),
        ));
        let mut kv = KvStore::create(&mut engine, kv_cfg()).unwrap();
        let session = kv.new_session().unwrap();
        Driver {
            engine,
            kv,
            session,
            media,
            at_token: (0, BTreeMap::new()),
            marks: Vec::new(),
        }
    }

    fn upsert(&mut self, key: &[u8], value: &[u8]) {
        self.kv
            .upsert(&mut self.engine, self.session, key, value)
            .unwrap();
    }

    fn delete(&mut self, key: &[u8]) {
        self.kv.delete(&mut self.engine, self.session, key).unwrap();
    }

    fn rmw_bump(&mut self, key: &[u8]) {
        self.kv
            .rmw(&mut self.engine, self.session, key, |old| {
                let mut v = old.map_or_else(|| vec![0u8; 8], <[u8]>::to_vec);
                if v.len() >= 8 {
                    let c = u64::from_le_bytes(v[..8].try_into().unwrap());
                    v[..8].copy_from_slice(&c.wrapping_add(1).to_le_bytes());
                }
                v
            })
            .unwrap();
    }

    /// Publish a CPR token and snapshot the oracle contents at it.
    fn token(&mut self) {
        let t = self.kv.checkpoint(&mut self.engine).unwrap();
        let contents = self.kv.contents(&mut self.engine).unwrap();
        self.at_token = (t.token, contents);
    }

    /// Engine commit: the last published token becomes crash-durable.
    fn commit(&mut self) {
        self.engine.nvchkptall().unwrap();
        self.marks.push(KvMark {
            ops_after: self.media.ops().len(),
            token: self.at_token.0,
            expected: self.at_token.1.clone(),
        });
    }

    fn finish(self) -> KvCrashRun {
        KvCrashRun {
            ops: self.media.ops(),
            marks: self.marks,
        }
    }
}

/// The scripted run: overwrites, tombstones, rmw, back-to-back
/// tokens, and acknowledged-after-token writes at every commit.
fn scripted_run() -> KvCrashRun {
    let mut d = Driver::new();
    // Commit with no token published: recovery must land on an empty
    // store even though the upserts are physically in the durable log.
    d.upsert(b"k0", b"v0-a");
    d.upsert(b"k1", b"v1-a");
    d.commit();
    // Token 1: overwrite + growth past one index probe chain.
    d.upsert(b"k0", b"v0-b");
    for i in 0..20u8 {
        d.upsert(format!("bulk{i:02}").as_bytes(), &[i; 48]);
    }
    d.token();
    // Acknowledged after token 1 — durable in the log, must be
    // dropped by recovery at this commit.
    d.upsert(b"k2", b"post-token");
    d.delete(b"k1");
    d.commit();
    // Tokens 2 and 3 back to back (watermarks move, contents do
    // between, nothing after), with a tombstone and an rmw inside.
    d.delete(b"bulk00");
    d.rmw_bump(b"k0");
    d.token();
    d.token();
    d.upsert(b"k3", b"never-committed");
    d.commit();
    d.finish()
}

/// Crash `run` at `point`, recover container → engine → kv store, and
/// assert the recovered contents are exactly the oracle's.
fn check_kv_crash_point(run: &KvCrashRun, point: &CrashPoint) {
    let image = surviving_image(&run.ops, point);
    let store = Container::open(image, PID, CONTAINER_CAP)
        .unwrap_or_else(|e| panic!("container recovery must never error at {point:?}: {e}"));
    let dram = MemoryDevice::dram(64 * MB);
    let nvm = MemoryDevice::pcm(64 * MB);
    let (mut engine, _report) = CheckpointEngine::restart_from_store(
        &dram,
        &nvm,
        CONTAINER_CAP,
        VirtualClock::new(),
        EngineConfig::default(),
        RestartStrategy::Eager,
        Box::new(store),
        Tracer::disabled(),
    )
    .unwrap_or_else(|e| panic!("engine restart must never error at {point:?}: {e}"));
    let (mut kv, rec) = KvStore::recover(&mut engine, kv_cfg())
        .unwrap_or_else(|e| panic!("kv recovery must never error at {point:?}: {e}"));
    let got = kv.contents(&mut engine).unwrap();
    match expected_kv_mark(&run.marks, point) {
        None => {
            assert_eq!(
                rec.token, 0,
                "virgin recovery must report token 0 at {point:?}"
            );
            assert!(
                got.is_empty(),
                "virgin recovery must serve an empty store at {point:?}, got {} keys",
                got.len()
            );
        }
        Some(mark) => {
            assert_eq!(
                rec.token, mark.token,
                "recovered token mismatch at {point:?}"
            );
            assert_eq!(
                got, mark.expected,
                "recovered contents not bit-for-bit at {point:?}"
            );
        }
    }
    // Serving must continue on the recovered store.
    let s = kv.new_session().unwrap();
    kv.upsert(&mut engine, s, b"post-crash", b"serving")
        .unwrap();
    assert_eq!(
        kv.read(&mut engine, s, b"post-crash").unwrap().unwrap(),
        b"serving"
    );
}

#[test]
fn scripted_run_reaches_every_token_outcome() {
    // The sweep is only meaningful if crash points actually land in
    // every durable token's window plus the virgin state.
    let run = scripted_run();
    assert_eq!(run.marks.len(), 3);
    assert_eq!(
        run.marks.iter().map(|m| m.token).collect::<Vec<_>>(),
        vec![0, 1, 3]
    );
    let mut seen = std::collections::BTreeSet::new();
    for at_op in 0..=run.ops.len() {
        for mode in [CrashMode::Keep, CrashMode::Drop] {
            let p = CrashPoint { at_op, mode };
            seen.insert(expected_kv_mark(&run.marks, &p).map(|m| m.token));
        }
    }
    for outcome in [None, Some(0), Some(1), Some(3)] {
        assert!(
            seen.contains(&outcome),
            "no crash point reaches {outcome:?}"
        );
    }
}

#[test]
fn kv_sweep_over_every_operation_boundary() {
    let run = scripted_run();
    let points = nvm_store::enumerate_points(&run.ops);
    assert!(
        points.len() > 2 * run.ops.len(),
        "sweep unexpectedly sparse: {} points for {} ops",
        points.len(),
        run.ops.len()
    );
    for point in &points {
        check_kv_crash_point(&run, point);
    }
}

/// One random op against the driver.
#[derive(Clone, Debug)]
enum ScriptOp {
    Upsert { key: u8, val: u8 },
    Delete { key: u8 },
    Rmw { key: u8 },
    Token,
    Commit,
}

fn script_op() -> impl Strategy<Value = ScriptOp> {
    prop_oneof![
        (0u8..12, 0u8..128).prop_map(|(key, val)| ScriptOp::Upsert { key, val }),
        (0u8..12, 128u8..255).prop_map(|(key, val)| ScriptOp::Upsert { key, val }),
        (0u8..12).prop_map(|key| ScriptOp::Delete { key }),
        (0u8..12).prop_map(|key| ScriptOp::Rmw { key }),
        Just(ScriptOp::Token),
        Just(ScriptOp::Commit),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_op_sequences_recover_to_their_oracle(
        script in proptest::collection::vec(script_op(), 1..40),
        at_op_sel in any::<u64>(),
        mode_sel in 0u8..3,
        keep in 0usize..8192,
    ) {
        let mut d = Driver::new();
        for op in &script {
            match op {
                ScriptOp::Upsert { key, val } => {
                    d.upsert(format!("key{key:02}").as_bytes(), &[*val; 24]);
                }
                ScriptOp::Delete { key } => d.delete(format!("key{key:02}").as_bytes()),
                ScriptOp::Rmw { key } => d.rmw_bump(format!("key{key:02}").as_bytes()),
                ScriptOp::Token => d.token(),
                ScriptOp::Commit => d.commit(),
            }
        }
        // Always end on token + commit so the tail of the script is
        // reachable as a recovery outcome too.
        d.token();
        d.commit();
        let run = d.finish();
        let at_op = (at_op_sel % (run.ops.len() as u64 + 1)) as usize;
        let mode = match mode_sel {
            0 => CrashMode::Keep,
            1 => CrashMode::Drop,
            _ if matches!(run.ops.get(at_op), Some(OpRecord::Write { .. })) => {
                CrashMode::Torn { keep }
            }
            _ => CrashMode::Keep,
        };
        check_kv_crash_point(&run, &CrashPoint { at_op, mode });
    }
}
