//! Rank-scaling gates: a 256-rank byte-materialized run must stay
//! memory-frugal, and its instrumented outputs must be byte-identical
//! between serial and `--threads 4` execution.
//!
//! * **RSS gate** — the process-wide counting allocator measures the
//!   peak live heap bytes during a 256-rank run with device spill on.
//!   The gate: live heap must stay below 25% of the naive
//!   in-RAM-images projection (live heap + the spill files' live-byte
//!   high-water mark). Without spilling, every rank's working copy,
//!   both NVM version slots, and the buddy node's remote images would
//!   all be resident — the projection *is* that design's floor.
//! * **Identity gate** — the same 256-rank cluster run serial and on
//!   4 worker threads with tracing, metrics, and durable stores all
//!   on: the serialized result, the JSONL trace stream, and every
//!   per-rank `rank_<n>.store` container file must match byte for
//!   byte.
//!
//! Everything runs inside ONE `#[test]` so no concurrent test can
//! touch the process-wide allocator peak between reset and read.

use cluster_sim::{Cluster, ClusterConfig, RemoteConfig, RunOptions, UniformWorkload, Workload};
use nvm_chkpt::{EngineConfig, Materialization, PrecopyPolicy};
use nvm_emu::{SimDuration, TempDir};
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};

/// System allocator wrapped with live-byte and peak-live accounting.
struct PeakAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn note_alloc(bytes: usize) {
    let live = LIVE.fetch_add(bytes, Relaxed) + bytes;
    PEAK.fetch_max(live, Relaxed);
}

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            LIVE.fetch_sub(layout.size(), Relaxed);
            note_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static COUNTER: PeakAlloc = PeakAlloc;

/// Reset the peak watermark to the current live footprint.
fn reset_peak() -> usize {
    let live = LIVE.load(Relaxed);
    PEAK.store(live, Relaxed);
    live
}

const RANKS: usize = 256;
const RANKS_PER_NODE: usize = 8;
const CHUNK_BYTES: usize = 32 * 1024;
const CHUNKS: usize = 2;

/// 256 ranks, byte-materialized with CRC verification, ring-buddy
/// remote checkpointing, device spill on (the default).
fn config(threads: usize) -> ClusterConfig {
    ClusterConfig::builder()
        .nodes(RANKS / RANKS_PER_NODE)
        .ranks_per_node(RANKS_PER_NODE)
        .container_bytes(CHUNKS * CHUNK_BYTES * 2 + (1 << 20))
        .engine(
            EngineConfig::builder()
                .materialization(Materialization::Bytes)
                .checksums(true)
                .precopy(PrecopyPolicy::Dcpcp)
                .node_concurrency(RANKS_PER_NODE)
                .build()
                .expect("valid engine config"),
        )
        .local_interval(Some(SimDuration::from_secs(5)))
        .remote(RemoteConfig::infiniband(SimDuration::from_secs(10), true))
        .iterations(8)
        .threads(threads)
        .build()
        .expect("valid 256-rank config")
}

fn factory(_g: u64) -> Box<dyn Workload> {
    Box::new(UniformWorkload::new(
        CHUNKS,
        CHUNK_BYTES,
        SimDuration::from_secs(2),
        CHUNK_BYTES as u64,
    ))
}

/// Every container file a store-attached run left under `dir`, keyed
/// by file name.
fn store_files(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("read store dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".store") {
            out.insert(name, std::fs::read(entry.path()).expect("read container"));
        }
    }
    out
}

#[test]
fn rank_256_run_is_memory_frugal_and_thread_count_invariant() {
    // --- RSS gate: spilled images must dominate the naive projection.
    let baseline = reset_peak();
    let outcome = Cluster::new(config(1), factory)
        .run(RunOptions::new())
        .expect("256-rank run");
    let peak_live = PEAK.load(Relaxed).saturating_sub(baseline) as u64;
    let spill = outcome.spill.expect("byte runs spill by default");
    assert_eq!(
        spill.resident_bytes, 0,
        "every materialized region must live in a spill file"
    );
    assert!(spill.peak_bytes > 0);
    let naive = peak_live + spill.peak_bytes;
    assert!(
        peak_live * 4 < naive,
        "peak live heap {peak_live} B must stay below 25% of the naive \
         in-RAM-images projection {naive} B (spilled {} B)",
        spill.peak_bytes
    );
    assert_eq!(outcome.result.iterations_executed, 8);

    // --- Identity gate: serial vs 4 worker threads, instrumented.
    type Snapshot = (String, Vec<u8>, BTreeMap<String, Vec<u8>>);
    let mut snapshots: Vec<Snapshot> = Vec::new();
    for threads in [1usize, 4] {
        let store = TempDir::new("rank-scaling-store").expect("tempdir");
        let outcome = Cluster::new(config(threads), factory)
            .run(
                RunOptions::new()
                    .with_trace(true)
                    .with_metrics(true)
                    .with_store_dir(store.path()),
            )
            .expect("instrumented 256-rank run");
        let result = outcome.result;
        assert!(!result.trace.is_empty());
        assert!(result.metrics.is_some());
        let json = serde_json::to_string(&result).expect("serialize result");
        let jsonl = nvm_trace::to_jsonl(&result.trace).into_bytes();
        let files = store_files(store.path());
        assert_eq!(files.len(), RANKS, "one container file per rank");
        snapshots.push((json, jsonl, files));
    }
    let (serial, threaded) = (&snapshots[0], &snapshots[1]);
    assert_eq!(
        serial.0, threaded.0,
        "serialized RunResult diverged between serial and threads=4"
    );
    assert_eq!(
        serial.1, threaded.1,
        "JSONL trace stream diverged between serial and threads=4"
    );
    assert_eq!(
        serial.2.keys().collect::<Vec<_>>(),
        threaded.2.keys().collect::<Vec<_>>(),
        "store directories hold different container sets"
    );
    for (name, bytes) in &serial.2 {
        assert_eq!(
            bytes, &threaded.2[name],
            "container {name} diverged between serial and threads=4"
        );
    }
}
