//! Structural assertions on the simulator's schedules — the shapes of
//! Figures 1 and 5 of the paper.
//!
//! * Figure 1: compute and local checkpoints alternate; remote
//!   checkpoints overlap the *following* compute (asynchronous).
//! * Figure 5b: with pre-copy, the blocking local-checkpoint spans
//!   shrink because most data drained during compute.
//! * Figure 5c: with remote pre-copy, checkpoint traffic flows during
//!   compute windows instead of arriving as one post-checkpoint burst.

use cluster_sim::{
    Activity, Cluster, ClusterConfig, RemoteConfig, RunOptions, RunResult, UniformWorkload,
    Workload,
};
use nvm_chkpt::PrecopyPolicy;
use nvm_emu::SimDuration;

const MB: usize = 1 << 20;

fn config(policy: PrecopyPolicy) -> ClusterConfig {
    let mut c = ClusterConfig::new(2, 2);
    c.container_bytes = 48 * MB;
    c.engine = c.engine.with_precopy(policy);
    c.local_interval = Some(SimDuration::from_secs(8));
    c.iterations = 12;
    c
}

fn factory(_g: u64) -> Box<dyn Workload> {
    Box::new(UniformWorkload::new(
        5,
        4 * MB,
        SimDuration::from_secs(4),
        2 * MB as u64,
    ))
}

fn run_cluster(cfg: ClusterConfig, factory: fn(u64) -> Box<dyn Workload>) -> RunResult {
    Cluster::new(cfg, factory)
        .run(RunOptions::new())
        .expect("cluster run")
        .result
}

#[test]
fn figure1_compute_and_local_checkpoints_alternate() {
    let r = run_cluster(config(PrecopyPolicy::None), factory);
    let seq = r.schedule.sequence();
    // The canonical C L C L ... pattern appears.
    let cl_pairs = seq
        .windows(2)
        .filter(|w| w == &[Activity::Compute, Activity::LocalCheckpoint])
        .count();
    assert!(cl_pairs >= 3, "expected repeated C->L transitions: {seq:?}");
    // Local checkpoints are coordinated: they never overlap compute.
    assert!(!r
        .schedule
        .overlaps(Activity::Compute, Activity::LocalCheckpoint));
}

#[test]
fn figure1_remote_checkpoints_overlap_compute() {
    let mut cfg = config(PrecopyPolicy::None);
    cfg.remote = Some(RemoteConfig::infiniband(SimDuration::from_secs(16), false));
    let r = run_cluster(cfg, factory);
    assert!(r.remote_checkpoints >= 1);
    // Asynchronous remote checkpoint: its span extends into compute.
    assert!(
        r.schedule
            .overlaps(Activity::Compute, Activity::RemoteCheckpoint),
        "remote checkpoints must overlap compute: {:?}",
        r.schedule.sequence()
    );
}

#[test]
fn figure5b_precopy_shrinks_blocking_checkpoint_spans() {
    let no = run_cluster(config(PrecopyPolicy::None), factory);
    let pre = run_cluster(config(PrecopyPolicy::Dcpcp), factory);
    let t_no = no.schedule.total(Activity::LocalCheckpoint);
    let t_pre = pre.schedule.total(Activity::LocalCheckpoint);
    assert!(
        t_pre < t_no,
        "pre-copy blocking time {t_pre} must be below {t_no}"
    );
}

#[test]
fn figure5c_remote_precopy_moves_traffic_into_compute_windows() {
    let mut burst_cfg = config(PrecopyPolicy::None);
    burst_cfg.remote = Some(RemoteConfig::infiniband(SimDuration::from_secs(16), false));
    let mut pre_cfg = config(PrecopyPolicy::Dcpcp);
    pre_cfg.remote = Some(RemoteConfig::infiniband(SimDuration::from_secs(16), true));

    let burst = run_cluster(burst_cfg, factory);
    let pre = run_cluster(pre_cfg, factory);

    // Same-order volumes, but the pre-copy trace is much flatter.
    let burst_trace = &burst.link_traces[0];
    let pre_trace = &pre.link_traces[0];
    assert!(pre_trace.total_bytes() > 0.0 && burst_trace.total_bytes() > 0.0);
    assert!(
        pre_trace.peak_to_mean() < burst_trace.peak_to_mean(),
        "pre-copy peak/mean {:.1} must be flatter than burst {:.1}",
        pre_trace.peak_to_mean(),
        burst_trace.peak_to_mean()
    );
}

#[test]
fn restart_spans_appear_after_failures() {
    use cluster_sim::FailureConfig;
    let mut cfg = config(PrecopyPolicy::Dcpcp);
    cfg.failures = Some(FailureConfig {
        seed: 5,
        mtbf_soft: SimDuration::from_secs(20),
        mtbf_hard: SimDuration::from_secs(1_000_000),
    });
    cfg.failure_horizon = SimDuration::from_secs(600);
    let r = run_cluster(cfg, factory);
    assert!(r.soft_failures > 0);
    let restarts = r.schedule.of(Activity::Restart);
    assert_eq!(restarts.len() as u64, r.soft_failures + r.hard_failures);
    for s in restarts {
        assert!(!s.duration().is_zero(), "restart must cost time");
    }
}
