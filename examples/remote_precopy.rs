//! Remote pre-copy vs burst remote checkpointing: same LAMMPS-like
//! workload, same data volume — very different peak interconnect
//! usage (the Figure-10 effect).
//!
//! ```sh
//! cargo run --release -p nvm-chkpt-examples --bin remote_precopy
//! ```

use cluster_sim::{Cluster, ClusterConfig, RemoteConfig, RunOptions, RunResult, Workload};
use hpc_workloads::SyntheticApp;
use nvm_chkpt::PrecopyPolicy;
use nvm_emu::SimDuration;

fn run(precopy: bool) -> RunResult {
    // Paper-sized checkpoints (~410 MB/rank): the peak difference comes
    // from staging rates and needs real volumes to be visible.
    let mut cfg = ClusterConfig::new(2, 4);
    cfg.container_bytes = 940 << 20;
    cfg.engine = cfg.engine.with_precopy(if precopy {
        PrecopyPolicy::Dcpcp
    } else {
        PrecopyPolicy::None
    });
    cfg.local_interval = Some(SimDuration::from_secs(40));
    cfg.remote = Some(RemoteConfig::infiniband(
        SimDuration::from_secs(80),
        precopy,
    ));
    cfg.iterations = 24;
    let factory = |_rank: u64| -> Box<dyn Workload> {
        Box::new(SyntheticApp::lammps().with_compute(SimDuration::from_secs(10)))
    };
    Cluster::new(cfg, factory)
        .run(RunOptions::new())
        .unwrap()
        .result
}

fn main() {
    let pre = run(true);
    let burst = run(false);
    let mb = (1 << 20) as f64;

    println!("Remote checkpointing: pre-copy vs all-at-once burst\n");
    println!("                         pre-copy     burst");
    println!(
        "  peak link bucket:     {:>8.1} MB {:>8.1} MB",
        pre.peak_link_bytes() / mb,
        burst.peak_link_bytes() / mb
    );
    println!(
        "  total shipped:        {:>8.1} MB {:>8.1} MB",
        pre.link_traces[0].total_bytes() / mb,
        burst.link_traces[0].total_bytes() / mb
    );
    println!(
        "  helper utilization:   {:>8.1} %  {:>8.1} %",
        pre.helper_utilization[0] * 100.0,
        burst.helper_utilization[0] * 100.0
    );
    println!(
        "  total time:           {:>9} {:>9}",
        pre.total_time.to_string(),
        burst.total_time.to_string()
    );
    let reduction = 1.0 - pre.peak_link_bytes() / burst.peak_link_bytes();
    println!(
        "\npeak interconnect usage reduced by {:.0}% (paper: up to 46%)",
        reduction * 100.0
    );

    println!("\nnode-0 link usage timeline (MB per 1 s bucket):");
    println!("  t(s)   pre-copy  burst");
    let p = pre.link_traces[0].series();
    let b = burst.link_traces[0].series();
    for i in 0..p.len().max(b.len()) {
        let pv = p.get(i).copied().unwrap_or(0.0) / mb;
        let bv = b.get(i).copied().unwrap_or(0.0) / mb;
        if pv > 0.01 || bv > 0.01 {
            println!("  {i:>4}   {pv:>8.1}  {bv:>8.1}");
        }
    }
}
