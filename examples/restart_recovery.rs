//! Failure recovery with checksums and the remote fallback: corrupt a
//! local checkpoint, catch it at restart, and recover the bytes from
//! the buddy node's remote store.
//!
//! ```sh
//! cargo run -p nvm-chkpt-examples --bin restart_recovery
//! ```

use nvm_chkpt::{CheckpointEngine, EngineConfig};
use nvm_emu::{MemoryDevice, SimDuration, VirtualClock};
use rdma_sim::{Link, RemoteStore};

fn main() {
    let dram = MemoryDevice::dram(128 << 20);
    let nvm = MemoryDevice::pcm(128 << 20);
    let buddy_nvm = MemoryDevice::pcm(128 << 20);
    let clock = VirtualClock::new();
    let mut link = Link::infiniband_40g();
    let mut remote = RemoteStore::new(&buddy_nvm, /* materialized */ true);

    let rank = 7u64;
    let mut engine = CheckpointEngine::new(
        rank,
        &dram,
        &nvm,
        64 << 20,
        clock.clone(),
        EngineConfig::default(),
    )
    .unwrap();

    // Application state: two arrays.
    let ions = engine.nvmalloc("ions", 2 << 20, true).unwrap();
    let fields = engine.nvmalloc("fields", 1 << 20, true).unwrap();
    engine.write(ions, 0, &vec![0x11; 2 << 20]).unwrap();
    engine.write(fields, 0, &vec![0x22; 1 << 20]).unwrap();
    engine.compute(SimDuration::from_secs(2));
    engine.nvchkptall().unwrap();

    // Asynchronous remote checkpoint: the helper ships committed chunks
    // to the buddy node over the interconnect.
    let mut shipped = 0u64;
    for id in engine.remote_dirty_chunks() {
        let data = engine.committed_bytes(id).unwrap();
        let wire = link.transfer(clock.now(), data.len() as u64, 1);
        clock.advance(wire);
        remote.put(rank, id, &data).unwrap();
        engine.mark_remote_copied(id);
        shipped += data.len() as u64;
    }
    remote.commit_rank(rank, 0);
    println!("remote checkpoint: shipped {} bytes to buddy node", shipped);

    // Silent corruption of the local committed copy of `ions`.
    engine.corrupt_committed(ions).unwrap();
    println!("injected silent corruption into local NVM copy of 'ions'");

    let region = engine.metadata_region();
    drop(engine); // crash

    // Restart: the checksum catches the corruption.
    let (mut engine, report) =
        CheckpointEngine::restart(&dram, &nvm, region, clock.clone(), EngineConfig::default())
            .unwrap();
    println!(
        "restart: restored {:?}, corrupt {:?}",
        report.restored, report.corrupt
    );
    assert_eq!(report.corrupt, vec![ions], "checksum must flag 'ions'");

    // Remote recovery: fetch the corrupt chunk from the buddy.
    for &id in &report.corrupt {
        let (data, read_cost) = remote.fetch(rank, id).unwrap();
        let wire = link.transfer(clock.now(), data.len() as u64, 1);
        clock.advance(wire + read_cost);
        engine.write(id, 0, &data).unwrap();
        engine.nvchkptid(id).unwrap(); // re-establish the local copy
        println!(
            "fetched {} bytes for {:?} from remote store (checksum verified)",
            data.len(),
            id
        );
    }

    // Verify every byte.
    let mut buf = vec![0u8; 2 << 20];
    engine.read(ions, 0, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 0x11));
    let mut buf = vec![0u8; 1 << 20];
    engine.read(fields, 0, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 0x22));
    println!("verified: all application state recovered (local + remote paths)");
}
