//! Capacity planning with the Section-III model: given failure rates,
//! data sizes and NVM bandwidth, find the most efficient two-level
//! checkpoint configuration (local interval + local-per-remote ratio).
//!
//! ```sh
//! cargo run -p nvm-chkpt-examples --bin checkpoint_planner
//! ```

use cluster_sim::{evaluate, plan_two_level, ModelParams};
use nvm_emu::SimDuration;

fn main() {
    let mb = (1 << 20) as f64;
    println!("Two-level checkpoint planning (Section-III model)\n");
    println!("App: 433 MB/core checkpoints, 1 h of compute, 40 Gb/s fabric\n");
    println!(
        "{:<28} {:>10} {:>4} {:>10} {:>10}",
        "failure regime", "I_local", "K", "efficiency", "vs default"
    );

    for (label, mtbf_soft_s, mtbf_hard_s) in [
        ("petascale (soft 1h, hard 10h)", 3600u64, 36_000u64),
        ("pre-exascale (20min, 3h)", 1200, 10_800),
        ("exascale (5min, 1h)", 300, 3600),
        ("hard-failure heavy (1h, 1.5h)", 3600, 5400),
    ] {
        let base = ModelParams {
            t_compute: SimDuration::from_secs(3600),
            data_bytes: (433.0 * mb) as u64,
            nvm_bw_core: 400.0 * mb,
            local_interval: SimDuration::from_secs(40), // paper's default
            k: 3,
            remote_overhead: SimDuration::from_secs(2),
            mtbf_local: SimDuration::from_secs(mtbf_soft_s),
            mtbf_remote: SimDuration::from_secs(mtbf_hard_s),
            r_local: SimDuration::from_secs(1),
            r_remote: SimDuration::from_secs(5),
        };
        let default_eff = evaluate(&base).efficiency;
        let plan = plan_two_level(&base);
        println!(
            "{:<28} {:>9.0}s {:>4} {:>10.4} {:>+9.2}%",
            label,
            plan.local_interval.as_secs_f64(),
            plan.k,
            plan.efficiency,
            (plan.efficiency - default_eff) * 100.0,
        );
    }

    println!(
        "\nReading: as soft failures become frequent the planner shortens the\n\
         local interval; as hard failures become frequent it spends more of\n\
         the budget on remote checkpoints (smaller K)."
    );
}
