//! Multilevel checkpointing of a GTC-like fusion code on a simulated
//! cluster: frequent local NVM checkpoints, less frequent remote
//! (buddy-node) checkpoints, and injected failures.
//!
//! ```sh
//! cargo run --release -p nvm-chkpt-examples --bin gtc_multilevel
//! ```

use cluster_sim::{Cluster, ClusterConfig, FailureConfig, RemoteConfig, RunOptions, Workload};
use hpc_workloads::SyntheticApp;
use nvm_chkpt::PrecopyPolicy;
use nvm_emu::SimDuration;

fn main() {
    // 2 nodes x 4 ranks, GTC at 10% of paper size so the example is
    // instant; local checkpoint every 20 s, remote every 60 s.
    let scale = 0.1;
    let mut cfg = ClusterConfig::new(2, 4);
    cfg.container_bytes = (900.0 * scale * (1 << 20) as f64) as usize + (8 << 20);
    cfg.engine = cfg.engine.with_precopy(PrecopyPolicy::Dcpcp);
    cfg.local_interval = Some(SimDuration::from_secs(20));
    cfg.remote = Some(RemoteConfig::infiniband(SimDuration::from_secs(60), true));
    cfg.iterations = 30;
    cfg.failures = Some(FailureConfig {
        seed: 2013,
        mtbf_soft: SimDuration::from_secs(120),
        mtbf_hard: SimDuration::from_secs(100_000),
    });
    cfg.failure_horizon = SimDuration::from_secs(3600);

    let factory = move |_rank: u64| -> Box<dyn Workload> {
        Box::new(SyntheticApp::gtc_scaled(scale).with_compute(SimDuration::from_secs(5)))
    };
    let ideal = Cluster::new(cfg.ideal_variant(), factory)
        .run(RunOptions::new())
        .unwrap()
        .result;
    let result = Cluster::new(cfg, factory)
        .run(RunOptions::new())
        .unwrap()
        .result;

    println!("GTC multilevel checkpointing on 2x4 ranks");
    println!("  ideal time (no ckpt, no failures): {}", ideal.total_time);
    println!("  actual time:                       {}", result.total_time);
    println!(
        "  efficiency:                        {:.3}",
        result.efficiency_vs(&ideal)
    );
    println!(
        "  local checkpoints:                 {}",
        result.local_checkpoints
    );
    println!(
        "  remote checkpoints:                {}",
        result.remote_checkpoints
    );
    println!(
        "  soft failures recovered locally:   {}",
        result.soft_failures
    );
    println!(
        "  hard failures (remote recovery):   {}",
        result.hard_failures
    );
    println!(
        "  iterations redone after failures:  {}",
        result.lost_iterations
    );
    println!(
        "  data: {} MB/rank checkpoint set, {:.0} MB pre-copied, {:.0} MB at coordinated steps, {:.0} MB skipped as unmodified",
        result.checkpoint_bytes_per_rank >> 20,
        result.engine_stats.precopied_bytes as f64 / (1 << 20) as f64,
        result.engine_stats.coordinated_bytes as f64 / (1 << 20) as f64,
        result.engine_stats.skipped_bytes as f64 / (1 << 20) as f64,
    );
    println!(
        "  peak interconnect bucket: {:.1} MB; helper core utilization: {:.1}%",
        result.peak_link_bytes() / (1 << 20) as f64,
        result.helper_utilization[0] * 100.0,
    );
    let seq = result.schedule.sequence();
    println!(
        "  rank-0 schedule (first 12 activities): {:?}",
        &seq[..seq.len().min(12)]
    );
}
