//! Transparent (whole-address-space) checkpointing — the paper's
//! generalization claim, and the footprint cost it warns about.
//!
//! ```sh
//! cargo run -p nvm-chkpt-examples --bin transparent_mode
//! ```

use nvm_chkpt::transparent::TransparentProcess;
use nvm_chkpt::{CheckpointEngine, EngineConfig};
use nvm_emu::{MemoryDevice, SimDuration, VirtualClock};

const MB: usize = 1 << 20;

fn main() {
    let dram = MemoryDevice::dram(256 * MB);
    let nvm = MemoryDevice::pcm(256 * MB);
    let clock = VirtualClock::new();

    // A 32 MB process image in 4 KB segments, checkpointed with no
    // application involvement at all.
    let mut image = TransparentProcess::new(
        0,
        &dram,
        &nvm,
        96 * MB,
        clock.clone(),
        EngineConfig::default(),
        32 * MB,
        64 * 1024,
    )
    .unwrap();
    println!(
        "transparent image: {} MB in {} segments",
        image.footprint_bytes() / MB,
        image.segment_count()
    );

    // The "application" only really uses 2 MB of its address space.
    image.store(5 * MB, &vec![0xAB; 2 * MB]).unwrap();
    image.compute(SimDuration::from_secs(2));
    let t = image.checkpoint().unwrap();
    println!(
        "transparent checkpoint 0: moved {} MB (the full image)",
        t.total_bytes() / MB as u64
    );

    // Second epoch: dirty tracking kicks in — only touched segments move.
    image.store(5 * MB, &vec![0xCD; 64 * 1024]).unwrap();
    image.compute(SimDuration::from_secs(2));
    let t2 = image.checkpoint().unwrap();
    println!(
        "transparent checkpoint 1: moved {} KB, skipped {} MB unmodified",
        t2.total_bytes() / 1024,
        t2.skipped_bytes / MB as u64
    );

    // The application-initiated alternative for the same live data.
    let dram2 = MemoryDevice::dram(64 * MB);
    let nvm2 = MemoryDevice::pcm(64 * MB);
    let mut marked = CheckpointEngine::new(
        1,
        &dram2,
        &nvm2,
        16 * MB,
        VirtualClock::new(),
        EngineConfig::default(),
    )
    .unwrap();
    let live = marked.nvmalloc("live_state", 2 * MB, true).unwrap();
    marked.write(live, 0, &vec![0xAB; 2 * MB]).unwrap();
    marked.compute(SimDuration::from_secs(2));
    let m = marked.nvchkptall().unwrap();
    println!(
        "application-initiated checkpoint: moved {} MB (the marked set only)",
        m.total_bytes() / MB as u64
    );
    println!(
        "\nfootprint ratio transparent/initiated: {}x — the paper's reason to\n\
         target application-initiated checkpoints first",
        t.total_bytes() / m.total_bytes().max(1)
    );

    // And restart still works with zero application involvement.
    let region = image.metadata_region();
    drop(image);
    let (mut back, report) = TransparentProcess::restart(
        &dram,
        &nvm,
        region,
        clock,
        EngineConfig::default(),
        64 * 1024,
    )
    .unwrap();
    let mut buf = vec![0u8; 64 * 1024];
    back.load(5 * MB, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 0xCD));
    println!(
        "restart: {} segments restored transparently, data verified",
        report.restored.len()
    );
}
