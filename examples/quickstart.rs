//! Quickstart: allocate checkpoint chunks, compute, checkpoint, crash,
//! restart, and verify every byte came back.
//!
//! ```sh
//! cargo run -p nvm-chkpt-examples --bin quickstart
//! ```

use nvm_chkpt::{CheckpointEngine, EngineConfig};
use nvm_emu::{MemoryDevice, SimDuration, VirtualClock};

fn main() {
    // A node with 256 MB of DRAM and 256 MB of emulated PCM.
    let dram = MemoryDevice::dram(256 << 20);
    let nvm = MemoryDevice::pcm(256 << 20);
    let clock = VirtualClock::new();

    // Default config: DCPCP pre-copy, double versioning, checksums.
    let mut engine = CheckpointEngine::new(
        /* process id */ 0,
        &dram,
        &nvm,
        /* NVM container */ 128 << 20,
        clock.clone(),
        EngineConfig::default(),
    )
    .expect("create engine");

    // The application marks its checkpointable state with the Table-III
    // interfaces. Computation runs against DRAM working copies.
    let temperature = engine.nvmalloc("temperature", 1 << 20, true).unwrap();
    let pressure = engine.nv2dalloc("pressure", 512, 256, 8, true).unwrap();
    let scratch = engine.nvmalloc("scratch", 1 << 20, false).unwrap(); // not checkpointed

    println!(
        "allocated 3 chunks; checkpoint set = {} bytes",
        engine.checkpoint_bytes()
    );

    // A few compute iterations with checkpoints.
    for step in 0u8..3 {
        engine
            .write(temperature, 0, &vec![step + 1; 1 << 20])
            .unwrap();
        engine
            .write(pressure, 0, &vec![step + 10; 512 * 256 * 8])
            .unwrap();
        engine.write(scratch, 0, &[0xEE; 4096]).unwrap();
        engine.compute(SimDuration::from_secs(5));
        let report = engine.nvchkptall().unwrap();
        println!(
            "checkpoint {}: {} bytes ({} pre-copied in background), blocking {} ",
            report.epoch,
            report.total_bytes(),
            report.precopied_bytes,
            report.coordinated_time,
        );
    }

    // Overwrite the working copies *without* checkpointing, then crash.
    engine.write(temperature, 0, &vec![0xFF; 1 << 20]).unwrap();
    let metadata_region = engine.metadata_region();
    drop(engine); // the process dies; DRAM is gone, NVM survives

    // Restart from the persistent metadata region.
    let (mut engine, report) =
        CheckpointEngine::restart(&dram, &nvm, metadata_region, clock, EngineConfig::default())
            .expect("restart");
    println!(
        "restart: {} chunks restored, {} corrupt, took {}",
        report.restored.len(),
        report.corrupt.len(),
        report.duration,
    );

    // The last *committed* values are back (step = 2), not the
    // uncheckpointed 0xFF overwrite.
    let mut buf = vec![0u8; 1 << 20];
    engine.read(temperature, 0, &mut buf).unwrap();
    assert!(
        buf.iter().all(|&b| b == 3),
        "temperature restored to step 3"
    );
    engine.read(pressure, 0, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 12), "pressure restored to step 3");
    println!("verified: committed state restored, uncheckpointed writes discarded");
}
