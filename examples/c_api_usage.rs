//! Using the library exactly as a C or Fortran HPC code would: through
//! the `extern "C"` surface only (opaque handle, `u64` chunk ids,
//! integer status codes).
//!
//! ```sh
//! cargo run -p nvm-chkpt-examples --bin c_api_usage
//! ```

use nvm_chkpt::{
    nv_genid, nvalloc, nvchkptall, nvcompute, nvm_close, nvm_last_error, nvm_open,
    nvm_simulate_restart, nvread, nvwrite,
};
use std::ffi::CString;

fn main() {
    unsafe {
        // nvm_open(process, dram_bytes, nvm_bytes, container_bytes)
        let ctx = nvm_open(0, 128 << 20, 128 << 20, 64 << 20);
        assert!(!ctx.is_null());

        // The application marks its checkpoint state by name, exactly
        // like the paper's Table-III interfaces.
        let zion = CString::new("zion").unwrap(); // GTC's main particle array
        let id = nvalloc(ctx, zion.as_ptr(), 1 << 20, /* persistent */ 1);
        assert_ne!(id, 0);
        println!(
            "nvalloc(\"zion\") -> id {id:#x} (== genid: {})",
            id == nv_genid(zion.as_ptr())
        );

        // Compute loop with checkpoints.
        let step_data = |s: u8| vec![s; 1 << 20];
        for step in 1..=3u8 {
            let data = step_data(step);
            assert_eq!(nvwrite(ctx, id, 0, data.as_ptr(), data.len()), 0);
            assert_eq!(nvcompute(ctx, 5.0), 0);
            assert_eq!(nvchkptall(ctx), 0);
            println!("step {step}: wrote 1 MB, computed 5 s, checkpointed");
        }

        // Crash the process; the emulated NVM survives inside the ctx.
        let garbage = vec![0xFFu8; 1 << 20];
        nvwrite(ctx, id, 0, garbage.as_ptr(), garbage.len());
        let restored = nvm_simulate_restart(ctx);
        println!("restart: {restored} chunk(s) restored from NVM");

        let mut buf = vec![0u8; 1 << 20];
        assert_eq!(nvread(ctx, id, 0, buf.as_mut_ptr(), buf.len()), 0);
        assert!(buf.iter().all(|&b| b == 3), "last committed step wins");
        println!("verified: working copy restored to step 3, garbage discarded");

        // Error handling: status codes plus a queryable message.
        if nvchkptall(std::ptr::null_mut()) != 0 {
            let mut msg = vec![0u8; 128];
            let n = nvm_last_error(msg.as_mut_ptr(), msg.len());
            println!(
                "error path works: \"{}\"",
                String::from_utf8_lossy(&msg[..n])
            );
        }
        nvm_close(ctx);
    }
}
