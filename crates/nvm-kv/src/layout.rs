//! On-chunk byte layout for the kv store.
//!
//! Three chunk families hold the entire durable state, all real-byte
//! materialized so recovery is bit-verifiable:
//!
//! * **`kv_meta`** — one small chunk carrying the last published
//!   checkpoint token: token id, committed log prefix length, index
//!   sizing hint, and per-session serial watermarks.
//! * **`kv_index_g{n}`** — one open-addressed hash table of 16-byte
//!   entries `(key_hash, record_offset + 1)`; generation `n` bumps on
//!   every growth/rehash so old and new tables coexist briefly. The
//!   index is a cache: recovery never trusts it and rebuilds from the
//!   log, so a stale or half-written table is harmless.
//! * **`kv_seg_{i}`** — fixed-size record-log segments. Records are
//!   append-only, 8-byte aligned, and never span a segment boundary;
//!   a [`SEGMENT_END_MARKER`] (or an all-zero tail too short for a
//!   header) says "continue at the next segment".
//!
//! All integers are little-endian.

/// Fixed record header size (bytes). Key bytes follow the header,
/// value bytes follow the key, then zero padding to 8 bytes.
pub const RECORD_HEADER_BYTES: usize = 24;

/// Bytes per hash-index entry: `key_hash: u64` then `tag: u64` where
/// `tag == record_offset + 1` (0 means the slot is empty).
pub const INDEX_ENTRY_BYTES: usize = 16;

/// `len_total` sentinel meaning "rest of this segment is unused, skip
/// to the next segment boundary". Written only when ≥ 4 bytes remain.
pub const SEGMENT_END_MARKER: u32 = u32::MAX;

/// Record flag bit: this record is a tombstone (delete).
pub const FLAG_TOMBSTONE: u8 = 1;

/// Fixed prefix of the meta block before the per-session watermarks.
pub const META_FIXED_BYTES: usize = 40;

/// Magic stamped at meta offset 0; anything else (in particular the
/// all-zero bytes of a never-checkpointed chunk) reads as "no token
/// published yet".
pub const META_MAGIC: u64 = u64::from_le_bytes(*b"NVKVMET1");

/// Round `n` up to the next multiple of 8.
pub const fn pad8(n: usize) -> usize {
    (n + 7) & !7
}

/// Total padded on-log size of a record with the given key/value
/// lengths.
pub const fn record_len(key_len: usize, val_len: usize) -> usize {
    pad8(RECORD_HEADER_BYTES + key_len + val_len)
}

/// Decoded record header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordHeader {
    /// Padded total record length (header + key + value + padding).
    pub len_total: u32,
    /// Value length in bytes (0 for tombstones).
    pub val_len: u32,
    /// Issuing session's serial number for this mutation.
    pub serial: u64,
    /// Issuing session id.
    pub session: u16,
    /// Flag bits ([`FLAG_TOMBSTONE`]).
    pub flags: u8,
    /// Key length in bytes (1..=255).
    pub key_len: u8,
}

impl RecordHeader {
    /// True when this record deletes its key.
    pub fn is_tombstone(&self) -> bool {
        self.flags & FLAG_TOMBSTONE != 0
    }
}

/// Encode a full record (header + key + value + zero padding).
/// `value: None` encodes a tombstone.
pub fn encode_record(session: u16, serial: u64, key: &[u8], value: Option<&[u8]>) -> Vec<u8> {
    debug_assert!(!key.is_empty() && key.len() <= u8::MAX as usize);
    let val = value.unwrap_or(&[]);
    let len_total = record_len(key.len(), val.len());
    let mut buf = vec![0u8; len_total];
    buf[0..4].copy_from_slice(&(len_total as u32).to_le_bytes());
    buf[4..8].copy_from_slice(&(val.len() as u32).to_le_bytes());
    buf[8..16].copy_from_slice(&serial.to_le_bytes());
    buf[16..18].copy_from_slice(&session.to_le_bytes());
    buf[18] = if value.is_none() { FLAG_TOMBSTONE } else { 0 };
    buf[19] = key.len() as u8;
    // bytes 20..24 reserved (zero)
    buf[RECORD_HEADER_BYTES..RECORD_HEADER_BYTES + key.len()].copy_from_slice(key);
    buf[RECORD_HEADER_BYTES + key.len()..RECORD_HEADER_BYTES + key.len() + val.len()]
        .copy_from_slice(val);
    buf
}

/// Decode and sanity-check a record header. Returns `None` for
/// anything that cannot be a live record: zero length, the
/// segment-end marker, misaligned length, zero-length key, or a
/// length that disagrees with the key/value lengths.
pub fn decode_record_header(bytes: &[u8]) -> Option<RecordHeader> {
    if bytes.len() < RECORD_HEADER_BYTES {
        return None;
    }
    let len_total = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    let val_len = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    let serial = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let session = u16::from_le_bytes(bytes[16..18].try_into().unwrap());
    let flags = bytes[18];
    let key_len = bytes[19];
    if len_total == 0 || len_total == SEGMENT_END_MARKER || key_len == 0 {
        return None;
    }
    if len_total as usize != record_len(key_len as usize, val_len as usize) {
        return None;
    }
    Some(RecordHeader {
        len_total,
        val_len,
        serial,
        session,
        flags,
        key_len,
    })
}

/// Encode one index entry.
pub fn encode_index_entry(key_hash: u64, tag: u64) -> [u8; INDEX_ENTRY_BYTES] {
    let mut buf = [0u8; INDEX_ENTRY_BYTES];
    buf[0..8].copy_from_slice(&key_hash.to_le_bytes());
    buf[8..16].copy_from_slice(&tag.to_le_bytes());
    buf
}

/// Decode one index entry to `(key_hash, tag)`.
pub fn decode_index_entry(bytes: &[u8]) -> (u64, u64) {
    let hash = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
    let tag = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    (hash, tag)
}

/// The checkpoint-token metadata block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvMeta {
    /// Monotone token id (0 = no checkpoint taken yet).
    pub token: u64,
    /// Committed log prefix: replay exactly `[0, log_len)`.
    pub log_len: u64,
    /// Index slot count at token time (rebuild sizing hint).
    pub index_slots: u64,
    /// Per-session serial watermarks; a record replays only if its
    /// serial is ≤ its session's watermark.
    pub serials: Vec<u64>,
}

/// Size of the meta chunk for a store admitting `max_sessions`
/// sessions.
pub const fn meta_bytes(max_sessions: u16) -> usize {
    META_FIXED_BYTES + 8 * max_sessions as usize
}

/// Encode the meta block into a buffer of `meta_bytes(max_sessions)`.
pub fn encode_meta(meta: &KvMeta, max_sessions: u16) -> Vec<u8> {
    debug_assert!(meta.serials.len() <= max_sessions as usize);
    let mut buf = vec![0u8; meta_bytes(max_sessions)];
    buf[0..8].copy_from_slice(&META_MAGIC.to_le_bytes());
    buf[8..16].copy_from_slice(&meta.token.to_le_bytes());
    buf[16..24].copy_from_slice(&meta.log_len.to_le_bytes());
    buf[24..32].copy_from_slice(&meta.index_slots.to_le_bytes());
    buf[32..36].copy_from_slice(&(meta.serials.len() as u32).to_le_bytes());
    // bytes 36..40 reserved (zero)
    for (i, s) in meta.serials.iter().enumerate() {
        let at = META_FIXED_BYTES + 8 * i;
        buf[at..at + 8].copy_from_slice(&s.to_le_bytes());
    }
    buf
}

/// Decode a meta block. Returns `None` when the magic is absent —
/// the store has never published a token (recover to empty).
pub fn decode_meta(bytes: &[u8]) -> Option<KvMeta> {
    if bytes.len() < META_FIXED_BYTES {
        return None;
    }
    if u64::from_le_bytes(bytes[0..8].try_into().unwrap()) != META_MAGIC {
        return None;
    }
    let token = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let log_len = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let index_slots = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
    let n = u32::from_le_bytes(bytes[32..36].try_into().unwrap()) as usize;
    if bytes.len() < META_FIXED_BYTES + 8 * n {
        return None;
    }
    let serials = (0..n)
        .map(|i| {
            let at = META_FIXED_BYTES + 8 * i;
            u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
        })
        .collect();
    Some(KvMeta {
        token,
        log_len,
        index_slots,
        serials,
    })
}

/// 64-bit key hash: FNV-1a over the bytes, then a splitmix64-style
/// finalizer so low bits are well mixed for power-of-two tables.
pub fn hash64(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trip() {
        let rec = encode_record(3, 42, b"key-7", Some(b"hello world"));
        assert_eq!(rec.len() % 8, 0);
        let h = decode_record_header(&rec).unwrap();
        assert_eq!(h.len_total as usize, rec.len());
        assert_eq!(h.val_len, 11);
        assert_eq!(h.serial, 42);
        assert_eq!(h.session, 3);
        assert_eq!(h.key_len, 5);
        assert!(!h.is_tombstone());
        let key = &rec[RECORD_HEADER_BYTES..RECORD_HEADER_BYTES + 5];
        assert_eq!(key, b"key-7");
        let val = &rec[RECORD_HEADER_BYTES + 5..RECORD_HEADER_BYTES + 5 + 11];
        assert_eq!(val, b"hello world");
    }

    #[test]
    fn tombstone_round_trip() {
        let rec = encode_record(0, 7, b"k", None);
        let h = decode_record_header(&rec).unwrap();
        assert!(h.is_tombstone());
        assert_eq!(h.val_len, 0);
        assert_eq!(h.len_total as usize, record_len(1, 0));
    }

    #[test]
    fn header_rejects_garbage() {
        assert!(decode_record_header(&[0u8; 24]).is_none());
        let mut marker = [0u8; 24];
        marker[0..4].copy_from_slice(&SEGMENT_END_MARKER.to_le_bytes());
        assert!(decode_record_header(&marker).is_none());
        // Inconsistent len_total vs key/val lengths.
        let mut rec = encode_record(0, 1, b"abc", Some(b"xy"));
        rec[4..8].copy_from_slice(&9u32.to_le_bytes());
        assert!(decode_record_header(&rec).is_none());
    }

    #[test]
    fn index_entry_round_trip() {
        let e = encode_index_entry(0xdead_beef_1234_5678, 4097);
        assert_eq!(decode_index_entry(&e), (0xdead_beef_1234_5678, 4097));
    }

    #[test]
    fn meta_round_trip_and_zero_block() {
        let meta = KvMeta {
            token: 9,
            log_len: 65536,
            index_slots: 2048,
            serials: vec![5, 0, 17],
        };
        let bytes = encode_meta(&meta, 8);
        assert_eq!(bytes.len(), meta_bytes(8));
        assert_eq!(decode_meta(&bytes).unwrap(), meta);
        // A never-written meta chunk is all zeros: no token.
        assert!(decode_meta(&vec![0u8; meta_bytes(8)]).is_none());
    }

    #[test]
    fn hash_is_stable_and_spread() {
        // Pinned values: the on-chunk format depends on this hash
        // staying put across refactors.
        assert_eq!(hash64(b"key-0"), hash64(b"key-0"));
        assert_ne!(hash64(b"key-0"), hash64(b"key-1"));
        let mut low4 = std::collections::HashSet::new();
        for i in 0..64u32 {
            low4.insert(hash64(format!("k{i}").as_bytes()) & 0xf);
        }
        // A well-mixed hash should hit most of the 16 low nibbles.
        assert!(low4.len() >= 12, "poor low-bit spread: {}", low4.len());
    }

    #[test]
    fn pad8_and_record_len() {
        assert_eq!(pad8(0), 0);
        assert_eq!(pad8(1), 8);
        assert_eq!(pad8(8), 8);
        assert_eq!(pad8(9), 16);
        assert_eq!(record_len(1, 0), 32);
        assert_eq!(record_len(8, 8), 40);
    }
}
