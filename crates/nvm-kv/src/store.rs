//! The kv store proper: sessions, point operations, CPR-style
//! checkpoint tokens, and recovery to a token.
//!
//! Every byte of durable state lives in engine chunks (see
//! [`crate::layout`]), so the existing machinery applies unchanged:
//! pre-copy policies drain dirty index/log pages in the background,
//! `nvchkptall` commits them with the engine's shadow/version-flip
//! protocol, nvm-store makes the commit crash-consistent, and the
//! recovery ladder (local container → remote buddy → rebuild)
//! restores them bit-for-bit.
//!
//! # CPR tokens
//!
//! [`KvStore::checkpoint`] is FASTER-CPR shaped: it advances the
//! token, snapshots the log prefix length and every session's serial
//! watermark into the small `kv_meta` chunk, and returns — sessions
//! never stop serving. Durability of the token rides the engine's
//! *next* coordinated commit; until then the token is published but
//! not yet crash-durable, exactly like CPR's "in-progress" phase.
//! On recovery, [`KvStore::recover`] reads the last *committed* meta
//! block, replays the committed log prefix through the per-session
//! watermarks, and drops acknowledged-after-token records.

use std::collections::BTreeMap;

use nvm_chkpt::{CheckpointEngine, ChunkId, EngineError};
use nvm_metrics::names;
use nvm_metrics::{CounterHandle, HistogramHandle, Metrics};
use nvm_trace::TraceEventKind;

use crate::layout::{
    decode_index_entry, decode_meta, decode_record_header, encode_index_entry, encode_meta,
    encode_record, hash64, meta_bytes, KvMeta, RecordHeader, INDEX_ENTRY_BYTES,
    RECORD_HEADER_BYTES, SEGMENT_END_MARKER,
};

/// Errors surfaced by the kv layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum KvError {
    /// The underlying checkpoint engine failed.
    Engine(EngineError),
    /// The configuration was rejected at store creation.
    BadConfig(&'static str),
    /// Key length outside `1..=255` bytes.
    BadKey(usize),
    /// Record (header + key + value) would not fit one log segment.
    RecordTooLarge(usize),
    /// Operation on a session id this store never issued.
    NoSuchSession(u16),
    /// `new_session` past the configured `max_sessions`.
    TooManySessions(u16),
    /// Recovery found on-chunk state it cannot reconcile.
    Corrupt(&'static str),
}

nvm_emu::error_enum! {
    KvError, f {
        wrap Engine(EngineError) => "engine",
        leaf KvError::BadConfig(why) => write!(f, "bad kv config: {why}"),
        leaf KvError::BadKey(len) => write!(f, "key length {len} outside 1..=255"),
        leaf KvError::RecordTooLarge(len) =>
            write!(f, "record of {len} bytes exceeds one log segment"),
        leaf KvError::NoSuchSession(id) => write!(f, "no such session {id}"),
        leaf KvError::TooManySessions(max) =>
            write!(f, "session limit {max} reached"),
        leaf KvError::Corrupt(why) => write!(f, "kv state corrupt: {why}"),
    }
}

/// Store geometry and behaviour knobs.
#[derive(Debug, Clone)]
pub struct KvConfig {
    /// Initial hash-index capacity (power of two, ≥ 16). The table
    /// doubles when it passes 3/4 load.
    pub initial_index_slots: u64,
    /// Record-log segment size in bytes (multiple of 8, ≥ 4096).
    /// Records never span segments.
    pub segment_bytes: u64,
    /// Sessions the store will ever admit; sizes the meta chunk's
    /// watermark array.
    pub max_sessions: u16,
    /// Emit a `KvOp` trace event per operation. Keep off for
    /// high-volume runs; on for tests and smoke runs.
    pub trace_ops: bool,
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig {
            initial_index_slots: 1024,
            segment_bytes: 256 * 1024,
            max_sessions: 16,
            trace_ops: false,
        }
    }
}

impl KvConfig {
    fn validate(&self) -> Result<(), KvError> {
        if self.initial_index_slots < 16 || !self.initial_index_slots.is_power_of_two() {
            return Err(KvError::BadConfig(
                "initial_index_slots must be a power of two >= 16",
            ));
        }
        if self.segment_bytes < 4096 || self.segment_bytes % 8 != 0 {
            return Err(KvError::BadConfig(
                "segment_bytes must be a multiple of 8 >= 4096",
            ));
        }
        if self.max_sessions == 0 {
            return Err(KvError::BadConfig("max_sessions must be > 0"));
        }
        Ok(())
    }
}

/// Handle to one serving session. Obtained from
/// [`KvStore::new_session`] (or [`KvStore::resume_session`] after
/// recovery); mutations through it are serialised by a per-session
/// serial number that checkpoint tokens watermark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionId(u16);

impl SessionId {
    /// The session's index (dense, 0-based).
    pub fn index(self) -> u16 {
        self.0
    }
}

/// What [`KvStore::checkpoint`] publishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvCheckpointToken {
    /// Monotone token id (first token is 1).
    pub token: u64,
    /// Record-log bytes covered by the token.
    pub log_bytes: u64,
}

/// What [`KvStore::recover`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvRecovery {
    /// Token recovered to (0 = store had never published one).
    pub token: u64,
    /// Committed log prefix replayed, in bytes.
    pub log_bytes: u64,
    /// Records replayed into the rebuilt index.
    pub replayed: u64,
    /// Acknowledged-after-token records found past the prefix and
    /// dropped.
    pub dropped: u64,
}

/// Point-in-time store statistics (host-side bookkeeping only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvStats {
    /// Last published token id.
    pub token: u64,
    /// Current log append head (bytes).
    pub log_bytes: u64,
    /// Hash-index capacity in slots.
    pub index_slots: u64,
    /// Occupied index slots (live keys + tombstoned keys).
    pub occupied_slots: u64,
    /// Open sessions.
    pub sessions: u64,
    /// Allocated log segments.
    pub segments: u64,
}

/// Pre-resolved metric handles; re-resolved lazily because a cluster
/// workload's `setup` runs before the coordinator attaches `Metrics`
/// to the engine.
#[derive(Default)]
struct KvMetricHandles {
    live: bool,
    upserts: CounterHandle,
    reads: CounterHandle,
    rmws: CounterHandle,
    deletes: CounterHandle,
    misses: CounterHandle,
    log_bytes: CounterHandle,
    splits: CounterHandle,
    tokens: CounterHandle,
    replayed: CounterHandle,
    dropped: CounterHandle,
    op_ns: HistogramHandle,
    token_ns: HistogramHandle,
}

impl KvMetricHandles {
    fn ensure(&mut self, m: &Metrics) {
        if m.enabled() == self.live {
            return;
        }
        self.live = m.enabled();
        self.upserts = m.counter_handle(names::KV_UPSERTS_TOTAL);
        self.reads = m.counter_handle(names::KV_READS_TOTAL);
        self.rmws = m.counter_handle(names::KV_RMWS_TOTAL);
        self.deletes = m.counter_handle(names::KV_DELETES_TOTAL);
        self.misses = m.counter_handle(names::KV_READ_MISSES_TOTAL);
        self.log_bytes = m.counter_handle(names::KV_LOG_APPENDED_BYTES_TOTAL);
        self.splits = m.counter_handle(names::KV_INDEX_SPLITS_TOTAL);
        self.tokens = m.counter_handle(names::KV_CHECKPOINT_TOKENS_TOTAL);
        self.replayed = m.counter_handle(names::KV_RECOVERY_REPLAYED_TOTAL);
        self.dropped = m.counter_handle(names::KV_RECOVERY_DROPPED_TOTAL);
        self.op_ns = m.histogram_handle(names::KV_OP_NS);
        self.token_ns = m.histogram_handle(names::KV_CHECKPOINT_TOKEN_NS);
    }
}

/// Outcome of probing the hash index for a key.
enum Probe {
    /// The key has an index entry (possibly pointing at a tombstone).
    Found {
        slot: u64,
        offset: u64,
        header: RecordHeader,
    },
    /// The key is absent; `slot` is the first free slot on its probe
    /// path (where an insert goes).
    Free { slot: u64 },
}

/// A concurrent-by-session key-value store persisted through the NVM
/// checkpoint engine. All methods take the engine explicitly — the
/// store owns chunk ids and host bookkeeping, never the engine.
pub struct KvStore {
    cfg: KvConfig,
    meta: ChunkId,
    index: ChunkId,
    index_gen: u64,
    index_slots: u64,
    occupied: u64,
    segments: Vec<ChunkId>,
    /// Global log append head (bytes).
    head: u64,
    /// Last published token.
    token: u64,
    /// Per-session serial counters; index = `SessionId::index()`.
    serials: Vec<u64>,
    metrics: KvMetricHandles,
}

impl KvStore {
    /// Create a fresh store: allocates the meta chunk, generation-0
    /// index, and the first log segment.
    pub fn create(engine: &mut CheckpointEngine, cfg: KvConfig) -> Result<KvStore, KvError> {
        cfg.validate()?;
        let meta = engine.nvmalloc("kv_meta", meta_bytes(cfg.max_sessions), true)?;
        let index = engine.nvmalloc(
            "kv_index_g0",
            (cfg.initial_index_slots as usize) * INDEX_ENTRY_BYTES,
            true,
        )?;
        let seg0 = engine.nvmalloc("kv_seg_0", cfg.segment_bytes as usize, true)?;
        Ok(KvStore {
            index_slots: cfg.initial_index_slots,
            cfg,
            meta,
            index,
            index_gen: 0,
            occupied: 0,
            segments: vec![seg0],
            head: 0,
            token: 0,
            serials: Vec::new(),
            metrics: KvMetricHandles::default(),
        })
    }

    /// Open a new serving session.
    pub fn new_session(&mut self) -> Result<SessionId, KvError> {
        if self.serials.len() >= self.cfg.max_sessions as usize {
            return Err(KvError::TooManySessions(self.cfg.max_sessions));
        }
        self.serials.push(0);
        Ok(SessionId((self.serials.len() - 1) as u16))
    }

    /// Re-acquire a session handle after recovery; the session
    /// continues from its replay watermark.
    pub fn resume_session(&self, index: u16) -> Result<SessionId, KvError> {
        if (index as usize) < self.serials.len() {
            Ok(SessionId(index))
        } else {
            Err(KvError::NoSuchSession(index))
        }
    }

    /// The session's current serial (its checkpoint watermark when a
    /// token is published).
    pub fn session_serial(&self, session: SessionId) -> Result<u64, KvError> {
        self.serials
            .get(session.0 as usize)
            .copied()
            .ok_or(KvError::NoSuchSession(session.0))
    }

    /// Current statistics.
    pub fn stats(&self) -> KvStats {
        KvStats {
            token: self.token,
            log_bytes: self.head,
            index_slots: self.index_slots,
            occupied_slots: self.occupied,
            sessions: self.serials.len() as u64,
            segments: self.segments.len() as u64,
        }
    }

    /// Insert or overwrite `key`.
    pub fn upsert(
        &mut self,
        engine: &mut CheckpointEngine,
        session: SessionId,
        key: &[u8],
        value: &[u8],
    ) -> Result<(), KvError> {
        self.check_key(key)?;
        self.check_session(session)?;
        let need = crate::layout::record_len(key.len(), value.len());
        if need as u64 > self.cfg.segment_bytes {
            return Err(KvError::RecordTooLarge(need));
        }
        self.metrics.ensure(engine.metrics());
        let t0 = engine.clock().now().as_nanos();

        self.maybe_grow(engine)?;
        let hash = hash64(key);
        let probe = self.probe(engine, hash, key)?;
        let serial = self.bump_serial(session);
        let record = encode_record(session.0, serial, key, Some(value));
        let offset = self.append(engine, &record)?;
        let slot = match probe {
            Probe::Found { slot, .. } => slot,
            Probe::Free { slot } => {
                self.occupied += 1;
                slot
            }
        };
        self.write_entry(engine, slot, hash, offset)?;

        self.metrics.upserts.add(1);
        self.metrics.log_bytes.add(record.len() as u64);
        let t1 = engine.clock().now().as_nanos();
        self.metrics.op_ns.observe(t1 - t0);
        self.trace_op(engine, "upsert", session, serial, true);
        Ok(())
    }

    /// Point read. Returns `None` for absent or deleted keys.
    pub fn read(
        &mut self,
        engine: &mut CheckpointEngine,
        session: SessionId,
        key: &[u8],
    ) -> Result<Option<Vec<u8>>, KvError> {
        self.check_key(key)?;
        self.check_session(session)?;
        self.metrics.ensure(engine.metrics());
        let t0 = engine.clock().now().as_nanos();

        let hash = hash64(key);
        let value = match self.probe(engine, hash, key)? {
            Probe::Found { offset, header, .. } if !header.is_tombstone() => {
                Some(self.read_value(engine, offset, &header)?)
            }
            _ => None,
        };

        self.metrics.reads.add(1);
        if value.is_none() {
            self.metrics.misses.add(1);
        }
        let t1 = engine.clock().now().as_nanos();
        self.metrics.op_ns.observe(t1 - t0);
        let serial = self.serials[session.0 as usize];
        self.trace_op(engine, "read", session, serial, value.is_some());
        Ok(value)
    }

    /// Read-modify-write: `f` sees the current value (or `None`) and
    /// returns the new one, which is appended atomically under the
    /// session's next serial. Returns whether the key existed.
    pub fn rmw(
        &mut self,
        engine: &mut CheckpointEngine,
        session: SessionId,
        key: &[u8],
        f: impl FnOnce(Option<&[u8]>) -> Vec<u8>,
    ) -> Result<bool, KvError> {
        self.check_key(key)?;
        self.check_session(session)?;
        self.metrics.ensure(engine.metrics());
        let t0 = engine.clock().now().as_nanos();

        self.maybe_grow(engine)?;
        let hash = hash64(key);
        let probe = self.probe(engine, hash, key)?;
        let (slot, old, existed) = match probe {
            Probe::Found {
                slot,
                offset,
                header,
            } if !header.is_tombstone() => {
                (slot, Some(self.read_value(engine, offset, &header)?), true)
            }
            Probe::Found { slot, .. } => (slot, None, false),
            Probe::Free { slot } => {
                self.occupied += 1;
                (slot, None, false)
            }
        };
        let value = f(old.as_deref());
        let need = crate::layout::record_len(key.len(), value.len());
        if need as u64 > self.cfg.segment_bytes {
            return Err(KvError::RecordTooLarge(need));
        }
        let serial = self.bump_serial(session);
        let record = encode_record(session.0, serial, key, Some(&value));
        let offset = self.append(engine, &record)?;
        self.write_entry(engine, slot, hash, offset)?;

        self.metrics.rmws.add(1);
        self.metrics.log_bytes.add(record.len() as u64);
        let t1 = engine.clock().now().as_nanos();
        self.metrics.op_ns.observe(t1 - t0);
        self.trace_op(engine, "rmw", session, serial, existed);
        Ok(existed)
    }

    /// Delete `key` by appending a tombstone. Returns whether the key
    /// existed (a miss appends nothing and consumes no serial).
    pub fn delete(
        &mut self,
        engine: &mut CheckpointEngine,
        session: SessionId,
        key: &[u8],
    ) -> Result<bool, KvError> {
        self.check_key(key)?;
        self.check_session(session)?;
        self.metrics.ensure(engine.metrics());
        let t0 = engine.clock().now().as_nanos();

        let hash = hash64(key);
        let existed = match self.probe(engine, hash, key)? {
            Probe::Found { slot, header, .. } if !header.is_tombstone() => {
                let serial = self.bump_serial(session);
                let record = encode_record(session.0, serial, key, None);
                let offset = self.append(engine, &record)?;
                self.write_entry(engine, slot, hash, offset)?;
                self.metrics.log_bytes.add(record.len() as u64);
                true
            }
            _ => false,
        };

        self.metrics.deletes.add(1);
        let t1 = engine.clock().now().as_nanos();
        self.metrics.op_ns.observe(t1 - t0);
        let serial = self.serials[session.0 as usize];
        self.trace_op(engine, "delete", session, serial, existed);
        Ok(existed)
    }

    /// Publish a CPR checkpoint token: snapshot the log prefix and
    /// every session's serial watermark into the meta chunk, without
    /// stopping any session. Durability of the token rides the
    /// engine's next coordinated commit (`nvchkptall`).
    pub fn checkpoint(
        &mut self,
        engine: &mut CheckpointEngine,
    ) -> Result<KvCheckpointToken, KvError> {
        self.metrics.ensure(engine.metrics());
        let t0 = engine.clock().now().as_nanos();
        let token = self.token + 1;
        engine
            .tracer()
            .emit(t0, TraceEventKind::KvCheckpointBegin { token });

        self.token = token;
        let meta = KvMeta {
            token,
            log_len: self.head,
            index_slots: self.index_slots,
            serials: self.serials.clone(),
        };
        let bytes = encode_meta(&meta, self.cfg.max_sessions);
        engine.write(self.meta, 0, &bytes)?;

        let t1 = engine.clock().now().as_nanos();
        engine.tracer().emit(
            t1,
            TraceEventKind::KvCheckpointEnd {
                token,
                log_bytes: self.head,
                sessions: self.serials.len() as u64,
            },
        );
        self.metrics.tokens.add(1);
        self.metrics.token_ns.observe(t1 - t0);
        Ok(KvCheckpointToken {
            token,
            log_bytes: self.head,
        })
    }

    /// Rebuild a store from a recovered engine (after
    /// `restart_from_store`/`restart_from_images`): read the last
    /// committed token's meta block, replay the committed log prefix
    /// through the per-session watermarks into a fresh index, and
    /// drop acknowledged-after-token records.
    pub fn recover(
        engine: &mut CheckpointEngine,
        cfg: KvConfig,
    ) -> Result<(KvStore, KvRecovery), KvError> {
        cfg.validate()?;

        // Inventory the recovered kv chunks by name.
        let mut meta_id = None;
        let mut seg_ids: Vec<(u64, ChunkId, usize)> = Vec::new();
        let mut index_gens: Vec<(u64, ChunkId)> = Vec::new();
        for chunk in engine.heap().chunks() {
            if chunk.name == "kv_meta" {
                meta_id = Some((chunk.id, chunk.len));
            } else if let Some(i) = chunk.name.strip_prefix("kv_seg_") {
                if let Ok(i) = i.parse::<u64>() {
                    seg_ids.push((i, chunk.id, chunk.len));
                }
            } else if let Some(g) = chunk.name.strip_prefix("kv_index_g") {
                if let Ok(g) = g.parse::<u64>() {
                    index_gens.push((g, chunk.id));
                }
            }
        }

        // No meta chunk: the store never survived a commit — start
        // fresh (still a valid recovery outcome: token 0, empty).
        let Some((meta_id, meta_len)) = meta_id else {
            let mut store = KvStore::create(engine, cfg)?;
            store.metrics.ensure(engine.metrics());
            let recovery = KvRecovery {
                token: 0,
                log_bytes: 0,
                replayed: 0,
                dropped: 0,
            };
            let t = engine.clock().now().as_nanos();
            engine.tracer().emit(
                t,
                TraceEventKind::KvRecoverySeek {
                    token: 0,
                    replayed: 0,
                    dropped: 0,
                },
            );
            return Ok((store, recovery));
        };
        if meta_len != meta_bytes(cfg.max_sessions) {
            return Err(KvError::Corrupt("meta chunk size vs max_sessions"));
        }

        // Read the committed meta block. An all-zero block (chunk
        // committed before any `checkpoint()`) decodes to None: no
        // token, replay nothing.
        let mut meta_buf = vec![0u8; meta_len];
        engine.read(meta_id, 0, &mut meta_buf)?;
        let meta = decode_meta(&meta_buf).unwrap_or(KvMeta {
            token: 0,
            log_len: 0,
            index_slots: cfg.initial_index_slots,
            serials: Vec::new(),
        });

        // Segments must be kv_seg_0..kv_seg_{n-1}, all of the
        // configured size.
        seg_ids.sort_by_key(|&(i, _, _)| i);
        for (want, &(i, _, len)) in seg_ids.iter().enumerate() {
            if i != want as u64 {
                return Err(KvError::Corrupt("log segment numbering has a gap"));
            }
            if len as u64 != cfg.segment_bytes {
                return Err(KvError::Corrupt("log segment size vs config"));
            }
        }
        let segments: Vec<ChunkId> = seg_ids.iter().map(|&(_, id, _)| id).collect();
        if meta.log_len > segments.len() as u64 * cfg.segment_bytes {
            return Err(KvError::Corrupt("token log prefix exceeds log size"));
        }

        // The index is a cache: discard every recovered generation
        // and rebuild from the log below.
        index_gens.sort_by_key(|&(g, _)| g);
        let next_gen = index_gens.last().map_or(0, |&(g, _)| g + 1);
        for &(_, id) in &index_gens {
            engine.nvdelete(id)?;
        }

        // Pull every segment into host memory once (sequential scan).
        let mut seg_bytes: Vec<Vec<u8>> = Vec::with_capacity(segments.len());
        for &id in &segments {
            let mut buf = vec![0u8; cfg.segment_bytes as usize];
            engine.read(id, 0, &mut buf)?;
            seg_bytes.push(buf);
        }

        // Replay [0, log_len) into a host-side table, honouring the
        // per-session watermarks.
        let mut slots = cfg.initial_index_slots.max(meta.index_slots);
        let mut table = vec![0u8; (slots as usize) * INDEX_ENTRY_BYTES];
        let mut occupied = 0u64;
        let mut replayed = 0u64;
        let mut dropped = 0u64;
        let seg_len = cfg.segment_bytes;
        let mut pos = 0u64;
        while pos < meta.log_len {
            let seg = (pos / seg_len) as usize;
            let off = (pos % seg_len) as usize;
            let bytes = &seg_bytes[seg];
            if seg_len as usize - off < RECORD_HEADER_BYTES {
                pos = (seg as u64 + 1) * seg_len;
                continue;
            }
            let word = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
            if word == SEGMENT_END_MARKER || word == 0 {
                pos = (seg as u64 + 1) * seg_len;
                continue;
            }
            let Some(header) = decode_record_header(&bytes[off..]) else {
                return Err(KvError::Corrupt("unparseable record in committed prefix"));
            };
            if pos + header.len_total as u64 > meta.log_len {
                return Err(KvError::Corrupt("record straddles the token prefix"));
            }
            let watermark = meta.serials.get(header.session as usize).copied();
            if watermark.is_some_and(|w| header.serial <= w) {
                let key_at = off + RECORD_HEADER_BYTES;
                let key = &bytes[key_at..key_at + header.key_len as usize];
                let hash = hash64(key);
                let key_of = |t: u64| -> &[u8] {
                    let o = t - 1;
                    let (s, so) = ((o / seg_len) as usize, (o % seg_len) as usize);
                    let b = &seg_bytes[s];
                    let kl = b[so + 19] as usize;
                    &b[so + RECORD_HEADER_BYTES..so + RECORD_HEADER_BYTES + kl]
                };
                if replay_insert(&mut table, slots, hash, pos + 1, key, &mut occupied, key_of) {
                    // Load crossed 3/4 during replay (can only happen
                    // if the hint was stale): double and rehash.
                    (table, slots) = host_grow(&table, slots);
                }
                replayed += 1;
            } else {
                dropped += 1;
            }
            pos += header.len_total as u64;
        }

        // Count acknowledged-after-token records past the prefix.
        let mut pos = meta.log_len;
        'scan: while (pos / seg_len) < segments.len() as u64 {
            let seg = (pos / seg_len) as usize;
            let off = (pos % seg_len) as usize;
            let bytes = &seg_bytes[seg];
            if seg_len as usize - off < RECORD_HEADER_BYTES {
                pos = (seg as u64 + 1) * seg_len;
                continue;
            }
            let word = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
            if word == 0 {
                break 'scan;
            }
            if word == SEGMENT_END_MARKER {
                pos = (seg as u64 + 1) * seg_len;
                continue;
            }
            match decode_record_header(&bytes[off..]) {
                Some(h) => {
                    dropped += 1;
                    pos += h.len_total as u64;
                }
                // Torn or stale bytes past the committed prefix are
                // expected after a crash; stop counting.
                None => break 'scan,
            }
        }

        // Zero the log tail past the token prefix so the next run's
        // appends land on a canonical, bit-verifiable log. Only spans
        // that actually hold stale bytes are written.
        for (seg, bytes) in seg_bytes.iter().enumerate() {
            let seg_start = seg as u64 * seg_len;
            let from = meta.log_len.saturating_sub(seg_start).min(seg_len) as usize;
            let tail = &bytes[from..];
            let Some(first) = tail.iter().position(|&b| b != 0) else {
                continue;
            };
            let last = tail.iter().rposition(|&b| b != 0).unwrap();
            let zeros = vec![0u8; last - first + 1];
            engine.write(segments[seg], from + first, &zeros)?;
        }

        // Materialise the rebuilt index as a fresh generation.
        let index = engine.nvmalloc(
            &format!("kv_index_g{next_gen}"),
            (slots as usize) * INDEX_ENTRY_BYTES,
            true,
        )?;
        engine.write(index, 0, &table)?;

        let mut store = KvStore {
            index_slots: slots,
            cfg,
            meta: meta_id,
            index,
            index_gen: next_gen,
            occupied,
            segments,
            head: meta.log_len,
            token: meta.token,
            serials: meta.serials,
            metrics: KvMetricHandles::default(),
        };
        store.metrics.ensure(engine.metrics());
        store.metrics.replayed.add(replayed);
        store.metrics.dropped.add(dropped);
        let t = engine.clock().now().as_nanos();
        engine.tracer().emit(
            t,
            TraceEventKind::KvRecoverySeek {
                token: meta.token,
                replayed,
                dropped,
            },
        );
        Ok((
            store,
            KvRecovery {
                token: meta.token,
                log_bytes: meta.log_len,
                replayed,
                dropped,
            },
        ))
    }

    /// Every live key → value, in key order (test oracle; reads the
    /// whole store).
    pub fn contents(
        &mut self,
        engine: &mut CheckpointEngine,
    ) -> Result<BTreeMap<Vec<u8>, Vec<u8>>, KvError> {
        let mut map = BTreeMap::new();
        for slot in 0..self.index_slots {
            let (_, tag) = self.read_entry(engine, slot)?;
            if tag == 0 {
                continue;
            }
            let offset = tag - 1;
            let header = self.read_header(engine, offset)?;
            if header.is_tombstone() {
                continue;
            }
            let key = self.read_key(engine, offset, &header)?;
            let value = self.read_value(engine, offset, &header)?;
            map.insert(key, value);
        }
        Ok(map)
    }

    // --- internals ---

    fn check_key(&self, key: &[u8]) -> Result<(), KvError> {
        if key.is_empty() || key.len() > u8::MAX as usize {
            return Err(KvError::BadKey(key.len()));
        }
        Ok(())
    }

    fn check_session(&self, session: SessionId) -> Result<(), KvError> {
        if (session.0 as usize) < self.serials.len() {
            Ok(())
        } else {
            Err(KvError::NoSuchSession(session.0))
        }
    }

    fn bump_serial(&mut self, session: SessionId) -> u64 {
        let s = &mut self.serials[session.0 as usize];
        *s += 1;
        *s
    }

    fn trace_op(
        &self,
        engine: &CheckpointEngine,
        op: &str,
        session: SessionId,
        serial: u64,
        hit: bool,
    ) {
        if !self.cfg.trace_ops || !engine.tracer().enabled() {
            return;
        }
        let t = engine.clock().now().as_nanos();
        engine.tracer().emit(
            t,
            TraceEventKind::KvOp {
                op: op.to_string(),
                session: session.0 as u64,
                serial,
                hit,
            },
        );
    }

    fn seg_of(&self, offset: u64) -> (usize, usize) {
        (
            (offset / self.cfg.segment_bytes) as usize,
            (offset % self.cfg.segment_bytes) as usize,
        )
    }

    fn read_entry(&self, engine: &mut CheckpointEngine, slot: u64) -> Result<(u64, u64), KvError> {
        let mut buf = [0u8; INDEX_ENTRY_BYTES];
        engine.read(self.index, (slot as usize) * INDEX_ENTRY_BYTES, &mut buf)?;
        Ok(decode_index_entry(&buf))
    }

    fn write_entry(
        &mut self,
        engine: &mut CheckpointEngine,
        slot: u64,
        hash: u64,
        offset: u64,
    ) -> Result<(), KvError> {
        let entry = encode_index_entry(hash, offset + 1);
        engine.write(self.index, (slot as usize) * INDEX_ENTRY_BYTES, &entry)?;
        Ok(())
    }

    fn read_header(
        &self,
        engine: &mut CheckpointEngine,
        offset: u64,
    ) -> Result<RecordHeader, KvError> {
        let (seg, off) = self.seg_of(offset);
        let mut buf = [0u8; RECORD_HEADER_BYTES];
        engine.read(self.segments[seg], off, &mut buf)?;
        decode_record_header(&buf).ok_or(KvError::Corrupt("index points at a non-record"))
    }

    fn read_key(
        &self,
        engine: &mut CheckpointEngine,
        offset: u64,
        header: &RecordHeader,
    ) -> Result<Vec<u8>, KvError> {
        let (seg, off) = self.seg_of(offset);
        let mut key = vec![0u8; header.key_len as usize];
        engine.read(self.segments[seg], off + RECORD_HEADER_BYTES, &mut key)?;
        Ok(key)
    }

    fn read_value(
        &self,
        engine: &mut CheckpointEngine,
        offset: u64,
        header: &RecordHeader,
    ) -> Result<Vec<u8>, KvError> {
        let (seg, off) = self.seg_of(offset);
        let mut val = vec![0u8; header.val_len as usize];
        engine.read(
            self.segments[seg],
            off + RECORD_HEADER_BYTES + header.key_len as usize,
            &mut val,
        )?;
        Ok(val)
    }

    /// Probe the index for `key`. Linear probing; a slot whose hash
    /// matches is confirmed by comparing key bytes from the log.
    fn probe(
        &self,
        engine: &mut CheckpointEngine,
        hash: u64,
        key: &[u8],
    ) -> Result<Probe, KvError> {
        let mask = self.index_slots - 1;
        let mut slot = hash & mask;
        for _ in 0..self.index_slots {
            let (entry_hash, tag) = self.read_entry(engine, slot)?;
            if tag == 0 {
                return Ok(Probe::Free { slot });
            }
            if entry_hash == hash {
                let offset = tag - 1;
                let header = self.read_header(engine, offset)?;
                if header.key_len as usize == key.len()
                    && self.read_key(engine, offset, &header)? == key
                {
                    return Ok(Probe::Found {
                        slot,
                        offset,
                        header,
                    });
                }
            }
            slot = (slot + 1) & mask;
        }
        Err(KvError::Corrupt("hash index has no free slot"))
    }

    /// Append an encoded record, allocating log segments on demand.
    /// Records never span segments; a short tail is closed with a
    /// [`SEGMENT_END_MARKER`].
    fn append(&mut self, engine: &mut CheckpointEngine, record: &[u8]) -> Result<u64, KvError> {
        let seg_len = self.cfg.segment_bytes;
        loop {
            let seg = (self.head / seg_len) as usize;
            let off = (self.head % seg_len) as usize;
            while self.segments.len() <= seg {
                let name = format!("kv_seg_{}", self.segments.len());
                let id = engine.nvmalloc(&name, seg_len as usize, true)?;
                self.segments.push(id);
            }
            if seg_len as usize - off >= record.len() {
                engine.write(self.segments[seg], off, record)?;
                let offset = self.head;
                self.head += record.len() as u64;
                return Ok(offset);
            }
            if seg_len as usize - off >= 4 {
                engine.write(self.segments[seg], off, &SEGMENT_END_MARKER.to_le_bytes())?;
            }
            self.head = (seg as u64 + 1) * seg_len;
        }
    }

    fn maybe_grow(&mut self, engine: &mut CheckpointEngine) -> Result<(), KvError> {
        if (self.occupied + 1) * 4 <= self.index_slots * 3 {
            return Ok(());
        }
        let mut old = vec![0u8; (self.index_slots as usize) * INDEX_ENTRY_BYTES];
        engine.read(self.index, 0, &mut old)?;
        let (table, slots) = host_grow(&old, self.index_slots);
        let gen = self.index_gen + 1;
        let new_index = engine.nvmalloc(
            &format!("kv_index_g{gen}"),
            (slots as usize) * INDEX_ENTRY_BYTES,
            true,
        )?;
        engine.write(new_index, 0, &table)?;
        engine.nvdelete(self.index)?;
        self.index = new_index;
        self.index_gen = gen;
        self.index_slots = slots;
        self.metrics.splits.add(1);
        Ok(())
    }
}

/// Insert `(hash, tag)` for a key known to be absent from a
/// host-side table: first free slot on the probe path. Occupied
/// slots are skipped even on hash equality — entries always stand
/// for distinct keys here (rehash, or replay after a key-compare
/// miss). Returns true when the table passed 3/4 load.
fn host_insert_distinct(
    table: &mut [u8],
    slots: u64,
    hash: u64,
    tag: u64,
    occupied: &mut u64,
) -> bool {
    let mask = slots - 1;
    let mut slot = hash & mask;
    loop {
        let at = (slot as usize) * INDEX_ENTRY_BYTES;
        let (_, entry_tag) = decode_index_entry(&table[at..at + INDEX_ENTRY_BYTES]);
        if entry_tag == 0 {
            table[at..at + INDEX_ENTRY_BYTES].copy_from_slice(&encode_index_entry(hash, tag));
            *occupied += 1;
            return (*occupied + 1) * 4 > slots * 3;
        }
        slot = (slot + 1) & mask;
    }
}

/// Insert-or-update `(hash, tag)` during log replay. `key_of`
/// resolves an existing entry's tag to its key bytes so true hash
/// collisions between distinct keys probe onward instead of merging.
/// Returns true when the table passed 3/4 load.
fn replay_insert<'a>(
    table: &mut [u8],
    slots: u64,
    hash: u64,
    tag: u64,
    key: &[u8],
    occupied: &mut u64,
    key_of: impl Fn(u64) -> &'a [u8],
) -> bool {
    let mask = slots - 1;
    let mut slot = hash & mask;
    loop {
        let at = (slot as usize) * INDEX_ENTRY_BYTES;
        let (entry_hash, entry_tag) = decode_index_entry(&table[at..at + INDEX_ENTRY_BYTES]);
        if entry_tag == 0 {
            table[at..at + INDEX_ENTRY_BYTES].copy_from_slice(&encode_index_entry(hash, tag));
            *occupied += 1;
            return (*occupied + 1) * 4 > slots * 3;
        }
        if entry_hash == hash && key_of(entry_tag) == key {
            table[at..at + INDEX_ENTRY_BYTES].copy_from_slice(&encode_index_entry(hash, tag));
            return false;
        }
        slot = (slot + 1) & mask;
    }
}

/// Double a host-side table and rehash every occupied entry.
fn host_grow(old: &[u8], old_slots: u64) -> (Vec<u8>, u64) {
    let slots = old_slots * 2;
    let mut table = vec![0u8; (slots as usize) * INDEX_ENTRY_BYTES];
    let mut occupied = 0u64;
    for i in 0..old_slots as usize {
        let at = i * INDEX_ENTRY_BYTES;
        let (hash, tag) = decode_index_entry(&old[at..at + INDEX_ENTRY_BYTES]);
        if tag != 0 {
            host_insert_distinct(&mut table, slots, hash, tag, &mut occupied);
        }
    }
    (table, slots)
}
