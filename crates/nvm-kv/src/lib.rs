//! # nvm-kv — a key-value serving layer over the NVM checkpoint engine
//!
//! A concurrent-by-session key-value store whose persistence *is* the
//! chunk/commit machinery from `nvm-chkpt`: the hash index and the
//! append-only record log live in `nvmalloc`'d chunks (real-byte
//! materialized), so pre-copy policies (CPC/DCPC/DCPCP) drain dirty
//! kv pages in the background, `nvchkptall` commits them with the
//! shadow/version-flip protocol, and the whole recovery ladder —
//! local container, remote buddy, checksum verification — applies to
//! serving state unchanged.
//!
//! Checkpoints are non-blocking in the FASTER-CPR style:
//! [`KvStore::checkpoint`] publishes a [`KvCheckpointToken`] that
//! snapshots the committed log prefix plus every session's serial
//! watermark, while sessions keep serving. Recovery
//! ([`KvStore::recover`]) rebuilds the index from the committed log
//! prefix and replays through the watermarks, dropping
//! acknowledged-after-token writes.
//!
//! ```
//! use nvm_chkpt::{CheckpointEngine, EngineConfig};
//! use nvm_emu::{MemoryDevice, VirtualClock};
//! use nvm_kv::{KvConfig, KvStore};
//!
//! let dram = MemoryDevice::dram(64 << 20);
//! let nvm = MemoryDevice::pcm(64 << 20);
//! let mut engine = CheckpointEngine::new(
//!     0, &dram, &nvm, 32 << 20, VirtualClock::new(), EngineConfig::default(),
//! ).unwrap();
//!
//! let mut kv = KvStore::create(&mut engine, KvConfig::default()).unwrap();
//! let s = kv.new_session().unwrap();
//! kv.upsert(&mut engine, s, b"hello", b"world").unwrap();
//! let token = kv.checkpoint(&mut engine).unwrap();
//! engine.nvchkptall().unwrap(); // token becomes crash-durable here
//! assert_eq!(token.token, 1);
//! assert_eq!(kv.read(&mut engine, s, b"hello").unwrap().unwrap(), b"world");
//! ```

pub mod layout;
pub mod store;

pub use store::{KvCheckpointToken, KvConfig, KvError, KvRecovery, KvStats, KvStore, SessionId};

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use nvm_chkpt::{CheckpointEngine, EngineConfig};
    use nvm_emu::{MemoryDevice, VirtualClock};

    use crate::{KvConfig, KvError, KvStore};

    const MB: usize = 1 << 20;

    fn mk_engine() -> (CheckpointEngine, MemoryDevice, MemoryDevice, VirtualClock) {
        let dram = MemoryDevice::dram(256 * MB);
        let nvm = MemoryDevice::pcm(256 * MB);
        let clock = VirtualClock::new();
        let engine = CheckpointEngine::new(
            0,
            &dram,
            &nvm,
            128 * MB,
            clock.clone(),
            EngineConfig::default(),
        )
        .unwrap();
        (engine, dram, nvm, clock)
    }

    fn small_cfg() -> KvConfig {
        KvConfig {
            initial_index_slots: 16,
            segment_bytes: 4096,
            max_sessions: 4,
            trace_ops: false,
        }
    }

    #[test]
    fn upsert_read_delete_round_trip() {
        let (mut e, _d, _n, _c) = mk_engine();
        let mut kv = KvStore::create(&mut e, small_cfg()).unwrap();
        let s = kv.new_session().unwrap();

        assert!(kv.read(&mut e, s, b"k1").unwrap().is_none());
        kv.upsert(&mut e, s, b"k1", b"v1").unwrap();
        kv.upsert(&mut e, s, b"k2", b"v2").unwrap();
        assert_eq!(kv.read(&mut e, s, b"k1").unwrap().unwrap(), b"v1");
        kv.upsert(&mut e, s, b"k1", b"v1-updated").unwrap();
        assert_eq!(kv.read(&mut e, s, b"k1").unwrap().unwrap(), b"v1-updated");

        assert!(kv.delete(&mut e, s, b"k1").unwrap());
        assert!(!kv.delete(&mut e, s, b"k1").unwrap());
        assert!(kv.read(&mut e, s, b"k1").unwrap().is_none());
        assert_eq!(kv.read(&mut e, s, b"k2").unwrap().unwrap(), b"v2");

        // Deleted keys can come back.
        kv.upsert(&mut e, s, b"k1", b"back").unwrap();
        assert_eq!(kv.read(&mut e, s, b"k1").unwrap().unwrap(), b"back");
    }

    #[test]
    fn rmw_sees_old_value() {
        let (mut e, _d, _n, _c) = mk_engine();
        let mut kv = KvStore::create(&mut e, small_cfg()).unwrap();
        let s = kv.new_session().unwrap();

        let existed = kv
            .rmw(&mut e, s, b"ctr", |old| {
                assert!(old.is_none());
                vec![1]
            })
            .unwrap();
        assert!(!existed);
        let existed = kv
            .rmw(&mut e, s, b"ctr", |old| {
                let mut v = old.unwrap().to_vec();
                v[0] += 1;
                v
            })
            .unwrap();
        assert!(existed);
        assert_eq!(kv.read(&mut e, s, b"ctr").unwrap().unwrap(), vec![2]);
    }

    #[test]
    fn index_grows_and_log_spans_segments() {
        let (mut e, _d, _n, _c) = mk_engine();
        let mut kv = KvStore::create(&mut e, small_cfg()).unwrap();
        let s = kv.new_session().unwrap();

        // 200 keys through a 16-slot initial table and 4 KiB segments
        // forces several growths and several segments.
        for i in 0..200u32 {
            let key = format!("key-{i:04}");
            let val = vec![i as u8; 40];
            kv.upsert(&mut e, s, key.as_bytes(), &val).unwrap();
        }
        let stats = kv.stats();
        assert_eq!(stats.occupied_slots, 200);
        assert!(stats.index_slots >= 256, "index never grew: {stats:?}");
        assert!(stats.segments > 1, "log never spanned: {stats:?}");
        for i in (0..200u32).step_by(17) {
            let key = format!("key-{i:04}");
            let got = kv.read(&mut e, s, key.as_bytes()).unwrap().unwrap();
            assert_eq!(got, vec![i as u8; 40]);
        }
    }

    #[test]
    fn recovery_lands_on_last_committed_token() {
        let (mut e, dram, nvm, clock) = mk_engine();
        let mut kv = KvStore::create(&mut e, small_cfg()).unwrap();
        let s = kv.new_session().unwrap();

        kv.upsert(&mut e, s, b"a", b"1").unwrap();
        kv.upsert(&mut e, s, b"b", b"2").unwrap();
        let token = kv.checkpoint(&mut e).unwrap();
        assert_eq!(token.token, 1);
        e.nvchkptall().unwrap();

        // Acknowledged after the token, committed by a later
        // nvchkptall — but no later kv token: recovery must drop it.
        kv.upsert(&mut e, s, b"a", b"99").unwrap();
        kv.upsert(&mut e, s, b"c", b"3").unwrap();
        e.nvchkptall().unwrap();

        let region = e.metadata_region();
        drop(e);
        let (mut e2, _report) =
            CheckpointEngine::restart(&dram, &nvm, region, clock, EngineConfig::default()).unwrap();
        let (mut kv2, recovery) = KvStore::recover(&mut e2, small_cfg()).unwrap();
        assert_eq!(recovery.token, 1);
        assert_eq!(recovery.replayed, 2);
        assert_eq!(recovery.dropped, 2);

        let want: BTreeMap<Vec<u8>, Vec<u8>> = [
            (b"a".to_vec(), b"1".to_vec()),
            (b"b".to_vec(), b"2".to_vec()),
        ]
        .into();
        assert_eq!(kv2.contents(&mut e2).unwrap(), want);

        // Sessions resume from their watermarks and keep serving.
        let s2 = kv2.resume_session(0).unwrap();
        assert_eq!(kv2.session_serial(s2).unwrap(), 2);
        kv2.upsert(&mut e2, s2, b"d", b"4").unwrap();
        assert_eq!(kv2.read(&mut e2, s2, b"d").unwrap().unwrap(), b"4");
    }

    #[test]
    fn recovery_without_any_token_is_empty() {
        let (mut e, dram, nvm, clock) = mk_engine();
        let mut kv = KvStore::create(&mut e, small_cfg()).unwrap();
        let s = kv.new_session().unwrap();
        kv.upsert(&mut e, s, b"a", b"1").unwrap();
        // Engine commit, but no kv token: everything must be dropped.
        e.nvchkptall().unwrap();

        let region = e.metadata_region();
        drop(e);
        let (mut e2, _report) =
            CheckpointEngine::restart(&dram, &nvm, region, clock, EngineConfig::default()).unwrap();
        let (mut kv2, recovery) = KvStore::recover(&mut e2, small_cfg()).unwrap();
        assert_eq!(recovery.token, 0);
        assert_eq!(recovery.replayed, 0);
        assert_eq!(recovery.dropped, 1);
        assert!(kv2.contents(&mut e2).unwrap().is_empty());
    }

    #[test]
    fn tokens_are_monotone_and_watermarks_per_session() {
        let (mut e, _d, _n, _c) = mk_engine();
        let mut kv = KvStore::create(&mut e, small_cfg()).unwrap();
        let s0 = kv.new_session().unwrap();
        let s1 = kv.new_session().unwrap();

        kv.upsert(&mut e, s0, b"x", b"0").unwrap();
        kv.upsert(&mut e, s1, b"y", b"1").unwrap();
        kv.upsert(&mut e, s1, b"y", b"2").unwrap();
        let t1 = kv.checkpoint(&mut e).unwrap();
        let t2 = kv.checkpoint(&mut e).unwrap();
        assert!(t2.token > t1.token);
        assert_eq!(kv.session_serial(s0).unwrap(), 1);
        assert_eq!(kv.session_serial(s1).unwrap(), 2);
    }

    #[test]
    fn config_and_key_validation() {
        let (mut e, _d, _n, _c) = mk_engine();
        let bad = KvConfig {
            initial_index_slots: 17,
            ..small_cfg()
        };
        assert!(matches!(
            KvStore::create(&mut e, bad),
            Err(KvError::BadConfig(_))
        ));

        let mut kv = KvStore::create(&mut e, small_cfg()).unwrap();
        let s = kv.new_session().unwrap();
        assert!(matches!(
            kv.upsert(&mut e, s, b"", b"v"),
            Err(KvError::BadKey(0))
        ));
        assert!(matches!(
            kv.upsert(&mut e, s, &[7u8; 256], b"v"),
            Err(KvError::BadKey(256))
        ));
        // A record larger than one segment is rejected.
        assert!(matches!(
            kv.upsert(&mut e, s, b"k", &vec![0u8; 8192]),
            Err(KvError::RecordTooLarge(_))
        ));
        // Session cap (max_sessions = 4, one taken).
        for _ in 0..3 {
            kv.new_session().unwrap();
        }
        assert!(matches!(kv.new_session(), Err(KvError::TooManySessions(4))));
    }

    #[test]
    fn serving_state_survives_engine_commits_bit_for_bit() {
        // The kv chunks ride the engine's shadow/version-flip commit:
        // committed bytes must equal the working copy after each
        // nvchkptall.
        let (mut e, _d, _n, _c) = mk_engine();
        let mut kv = KvStore::create(&mut e, small_cfg()).unwrap();
        let s = kv.new_session().unwrap();
        for i in 0..40u32 {
            kv.upsert(&mut e, s, format!("k{i}").as_bytes(), &[i as u8; 16])
                .unwrap();
        }
        kv.checkpoint(&mut e).unwrap();
        e.nvchkptall().unwrap();

        let ids: Vec<_> = e.heap().chunks().map(|c| (c.id, c.len)).collect();
        for (id, len) in ids {
            let committed = e.committed_bytes(id).unwrap();
            let mut working = vec![0u8; len];
            e.read(id, 0, &mut working).unwrap();
            assert_eq!(committed, working);
        }
    }
}
