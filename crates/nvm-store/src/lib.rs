//! Durable, crash-consistent checkpoint containers.
//!
//! The emulator's NVM device is process-volatile: its bytes die with
//! the process, so "restart" experiments could only ever restart from
//! state the same process still held. This crate gives every rank a
//! real on-media home — one container file per process — implementing
//! the engine's [`Persistence`] trait:
//!
//! * [`format`] — the on-media layout: a write-once superblock, a data
//!   region of per-chunk shadow **slot pairs** (each slot a checksummed
//!   header + payload, written in one media write), and an append-only
//!   **commit log** whose last fully valid record *is* the checkpoint.
//! * [`container::Container`] — the [`Persistence`] implementation
//!   over any [`media::Media`]: staged payloads only ever target the
//!   slot the last durable record does not reference; commit is a
//!   single record append + fsync; extents referenced by the last
//!   durable record are never reused before the next commit retires
//!   it. [`container::FileStore`] is the file-backed instantiation
//!   the cluster's `--store DIR` mode uses.
//! * [`crashsim`] — the deterministic crash-injection harness: record
//!   every media operation of a scripted run, replay the image a crash
//!   would leave at *every* operation boundary (including torn
//!   prefixes of every write), recover it, and check recovery against
//!   a bit-for-bit oracle of each committed epoch.
//!
//! Mirroring checkpoints into a container is cost-free in virtual
//! time — the emulated NVM device already charged write time,
//! bandwidth and wear for every shadow copy — so attaching a store
//! never changes simulation results; it only makes them survive the
//! process.
//!
//! ```
//! use nvm_chkpt::persist::Persistence;
//! use nvm_paging::ChunkId;
//! use nvm_store::{Container, MemMedia};
//!
//! let mut store = Container::open(MemMedia::new(), 0, 1 << 16).unwrap();
//! store.put_chunk(ChunkId(1), "field", 4, 0, &[1, 2, 3, 4]).unwrap();
//! store.commit(0).unwrap();
//! assert_eq!(store.read_chunk(ChunkId(1)).unwrap(), vec![1, 2, 3, 4]);
//! ```

#![warn(missing_docs)]

pub mod container;
pub mod crashsim;
pub mod format;
pub mod media;
pub mod spill;

pub use container::{Container, FileStore};
pub use crashsim::{
    check_crash_point, enumerate_points, enumerate_points_exhaustive, expected_mark, standard_run,
    surviving_image, CommitMark, CrashMode, CrashPoint, CrashRun, OpRecord, RecordingMedia,
};
pub use media::{FileMedia, Media, MemMedia};
pub use spill::FileSpill;

// Re-export the trait surface so store users rarely need nvm-chkpt
// directly.
pub use nvm_chkpt::persist::{
    PersistError, Persistence, RecoveredChunk, RecoveredState, StoreStats,
};
