//! File-backed spill store for emulated memory devices.
//!
//! [`FileSpill`] implements [`nvm_emu::SpillStore`] over the same
//! [`Media`] layer the crash-consistent container uses, so a
//! byte-materialized cluster run can push every checkpoint image —
//! a rank's two NVM version slots, its DRAM working copy, and the
//! buddy-hosted remote images — out of process RAM and onto one spill
//! file per device. Spilling changes *where bytes live*, never what
//! the simulation computes: the device charges identical virtual
//! time, wear, stats, and metrics either way (see
//! [`nvm_emu::spill`]).
//!
//! Unlike the container, a spill file needs no crash consistency (it
//! models *volatile-until-shipped* emulator state, and is recreated on
//! every run), so the layout is the simplest thing that supports
//! random access: slots are byte extents handed out first-fit from a
//! free list, with the slot id being the extent's file offset. Frees
//! recycle extents of the same size exactly — the device's allocation
//! pattern (fixed-size version slots, re-put chunk images) makes
//! first-fit reuse effectively fragmentation-free.

use crate::media::{FileMedia, Media};
use std::io;
use std::path::Path;

/// Extent-allocated spill file. See the module docs; construct with
/// [`FileSpill::create`] and hand it to
/// [`nvm_emu::MemoryDevice::attach_spill`].
pub struct FileSpill {
    media: FileMedia,
    /// Free extents as `(offset, len)`, most recently freed last.
    free: Vec<(u64, u64)>,
    /// File length high-water mark (next fresh extent starts here).
    end: u64,
    live: u64,
    peak: u64,
}

impl FileSpill {
    /// Create (truncating any previous content logically — stale
    /// extents are simply never handed out again) a spill file at
    /// `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        let media = FileMedia::open(path).map_err(io_err)?;
        Ok(FileSpill {
            media,
            free: Vec::new(),
            end: 0,
            live: 0,
            peak: 0,
        })
    }

    /// Bytes the file has grown to (live + free extents).
    pub fn file_bytes(&self) -> u64 {
        self.end
    }
}

fn io_err(e: crate::PersistError) -> io::Error {
    io::Error::other(e.to_string())
}

impl nvm_emu::SpillStore for FileSpill {
    fn alloc(&mut self, len: usize) -> io::Result<u64> {
        let want = len as u64;
        // First-fit over the free list; split when the extent is
        // larger. Reused extents must be re-zeroed (a fresh region
        // reads back zeros); fresh extents past EOF read back zeros
        // already via the short-read path.
        let offset = match self.free.iter().position(|&(_, flen)| flen >= want) {
            Some(i) => {
                let (off, flen) = self.free[i];
                if flen == want {
                    self.free.swap_remove(i);
                } else {
                    self.free[i] = (off + want, flen - want);
                }
                if len > 0 {
                    self.media.write_at(off, &vec![0u8; len]).map_err(io_err)?;
                }
                off
            }
            None => {
                let off = self.end;
                self.end += want;
                off
            }
        };
        self.live += want;
        self.peak = self.peak.max(self.live);
        Ok(offset)
    }

    fn write(&mut self, slot: u64, offset: usize, data: &[u8]) -> io::Result<()> {
        self.media
            .write_at(slot + offset as u64, data)
            .map_err(io_err)
    }

    fn read(&mut self, slot: u64, offset: usize, buf: &mut [u8]) -> io::Result<()> {
        let got = self
            .media
            .read_at(slot + offset as u64, buf)
            .map_err(io_err)?;
        // Never-written tail of a fresh extent: logically zero.
        buf[got..].fill(0);
        Ok(())
    }

    fn free(&mut self, slot: u64, len: usize) {
        self.live -= len as u64;
        self.free.push((slot, len as u64));
    }

    fn live_bytes(&self) -> u64 {
        self.live
    }

    fn peak_bytes(&self) -> u64 {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_emu::{MemoryDevice, SpillStore};

    #[test]
    fn file_spill_round_trips_and_recycles_extents() {
        let td = nvm_emu::TempDir::new("nvm_store_spill_test").unwrap();
        let mut s = FileSpill::create(&td.join("dev.spill")).unwrap();
        let a = s.alloc(64).unwrap();
        let b = s.alloc(32).unwrap();
        assert_eq!(s.live_bytes(), 96);
        let mut buf = vec![0xAAu8; 64];
        s.read(a, 0, &mut buf).unwrap();
        assert_eq!(buf, vec![0u8; 64], "fresh extents read as zeros");
        s.write(a, 8, &[7; 16]).unwrap();
        s.read(a, 0, &mut buf).unwrap();
        assert_eq!(&buf[8..24], &[7u8; 16]);
        assert_eq!(&buf[..8], &[0u8; 8]);

        // Free `a`, allocate the same size: the extent is reused and
        // reads back zeros again.
        s.free(a, 64);
        let c = s.alloc(64).unwrap();
        assert_eq!(c, a, "same-size extent recycled first-fit");
        s.read(c, 0, &mut buf).unwrap();
        assert_eq!(buf, vec![0u8; 64], "recycled extents are re-zeroed");
        assert_eq!(s.live_bytes(), 96);
        assert_eq!(s.peak_bytes(), 96);
        // b's content was untouched by the recycling.
        let mut bb = vec![0u8; 32];
        s.read(b, 0, &mut bb).unwrap();
        assert_eq!(bb, vec![0u8; 32]);
        assert_eq!(s.file_bytes(), 96, "no growth after reuse");
    }

    #[test]
    fn split_extents_serve_smaller_allocations() {
        let td = nvm_emu::TempDir::new("nvm_store_spill_split").unwrap();
        let mut s = FileSpill::create(&td.join("dev.spill")).unwrap();
        let a = s.alloc(100).unwrap();
        s.free(a, 100);
        let b = s.alloc(40).unwrap();
        let c = s.alloc(60).unwrap();
        assert_eq!(b, a);
        assert_eq!(c, a + 40);
        assert_eq!(s.file_bytes(), 100);
    }

    #[test]
    fn device_attached_file_spill_matches_ram_backing() {
        let td = nvm_emu::TempDir::new("nvm_store_spill_dev").unwrap();
        let plain = MemoryDevice::pcm(1 << 20);
        let spilly = MemoryDevice::pcm(1 << 20);
        spilly.attach_spill(Box::new(FileSpill::create(&td.join("pcm.spill")).unwrap()));
        let rp = plain.alloc(8192).unwrap();
        let rs = spilly.alloc(8192).unwrap();
        let data: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
        let cp = plain.write(rp, 0, &data, 3).unwrap();
        let cs = spilly.write(rs, 0, &data, 3).unwrap();
        assert_eq!(cp, cs, "spilling must not change modeled cost");
        assert_eq!(plain.snapshot(rp).unwrap(), spilly.snapshot(rs).unwrap());
        assert_eq!(plain.stats(), spilly.stats());
        assert_eq!(spilly.resident_bytes(), 0);
        assert_eq!(spilly.spill_live_bytes(), 8192);
    }
}
