//! Deterministic crash-injection harness.
//!
//! The harness runs a scripted checkpoint history against a
//! [`Container`] on [`RecordingMedia`], which logs every media
//! operation. A [`CrashPoint`] then deterministically replays a
//! *surviving image* — the bytes that would be on media if the process
//! died at that operation under one of three failure models:
//!
//! * [`CrashMode::Keep`] — every write issued before the crash reached
//!   media (an orderly kill, or hardware that never reorders).
//! * [`CrashMode::Drop`] — worst-case volatile caching: only writes
//!   covered by a completed fsync survive; everything after the last
//!   durability barrier is lost.
//! * [`CrashMode::Torn`] — the write in flight at the crash reaches
//!   media only as a prefix (a torn sector/page sequence).
//!
//! Recovery is then run on the image and checked against an **oracle**
//! recorded during the original run: after every commit the harness
//! snapshots the exact payload bytes of every live chunk
//! ([`CommitMark`]). The invariant under test — the whole point of the
//! shadow-slot + append-only-record design — is:
//!
//! > Recovery always yields exactly the last durably committed epoch,
//! > bit-for-bit, or a clean "no checkpoint" on a container whose
//! > superblock never became durable. Never a torn hybrid, never a
//! > stale payload under a new epoch, never an error.
//!
//! [`enumerate_points`] generates the sweep (every operation boundary
//! in all modes, plus every torn prefix of every write), so a test can
//! be *exhaustive* for a small run rather than sampled.

use crate::container::Container;
use crate::media::{Media, MemMedia};
use nvm_chkpt::persist::{PersistError, Persistence};
use nvm_paging::ChunkId;
use std::collections::BTreeMap;

/// One recorded media operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpRecord {
    /// A `write_at` with its full payload.
    Write {
        /// Media offset written.
        offset: u64,
        /// Bytes written.
        data: Vec<u8>,
    },
    /// A durability barrier.
    Fsync,
}

/// Media that applies operations to an in-memory image while recording
/// them for later crash replay.
#[derive(Clone, Debug, Default)]
pub struct RecordingMedia {
    mem: MemMedia,
    ops: Vec<OpRecord>,
}

impl RecordingMedia {
    /// Fresh, empty recording media.
    pub fn new() -> Self {
        RecordingMedia::default()
    }

    /// The operations recorded so far.
    pub fn ops(&self) -> &[OpRecord] {
        &self.ops
    }
}

impl Media for RecordingMedia {
    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<(), PersistError> {
        self.ops.push(OpRecord::Write {
            offset,
            data: data.to_vec(),
        });
        self.mem.write_at(offset, data)
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<usize, PersistError> {
        self.mem.read_at(offset, buf)
    }

    fn fsync(&mut self) -> Result<(), PersistError> {
        self.ops.push(OpRecord::Fsync);
        self.mem.fsync()
    }

    fn len(&self) -> u64 {
        self.mem.len()
    }
}

/// What survives of the operation at the crash instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashMode {
    /// All operations before `at_op` reached media intact.
    Keep,
    /// Only operations covered by a completed fsync survive.
    Drop,
    /// Operations before `at_op` survive; the write *at* `at_op`
    /// reaches media as its first `keep` bytes only. (`keep` is
    /// clamped to a strict prefix; on a non-write op this degrades to
    /// [`CrashMode::Keep`].)
    Torn {
        /// Bytes of the in-flight write that reached media.
        keep: usize,
    },
}

/// A deterministic crash instant: die at operation index `at_op`
/// (0 = before anything) under `mode`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashPoint {
    /// Operation index the crash lands on (`0..=ops.len()`).
    pub at_op: usize,
    /// Failure model.
    pub mode: CrashMode,
}

/// Replay `ops` into the byte image a crash at `point` would leave.
pub fn surviving_image(ops: &[OpRecord], point: &CrashPoint) -> MemMedia {
    let mut mem = MemMedia::new();
    let upto = point.at_op.min(ops.len());
    match point.mode {
        CrashMode::Keep => {
            for op in &ops[..upto] {
                apply(&mut mem, op);
            }
        }
        CrashMode::Torn { keep } => {
            for op in &ops[..upto] {
                apply(&mut mem, op);
            }
            if let Some(OpRecord::Write { offset, data }) = ops.get(point.at_op) {
                // Strict prefix: a "torn" write that lands whole is a
                // completed write (that is `Keep` at `at_op + 1`).
                let keep = keep.min(data.len().saturating_sub(1));
                mem.write_at(*offset, &data[..keep]).expect("mem write");
            }
        }
        CrashMode::Drop => {
            // An fsync at index j makes every write with index < j
            // durable. Worst case loses everything after the last
            // completed barrier.
            let last_sync = ops[..upto]
                .iter()
                .rposition(|op| matches!(op, OpRecord::Fsync));
            if let Some(sync) = last_sync {
                for op in &ops[..sync] {
                    apply(&mut mem, op);
                }
            }
        }
    }
    mem
}

fn apply(mem: &mut MemMedia, op: &OpRecord) {
    if let OpRecord::Write { offset, data } = op {
        mem.write_at(*offset, data).expect("mem write");
    }
}

/// Oracle entry recorded immediately after one commit of the driver
/// run.
#[derive(Clone, Debug)]
pub struct CommitMark {
    /// Epoch the commit recorded.
    pub epoch: u64,
    /// Number of media operations recorded once the commit returned.
    /// The commit-record write is op `ops_after - 2`; its fsync is op
    /// `ops_after - 1`.
    pub ops_after: usize,
    /// Exact payload bytes of every live chunk at this commit, sorted
    /// by chunk id.
    pub expected: Vec<(u64, Vec<u8>)>,
}

/// A completed driver run: the media operation log plus the oracle.
#[derive(Clone, Debug)]
pub struct CrashRun {
    /// Process id the container was formatted with.
    pub process_id: u64,
    /// Data-region capacity the container was formatted with.
    pub data_capacity: usize,
    /// Every media operation, in order.
    pub ops: Vec<OpRecord>,
    /// One mark per commit, in commit order.
    pub marks: Vec<CommitMark>,
}

/// Which commit (if any) recovery must find after a crash at `point`.
///
/// A commit's record write is durable under `Keep`/`Torn` once the
/// crash lands at or after the following fsync op (`at_op >=
/// ops_after - 1`; tearing the record itself fails its CRC and is
/// discarded), and under `Drop` only once the fsync *completed*
/// (`at_op >= ops_after`).
pub fn expected_mark<'a>(marks: &'a [CommitMark], point: &CrashPoint) -> Option<&'a CommitMark> {
    marks
        .iter()
        .filter(|m| match point.mode {
            CrashMode::Keep | CrashMode::Torn { .. } => point.at_op >= m.ops_after - 1,
            CrashMode::Drop => point.at_op >= m.ops_after,
        })
        .max_by_key(|m| m.ops_after)
}

/// Deterministic payload pattern for chunk `id` at `epoch`.
pub fn pattern(id: u64, epoch: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| {
            (id as u8)
                .wrapping_mul(31)
                .wrapping_add((epoch as u8).wrapping_mul(7))
                .wrapping_add(i as u8)
        })
        .collect()
}

/// Build the standard small-but-complete driver run the sweeps crash:
/// four epochs over three-then-three chunks, exercising update in
/// place (slot alternation), growth (extent realloc), deletion
/// (deferred free), shrink, and late chunk creation.
pub fn standard_run() -> CrashRun {
    let process_id = 11;
    let data_capacity = 1 << 20;
    let mut store =
        Container::open(RecordingMedia::new(), process_id, data_capacity).expect("open");
    let mut live: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut marks = Vec::new();

    // One scripted epoch: chunk puts as `(id, len)` pairs, then ids to
    // delete first.
    type EpochScript = (&'static [(u64, usize)], &'static [u64]);
    let script: [EpochScript; 4] = [
        (&[(1, 64), (2, 300), (3, 100)], &[]),
        (&[(1, 64), (3, 5000)], &[]), // chunk 3 grows: realloc
        (&[(1, 64)], &[2]),           // chunk 2 deleted: deferred free
        (&[(3, 200), (4, 128)], &[]), // shrink + late creation
    ];
    for (epoch, (puts, deletes)) in script.iter().enumerate() {
        let epoch = epoch as u64;
        for id in *deletes {
            store.delete_chunk(ChunkId(*id));
            live.remove(id);
        }
        for (id, len) in *puts {
            let payload = pattern(*id, epoch, *len);
            store
                .put_chunk(ChunkId(*id), &format!("chunk{id}"), *len, epoch, &payload)
                .expect("put");
            live.insert(*id, payload);
        }
        store.commit(epoch).expect("commit");
        marks.push(CommitMark {
            epoch,
            ops_after: store.media().ops().len(),
            expected: live.iter().map(|(k, v)| (*k, v.clone())).collect(),
        });
    }
    CrashRun {
        process_id,
        data_capacity,
        ops: store.into_media().ops,
        marks,
    }
}

/// The operation-boundary sweep: every `at_op` in `Keep` and `Drop`
/// mode, plus representative torn prefixes (first byte, midpoint, all
/// but the last byte) of every write.
pub fn enumerate_points(ops: &[OpRecord]) -> Vec<CrashPoint> {
    let mut points = Vec::new();
    for at_op in 0..=ops.len() {
        points.push(CrashPoint {
            at_op,
            mode: CrashMode::Keep,
        });
        points.push(CrashPoint {
            at_op,
            mode: CrashMode::Drop,
        });
    }
    for (at_op, op) in ops.iter().enumerate() {
        if let OpRecord::Write { data, .. } = op {
            if data.len() < 2 {
                continue;
            }
            let keeps: std::collections::BTreeSet<usize> =
                [1, data.len() / 2, data.len() - 1].into();
            for keep in keeps {
                points.push(CrashPoint {
                    at_op,
                    mode: CrashMode::Torn { keep },
                });
            }
        }
    }
    points
}

/// The byte-exhaustive sweep: [`enumerate_points`] plus a torn prefix
/// at *every* byte boundary of every write.
pub fn enumerate_points_exhaustive(ops: &[OpRecord]) -> Vec<CrashPoint> {
    let mut points = enumerate_points(ops);
    for (at_op, op) in ops.iter().enumerate() {
        if let OpRecord::Write { data, .. } = op {
            for keep in 0..data.len() {
                points.push(CrashPoint {
                    at_op,
                    mode: CrashMode::Torn { keep },
                });
            }
        }
    }
    points
}

/// Crash the run at `point`, recover, and assert the invariant:
/// recovery yields exactly the oracle's last durable commit —
/// bit-for-bit payloads — or a clean "no checkpoint". Panics with a
/// point-identifying message on any violation.
pub fn check_crash_point(run: &CrashRun, point: &CrashPoint) {
    let image = surviving_image(&run.ops, point);
    let mut store = Container::open(image, run.process_id, run.data_capacity)
        .unwrap_or_else(|e| panic!("recovery must never error at {point:?}: {e}"));
    let state = store.recover().expect("recover");
    let mark = expected_mark(&run.marks, point);
    assert_eq!(
        state.epoch,
        mark.map(|m| m.epoch),
        "recovered epoch mismatch at {point:?}"
    );
    let Some(mark) = mark else {
        assert!(
            state.chunks.is_empty(),
            "no-checkpoint recovery must list no chunks at {point:?}"
        );
        return;
    };
    assert_eq!(
        state.chunks.iter().map(|c| c.id.0).collect::<Vec<_>>(),
        mark.expected.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
        "recovered chunk set mismatch at {point:?}"
    );
    for (id, bytes) in &mark.expected {
        let got = store
            .read_chunk(ChunkId(*id))
            .unwrap_or_else(|e| panic!("chunk {id} unreadable at {point:?}: {e}"));
        assert_eq!(
            &got, bytes,
            "chunk {id} payload not bit-for-bit at {point:?}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_run_shape() {
        let run = standard_run();
        assert_eq!(run.marks.len(), 4);
        assert_eq!(run.marks[3].epoch, 3);
        // Final table: chunks 1, 3, 4 (2 was deleted).
        let ids: Vec<u64> = run.marks[3].expected.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![1, 3, 4]);
        // Each commit = one record write + one fsync after the puts.
        assert!(run.ops.len() > 12);
        assert!(matches!(
            run.ops[run.marks[3].ops_after - 1],
            OpRecord::Fsync
        ));
    }

    #[test]
    fn keep_mode_before_first_commit_recovers_nothing() {
        let run = standard_run();
        // Op 0/1 are the superblock format; first slot write is op 2.
        for at_op in 0..run.marks[0].ops_after - 1 {
            check_crash_point(
                &run,
                &CrashPoint {
                    at_op,
                    mode: CrashMode::Keep,
                },
            );
        }
    }

    #[test]
    fn full_image_recovers_final_epoch() {
        let run = standard_run();
        for mode in [CrashMode::Keep, CrashMode::Drop] {
            let point = CrashPoint {
                at_op: run.ops.len(),
                mode,
            };
            assert_eq!(expected_mark(&run.marks, &point).map(|m| m.epoch), Some(3));
            check_crash_point(&run, &point);
        }
    }

    #[test]
    fn drop_mode_is_stricter_than_keep() {
        let run = standard_run();
        // Crash exactly on a commit's fsync: Keep already sees the
        // record (it was written), Drop does not (barrier incomplete).
        let m = &run.marks[1];
        let at_op = m.ops_after - 1;
        let kept = expected_mark(
            &run.marks,
            &CrashPoint {
                at_op,
                mode: CrashMode::Keep,
            },
        );
        let dropped = expected_mark(
            &run.marks,
            &CrashPoint {
                at_op,
                mode: CrashMode::Drop,
            },
        );
        assert_eq!(kept.map(|x| x.epoch), Some(1));
        assert_eq!(dropped.map(|x| x.epoch), Some(0));
    }

    #[test]
    fn torn_commit_record_is_detected_and_discarded() {
        let run = standard_run();
        let m = &run.marks[2];
        let record_op = m.ops_after - 2;
        let OpRecord::Write { data, .. } = &run.ops[record_op] else {
            panic!("expected commit-record write");
        };
        // Tear the record keeping its magic: recovery must fall back
        // to the previous epoch and count the torn write.
        let point = CrashPoint {
            at_op: record_op,
            mode: CrashMode::Torn {
                keep: data.len() / 2,
            },
        };
        check_crash_point(&run, &point);
        let mut store = Container::open(
            surviving_image(&run.ops, &point),
            run.process_id,
            run.data_capacity,
        )
        .unwrap();
        let state = store.recover().unwrap();
        assert_eq!(state.epoch, Some(1));
        assert_eq!(state.torn_writes_detected, 1);
    }

    #[test]
    fn boundary_sweep_holds_everywhere() {
        let run = standard_run();
        for point in enumerate_points(&run.ops) {
            check_crash_point(&run, &point);
        }
    }

    #[test]
    fn recording_media_records_what_it_applies() {
        let mut m = RecordingMedia::new();
        m.write_at(0, b"abc").unwrap();
        m.fsync().unwrap();
        assert_eq!(m.ops().len(), 2);
        let mut buf = [0u8; 3];
        assert_eq!(m.read_at(0, &mut buf).unwrap(), 3);
        assert_eq!(&buf, b"abc");
    }
}
