//! The durable container: shadow slot pairs + append-only commit log.
//!
//! [`Container`] implements [`Persistence`] over any [`Media`]. The
//! crash-consistency discipline is:
//!
//! 1. **Staged payloads only ever go to the slot the last durable
//!    commit record does not reference.** The committed slot is never
//!    rewritten in place.
//! 2. **Commit is a single append + fsync.** The record carries the
//!    full chunk table; once the fsync returns, that record *is* the
//!    checkpoint. A crash anywhere before it leaves the previous
//!    record's data untouched on media.
//! 3. **Extents referenced by the last durable record are never
//!    reused.** A deleted chunk's committed extent goes on a deferred
//!    list and returns to the allocator only after the *next* commit's
//!    fsync — the first moment no durable record references it.
//!    Non-committed (spare) extents may be recycled immediately: no
//!    future recovery can need them.
//!
//! Data-region layout is delegated to the engine's own
//! [`Arena`] allocator, so container files stay deterministic:
//! identical operation sequences produce byte-identical files.

use crate::format::{
    decode_record, encode_record, RecordParse, SlotHeader, Superblock, TableEntry, SB_LEN,
    SLOT_HEADER_LEN,
};
use crate::media::{FileMedia, Media};
use nvm_chkpt::checksum::crc64;
use nvm_chkpt::persist::{PersistError, Persistence, RecoveredChunk, RecoveredState, StoreStats};
use nvm_heap::{Arena, Extent};
use nvm_metrics::{names, Metrics};
use nvm_paging::ChunkId;
use std::collections::BTreeMap;
use std::path::Path;

/// Payload metadata for one slot of a pair.
#[derive(Clone, Copy, Debug)]
struct SlotMeta {
    slot: u8,
    payload_len: usize,
    crc: u64,
    epoch: u64,
}

/// In-memory state for one chunk's slot pair.
#[derive(Clone, Debug)]
struct ChunkState {
    name: String,
    len: usize,
    /// Data-region-relative extents of the two slots.
    slots: [Option<Extent>; 2],
    /// Slot referenced by the last durable commit record.
    committed: Option<SlotMeta>,
    /// Slot staged since that record (flips to committed on commit).
    staged: Option<SlotMeta>,
}

impl ChunkState {
    /// The slot the next `put_chunk` must target.
    fn target_slot(&self) -> u8 {
        match (&self.committed, &self.staged) {
            (Some(c), _) => 1 - c.slot,
            (None, Some(s)) => s.slot,
            (None, None) => 0,
        }
    }
}

/// A crash-consistent checkpoint container over some [`Media`].
pub struct Container<M: Media> {
    media: M,
    sb: Superblock,
    arena: Arena,
    chunks: BTreeMap<ChunkId, ChunkState>,
    /// Extents referenced by the last durable record but dropped from
    /// the working table; freed after the next commit's fsync.
    deferred_free: Vec<Extent>,
    /// Media offset where the next commit record is appended.
    log_tail: u64,
    /// Snapshot of what the open-time scan recovered.
    recovered: RecoveredState,
    stats: StoreStats,
    metrics: Metrics,
}

impl<M: Media> Container<M> {
    /// Open a container on `media`. Empty/invalid media is formatted
    /// fresh with the given identity and geometry; valid media keeps
    /// its recorded geometry (the arguments are ignored) and the last
    /// durable commit is recovered immediately.
    pub fn open(mut media: M, process_id: u64, data_capacity: usize) -> Result<Self, PersistError> {
        let mut sb_buf = [0u8; SB_LEN];
        let got = media.read_at(0, &mut sb_buf)?;
        let (sb, fresh) = match Superblock::decode(&sb_buf[..got]) {
            Some(sb) => (sb, false),
            None => (
                Superblock {
                    process_id,
                    data_capacity: data_capacity as u64,
                },
                true,
            ),
        };
        let mut this = Container {
            media,
            sb,
            arena: Arena::new(sb.data_capacity as usize),
            chunks: BTreeMap::new(),
            deferred_free: Vec::new(),
            log_tail: sb.log_start(),
            recovered: RecoveredState {
                process_id: sb.process_id,
                ..RecoveredState::default()
            },
            stats: StoreStats::default(),
            metrics: Metrics::disabled(),
        };
        if fresh {
            // Geometry must be durable before any slot write lands
            // beyond it.
            this.write(0, &sb.encode())?;
            this.fsync()?;
        } else {
            this.scan_log()?;
        }
        Ok(this)
    }

    /// Borrow the underlying media (harness introspection).
    pub fn media(&self) -> &M {
        &self.media
    }

    /// Consume the container, returning its media.
    pub fn into_media(self) -> M {
        self.media
    }

    /// Attach a metrics handle; store counters are recorded as they
    /// accrue.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }

    /// Container identity from the superblock.
    pub fn process_id(&self) -> u64 {
        self.sb.process_id
    }

    /// What the open-time scan recovered (same as the first
    /// [`Persistence::recover`] call, without counting a recovery).
    pub fn recovered_state(&self) -> &RecoveredState {
        &self.recovered
    }

    /// Flip one byte of `id`'s *committed* payload directly on media,
    /// bypassing the shadow-slot discipline. Test support: simulates
    /// media corruption (bit rot) so checksum verification paths can
    /// be exercised.
    pub fn corrupt_payload(&mut self, id: ChunkId) -> Result<(), PersistError> {
        let chunk = self
            .chunks
            .get(&id)
            .ok_or(PersistError::NoSuchChunk(id.0))?;
        let meta = chunk.committed.ok_or(PersistError::NoSuchChunk(id.0))?;
        let ext = chunk.slots[meta.slot as usize]
            .ok_or_else(|| PersistError::Corrupt("committed slot has no extent".to_string()))?;
        let at = self.sb.data_start() + ext.offset as u64 + SLOT_HEADER_LEN as u64;
        let mut byte = [0u8; 1];
        if self.media.read_at(at, &mut byte)? != 1 {
            return Err(PersistError::Corrupt("payload beyond media".to_string()));
        }
        byte[0] ^= 0xFF;
        self.media.write_at(at, &byte)?;
        self.media.fsync()?;
        Ok(())
    }

    /// Tracked media write (byte accounting).
    fn write(&mut self, offset: u64, data: &[u8]) -> Result<(), PersistError> {
        self.media.write_at(offset, data)?;
        self.stats.bytes_written += data.len() as u64;
        self.metrics
            .counter_add(names::STORE_BYTES_WRITTEN_TOTAL, data.len() as u64);
        Ok(())
    }

    /// Tracked durability barrier.
    fn fsync(&mut self) -> Result<(), PersistError> {
        self.media.fsync()?;
        self.stats.fsyncs += 1;
        self.metrics.counter_add(names::STORE_FSYNCS_TOTAL, 1);
        Ok(())
    }

    /// Scan the commit log, adopt the last fully valid record, and
    /// rebuild the arena + chunk table from it.
    fn scan_log(&mut self) -> Result<(), PersistError> {
        let start = self.sb.log_start();
        let avail = self.media.len().saturating_sub(start) as usize;
        let mut buf = vec![0u8; avail];
        let got = self.media.read_at(start, &mut buf)?;
        buf.truncate(got);

        let mut pos = 0usize;
        let mut torn = 0u64;
        let mut last: Option<(u64, Vec<TableEntry>)> = None;
        loop {
            match decode_record(&buf[pos..]) {
                RecordParse::End => break,
                RecordParse::Torn => {
                    torn += 1;
                    break;
                }
                RecordParse::Valid {
                    epoch,
                    table,
                    total_len,
                } => {
                    last = Some((epoch, table));
                    pos += total_len;
                }
            }
        }
        // Appends resume here: a torn tail record is overwritten.
        self.log_tail = start + pos as u64;
        self.stats.torn_writes_detected += torn;
        self.metrics
            .counter_add(names::STORE_TORN_WRITES_TOTAL, torn);

        let mut recovered = RecoveredState {
            process_id: self.sb.process_id,
            torn_writes_detected: torn,
            ..RecoveredState::default()
        };
        if let Some((epoch, table)) = last {
            recovered.epoch = Some(epoch);
            for e in &table {
                let ext = Extent {
                    offset: e.offset as usize,
                    len: e.cap as usize,
                };
                if !self.arena.reserve(ext) {
                    return Err(PersistError::Corrupt(format!(
                        "commit record references overlapping extent for chunk {}",
                        e.id
                    )));
                }
                let mut slots = [None, None];
                slots[e.slot as usize] = Some(ext);
                if let Some((off, len)) = e.spare {
                    let spare = Extent {
                        offset: off as usize,
                        len: len as usize,
                    };
                    if !self.arena.reserve(spare) {
                        return Err(PersistError::Corrupt(format!(
                            "commit record references overlapping spare for chunk {}",
                            e.id
                        )));
                    }
                    slots[1 - e.slot as usize] = Some(spare);
                }
                self.chunks.insert(
                    ChunkId(e.id),
                    ChunkState {
                        name: e.name.clone(),
                        len: e.len as usize,
                        slots,
                        committed: Some(SlotMeta {
                            slot: e.slot,
                            payload_len: e.payload_len as usize,
                            crc: e.crc,
                            epoch: e.epoch,
                        }),
                        staged: None,
                    },
                );
                recovered.chunks.push(RecoveredChunk {
                    id: ChunkId(e.id),
                    name: e.name.clone(),
                    len: e.len as usize,
                    payload_len: e.payload_len as usize,
                    checksum: e.crc,
                    epoch: e.epoch,
                });
            }
        }
        self.recovered = recovered;
        Ok(())
    }
}

impl<M: Media> Persistence for Container<M> {
    fn put_chunk(
        &mut self,
        id: ChunkId,
        name: &str,
        len: usize,
        epoch: u64,
        payload: &[u8],
    ) -> Result<(), PersistError> {
        let needed = SLOT_HEADER_LEN + payload.len();
        let chunk = self.chunks.entry(id).or_insert_with(|| ChunkState {
            name: name.to_string(),
            len,
            slots: [None, None],
            committed: None,
            staged: None,
        });
        chunk.name = name.to_string();
        chunk.len = len;
        let t = chunk.target_slot() as usize;

        // Make sure the target slot's extent fits; recycle it if not.
        // The target slot is by construction not referenced by the
        // last durable record as a committed payload, so immediate
        // reuse of its extent is crash-safe.
        if let Some(ext) = chunk.slots[t] {
            if ext.len < needed {
                chunk.slots[t] = None;
                if chunk.staged.is_some_and(|s| s.slot as usize == t) {
                    chunk.staged = None;
                }
                self.arena.free(ext);
            }
        }
        if self.chunks[&id].slots[t].is_none() {
            let Some(ext) = self.arena.alloc(needed) else {
                return Err(PersistError::OutOfSpace { requested: needed });
            };
            self.chunks.get_mut(&id).expect("chunk just touched").slots[t] = Some(ext);
        }
        let ext = self.chunks[&id].slots[t].expect("target slot allocated");

        let crc = crc64(payload);
        let header = SlotHeader {
            id: id.0,
            epoch,
            payload_len: payload.len() as u64,
            payload_crc: crc,
        };
        // One media write per slot: header + payload together, so a
        // torn slot write can never pass the header CRC against a
        // stale payload.
        let mut buf = Vec::with_capacity(needed);
        buf.extend_from_slice(&header.encode());
        buf.extend_from_slice(payload);
        let at = self.sb.data_start() + ext.offset as u64;
        self.write(at, &buf)?;

        let chunk = self.chunks.get_mut(&id).expect("chunk just touched");
        chunk.staged = Some(SlotMeta {
            slot: t as u8,
            payload_len: payload.len(),
            crc,
            epoch,
        });
        Ok(())
    }

    fn delete_chunk(&mut self, id: ChunkId) {
        let Some(chunk) = self.chunks.remove(&id) else {
            return;
        };
        for (slot, ext) in chunk.slots.iter().enumerate() {
            let Some(ext) = *ext else { continue };
            if chunk.committed.is_some_and(|c| c.slot as usize == slot) {
                // Still referenced by the last durable record: hold
                // until the next commit's fsync retires that record.
                self.deferred_free.push(ext);
            } else {
                self.arena.free(ext);
            }
        }
    }

    fn commit(&mut self, epoch: u64) -> Result<(), PersistError> {
        let mut table = Vec::with_capacity(self.chunks.len());
        for (id, chunk) in &self.chunks {
            let Some(meta) = chunk.staged.or(chunk.committed) else {
                continue;
            };
            let ext = chunk.slots[meta.slot as usize]
                .ok_or_else(|| PersistError::Corrupt("slot meta without extent".to_string()))?;
            let spare =
                chunk.slots[1 - meta.slot as usize].map(|s| (s.offset as u64, s.len as u64));
            table.push(TableEntry {
                id: id.0,
                name: chunk.name.clone(),
                len: chunk.len as u64,
                payload_len: meta.payload_len as u64,
                slot: meta.slot,
                offset: ext.offset as u64,
                cap: ext.len as u64,
                crc: meta.crc,
                epoch: meta.epoch,
                spare,
            });
        }
        let rec = encode_record(epoch, &table);
        let at = self.log_tail;
        self.write(at, &rec)?;
        self.fsync()?;
        // --- Durable from here on. ---
        self.log_tail = at + rec.len() as u64;
        self.stats.commits += 1;
        self.metrics.counter_add(names::STORE_COMMITS_TOTAL, 1);
        for chunk in self.chunks.values_mut() {
            if let Some(s) = chunk.staged.take() {
                chunk.committed = Some(s);
            }
        }
        // The previous record is retired: extents it referenced that
        // left the working table are reusable now.
        for ext in self.deferred_free.drain(..) {
            self.arena.free(ext);
        }
        Ok(())
    }

    fn recover(&mut self) -> Result<RecoveredState, PersistError> {
        self.stats.recoveries += 1;
        self.metrics.counter_add(names::STORE_RECOVERIES_TOTAL, 1);
        Ok(self.recovered.clone())
    }

    fn read_chunk(&mut self, id: ChunkId) -> Result<Vec<u8>, PersistError> {
        let chunk = self
            .chunks
            .get(&id)
            .ok_or(PersistError::NoSuchChunk(id.0))?;
        let meta = chunk.committed.ok_or(PersistError::NoSuchChunk(id.0))?;
        let ext = chunk.slots[meta.slot as usize]
            .ok_or_else(|| PersistError::Corrupt("committed slot has no extent".to_string()))?;
        let at = self.sb.data_start() + ext.offset as u64;
        let mut buf = vec![0u8; SLOT_HEADER_LEN + meta.payload_len];
        let got = self.media.read_at(at, &mut buf)?;
        if got != buf.len() {
            return Err(PersistError::Corrupt(format!(
                "slot for chunk {} truncated on media",
                id.0
            )));
        }
        let header = SlotHeader::decode(&buf[..SLOT_HEADER_LEN])?;
        if header.id != id.0 || header.payload_len as usize != meta.payload_len {
            return Err(PersistError::Corrupt(format!(
                "slot header mismatch for chunk {}",
                id.0
            )));
        }
        let payload = buf.split_off(SLOT_HEADER_LEN);
        let actual = crc64(&payload);
        if actual != meta.crc || actual != header.payload_crc {
            return Err(PersistError::Checksum {
                chunk: id.0,
                expected: meta.crc,
                actual,
            });
        }
        self.stats.payload_reads += 1;
        self.stats.payload_read_bytes += payload.len() as u64;
        self.metrics
            .counter_add(names::STORE_PAYLOAD_READS_TOTAL, 1);
        self.metrics
            .counter_add(names::STORE_PAYLOAD_READ_BYTES_TOTAL, payload.len() as u64);
        Ok(payload)
    }

    fn stats(&self) -> StoreStats {
        self.stats
    }
}

/// A container on a real file: the backend `--store DIR` wires into
/// every rank.
pub type FileStore = Container<FileMedia>;

impl FileStore {
    /// Open (or create) the container file at `path`.
    pub fn open_path(
        path: &Path,
        process_id: u64,
        data_capacity: usize,
    ) -> Result<Self, PersistError> {
        Container::open(FileMedia::open(path)?, process_id, data_capacity)
    }

    /// Open an existing container, refusing to format: recovery from a
    /// directory of container files alone must not depend on knowing
    /// the original geometry.
    pub fn open_existing(path: &Path) -> Result<Self, PersistError> {
        let mut media = FileMedia::open(path)?;
        let mut sb_buf = [0u8; SB_LEN];
        let got = media.read_at(0, &mut sb_buf)?;
        if Superblock::decode(&sb_buf[..got]).is_none() {
            return Err(PersistError::Corrupt(format!(
                "{} is not an nvm-store container",
                path.display()
            )));
        }
        Container::open(media, 0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media::MemMedia;

    fn open_mem(pid: u64) -> Container<MemMedia> {
        Container::open(MemMedia::new(), pid, 1 << 20).unwrap()
    }

    #[test]
    fn virgin_container_recovers_no_checkpoint() {
        let mut c = open_mem(7);
        let state = c.recover().unwrap();
        assert_eq!(state.process_id, 7);
        assert_eq!(state.epoch, None);
        assert!(state.chunks.is_empty());
        assert_eq!(c.stats().recoveries, 1);
    }

    #[test]
    fn put_commit_read_round_trip() {
        let mut c = open_mem(1);
        let payload = vec![0xA5u8; 4096];
        c.put_chunk(ChunkId(3), "field", 4096, 0, &payload).unwrap();
        c.commit(0).unwrap();
        assert_eq!(c.read_chunk(ChunkId(3)).unwrap(), payload);
        let s = c.stats();
        assert_eq!(s.commits, 1);
        assert_eq!(s.fsyncs, 2, "format fsync + commit fsync");
        assert_eq!(s.payload_reads, 1);
        assert_eq!(s.payload_read_bytes, 4096);
    }

    #[test]
    fn uncommitted_put_is_not_readable_and_not_recovered() {
        let mut c = open_mem(1);
        c.put_chunk(ChunkId(1), "x", 64, 0, &[1u8; 64]).unwrap();
        assert!(matches!(
            c.read_chunk(ChunkId(1)),
            Err(PersistError::NoSuchChunk(1))
        ));
        let reopened = Container::open(MemMedia::from_bytes(c.media.bytes().to_vec()), 0, 0)
            .unwrap()
            .recovered_state()
            .clone();
        assert_eq!(reopened.epoch, None, "no commit record, no checkpoint");
    }

    #[test]
    fn reopen_recovers_last_commit_bit_for_bit() {
        let mut c = open_mem(9);
        let v0 = vec![1u8; 300];
        let v1 = vec![2u8; 300];
        c.put_chunk(ChunkId(5), "v", 300, 0, &v0).unwrap();
        c.commit(0).unwrap();
        c.put_chunk(ChunkId(5), "v", 300, 1, &v1).unwrap();
        c.commit(1).unwrap();
        let image = c.media.bytes().to_vec();
        let mut r = Container::open(MemMedia::from_bytes(image), 0, 0).unwrap();
        let state = r.recover().unwrap();
        assert_eq!(state.process_id, 9, "identity comes from the superblock");
        assert_eq!(state.epoch, Some(1));
        assert_eq!(state.chunks.len(), 1);
        assert_eq!(state.chunks[0].name, "v");
        assert_eq!(r.read_chunk(ChunkId(5)).unwrap(), v1);
    }

    #[test]
    fn commit_alternates_slots_and_never_rewrites_committed() {
        let mut c = open_mem(1);
        for epoch in 0..6u64 {
            let payload = vec![epoch as u8; 128];
            c.put_chunk(ChunkId(1), "w", 128, epoch, &payload).unwrap();
            // Before commit, the previous epoch must still be intact.
            if epoch > 0 {
                assert_eq!(
                    c.read_chunk(ChunkId(1)).unwrap(),
                    vec![epoch as u8 - 1; 128]
                );
            }
            c.commit(epoch).unwrap();
            assert_eq!(c.read_chunk(ChunkId(1)).unwrap(), payload);
        }
        let chunk = &c.chunks[&ChunkId(1)];
        assert!(chunk.slots[0].is_some() && chunk.slots[1].is_some());
    }

    #[test]
    fn growth_moves_the_spare_slot_only() {
        let mut c = open_mem(1);
        c.put_chunk(ChunkId(2), "g", 100, 0, &[7u8; 100]).unwrap();
        c.commit(0).unwrap();
        // Growing rewrites the spare slot's extent; committed data
        // stays readable throughout.
        c.put_chunk(ChunkId(2), "g", 5000, 1, &[8u8; 5000]).unwrap();
        assert_eq!(c.read_chunk(ChunkId(2)).unwrap(), vec![7u8; 100]);
        c.commit(1).unwrap();
        assert_eq!(c.read_chunk(ChunkId(2)).unwrap(), vec![8u8; 5000]);
    }

    #[test]
    fn delete_defers_the_committed_extent() {
        let mut c = open_mem(1);
        c.put_chunk(ChunkId(1), "a", 64, 0, &[1u8; 64]).unwrap();
        c.commit(0).unwrap();
        let free_before = c.arena.free_bytes();
        c.delete_chunk(ChunkId(1));
        assert_eq!(
            c.arena.free_bytes(),
            free_before,
            "committed extent must not be reusable before the next commit"
        );
        assert_eq!(c.deferred_free.len(), 1);
        c.commit(1).unwrap();
        assert!(c.arena.free_bytes() > free_before);
        assert!(matches!(
            c.read_chunk(ChunkId(1)),
            Err(PersistError::NoSuchChunk(1))
        ));
    }

    #[test]
    fn corruption_is_caught_by_checksum() {
        let mut c = open_mem(1);
        c.put_chunk(ChunkId(4), "z", 256, 0, &[9u8; 256]).unwrap();
        c.commit(0).unwrap();
        c.corrupt_payload(ChunkId(4)).unwrap();
        match c.read_chunk(ChunkId(4)) {
            Err(PersistError::Checksum { chunk, .. }) => assert_eq!(chunk, 4),
            other => panic!("expected checksum error, got {other:?}"),
        }
    }

    #[test]
    fn out_of_space_is_reported() {
        let mut c = Container::open(MemMedia::new(), 1, 256).unwrap();
        assert!(matches!(
            c.put_chunk(ChunkId(1), "big", 4096, 0, &[0u8; 4096]),
            Err(PersistError::OutOfSpace { .. })
        ));
    }

    #[test]
    fn file_store_survives_process_boundary() {
        let td = nvm_emu::TempDir::new("nvm_store_container_test").unwrap();
        let path = td.join("rank_0.store");
        {
            let mut s = FileStore::open_path(&path, 0, 1 << 20).unwrap();
            s.put_chunk(ChunkId(1), "m", 512, 0, &[3u8; 512]).unwrap();
            s.commit(0).unwrap();
        }
        let mut s = FileStore::open_existing(&path).unwrap();
        let state = s.recover().unwrap();
        assert_eq!(state.epoch, Some(0));
        assert_eq!(s.read_chunk(ChunkId(1)).unwrap(), vec![3u8; 512]);
        assert!(FileStore::open_existing(&td.join("missing.store")).is_err());
    }

    #[test]
    fn identical_histories_give_identical_files() {
        let run = || {
            let mut c = open_mem(1);
            for e in 0..3u64 {
                c.put_chunk(ChunkId(1), "a", 128, e, &[e as u8; 128])
                    .unwrap();
                c.put_chunk(ChunkId(2), "b", 64, e, &[e as u8 ^ 0xFF; 64])
                    .unwrap();
                c.commit(e).unwrap();
            }
            c.media.bytes().to_vec()
        };
        assert_eq!(run(), run(), "container layout must be deterministic");
    }
}
