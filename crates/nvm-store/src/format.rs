//! On-media format: superblock, slot headers, commit records.
//!
//! Container layout (one file per process):
//!
//! ```text
//! +------------+----------------------------+---------------------+
//! | superblock |         data region        |     commit log      |
//! |  (64 B)    |  slot pairs via the arena  |  append-only records|
//! +------------+----------------------------+---------------------+
//! 0            64                           64 + data_capacity ...
//! ```
//!
//! * The **superblock** is written once at creation and never touched
//!   again.
//! * The **data region** holds per-chunk shadow slot pairs. Each slot
//!   is a 48-byte header (chunk id, epoch, payload length, payload
//!   CRC-64, header CRC-64) followed by the payload, written in a
//!   single media write. Writes only ever target the slot *not*
//!   referenced by the last durable commit record.
//! * The **commit log** is append-only. A record carries the epoch and
//!   the full chunk table (JSON, sorted by id) and is terminated by a
//!   CRC-64 over everything before it, so a torn append is detected
//!   and discarded; the last fully valid record *is* the checkpoint.
//!
//! Every checksum here is the engine's own [`crc64`] — one checksum
//! codepath across commit, restart, and store (satellite requirement).

use nvm_chkpt::checksum::crc64;
use nvm_chkpt::persist::PersistError;
use serde::{Deserialize, Serialize};

/// Format version stamped in the superblock.
pub const FORMAT_VERSION: u32 = 1;
/// Superblock size (fixed, at media offset 0).
pub const SB_LEN: usize = 64;
/// Slot header size preceding each payload.
pub const SLOT_HEADER_LEN: usize = 48;
/// Commit-record fixed header size (magic + epoch + table length).
pub const REC_HEADER_LEN: usize = 20;
/// Trailing record CRC size.
pub const REC_TRAILER_LEN: usize = 8;
/// Upper bound on a serialized chunk table (sanity check against
/// garbage lengths in torn records).
pub const MAX_TABLE_LEN: u32 = 16 << 20;

const SB_MAGIC: [u8; 8] = *b"NVMSTOR1";
const SLOT_MAGIC: [u8; 8] = *b"NVMSLOT1";
const REC_MAGIC: [u8; 8] = *b"NVMCMT1\0";

fn le64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().expect("8-byte slice"))
}

fn le32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(buf[at..at + 4].try_into().expect("4-byte slice"))
}

/// Container identity, written once at creation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Superblock {
    /// Owning process (rank) id.
    pub process_id: u64,
    /// Bytes reserved for the data region (slot pairs).
    pub data_capacity: u64,
}

impl Superblock {
    /// Media offset where the data region starts.
    pub fn data_start(&self) -> u64 {
        SB_LEN as u64
    }

    /// Media offset where the commit log starts.
    pub fn log_start(&self) -> u64 {
        SB_LEN as u64 + self.data_capacity
    }

    /// Serialize to the fixed 64-byte on-media form.
    pub fn encode(&self) -> [u8; SB_LEN] {
        let mut out = [0u8; SB_LEN];
        out[..8].copy_from_slice(&SB_MAGIC);
        out[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        out[16..24].copy_from_slice(&self.process_id.to_le_bytes());
        out[24..32].copy_from_slice(&self.data_capacity.to_le_bytes());
        let crc = crc64(&out[..40]);
        out[40..48].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parse a superblock; `None` when the bytes are not a valid one
    /// (virgin or torn container — recovery reports "no checkpoint").
    pub fn decode(buf: &[u8]) -> Option<Superblock> {
        if buf.len() < SB_LEN || buf[..8] != SB_MAGIC || le32(buf, 8) != FORMAT_VERSION {
            return None;
        }
        if le64(buf, 40) != crc64(&buf[..40]) {
            return None;
        }
        Some(Superblock {
            process_id: le64(buf, 16),
            data_capacity: le64(buf, 24),
        })
    }
}

/// Header written immediately before each slot payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotHeader {
    /// Chunk id.
    pub id: u64,
    /// Epoch the payload was staged for.
    pub epoch: u64,
    /// Payload bytes following this header.
    pub payload_len: u64,
    /// CRC-64 of the payload.
    pub payload_crc: u64,
}

impl SlotHeader {
    /// Serialize to the fixed 48-byte on-media form.
    pub fn encode(&self) -> [u8; SLOT_HEADER_LEN] {
        let mut out = [0u8; SLOT_HEADER_LEN];
        out[..8].copy_from_slice(&SLOT_MAGIC);
        out[8..16].copy_from_slice(&self.id.to_le_bytes());
        out[16..24].copy_from_slice(&self.epoch.to_le_bytes());
        out[24..32].copy_from_slice(&self.payload_len.to_le_bytes());
        out[32..40].copy_from_slice(&self.payload_crc.to_le_bytes());
        let crc = crc64(&out[..40]);
        out[40..48].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parse a slot header, rejecting damage.
    pub fn decode(buf: &[u8]) -> Result<SlotHeader, PersistError> {
        if buf.len() < SLOT_HEADER_LEN || buf[..8] != SLOT_MAGIC {
            return Err(PersistError::Corrupt("slot header magic".to_string()));
        }
        if le64(buf, 40) != crc64(&buf[..40]) {
            return Err(PersistError::Corrupt("slot header crc".to_string()));
        }
        Ok(SlotHeader {
            id: le64(buf, 8),
            epoch: le64(buf, 16),
            payload_len: le64(buf, 24),
            payload_crc: le64(buf, 32),
        })
    }
}

/// One chunk in a commit record's table. Offsets are relative to the
/// data region so the arena can re-reserve them directly on recovery.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableEntry {
    /// Chunk id.
    pub id: u64,
    /// Variable name.
    pub name: String,
    /// Logical chunk length.
    pub len: u64,
    /// Stored payload length.
    pub payload_len: u64,
    /// Which slot of the pair holds the committed payload (0/1).
    pub slot: u8,
    /// Data-region-relative offset of the committed slot (header).
    pub offset: u64,
    /// Reserved extent length of the committed slot.
    pub cap: u64,
    /// CRC-64 of the payload.
    pub crc: u64,
    /// Epoch the payload was written (carried-over chunks keep the
    /// epoch of their last actual write).
    pub epoch: u64,
    /// The other slot's reserved extent (offset, len), if allocated —
    /// recorded so recovery re-reserves it and nothing leaks.
    pub spare: Option<(u64, u64)>,
}

/// Outcome of parsing the commit log at one position.
#[derive(Clone, Debug, PartialEq)]
pub enum RecordParse {
    /// No record here (end of log: zeros, garbage, or too few bytes
    /// for even a header).
    End,
    /// A record was started but is incomplete or fails its CRC — a
    /// torn append. Recovery discards it and stops scanning.
    Torn,
    /// A fully valid record.
    Valid {
        /// Committed epoch.
        epoch: u64,
        /// Chunk table, sorted by id.
        table: Vec<TableEntry>,
        /// Total encoded record length (to advance the scan).
        total_len: usize,
    },
}

/// Encode a commit record for `epoch` over an id-sorted chunk table.
pub fn encode_record(epoch: u64, table: &[TableEntry]) -> Vec<u8> {
    let json = serde_json::to_vec(table).expect("chunk table serializes");
    assert!(json.len() <= MAX_TABLE_LEN as usize, "table too large");
    let mut out = Vec::with_capacity(REC_HEADER_LEN + json.len() + REC_TRAILER_LEN);
    out.extend_from_slice(&REC_MAGIC);
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&(json.len() as u32).to_le_bytes());
    out.extend_from_slice(&json);
    let crc = crc64(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Parse one commit record at the start of `buf` (which runs to the
/// end of media).
pub fn decode_record(buf: &[u8]) -> RecordParse {
    if buf.len() < 8 || buf[..8] != REC_MAGIC {
        // Not enough bytes even to carry the magic, or the magic is
        // absent entirely: clean end of the log. A torn write that
        // kept fewer than 8 magic bytes lands here too, which is
        // indistinguishable from (and equivalent to) never writing.
        return RecordParse::End;
    }
    if buf.len() < REC_HEADER_LEN {
        // Magic present but the fixed header is cut short: torn.
        return RecordParse::Torn;
    }
    let epoch = le64(buf, 8);
    let table_len = le32(buf, 16);
    if table_len > MAX_TABLE_LEN {
        return RecordParse::Torn;
    }
    let total_len = REC_HEADER_LEN + table_len as usize + REC_TRAILER_LEN;
    if buf.len() < total_len {
        return RecordParse::Torn;
    }
    let body_end = REC_HEADER_LEN + table_len as usize;
    if le64(buf, body_end) != crc64(&buf[..body_end]) {
        return RecordParse::Torn;
    }
    match serde_json::from_slice::<Vec<TableEntry>>(&buf[REC_HEADER_LEN..body_end]) {
        Ok(table) => RecordParse::Valid {
            epoch,
            table,
            total_len,
        },
        // CRC passed but the JSON does not parse: a format bug rather
        // than a torn write, but recovery still must not advance.
        Err(_) => RecordParse::Torn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64) -> TableEntry {
        TableEntry {
            id,
            name: format!("chunk{id}"),
            len: 4096,
            payload_len: 4096,
            slot: 1,
            offset: 8192 * id,
            cap: 4160,
            crc: 0xDEAD_BEEF ^ id,
            epoch: 2,
            spare: Some((8192 * id + 4160, 4160)),
        }
    }

    #[test]
    fn superblock_round_trips_and_rejects_damage() {
        let sb = Superblock {
            process_id: 42,
            data_capacity: 1 << 20,
        };
        let enc = sb.encode();
        assert_eq!(Superblock::decode(&enc), Some(sb));
        assert_eq!(sb.log_start(), 64 + (1 << 20));
        let mut bad = enc;
        bad[30] ^= 1;
        assert_eq!(Superblock::decode(&bad), None);
        assert_eq!(Superblock::decode(&enc[..10]), None);
    }

    #[test]
    fn slot_header_round_trips_and_rejects_damage() {
        let h = SlotHeader {
            id: 7,
            epoch: 3,
            payload_len: 4096,
            payload_crc: 0xABCD,
        };
        let enc = h.encode();
        assert_eq!(SlotHeader::decode(&enc).unwrap(), h);
        let mut bad = enc;
        bad[20] ^= 1;
        assert!(SlotHeader::decode(&bad).is_err());
    }

    #[test]
    fn record_round_trips() {
        let table = vec![entry(1), entry(2)];
        let enc = encode_record(5, &table);
        match decode_record(&enc) {
            RecordParse::Valid {
                epoch,
                table: t,
                total_len,
            } => {
                assert_eq!(epoch, 5);
                assert_eq!(t, table);
                assert_eq!(total_len, enc.len());
            }
            other => panic!("expected valid record, got {other:?}"),
        }
    }

    #[test]
    fn every_truncation_of_a_record_is_torn_or_end() {
        let enc = encode_record(1, &[entry(9)]);
        for keep in 0..enc.len() {
            let got = decode_record(&enc[..keep]);
            if keep < 8 {
                assert_eq!(got, RecordParse::End, "keep={keep}");
            } else {
                assert_eq!(got, RecordParse::Torn, "keep={keep}");
            }
        }
    }

    #[test]
    fn zeros_and_garbage_are_a_clean_end() {
        assert_eq!(decode_record(&[0u8; 256]), RecordParse::End);
        assert_eq!(decode_record(b"not a record, just bytes"), RecordParse::End);
        assert_eq!(decode_record(&[]), RecordParse::End);
    }

    #[test]
    fn flipped_body_byte_is_torn() {
        let mut enc = encode_record(1, &[entry(3)]);
        let mid = REC_HEADER_LEN + 4;
        enc[mid] ^= 0x40;
        assert_eq!(decode_record(&enc), RecordParse::Torn);
    }
}
