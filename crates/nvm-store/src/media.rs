//! The media abstraction the container writes through.
//!
//! [`Media`] is the narrowest interface that still captures the two
//! facts crash consistency depends on: *writes may be reordered or
//! lost until an fsync*, and *a write may tear* (only a prefix reaches
//! media). [`FileMedia`] backs a real container file; [`MemMedia`] is
//! the in-memory equivalent used by the crash-injection harness, which
//! replays recorded operation logs into arbitrary crash images (see
//! [`crate::crashsim`]).

use nvm_chkpt::persist::PersistError;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Byte-addressed, growable, fsync-able storage.
pub trait Media: Send {
    /// Write `data` at `offset`, extending the media if needed. Not
    /// durable until [`Media::fsync`].
    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<(), PersistError>;

    /// Read up to `buf.len()` bytes at `offset`; returns how many were
    /// available (short at end-of-media, zero past it).
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<usize, PersistError>;

    /// Durability barrier: everything written so far survives a crash.
    fn fsync(&mut self) -> Result<(), PersistError>;

    /// Current media length in bytes.
    fn len(&self) -> u64;

    /// True when nothing has ever been written.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A container file on the real filesystem.
#[derive(Debug)]
pub struct FileMedia {
    file: File,
    len: u64,
}

impl FileMedia {
    /// Open (or create) the file at `path`.
    pub fn open(path: &Path) -> Result<Self, PersistError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        Ok(FileMedia { file, len })
    }
}

impl Media for FileMedia {
    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<(), PersistError> {
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(data)?;
        self.len = self.len.max(offset + data.len() as u64);
        Ok(())
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<usize, PersistError> {
        if offset >= self.len {
            return Ok(0);
        }
        self.file.seek(SeekFrom::Start(offset))?;
        let want = buf.len().min((self.len - offset) as usize);
        self.file.read_exact(&mut buf[..want])?;
        Ok(want)
    }

    fn fsync(&mut self) -> Result<(), PersistError> {
        self.file.sync_all()?;
        Ok(())
    }

    fn len(&self) -> u64 {
        self.len
    }
}

/// In-memory media (crash-harness images, fast unit tests).
#[derive(Clone, Debug, Default)]
pub struct MemMedia {
    bytes: Vec<u8>,
}

impl MemMedia {
    /// Empty media.
    pub fn new() -> Self {
        MemMedia::default()
    }

    /// Media pre-loaded with `bytes` (a crash image).
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        MemMedia { bytes }
    }

    /// The full current byte image.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable byte access (corruption injection in tests).
    pub fn bytes_mut(&mut self) -> &mut Vec<u8> {
        &mut self.bytes
    }
}

impl Media for MemMedia {
    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<(), PersistError> {
        let end = offset as usize + data.len();
        if self.bytes.len() < end {
            self.bytes.resize(end, 0);
        }
        self.bytes[offset as usize..end].copy_from_slice(data);
        Ok(())
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<usize, PersistError> {
        let offset = offset as usize;
        if offset >= self.bytes.len() {
            return Ok(0);
        }
        let want = buf.len().min(self.bytes.len() - offset);
        buf[..want].copy_from_slice(&self.bytes[offset..offset + want]);
        Ok(want)
    }

    fn fsync(&mut self) -> Result<(), PersistError> {
        Ok(())
    }

    fn len(&self) -> u64 {
        self.bytes.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_media_reads_back_and_shortens_at_eof() {
        let mut m = MemMedia::new();
        m.write_at(4, b"abcd").unwrap();
        assert_eq!(m.len(), 8);
        let mut buf = [0u8; 8];
        assert_eq!(m.read_at(0, &mut buf).unwrap(), 8);
        assert_eq!(&buf[4..], b"abcd");
        assert_eq!(m.read_at(6, &mut buf).unwrap(), 2);
        assert_eq!(m.read_at(100, &mut buf).unwrap(), 0);
    }

    #[test]
    fn file_media_round_trips() {
        let td = nvm_emu::TempDir::new("nvm_store_media_test").unwrap();
        let path = td.join("m.bin");
        let mut f = FileMedia::open(&path).unwrap();
        assert!(f.is_empty());
        f.write_at(10, b"xyz").unwrap();
        f.fsync().unwrap();
        assert_eq!(f.len(), 13);
        drop(f);
        let mut g = FileMedia::open(&path).unwrap();
        assert_eq!(g.len(), 13);
        let mut buf = [0u8; 3];
        assert_eq!(g.read_at(10, &mut buf).unwrap(), 3);
        assert_eq!(&buf, b"xyz");
    }
}
