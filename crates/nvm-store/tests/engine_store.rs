//! Engine ↔ store integration: checkpoints mirrored into a real
//! container file survive the process, restart strategies behave over
//! media exactly as they do over the emulated device, and attaching a
//! store never perturbs simulation results.

use nvm_chkpt::{CheckpointEngine, EngineConfig, EngineError, RestartStrategy};
use nvm_emu::{MemoryDevice, SimDuration, TempDir, VirtualClock};
use nvm_paging::ChunkId;
use nvm_store::{Container, FileStore, MemMedia, Persistence};

const MB: usize = 1 << 20;
const STORE_CAP: usize = 8 * MB;

fn devices() -> (MemoryDevice, MemoryDevice, VirtualClock) {
    let dram = MemoryDevice::dram(64 * MB);
    let nvm = MemoryDevice::pcm(64 * MB);
    (dram, nvm, VirtualClock::new())
}

fn engine_with(
    dram: &MemoryDevice,
    nvm: &MemoryDevice,
    clock: VirtualClock,
    store: Option<Box<dyn Persistence>>,
) -> CheckpointEngine {
    let mut e =
        CheckpointEngine::new(7, dram, nvm, 16 * MB, clock, EngineConfig::default()).unwrap();
    if let Some(s) = store {
        e.set_persistence(s);
    }
    e
}

/// Three epochs of a small two-chunk workload; returns the chunk ids
/// in allocation order.
fn run_three_epochs(e: &mut CheckpointEngine) -> (ChunkId, ChunkId) {
    let a = e.nvmalloc("a", 4096, true).unwrap();
    let b = e.nvmalloc("b", 12000, true).unwrap();
    for epoch in 0u8..3 {
        e.write(a, 0, &vec![epoch + 1; 4096]).unwrap();
        e.write(b, 100, &vec![0x40 | epoch; 8000]).unwrap();
        e.compute(SimDuration::from_millis(200));
        e.nvchkptall().unwrap();
    }
    (a, b)
}

#[test]
fn checkpoints_survive_the_process_through_a_file_store() {
    let tmp = TempDir::new("store-roundtrip").unwrap();
    let path = tmp.join("rank.store");

    let (a, b, bytes_a, bytes_b) = {
        let (dram, nvm, clock) = devices();
        let store = FileStore::open_path(&path, 7, STORE_CAP).unwrap();
        let mut e = engine_with(&dram, &nvm, clock, Some(Box::new(store)));
        let (a, b) = run_three_epochs(&mut e);
        (
            a,
            b,
            e.committed_bytes(a).unwrap(),
            e.committed_bytes(b).unwrap(),
        )
        // engine, devices, clock all drop here: the process is gone.
    };

    // A brand-new "process" recovers from the file alone.
    let (dram, nvm, clock) = devices();
    let store = FileStore::open_existing(&path).unwrap();
    let (mut e2, report) = CheckpointEngine::restart_from_store(
        &dram,
        &nvm,
        16 * MB,
        clock,
        EngineConfig::default(),
        RestartStrategy::Eager,
        Box::new(store),
        nvm_chkpt::Tracer::disabled(),
    )
    .unwrap();
    assert_eq!(report.restored.len(), 2);
    assert!(report.corrupt.is_empty());
    assert!(
        report.duration > SimDuration::ZERO,
        "restore must cost time"
    );
    assert_eq!(e2.committed_bytes(a).unwrap(), bytes_a);
    assert_eq!(e2.committed_bytes(b).unwrap(), bytes_b);
    assert_eq!(e2.epoch(), 3, "resume after the last committed epoch");

    // And the revived process can keep checkpointing into the store.
    e2.write(a, 0, &[9u8; 4096]).unwrap();
    e2.nvchkptall().unwrap();
    assert_eq!(e2.committed_bytes(a).unwrap(), vec![9u8; 4096]);
}

#[test]
fn lazy_store_restart_never_reads_untouched_chunks_from_media() {
    let tmp = TempDir::new("store-lazy").unwrap();
    let path = tmp.join("rank.store");
    let (a, b) = {
        let (dram, nvm, clock) = devices();
        let store = FileStore::open_path(&path, 7, STORE_CAP).unwrap();
        let mut e = engine_with(&dram, &nvm, clock, Some(Box::new(store)));
        run_three_epochs(&mut e)
    };

    let (dram, nvm, clock) = devices();
    let store = FileStore::open_existing(&path).unwrap();
    let reads_at_open = store.stats().payload_reads;
    let (mut e2, report) = CheckpointEngine::restart_from_store(
        &dram,
        &nvm,
        16 * MB,
        clock,
        EngineConfig::default(),
        RestartStrategy::Lazy,
        Box::new(store),
        nvm_chkpt::Tracer::disabled(),
    )
    .unwrap();
    assert_eq!(report.deferred.len(), 2);
    assert!(report.restored.is_empty());
    let stats = e2.persistence_stats().unwrap();
    assert_eq!(
        stats.payload_reads, reads_at_open,
        "lazy restart must not fetch any payload from media"
    );
    assert_eq!(e2.store_lazy_pending_count(), 2);

    // First access to `a` fetches exactly one payload.
    let mut buf = vec![0u8; 4096];
    e2.read(a, 0, &mut buf).unwrap();
    assert_eq!(buf, vec![3u8; 4096]);
    let stats = e2.persistence_stats().unwrap();
    assert_eq!(stats.payload_reads, reads_at_open + 1);
    assert_eq!(e2.store_lazy_pending_count(), 1);

    // `b` stays pinned on media: still never read.
    let _ = b;
    assert_eq!(
        e2.persistence_stats().unwrap().payload_reads,
        reads_at_open + 1
    );
}

#[test]
fn corrupted_slot_surfaces_on_first_access_not_at_restart() {
    let tmp = TempDir::new("store-corrupt").unwrap();
    let path = tmp.join("rank.store");
    let (a, b) = {
        let (dram, nvm, clock) = devices();
        let store = FileStore::open_path(&path, 7, STORE_CAP).unwrap();
        let mut e = engine_with(&dram, &nvm, clock, Some(Box::new(store)));
        run_three_epochs(&mut e)
    };

    // Flip one payload byte of `a` on media.
    {
        let mut store = FileStore::open_existing(&path).unwrap();
        store.corrupt_payload(a).unwrap();
    }

    let (dram, nvm, clock) = devices();
    let store = FileStore::open_existing(&path).unwrap();
    let (mut e2, report) = CheckpointEngine::restart_from_store(
        &dram,
        &nvm,
        16 * MB,
        clock,
        EngineConfig::default(),
        RestartStrategy::Lazy,
        Box::new(store),
        nvm_chkpt::Tracer::disabled(),
    )
    .unwrap();
    // Lazy restart succeeds without noticing: nothing was read yet.
    assert!(report.corrupt.is_empty());
    assert_eq!(report.deferred.len(), 2);

    // The clean chunk restores fine ...
    let mut buf = vec![0u8; 100];
    e2.read(b, 0, &mut buf).unwrap();
    // ... the corrupted one fails with a checksum error on first touch.
    let err = e2.read(a, 0, &mut [0u8; 16]).unwrap_err();
    match err {
        EngineError::ChecksumMismatch { chunk, .. } => assert_eq!(chunk, a),
        other => panic!("expected checksum mismatch, got {other:?}"),
    }

    // An eager restart of the same file reports the corruption up
    // front instead.
    let (dram, nvm, clock) = devices();
    let store = FileStore::open_existing(&path).unwrap();
    let (_e3, report) = CheckpointEngine::restart_from_store(
        &dram,
        &nvm,
        16 * MB,
        clock,
        EngineConfig::default(),
        RestartStrategy::Eager,
        Box::new(store),
        nvm_chkpt::Tracer::disabled(),
    )
    .unwrap();
    assert_eq!(report.corrupt, vec![a]);
    assert_eq!(report.restored, vec![b]);
}

#[test]
fn coordinated_checkpoint_drains_store_lazy_chunks_first() {
    let tmp = TempDir::new("store-lazy-chkpt").unwrap();
    let path = tmp.join("rank.store");
    let (a, b) = {
        let (dram, nvm, clock) = devices();
        let store = FileStore::open_path(&path, 7, STORE_CAP).unwrap();
        let mut e = engine_with(&dram, &nvm, clock, Some(Box::new(store)));
        run_three_epochs(&mut e)
    };

    // Lazy restart, then checkpoint immediately without touching
    // anything: the engine must restore from media before committing,
    // or it would overwrite good checkpoints with unrestored garbage.
    let (dram, nvm, clock) = devices();
    let store = FileStore::open_existing(&path).unwrap();
    let (mut e2, _) = CheckpointEngine::restart_from_store(
        &dram,
        &nvm,
        16 * MB,
        clock,
        EngineConfig::default(),
        RestartStrategy::Lazy,
        Box::new(store),
        nvm_chkpt::Tracer::disabled(),
    )
    .unwrap();
    assert_eq!(e2.store_lazy_pending_count(), 2);
    e2.nvchkptall().unwrap();
    assert_eq!(e2.store_lazy_pending_count(), 0);
    drop(e2);

    // A third process still sees the epoch-2 payloads.
    let (dram, nvm, clock) = devices();
    let store = FileStore::open_existing(&path).unwrap();
    let (e3, _) = CheckpointEngine::restart_from_store(
        &dram,
        &nvm,
        16 * MB,
        clock,
        EngineConfig::default(),
        RestartStrategy::Eager,
        Box::new(store),
        nvm_chkpt::Tracer::disabled(),
    )
    .unwrap();
    assert_eq!(e3.committed_bytes(a).unwrap(), vec![3u8; 4096]);
    let expect_b = {
        let mut v = vec![0u8; 12000];
        v[100..8100].fill(0x42);
        v
    };
    assert_eq!(e3.committed_bytes(b).unwrap(), expect_b);
}

#[test]
fn attaching_a_store_does_not_perturb_simulation_results() {
    let run = |store: Option<Box<dyn Persistence>>| {
        let (dram, nvm, clock) = devices();
        let mut e = engine_with(&dram, &nvm, clock.clone(), store);
        run_three_epochs(&mut e);
        (clock.now(), e.log().to_vec(), e.stats())
    };

    let (t_plain, log_plain, stats_plain) = run(None);
    let (t_store, log_store, stats_store) = run(Some(Box::new(
        Container::open(MemMedia::new(), 7, STORE_CAP).unwrap(),
    )));
    assert_eq!(
        t_plain, t_store,
        "store mirroring must be free in virtual time"
    );
    assert_eq!(log_plain, log_store);
    assert_eq!(
        serde_json::to_string(&stats_plain).unwrap(),
        serde_json::to_string(&stats_store).unwrap()
    );
}

#[test]
fn identical_engine_histories_produce_identical_store_files() {
    let tmp = TempDir::new("store-determinism").unwrap();
    let run = |path: &std::path::Path| {
        let (dram, nvm, clock) = devices();
        let store = FileStore::open_path(path, 7, STORE_CAP).unwrap();
        let mut e = engine_with(&dram, &nvm, clock, Some(Box::new(store)));
        run_three_epochs(&mut e);
    };
    let p1 = tmp.join("one.store");
    let p2 = tmp.join("two.store");
    run(&p1);
    run(&p2);
    let b1 = std::fs::read(&p1).unwrap();
    let b2 = std::fs::read(&p2).unwrap();
    assert_eq!(b1, b2, "same history must lay out the same bytes");
}
