//! The crash-consistency sweep: crash the standard scripted run at
//! every media-operation boundary — clean cuts, dropped unsynced
//! writes, and torn prefixes at every byte of every write — and
//! require recovery to produce exactly the last durable epoch,
//! bit-for-bit, or a clean "no checkpoint".

use nvm_store::{
    check_crash_point, enumerate_points_exhaustive, expected_mark, standard_run, CrashMode,
    CrashPoint,
};
use proptest::prelude::*;

#[test]
fn exhaustive_sweep_over_every_crash_boundary() {
    let run = standard_run();
    assert!(
        run.marks.len() >= 4,
        "the standard run must commit at least 4 epochs (got {})",
        run.marks.len()
    );
    let points = enumerate_points_exhaustive(&run.ops);
    // Sanity: the sweep is genuinely dense — well beyond one point
    // per operation.
    assert!(
        points.len() > 2 * run.ops.len(),
        "sweep unexpectedly sparse: {} points for {} ops",
        points.len(),
        run.ops.len()
    );
    for point in &points {
        check_crash_point(&run, point);
    }
}

#[test]
fn every_epoch_is_reachable_as_a_recovery_outcome() {
    // The sweep is only meaningful if crash points actually land in
    // every epoch's window: check the oracle maps some point to each
    // committed epoch and one to the virgin (None) state.
    let run = standard_run();
    let mut seen = std::collections::BTreeSet::new();
    for at_op in 0..=run.ops.len() {
        let p = CrashPoint {
            at_op,
            mode: CrashMode::Keep,
        };
        seen.insert(expected_mark(&run.marks, &p).map(|m| m.epoch));
    }
    assert!(
        seen.contains(&None),
        "a pre-commit crash must recover to virgin"
    );
    for mark in &run.marks {
        assert!(
            seen.contains(&Some(mark.epoch)),
            "no crash point recovers to epoch {}",
            mark.epoch
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_crash_points_recover_to_the_oracle(
        at_op in 0usize..512,
        mode_sel in 0u8..3,
        keep in 0usize..65536,
    ) {
        let run = standard_run();
        let at_op = at_op % (run.ops.len() + 1);
        let mode = match mode_sel {
            0 => CrashMode::Keep,
            1 => CrashMode::Drop,
            _ => CrashMode::Torn { keep },
        };
        // Torn requires a write op to tear; redirect to Keep when the
        // op at `at_op` is a fsync or past the end.
        let mode = match mode {
            CrashMode::Torn { .. }
                if !matches!(
                    run.ops.get(at_op),
                    Some(nvm_store::OpRecord::Write { .. })
                ) =>
            {
                CrashMode::Keep
            }
            m => m,
        };
        check_crash_point(&run, &CrashPoint { at_op, mode });
    }
}
