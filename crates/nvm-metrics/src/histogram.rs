//! Log2-bucketed integer histogram.
//!
//! All state is integral, every update is a commutative add (bucket
//! increment, count, sum) or max, so a histogram filled by concurrent
//! writers is bit-identical to one filled serially — the property the
//! cluster simulator's determinism guarantee rests on. Percentiles are
//! extracted from the buckets with integer arithmetic only.

use serde::{Deserialize, Serialize};

/// Number of buckets: one for zero plus one per possible bit width of
/// a `u64` value.
pub const BUCKET_COUNT: usize = 65;

/// Bucket index for a value: its bit width (0 for the value 0), so
/// bucket `i >= 1` covers the half-open power-of-two range
/// `[2^(i-1), 2^i)` and bucket 0 holds exactly the value 0.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive `(low, high)` bounds of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < BUCKET_COUNT, "bucket index {i} out of range");
    if i == 0 {
        (0, 0)
    } else {
        (1u64 << (i - 1), (1u64 << (i - 1)) + ((1u64 << (i - 1)) - 1))
    }
}

/// A log2-bucketed histogram of `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKET_COUNT],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKET_COUNT],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64; BUCKET_COUNT] {
        &self.buckets
    }

    /// Reassemble a histogram from raw accumulator state (used when
    /// draining the atomic-cell histograms behind pre-resolved
    /// handles).
    pub(crate) fn from_parts(buckets: [u64; BUCKET_COUNT], count: u64, sum: u64, max: u64) -> Self {
        Histogram {
            buckets,
            count,
            sum,
            max,
        }
    }

    /// Fold another histogram in. Commutative and associative, so the
    /// merged result is independent of merge order.
    pub fn merge_from(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (`0.0 < q <= 1.0`) extracted from the buckets:
    /// the inclusive upper bound of the bucket holding the sample of
    /// rank `ceil(q * count)`, clamped to the observed maximum (so the
    /// tail quantiles of a distribution that ends mid-bucket, and
    /// `quantile(1.0)` always, report the exact max). Returns 0 for an
    /// empty histogram. Integer arithmetic only — deterministic.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        debug_assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        // ceil(q * count) without floating-point accumulation error on
        // the rank itself: compute in f64, then clamp into [1, count].
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`Histogram::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Serializable snapshot (non-empty buckets only, in index order).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            max: self.max,
            p50: self.p50(),
            p90: self.p90(),
            p99: self.p99(),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(i, &n)| (bucket_bounds(i).1, n))
                .collect(),
        }
    }
}

/// Serializable form of a [`Histogram`]: summary statistics plus the
/// non-empty buckets as `(inclusive_upper_bound, count)` pairs in
/// ascending bound order.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Exact maximum sample.
    pub max: u64,
    /// Median (bucket upper bound, clamped to max).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// `(upper_bound, count)` for each non-empty bucket.
    pub buckets: Vec<(u64, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_bounds(0), (0, 0));
        assert_eq!(bucket_bounds(1), (1, 1));
        assert_eq!(bucket_bounds(2), (2, 3));
        assert_eq!(bucket_bounds(11), (1024, 2047));
        assert_eq!(bucket_bounds(64), (1u64 << 63, u64::MAX));
        // Bucket ranges tile the u64 domain with no gaps.
        for i in 1..BUCKET_COUNT {
            assert_eq!(bucket_bounds(i).0, bucket_bounds(i - 1).1 + 1);
        }
    }

    #[test]
    fn percentiles_from_known_distribution() {
        let mut h = Histogram::new();
        // 100 samples: 1..=100. p50 -> rank 50 -> value 50 -> bucket
        // [32,63]; p90 -> rank 90 -> bucket [64,127] clamped to 100.
        for v in 1..=100 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.max(), 100);
        assert_eq!(h.p50(), 63);
        assert_eq!(h.p90(), 100, "tail bucket clamps to the exact max");
        assert_eq!(h.p99(), 100);
        assert_eq!(h.quantile(1.0), 100);
    }

    #[test]
    fn single_sample_percentiles_are_exact() {
        let mut h = Histogram::new();
        h.record(777);
        assert_eq!(h.p50(), 777);
        assert_eq!(h.p99(), 777);
        assert_eq!(h.max(), 777);
    }

    #[test]
    fn zero_samples_land_in_bucket_zero() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn merge_equals_interleaved_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [3u64, 900, 17, 0, 1 << 40] {
            a.record(v);
            all.record(v);
        }
        for v in [5u64, 5, 123_456] {
            b.record(v);
            all.record(v);
        }
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_eq!(ab, all);
        assert_eq!(ba, all, "merge is commutative");
    }

    #[test]
    fn snapshot_lists_nonempty_buckets_in_order() {
        let mut h = Histogram::new();
        h.record(1);
        h.record(100);
        h.record(100);
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![(1, 1), (127, 2)]);
        assert!(s.buckets.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
