//! Paper-facing derived metrics.
//!
//! Each quantity here corresponds to a figure or table in the source
//! paper (see DESIGN.md §10 for the mapping); all are pure functions
//! of a [`MetricsSnapshot`], so they are exactly as deterministic as
//! the snapshot itself — the f64 divisions run on identical integer
//! inputs on every run and thread count.

use crate::names;
use crate::registry::MetricsSnapshot;
use serde::{Deserialize, Serialize};

/// Ratio `num / den`, or 0.0 when the denominator is zero.
fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Quantities the paper reports, computed from raw metrics.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DerivedMetrics {
    /// Fraction of checkpoint bytes moved by the background pre-copy
    /// before the coordinated stop: `precopied / (precopied +
    /// coordinated)`.
    pub precopy_fraction: f64,
    /// Fraction of pre-copied bytes invalidated by later writes:
    /// `wasted / precopied`.
    pub wasted_copy_ratio: f64,
    /// Achieved NVM-class (PCM + NVM device) throughput while busy, in
    /// bytes/s: `(reads + writes) / busy_time`.
    pub effective_nvm_bandwidth_bytes_per_s: f64,
    /// Peak 1-second interconnect demand across all node links, in
    /// bytes/s (max-merged gauge).
    pub peak_interconnect_bytes_per_s: u64,
    /// Helper-core duty cycle: `busy / elapsed` across all helpers.
    pub helper_cpu_utilization: f64,
    /// Share of the run's critical path spent in *exposed* checkpoint
    /// work (coordinated stop + pre-copy interference). Comes from the
    /// trace-analysis blame report, not the snapshot; stays 0 until
    /// [`DerivedMetrics::set_exposure`] is called with one.
    pub exposed_checkpoint_fraction: f64,
    /// Share of aggregate rank-time spent in checkpoint work *hidden*
    /// under application compute. Same provenance as
    /// [`DerivedMetrics::exposed_checkpoint_fraction`].
    pub hidden_checkpoint_fraction: f64,
}

impl DerivedMetrics {
    /// Compute every derived quantity from a merged cluster snapshot.
    /// Missing inputs yield 0 rather than an error so partial
    /// instrumentations (unit tests, single-crate use) still export.
    pub fn from_snapshot(snap: &MetricsSnapshot) -> Self {
        let precopied = snap.counter(names::CHKPT_PRECOPIED_BYTES_TOTAL);
        let coordinated = snap.counter(names::CHKPT_COORDINATED_BYTES_TOTAL);
        let wasted = snap.counter(names::CHKPT_WASTED_PRECOPY_BYTES_TOTAL);

        let nvm_bytes = snap.counter(names::device_read_bytes_total("pcm"))
            + snap.counter(names::device_write_bytes_total("pcm"))
            + snap.counter(names::device_read_bytes_total("nvm"))
            + snap.counter(names::device_write_bytes_total("nvm"));
        let nvm_busy_ns = snap.counter(names::device_busy_ns_total("pcm"))
            + snap.counter(names::device_busy_ns_total("nvm"));

        DerivedMetrics {
            precopy_fraction: ratio(precopied, precopied + coordinated),
            wasted_copy_ratio: ratio(wasted, precopied),
            effective_nvm_bandwidth_bytes_per_s: ratio(nvm_bytes, nvm_busy_ns) * 1e9,
            peak_interconnect_bytes_per_s: snap.gauge(names::LINK_PEAK_BYTES_PER_S).max(0) as u64,
            helper_cpu_utilization: ratio(
                snap.counter(names::HELPER_BUSY_NS_TOTAL),
                snap.counter(names::HELPER_ELAPSED_NS_TOTAL),
            ),
            exposed_checkpoint_fraction: 0.0,
            hidden_checkpoint_fraction: 0.0,
        }
    }

    /// Fill the exposure quantities from a trace-analysis blame
    /// report. Snapshots carry no causal ordering, so these two cannot
    /// be derived in [`DerivedMetrics::from_snapshot`]; the bench
    /// exporter calls this after running the analyzer over the trace.
    pub fn set_exposure(&mut self, exposed: f64, hidden: f64) {
        self.exposed_checkpoint_fraction = exposed;
        self.hidden_checkpoint_fraction = hidden;
    }
}

/// The full exported artifact: raw snapshot plus derived quantities.
/// Serialized with stable key order; `run_all --metrics` writes this
/// as JSON next to the Prometheus text.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Merged cluster-wide registry contents.
    pub snapshot: MetricsSnapshot,
    /// Paper-facing quantities computed from `snapshot`.
    pub derived: DerivedMetrics,
}

impl MetricsReport {
    /// Build a report from a snapshot, computing the derived block.
    pub fn new(snapshot: MetricsSnapshot) -> Self {
        let derived = DerivedMetrics::from_snapshot(&snapshot);
        MetricsReport { snapshot, derived }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn derived_quantities_from_known_inputs() {
        let mut r = MetricsRegistry::new();
        r.counter_add(names::CHKPT_PRECOPIED_BYTES_TOTAL, 750);
        r.counter_add(names::CHKPT_COORDINATED_BYTES_TOTAL, 250);
        r.counter_add(names::CHKPT_WASTED_PRECOPY_BYTES_TOTAL, 75);
        r.counter_add(names::device_write_bytes_total("pcm"), 1_000_000);
        r.counter_add(names::device_busy_ns_total("pcm"), 2_000_000_000);
        r.counter_add(names::HELPER_BUSY_NS_TOTAL, 300);
        r.counter_add(names::HELPER_ELAPSED_NS_TOTAL, 1200);
        r.gauge_max(names::LINK_PEAK_BYTES_PER_S, 42_000);
        let d = DerivedMetrics::from_snapshot(&r.snapshot());
        assert_eq!(d.precopy_fraction, 0.75);
        assert_eq!(d.wasted_copy_ratio, 0.1);
        assert_eq!(d.effective_nvm_bandwidth_bytes_per_s, 500_000.0);
        assert_eq!(d.peak_interconnect_bytes_per_s, 42_000);
        assert_eq!(d.helper_cpu_utilization, 0.25);
        // Exposure is trace-derived; snapshots leave it zero until set.
        assert_eq!(d.exposed_checkpoint_fraction, 0.0);
        assert_eq!(d.hidden_checkpoint_fraction, 0.0);
        let mut filled = d;
        filled.set_exposure(0.125, 0.5);
        assert_eq!(filled.exposed_checkpoint_fraction, 0.125);
        assert_eq!(filled.hidden_checkpoint_fraction, 0.5);
    }

    #[test]
    fn empty_snapshot_derives_all_zeros() {
        let d = DerivedMetrics::from_snapshot(&MetricsSnapshot::default());
        assert_eq!(d, DerivedMetrics::default());
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut r = MetricsRegistry::new();
        r.counter_add(names::CHKPT_FAULTS_TOTAL, 7);
        r.observe(names::CHKPT_FAULT_NS, 123);
        let report = MetricsReport::new(r.snapshot());
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: MetricsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
