//! Metric registries and the shared recording handle.

use crate::histogram::{Histogram, HistogramSnapshot};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// One named metric.
///
/// The histogram variant is large (65 fixed buckets), but registries
/// hold a handful of long-lived entries and `observe` resolves them
/// in place through the map — boxing would add a pointer chase to the
/// hot path to shrink a map node that is never moved.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum Metric {
    /// Monotone sum; merges by addition.
    Counter(u64),
    /// High-water mark (peak rates, largest residue); merges by max,
    /// so the cluster-level value is the worst rank/node.
    Gauge(i64),
    /// Log2-bucketed distribution; merges bucketwise.
    Histogram(Histogram),
}

/// A set of named metrics. Names are `&'static str` so steady-state
/// updates allocate nothing; iteration order (and therefore snapshot
/// and export order) is the `BTreeMap`'s name order — stable across
/// runs, thread counts, and platforms.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    metrics: BTreeMap<&'static str, Metric>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the named counter (created at 0).
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        match self.metrics.entry(name).or_insert(Metric::Counter(0)) {
            Metric::Counter(v) => *v += delta,
            other => panic!("metric {name} is not a counter: {other:?}"),
        }
    }

    /// Raise the named gauge to at least `value` (created at `value`).
    pub fn gauge_max(&mut self, name: &'static str, value: i64) {
        match self.metrics.entry(name).or_insert(Metric::Gauge(value)) {
            Metric::Gauge(v) => *v = (*v).max(value),
            other => panic!("metric {name} is not a gauge: {other:?}"),
        }
    }

    /// Record one sample into the named histogram.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        match self
            .metrics
            .entry(name)
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.record(value),
            other => panic!("metric {name} is not a histogram: {other:?}"),
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Look up a metric by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.get(name)
    }

    /// Fold another registry into this one: counters add, gauges take
    /// the max, histograms merge bucketwise. Every combination rule is
    /// commutative and associative, but callers (the cluster
    /// coordinator) still merge in rank order to mirror the trace-merge
    /// discipline. Panics if the same name has different metric types.
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        for (name, theirs) in &other.metrics {
            match self.metrics.entry(name) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(theirs.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    match (slot.get_mut(), theirs) {
                        (Metric::Counter(a), Metric::Counter(b)) => *a += b,
                        (Metric::Gauge(a), Metric::Gauge(b)) => *a = (*a).max(*b),
                        (Metric::Histogram(a), Metric::Histogram(b)) => a.merge_from(b),
                        (mine, theirs) => {
                            panic!("metric {name} type mismatch: {mine:?} vs {theirs:?}")
                        }
                    }
                }
            }
        }
    }

    /// Serializable snapshot with stable (name-sorted) ordering.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for (name, metric) in &self.metrics {
            match metric {
                Metric::Counter(v) => {
                    snap.counters.insert(name.to_string(), *v);
                }
                Metric::Gauge(v) => {
                    snap.gauges.insert(name.to_string(), *v);
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.to_string(), h.snapshot());
                }
            }
        }
        snap
    }
}

/// Serializable registry contents. `BTreeMap` keys keep the JSON
/// byte-stable: same run → same bytes, regardless of thread count.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotone counters.
    pub counters: BTreeMap<String, u64>,
    /// High-water-mark gauges.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value, defaulting to 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, defaulting to 0 when absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram summary, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }
}

/// Clonable recording handle, mirroring `nvm_trace::Tracer`: `None`
/// (the default) is disabled and every update is a single branch;
/// enabled handles share one registry behind a mutex. All updates are
/// commutative (add/max/bucket-add), so a registry shared by
/// concurrently executing ranks — the per-node device registries — is
/// still bit-deterministic.
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Option<Arc<Mutex<MetricsRegistry>>>,
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Metrics {
    /// Disabled handle; every update is a no-op costing one branch.
    pub fn disabled() -> Self {
        Metrics::default()
    }

    /// Enabled handle over a fresh registry.
    pub fn new() -> Self {
        Metrics {
            inner: Some(Arc::new(Mutex::new(MetricsRegistry::new()))),
        }
    }

    /// True when a registry is attached.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Add `delta` to a counter. No-op when disabled.
    #[inline]
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.lock().unwrap().counter_add(name, delta);
        }
    }

    /// Raise a gauge to at least `value`. No-op when disabled.
    #[inline]
    pub fn gauge_max(&self, name: &'static str, value: i64) {
        if let Some(inner) = &self.inner {
            inner.lock().unwrap().gauge_max(name, value);
        }
    }

    /// Record a histogram sample. No-op when disabled.
    #[inline]
    pub fn observe(&self, name: &'static str, value: u64) {
        if let Some(inner) = &self.inner {
            inner.lock().unwrap().observe(name, value);
        }
    }

    /// Copy of the attached registry (empty when disabled).
    pub fn registry(&self) -> MetricsRegistry {
        self.inner
            .as_ref()
            .map(|inner| inner.lock().unwrap().clone())
            .unwrap_or_default()
    }

    /// Merge the attached registry into `target` (no-op when
    /// disabled).
    pub fn merge_into(&self, target: &mut MetricsRegistry) {
        if let Some(inner) = &self.inner {
            target.merge_from(&inner.lock().unwrap());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_record_and_snapshot() {
        let mut r = MetricsRegistry::new();
        r.counter_add("c", 2);
        r.counter_add("c", 3);
        r.gauge_max("g", 10);
        r.gauge_max("g", 4);
        r.observe("h", 100);
        r.observe("h", 3);
        let s = r.snapshot();
        assert_eq!(s.counter("c"), 5);
        assert_eq!(s.gauge("g"), 10);
        let h = s.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.max, 100);
        assert_eq!(s.counter("missing"), 0);
    }

    #[test]
    fn merge_combines_by_type() {
        let mut a = MetricsRegistry::new();
        a.counter_add("c", 1);
        a.gauge_max("g", 7);
        a.observe("h", 10);
        let mut b = MetricsRegistry::new();
        b.counter_add("c", 2);
        b.counter_add("only_b", 9);
        b.gauge_max("g", 3);
        b.observe("h", 2000);
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_eq!(ab, ba, "merge is commutative");
        let s = ab.snapshot();
        assert_eq!(s.counter("c"), 3);
        assert_eq!(s.counter("only_b"), 9);
        assert_eq!(s.gauge("g"), 7);
        assert_eq!(s.histogram("h").unwrap().count, 2);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn merge_rejects_type_clash() {
        let mut a = MetricsRegistry::new();
        a.counter_add("x", 1);
        let mut b = MetricsRegistry::new();
        b.gauge_max("x", 1);
        a.merge_from(&b);
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let m = Metrics::disabled();
        assert!(!m.enabled());
        m.counter_add("c", 1);
        m.observe("h", 1);
        assert!(m.registry().is_empty());
    }

    #[test]
    fn clones_share_one_registry() {
        let m = Metrics::new();
        let m2 = m.clone();
        m.counter_add("c", 1);
        m2.counter_add("c", 1);
        assert_eq!(m.registry().snapshot().counter("c"), 2);
        let mut target = MetricsRegistry::new();
        m.merge_into(&mut target);
        assert_eq!(target.snapshot().counter("c"), 2);
    }

    #[test]
    fn snapshot_json_is_name_ordered() {
        let mut r = MetricsRegistry::new();
        r.counter_add("zebra", 1);
        r.counter_add("alpha", 1);
        let json = serde_json::to_string(&r.snapshot()).unwrap();
        let a = json.find("alpha").unwrap();
        let z = json.find("zebra").unwrap();
        assert!(a < z, "keys must serialize in sorted order: {json}");
    }
}
