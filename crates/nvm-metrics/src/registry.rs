//! Metric registries and the shared recording handle.

use crate::histogram::{bucket_index, Histogram, HistogramSnapshot, BUCKET_COUNT};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One named metric.
///
/// The histogram variant is large (65 fixed buckets), but registries
/// hold a handful of long-lived entries and `observe` resolves them
/// in place through the map — boxing would add a pointer chase to the
/// hot path to shrink a map node that is never moved.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum Metric {
    /// Monotone sum; merges by addition.
    Counter(u64),
    /// High-water mark (peak rates, largest residue); merges by max,
    /// so the cluster-level value is the worst rank/node.
    Gauge(i64),
    /// Log2-bucketed distribution; merges bucketwise.
    Histogram(Histogram),
}

/// A set of named metrics. Names are `&'static str` so steady-state
/// updates allocate nothing; iteration order (and therefore snapshot
/// and export order) is the `BTreeMap`'s name order — stable across
/// runs, thread counts, and platforms.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    metrics: BTreeMap<&'static str, Metric>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the named counter (created at 0).
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        match self.metrics.entry(name).or_insert(Metric::Counter(0)) {
            Metric::Counter(v) => *v += delta,
            other => panic!("metric {name} is not a counter: {other:?}"),
        }
    }

    /// Raise the named gauge to at least `value` (created at `value`).
    pub fn gauge_max(&mut self, name: &'static str, value: i64) {
        match self.metrics.entry(name).or_insert(Metric::Gauge(value)) {
            Metric::Gauge(v) => *v = (*v).max(value),
            other => panic!("metric {name} is not a gauge: {other:?}"),
        }
    }

    /// Record one sample into the named histogram.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        match self
            .metrics
            .entry(name)
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.record(value),
            other => panic!("metric {name} is not a histogram: {other:?}"),
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Look up a metric by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.get(name)
    }

    /// Fold a complete histogram into the named entry (used when
    /// draining pre-resolved [`HistogramHandle`]s back into a
    /// registry).
    fn merge_histogram(&mut self, name: &'static str, other: &Histogram) {
        match self
            .metrics
            .entry(name)
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.merge_from(other),
            other => panic!("metric {name} is not a histogram: {other:?}"),
        }
    }

    /// Fold another registry into this one: counters add, gauges take
    /// the max, histograms merge bucketwise. Every combination rule is
    /// commutative and associative, but callers (the cluster
    /// coordinator) still merge in rank order to mirror the trace-merge
    /// discipline. Panics if the same name has different metric types.
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        for (name, theirs) in &other.metrics {
            match self.metrics.entry(name) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(theirs.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    match (slot.get_mut(), theirs) {
                        (Metric::Counter(a), Metric::Counter(b)) => *a += b,
                        (Metric::Gauge(a), Metric::Gauge(b)) => *a = (*a).max(*b),
                        (Metric::Histogram(a), Metric::Histogram(b)) => a.merge_from(b),
                        (mine, theirs) => {
                            panic!("metric {name} type mismatch: {mine:?} vs {theirs:?}")
                        }
                    }
                }
            }
        }
    }

    /// Serializable snapshot with stable (name-sorted) ordering.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for (name, metric) in &self.metrics {
            match metric {
                Metric::Counter(v) => {
                    snap.counters.insert(name.to_string(), *v);
                }
                Metric::Gauge(v) => {
                    snap.gauges.insert(name.to_string(), *v);
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.to_string(), h.snapshot());
                }
            }
        }
        snap
    }
}

/// Serializable registry contents. `BTreeMap` keys keep the JSON
/// byte-stable: same run → same bytes, regardless of thread count.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotone counters.
    pub counters: BTreeMap<String, u64>,
    /// High-water-mark gauges.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value, defaulting to 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, defaulting to 0 when absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram summary, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }
}

/// A counter cell shared between a [`CounterHandle`] and the registry
/// that will eventually fold it in. `touched` distinguishes "added
/// zero" from "never updated" so folding never invents entries the
/// locked path would not have created.
#[derive(Default)]
struct SharedCounter {
    value: AtomicU64,
    touched: AtomicBool,
}

/// A histogram cell shared between a [`HistogramHandle`] and the
/// registry. All fields are atomics updated with commutative ops
/// (bucket add, count add, sum add, max), so concurrent observers
/// produce bit-identical folded state regardless of interleaving.
struct SharedHistogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for SharedHistogram {
    fn default() -> Self {
        SharedHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl SharedHistogram {
    fn to_histogram(&self) -> Histogram {
        Histogram::from_parts(
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            self.count.load(Ordering::Relaxed),
            self.sum.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        )
    }
}

/// Pre-resolved metric cells, keyed by name so folding back into the
/// registry stays name-ordered and repeated resolution of the same
/// name shares one cell.
#[derive(Default)]
struct Resolved {
    counters: BTreeMap<&'static str, Arc<SharedCounter>>,
    histograms: BTreeMap<&'static str, Arc<SharedHistogram>>,
}

struct MetricsInner {
    registry: Mutex<MetricsRegistry>,
    resolved: Mutex<Resolved>,
}

/// A pre-resolved counter: one relaxed atomic add per update — no
/// mutex, no name lookup. Obtained from [`Metrics::counter_handle`];
/// the cell is folded into the registry on
/// [`Metrics::registry`]/[`Metrics::merge_into`]. u64 adds are
/// commutative, so a handle shared by concurrently executing ranks is
/// bit-deterministic. A handle from a disabled [`Metrics`] is a
/// branch-only no-op.
#[derive(Clone, Default)]
pub struct CounterHandle {
    cell: Option<Arc<SharedCounter>>,
}

impl CounterHandle {
    /// A no-op handle (what a disabled [`Metrics`] hands out).
    pub fn disabled() -> Self {
        CounterHandle::default()
    }

    /// True when updates reach a registry.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.cell.is_some()
    }

    /// Add `delta` to the counter. No-op when disabled.
    #[inline]
    pub fn add(&self, delta: u64) {
        if let Some(cell) = &self.cell {
            cell.value.fetch_add(delta, Ordering::Relaxed);
            cell.touched.store(true, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for CounterHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CounterHandle")
            .field("enabled", &self.enabled())
            .finish()
    }
}

/// A pre-resolved histogram: a few relaxed atomic ops per sample.
/// Obtained from [`Metrics::histogram_handle`]; same folding and
/// determinism story as [`CounterHandle`]. The one semantic nuance vs
/// the locked path: `sum` wraps instead of saturating, which diverges
/// only past `u64::MAX` total — unreachable for the nanosecond/byte
/// quantities recorded here.
#[derive(Clone, Default)]
pub struct HistogramHandle {
    cell: Option<Arc<SharedHistogram>>,
}

impl HistogramHandle {
    /// A no-op handle (what a disabled [`Metrics`] hands out).
    pub fn disabled() -> Self {
        HistogramHandle::default()
    }

    /// True when updates reach a registry.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.cell.is_some()
    }

    /// Record one sample. No-op when disabled.
    #[inline]
    pub fn observe(&self, value: u64) {
        if let Some(cell) = &self.cell {
            cell.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
            cell.count.fetch_add(1, Ordering::Relaxed);
            cell.sum.fetch_add(value, Ordering::Relaxed);
            cell.max.fetch_max(value, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for HistogramHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistogramHandle")
            .field("enabled", &self.enabled())
            .finish()
    }
}

/// Clonable recording handle, mirroring `nvm_trace::Tracer`: `None`
/// (the default) is disabled and every update is a single branch;
/// enabled handles share one registry behind a mutex. All updates are
/// commutative (add/max/bucket-add), so a registry shared by
/// concurrently executing ranks — the per-node device registries — is
/// still bit-deterministic.
///
/// Hot paths should pre-resolve names once via
/// [`Metrics::counter_handle`]/[`Metrics::histogram_handle`] and
/// update through the returned lock-free cells; the name-keyed
/// `counter_add`/`gauge_max`/`observe` methods lock the registry and
/// walk the name map on every call, which is fine for per-epoch
/// coordinator updates but not for per-event device charges.
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Option<Arc<MetricsInner>>,
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Metrics {
    /// Disabled handle; every update is a no-op costing one branch.
    pub fn disabled() -> Self {
        Metrics::default()
    }

    /// Enabled handle over a fresh registry.
    pub fn new() -> Self {
        Metrics {
            inner: Some(Arc::new(MetricsInner {
                registry: Mutex::new(MetricsRegistry::new()),
                resolved: Mutex::new(Resolved::default()),
            })),
        }
    }

    /// True when a registry is attached.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Add `delta` to a counter. No-op when disabled.
    #[inline]
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.lock().unwrap().counter_add(name, delta);
        }
    }

    /// Raise a gauge to at least `value`. No-op when disabled.
    #[inline]
    pub fn gauge_max(&self, name: &'static str, value: i64) {
        if let Some(inner) = &self.inner {
            inner.registry.lock().unwrap().gauge_max(name, value);
        }
    }

    /// Record a histogram sample. No-op when disabled.
    #[inline]
    pub fn observe(&self, name: &'static str, value: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.lock().unwrap().observe(name, value);
        }
    }

    /// Pre-resolve a counter name into a lock-free handle. Repeated
    /// resolution of the same name shares one cell; the cell's total
    /// is folded into the registry when it is read or merged, summed
    /// with any locked-path `counter_add`s to the same name.
    pub fn counter_handle(&self, name: &'static str) -> CounterHandle {
        let Some(inner) = &self.inner else {
            return CounterHandle::disabled();
        };
        let mut resolved = inner.resolved.lock().unwrap();
        let cell = resolved.counters.entry(name).or_default();
        CounterHandle {
            cell: Some(Arc::clone(cell)),
        }
    }

    /// Pre-resolve a histogram name into a lock-free handle (see
    /// [`Metrics::counter_handle`]).
    pub fn histogram_handle(&self, name: &'static str) -> HistogramHandle {
        let Some(inner) = &self.inner else {
            return HistogramHandle::disabled();
        };
        let mut resolved = inner.resolved.lock().unwrap();
        let cell = resolved.histograms.entry(name).or_default();
        HistogramHandle {
            cell: Some(Arc::clone(cell)),
        }
    }

    /// Copy of the attached registry (empty when disabled), with all
    /// pre-resolved cells folded in.
    pub fn registry(&self) -> MetricsRegistry {
        let Some(inner) = &self.inner else {
            return MetricsRegistry::new();
        };
        let mut reg = inner.registry.lock().unwrap().clone();
        Self::fold_resolved(&inner.resolved.lock().unwrap(), &mut reg);
        reg
    }

    /// Merge the attached registry (with pre-resolved cells folded in)
    /// into `target`. No-op when disabled.
    pub fn merge_into(&self, target: &mut MetricsRegistry) {
        if let Some(inner) = &self.inner {
            target.merge_from(&inner.registry.lock().unwrap());
            Self::fold_resolved(&inner.resolved.lock().unwrap(), target);
        }
    }

    /// Fold pre-resolved cells into `reg`, skipping never-touched
    /// cells so resolution alone never creates entries.
    fn fold_resolved(resolved: &Resolved, reg: &mut MetricsRegistry) {
        for (name, cell) in &resolved.counters {
            if cell.touched.load(Ordering::Relaxed) {
                reg.counter_add(name, cell.value.load(Ordering::Relaxed));
            }
        }
        for (name, cell) in &resolved.histograms {
            if cell.count.load(Ordering::Relaxed) > 0 {
                reg.merge_histogram(name, &cell.to_histogram());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_record_and_snapshot() {
        let mut r = MetricsRegistry::new();
        r.counter_add("c", 2);
        r.counter_add("c", 3);
        r.gauge_max("g", 10);
        r.gauge_max("g", 4);
        r.observe("h", 100);
        r.observe("h", 3);
        let s = r.snapshot();
        assert_eq!(s.counter("c"), 5);
        assert_eq!(s.gauge("g"), 10);
        let h = s.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.max, 100);
        assert_eq!(s.counter("missing"), 0);
    }

    #[test]
    fn merge_combines_by_type() {
        let mut a = MetricsRegistry::new();
        a.counter_add("c", 1);
        a.gauge_max("g", 7);
        a.observe("h", 10);
        let mut b = MetricsRegistry::new();
        b.counter_add("c", 2);
        b.counter_add("only_b", 9);
        b.gauge_max("g", 3);
        b.observe("h", 2000);
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_eq!(ab, ba, "merge is commutative");
        let s = ab.snapshot();
        assert_eq!(s.counter("c"), 3);
        assert_eq!(s.counter("only_b"), 9);
        assert_eq!(s.gauge("g"), 7);
        assert_eq!(s.histogram("h").unwrap().count, 2);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn merge_rejects_type_clash() {
        let mut a = MetricsRegistry::new();
        a.counter_add("x", 1);
        let mut b = MetricsRegistry::new();
        b.gauge_max("x", 1);
        a.merge_from(&b);
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let m = Metrics::disabled();
        assert!(!m.enabled());
        m.counter_add("c", 1);
        m.observe("h", 1);
        assert!(m.registry().is_empty());
    }

    #[test]
    fn clones_share_one_registry() {
        let m = Metrics::new();
        let m2 = m.clone();
        m.counter_add("c", 1);
        m2.counter_add("c", 1);
        assert_eq!(m.registry().snapshot().counter("c"), 2);
        let mut target = MetricsRegistry::new();
        m.merge_into(&mut target);
        assert_eq!(target.snapshot().counter("c"), 2);
    }

    #[test]
    fn handles_fold_into_registry_like_locked_path() {
        let m = Metrics::new();
        let c = m.counter_handle("c");
        let h = m.histogram_handle("h");
        c.add(2);
        m.counter_add("c", 3); // locked path to the same name sums in
        c.add(5);
        h.observe(100);
        h.observe(3);
        m.observe("h", 7);
        let s = m.registry().snapshot();
        assert_eq!(s.counter("c"), 10);
        let hs = s.histogram("h").unwrap();
        assert_eq!(hs.count, 3);
        assert_eq!(hs.max, 100);
        // merge_into folds identically.
        let mut target = MetricsRegistry::new();
        m.merge_into(&mut target);
        assert_eq!(target.snapshot(), s);
    }

    #[test]
    fn resolving_alone_creates_no_entries() {
        let m = Metrics::new();
        let _c = m.counter_handle("never_touched");
        let _h = m.histogram_handle("never_observed");
        assert!(m.registry().is_empty());
        // A zero-delta add still marks the counter live, matching the
        // locked path (counter_add(name, 0) creates the entry).
        m.counter_handle("zero").add(0);
        assert_eq!(m.registry().len(), 1);
        assert_eq!(m.registry().snapshot().counter("zero"), 0);
    }

    #[test]
    fn repeated_resolution_shares_one_cell() {
        let m = Metrics::new();
        let a = m.counter_handle("c");
        let b = m.counter_handle("c");
        a.add(1);
        b.add(2);
        assert_eq!(m.registry().snapshot().counter("c"), 3);
    }

    #[test]
    fn disabled_handles_are_noops() {
        let m = Metrics::disabled();
        let c = m.counter_handle("c");
        let h = m.histogram_handle("h");
        assert!(!c.enabled());
        assert!(!h.enabled());
        c.add(1);
        h.observe(1);
        assert!(m.registry().is_empty());
    }

    #[test]
    fn snapshot_json_is_name_ordered() {
        let mut r = MetricsRegistry::new();
        r.counter_add("zebra", 1);
        r.counter_add("alpha", 1);
        let json = serde_json::to_string(&r.snapshot()).unwrap();
        let a = json.find("alpha").unwrap();
        let z = json.find("zebra").unwrap();
        assert!(a < z, "keys must serialize in sorted order: {json}");
    }
}
