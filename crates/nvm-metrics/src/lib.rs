//! # nvm-metrics — deterministic metrics for the checkpoint simulator
//!
//! Where `nvm-trace` records *events*, this crate records *aggregates*:
//! counters, high-water-mark gauges, and log2-bucketed histograms whose
//! percentiles come from integer buckets. Three properties drive the
//! design:
//!
//! 1. **Determinism.** Every update is commutative (add, max, bucket
//!    increment), so a registry shared by ranks running on a thread
//!    pool holds bit-identical state no matter the interleaving, and
//!    per-rank registries merged in rank order on the coordinator
//!    reproduce the serial run exactly. Percentiles use integer
//!    arithmetic only.
//! 2. **Allocation-light.** Metric names are `&'static str` (see
//!    [`names`]); steady-state updates touch a `BTreeMap` entry and
//!    never allocate. Histograms are fixed 65-slot arrays.
//! 3. **One branch when disabled.** The [`Metrics`] handle mirrors
//!    `nvm_trace::Tracer`: the default handle holds `None` and every
//!    update is a single `Option` test, keeping the un-instrumented
//!    quick preset at wall-clock parity.
//!
//! Exports: Prometheus text exposition ([`to_prometheus_text`]) and a
//! stable-ordered JSON [`MetricsReport`] (raw [`MetricsSnapshot`] plus
//! [`DerivedMetrics`], the paper-facing quantities). The [`MergeStats`]
//! trait backs exhaustive stat-struct aggregation in the cluster
//! coordinator.

pub mod derived;
pub mod export;
pub mod histogram;
pub mod merge;
pub mod names;
pub mod registry;

pub use derived::{DerivedMetrics, MetricsReport};
pub use export::{to_prometheus_text, validate_prometheus_text};
pub use histogram::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, BUCKET_COUNT};
pub use merge::MergeStats;
pub use registry::{
    CounterHandle, HistogramHandle, Metric, Metrics, MetricsRegistry, MetricsSnapshot,
};
