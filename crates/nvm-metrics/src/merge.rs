//! Exhaustive stat merging.
//!
//! The cluster coordinator used to sum stat structs field by field at
//! the aggregation site; a field added to the struct was silently
//! dropped from the cluster totals (this actually happened:
//! `EngineStats::restarts` never reached the aggregate). `MergeStats`
//! moves the combination next to the struct definition, where impls
//! are written with *exhaustive destructuring* — no `..` — so adding a
//! field is a compile error until the merge handles it.

use std::ops::AddAssign;

/// Fold a per-rank/per-node stat struct into a running total.
///
/// Implementors must combine **every** field; write the impl by
/// destructuring `other` without `..` so the compiler enforces that.
/// The blanket impl covers any stat struct with a field-exhaustive
/// `AddAssign`.
pub trait MergeStats {
    /// Combine `other` into `self`.
    fn merge_stats(&mut self, other: &Self);

    /// Merge an ordered sequence into a fresh default — the coordinator
    /// calls this over ranks in rank order.
    fn merged<'a, I>(items: I) -> Self
    where
        Self: Default + 'a,
        I: IntoIterator<Item = &'a Self>,
    {
        let mut total = Self::default();
        for item in items {
            total.merge_stats(item);
        }
        total
    }
}

impl<T: for<'a> AddAssign<&'a T>> MergeStats for T {
    fn merge_stats(&mut self, other: &Self) {
        *self += other;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Default, PartialEq, Clone)]
    struct Demo {
        a: u64,
        b: u64,
    }

    impl AddAssign<&Demo> for Demo {
        fn add_assign(&mut self, rhs: &Demo) {
            let Demo { a, b } = rhs;
            self.a += a;
            self.b += b;
        }
    }

    #[test]
    fn blanket_impl_merges_via_add_assign() {
        let parts = [Demo { a: 1, b: 10 }, Demo { a: 2, b: 20 }];
        let total = Demo::merged(parts.iter());
        assert_eq!(total, Demo { a: 3, b: 30 });
        let mut acc = Demo::default();
        acc.merge_stats(&parts[0]);
        acc.merge_stats(&parts[1]);
        assert_eq!(acc, total);
    }
}
