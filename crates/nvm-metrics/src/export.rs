//! Exporters: Prometheus text exposition and stable JSON.

use crate::histogram::HistogramSnapshot;
use crate::registry::MetricsSnapshot;
use std::fmt::Write as _;

/// Render a snapshot in the Prometheus text exposition format
/// (version 0.0.4). Metric families appear in name order; histograms
/// emit cumulative `_bucket{le=...}` series plus `_sum` and `_count`,
/// with a final `le="+Inf"` bucket. Output is deterministic: same
/// snapshot → same bytes.
pub fn to_prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &snap.gauges {
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, h) in &snap.histograms {
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (upper, count) in &h.buckets {
            cumulative += count;
            let _ = writeln!(out, "{name}_bucket{{le=\"{upper}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.count);
    }
    out
}

/// Minimal structural validation of Prometheus text: every non-comment
/// line must be `name[{labels}] value` with a numeric value, every
/// series must be preceded by a `# TYPE` declaration for its family,
/// and histogram families must end with an `+Inf` bucket and matching
/// `_count`. Returns the number of samples on success. This is the
/// check CI runs on the exported file.
pub fn validate_prometheus_text(text: &str) -> Result<usize, String> {
    let mut declared: Vec<String> = Vec::new();
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| format!("line {}: TYPE without name", lineno + 1))?;
            let kind = parts
                .next()
                .ok_or_else(|| format!("line {}: TYPE without kind", lineno + 1))?;
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("line {}: unknown metric kind {kind}", lineno + 1));
            }
            declared.push(name.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value: {line}", lineno + 1))?;
        value
            .parse::<f64>()
            .map_err(|_| format!("line {}: non-numeric value {value}", lineno + 1))?;
        let base = series.split('{').next().unwrap_or(series);
        let family = base
            .strip_suffix("_bucket")
            .or_else(|| base.strip_suffix("_sum"))
            .or_else(|| base.strip_suffix("_count"))
            .filter(|f| declared.iter().any(|d| d == f))
            .unwrap_or(base);
        if !declared.iter().any(|d| d == family) {
            return Err(format!(
                "line {}: series {series} has no # TYPE declaration",
                lineno + 1
            ));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples".to_string());
    }
    Ok(samples)
}

/// Reconstruct a cumulative-bucket view (as Prometheus would scrape
/// it) from a snapshot histogram — used by tests to cross-check the
/// text renderer.
pub fn cumulative_buckets(h: &HistogramSnapshot) -> Vec<(u64, u64)> {
    let mut cumulative = 0u64;
    h.buckets
        .iter()
        .map(|&(upper, count)| {
            cumulative += count;
            (upper, cumulative)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut r = MetricsRegistry::new();
        r.counter_add("chkpt_faults_total", 3);
        r.gauge_max("link_peak_bytes_per_s", 1024);
        r.observe("chkpt_fault_ns", 100);
        r.observe("chkpt_fault_ns", 5000);
        r.snapshot()
    }

    #[test]
    fn prometheus_text_round_trips_validation() {
        let text = to_prometheus_text(&sample_snapshot());
        assert!(text.contains("# TYPE chkpt_faults_total counter"));
        assert!(text.contains("chkpt_faults_total 3"));
        assert!(text.contains("# TYPE link_peak_bytes_per_s gauge"));
        assert!(text.contains("# TYPE chkpt_fault_ns histogram"));
        assert!(text.contains("chkpt_fault_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("chkpt_fault_ns_sum 5100"));
        assert!(text.contains("chkpt_fault_ns_count 2"));
        let samples = validate_prometheus_text(&text).expect("renderer output must validate");
        // 1 counter + 1 gauge + (2 buckets + Inf + sum + count).
        assert_eq!(samples, 7);
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let snap = sample_snapshot();
        let h = snap.histogram("chkpt_fault_ns").unwrap();
        let cum = cumulative_buckets(h);
        assert_eq!(cum, vec![(127, 1), (8191, 2)]);
        let text = to_prometheus_text(&snap);
        assert!(text.contains("chkpt_fault_ns_bucket{le=\"127\"} 1"));
        assert!(text.contains("chkpt_fault_ns_bucket{le=\"8191\"} 2"));
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_prometheus_text("").is_err());
        assert!(validate_prometheus_text("no_type_decl 1\n").is_err());
        assert!(validate_prometheus_text("# TYPE x counter\nx notanumber\n").is_err());
        assert!(validate_prometheus_text("# TYPE x widget\nx 1\n").is_err());
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = to_prometheus_text(&sample_snapshot());
        let b = to_prometheus_text(&sample_snapshot());
        assert_eq!(a, b);
    }
}
