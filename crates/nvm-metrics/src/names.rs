//! Canonical metric names.
//!
//! Centralised so instrumentation sites, derived-metric computation,
//! exporters, and tests all agree on spelling. Names follow Prometheus
//! conventions: `_total` for counters, explicit units (`_bytes`,
//! `_ns`, `_bytes_per_s`).

// --- Checkpoint engine (per rank, merged in rank order) ---

/// Coordinated checkpoints completed.
pub const CHKPT_CHECKPOINTS_TOTAL: &str = "chkpt_checkpoints_total";
/// Restarts performed.
pub const CHKPT_RESTARTS_TOTAL: &str = "chkpt_restarts_total";
/// Write faults taken (copy-on-write interference).
pub const CHKPT_FAULTS_TOTAL: &str = "chkpt_faults_total";
/// Bytes copied by the pre-copy (background) phase.
pub const CHKPT_PRECOPIED_BYTES_TOTAL: &str = "chkpt_precopied_bytes_total";
/// Bytes copied inside the coordinated stop.
pub const CHKPT_COORDINATED_BYTES_TOTAL: &str = "chkpt_coordinated_bytes_total";
/// Bytes skipped because the pre-copy already moved them.
pub const CHKPT_SKIPPED_BYTES_TOTAL: &str = "chkpt_skipped_bytes_total";
/// Pre-copied bytes invalidated by later writes (wasted work).
pub const CHKPT_WASTED_PRECOPY_BYTES_TOTAL: &str = "chkpt_wasted_precopy_bytes_total";
/// Virtual time spent inside coordinated stops.
pub const CHKPT_COORDINATED_TIME_NS_TOTAL: &str = "chkpt_coordinated_time_ns_total";
/// Virtual time the application was slowed by checkpoint interference.
pub const CHKPT_INTERFERENCE_TIME_NS_TOTAL: &str = "chkpt_interference_time_ns_total";
/// Virtual time spent servicing write faults.
pub const CHKPT_FAULT_TIME_NS_TOTAL: &str = "chkpt_fault_time_ns_total";
/// Distribution of coordinated-checkpoint latency (ns).
pub const CHKPT_COORDINATED_NS: &str = "chkpt_coordinated_ns";
/// Distribution of per-fault handling time (ns).
pub const CHKPT_FAULT_NS: &str = "chkpt_fault_ns";

// --- Durable store backend (per rank, merged in rank order) ---

/// Bytes written to store media (slot writes + commit records).
pub const STORE_BYTES_WRITTEN_TOTAL: &str = "store_bytes_written_total";
/// Durability barriers (fsyncs) issued by the store.
pub const STORE_FSYNCS_TOTAL: &str = "store_fsyncs_total";
/// Commit records appended durably.
pub const STORE_COMMITS_TOTAL: &str = "store_commits_total";
/// Committed payloads read back from media.
pub const STORE_PAYLOAD_READS_TOTAL: &str = "store_payload_reads_total";
/// Bytes of committed payload read back from media.
pub const STORE_PAYLOAD_READ_BYTES_TOTAL: &str = "store_payload_read_bytes_total";
/// Recovery scans performed.
pub const STORE_RECOVERIES_TOTAL: &str = "store_recoveries_total";
/// Torn/invalid trailing records detected and discarded by recovery.
pub const STORE_TORN_WRITES_TOTAL: &str = "store_torn_writes_total";

// --- Key-value serving layer (`nvm-kv`, per rank, merged in rank
// order) ---

/// Upserts applied.
pub const KV_UPSERTS_TOTAL: &str = "kv_upserts_total";
/// Point reads served.
pub const KV_READS_TOTAL: &str = "kv_reads_total";
/// Read-modify-writes applied.
pub const KV_RMWS_TOTAL: &str = "kv_rmws_total";
/// Deletes (tombstones) applied.
pub const KV_DELETES_TOTAL: &str = "kv_deletes_total";
/// Point reads that found no live record.
pub const KV_READ_MISSES_TOTAL: &str = "kv_read_misses_total";
/// Record-log bytes appended (headers + keys + values + padding).
pub const KV_LOG_APPENDED_BYTES_TOTAL: &str = "kv_log_appended_bytes_total";
/// Hash-index growths (table doubled and rehashed).
pub const KV_INDEX_SPLITS_TOTAL: &str = "kv_index_splits_total";
/// CPR checkpoint tokens taken.
pub const KV_CHECKPOINT_TOKENS_TOTAL: &str = "kv_checkpoint_tokens_total";
/// Log records replayed during recovery to a token.
pub const KV_RECOVERY_REPLAYED_TOTAL: &str = "kv_recovery_replayed_total";
/// Acknowledged-after-token records dropped during recovery.
pub const KV_RECOVERY_DROPPED_TOTAL: &str = "kv_recovery_dropped_total";
/// Distribution of per-operation serving latency (virtual ns).
pub const KV_OP_NS: &str = "kv_op_ns";
/// Distribution of checkpoint-token publication latency (virtual ns)
/// — the serving-path cost of taking a non-blocking checkpoint.
pub const KV_CHECKPOINT_TOKEN_NS: &str = "kv_checkpoint_token_ns";

// --- Cluster coordinator ---

/// Distribution of per-rank communication-stall duration (ns).
pub const CLUSTER_COMM_STALL_NS: &str = "cluster_comm_stall_ns";
/// Barrier synchronisations executed by the coordinator.
pub const CLUSTER_BARRIERS_TOTAL: &str = "cluster_barriers_total";

// --- Hard-failure recovery (coordinator) ---

/// Hard node failures recovered (any source).
pub const RECOVERY_HARD_TOTAL: &str = "recovery_hard_total";
/// Bytes pulled over the interconnect during recovery.
pub const RECOVERY_BYTES_FETCHED_TOTAL: &str = "recovery_bytes_fetched_total";
/// Recovery transfer attempts lost to link faults and retried.
pub const RECOVERY_RETRIES_TOTAL: &str = "recovery_retries_total";
/// Restored chunks verified bit-for-bit against their images.
pub const RECOVERY_CHUNKS_VERIFIED_TOTAL: &str = "recovery_chunks_verified_total";
/// Recoveries that fell back local-store → remote-buddy (container
/// absent or corrupt).
pub const RECOVERY_FALLBACK_REMOTE_TOTAL: &str = "recovery_fallback_remote_total";
/// Distribution of per-node recovery duration (ns).
pub const RECOVERY_TIME_NS: &str = "recovery_time_ns";

// --- RDMA helper process (per node, merged in node order) ---

/// Virtual time the helper core was busy.
pub const HELPER_BUSY_NS_TOTAL: &str = "helper_busy_ns_total";
/// Virtual time elapsed while the helper existed.
pub const HELPER_ELAPSED_NS_TOTAL: &str = "helper_elapsed_ns_total";
/// Bytes moved by the helper.
pub const HELPER_BYTES_COPIED_TOTAL: &str = "helper_bytes_copied_total";
/// Copy operations issued to the helper.
pub const HELPER_COPY_OPS_TOTAL: &str = "helper_copy_ops_total";
/// Dirty-page scans performed by the helper.
pub const HELPER_SCANS_TOTAL: &str = "helper_scans_total";
/// Distribution of helper transfer sizes (bytes).
pub const HELPER_TRANSFER_BYTES: &str = "helper_transfer_bytes";

// --- Interconnect link ---

/// Peak 1-second interconnect demand (bytes/s), max-merged.
pub const LINK_PEAK_BYTES_PER_S: &str = "link_peak_bytes_per_s";

// --- Emulated memory devices (per node; names keyed by device kind) ---

/// `dev_<kind>_read_bytes_total` for a device kind name
/// (`"dram"`/`"pcm"`/`"nvm"`); falls back to `other` for kinds added
/// later so instrumentation never panics on a new device.
pub fn device_read_bytes_total(kind: &str) -> &'static str {
    match kind {
        "dram" => "dev_dram_read_bytes_total",
        "pcm" => "dev_pcm_read_bytes_total",
        "nvm" => "dev_nvm_read_bytes_total",
        _ => "dev_other_read_bytes_total",
    }
}

/// `dev_<kind>_write_bytes_total` (see [`device_read_bytes_total`]).
pub fn device_write_bytes_total(kind: &str) -> &'static str {
    match kind {
        "dram" => "dev_dram_write_bytes_total",
        "pcm" => "dev_pcm_write_bytes_total",
        "nvm" => "dev_nvm_write_bytes_total",
        _ => "dev_other_write_bytes_total",
    }
}

/// `dev_<kind>_busy_ns_total` (see [`device_read_bytes_total`]).
pub fn device_busy_ns_total(kind: &str) -> &'static str {
    match kind {
        "dram" => "dev_dram_busy_ns_total",
        "pcm" => "dev_pcm_busy_ns_total",
        "nvm" => "dev_nvm_busy_ns_total",
        _ => "dev_other_busy_ns_total",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_names_cover_known_kinds() {
        assert_eq!(device_read_bytes_total("pcm"), "dev_pcm_read_bytes_total");
        assert_eq!(device_write_bytes_total("nvm"), "dev_nvm_write_bytes_total");
        assert_eq!(device_busy_ns_total("dram"), "dev_dram_busy_ns_total");
        assert_eq!(device_busy_ns_total("weird"), "dev_other_busy_ns_total");
    }
}
