//! The asynchronous checkpoint helper process (Table V).
//!
//! Each physical node runs one helper process responsible for remote
//! checkpoints. It maps the ranks' NVM metadata through the shared-NVM
//! interface, scans for `nvdirty` chunks, and ships them to the buddy
//! node. Its CPU cost has three components:
//!
//! * a per-chunk *scan* cost (the `nvdirty` query system call),
//! * a per-transfer *operation* cost (RDMA verb post + completion),
//! * the *copy* cost proper — staging bytes from NVM into registered
//!   NIC buffers at an effective software copy bandwidth.
//!
//! Pre-copy mode roughly doubles the helper's utilization (it scans
//! continuously and re-ships re-dirtied chunks) but, as Table V shows,
//! even the doubled utilization is a small share of one core — and
//! ~2.5% of a 12-core node.

use nvm_emu::SimDuration;
use nvm_metrics::{names, Metrics};
use serde::{Deserialize, Serialize};

/// Cost parameters of the helper.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HelperParams {
    /// Effective software copy bandwidth for one *bulk* burst (all
    /// checkpoint data aggregated and streamed at once): large
    /// sequential reads, amortized verb posting. Calibrated so
    /// Table V's no-pre-copy utilization (~13% of a core for
    /// ~4.4 GB/node per remote interval) is reproduced.
    pub bulk_bandwidth: f64,
    /// Effective copy bandwidth for *incremental* chunk-at-a-time
    /// pre-copy shipping: cache-cold chunk reads, per-chunk metadata
    /// and protection bookkeeping, interleaved with the application.
    /// Roughly half the bulk rate — this is why the paper's pre-copy
    /// helper utilization doubles while moving similar volume.
    pub incremental_bandwidth: f64,
    /// Fixed cost per transfer operation (RDMA post + completion).
    pub per_op: SimDuration,
    /// Cost per chunk scanned for `nvdirty` state.
    pub scan_per_chunk: SimDuration,
}

impl Default for HelperParams {
    fn default() -> Self {
        HelperParams {
            bulk_bandwidth: 576.0 * (1 << 20) as f64,
            incremental_bandwidth: 288.0 * (1 << 20) as f64,
            per_op: SimDuration::from_micros(50),
            scan_per_chunk: SimDuration::from_micros(2),
        }
    }
}

/// Helper accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HelperStats {
    /// CPU-busy time.
    pub busy: SimDuration,
    /// Wall (virtual) time the helper has existed.
    pub elapsed: SimDuration,
    /// Bytes shipped.
    pub bytes_copied: u64,
    /// Transfer operations issued.
    pub copy_ops: u64,
    /// Dirty-scan sweeps performed.
    pub scans: u64,
}

/// Field-exhaustive accumulation (no `..` in the destructuring): a
/// field added to [`HelperStats`] will not compile until this merge
/// handles it, so cluster-level helper totals cannot silently drop it.
/// Also provides [`nvm_metrics::MergeStats`] via its blanket impl.
impl std::ops::AddAssign<&HelperStats> for HelperStats {
    fn add_assign(&mut self, rhs: &HelperStats) {
        let HelperStats {
            busy,
            elapsed,
            bytes_copied,
            copy_ops,
            scans,
        } = *rhs;
        self.busy += busy;
        self.elapsed += elapsed;
        self.bytes_copied += bytes_copied;
        self.copy_ops += copy_ops;
        self.scans += scans;
    }
}

impl HelperStats {
    /// Aggregate utilization over merged stats (`busy / elapsed`).
    pub fn cpu_utilization(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.busy.as_secs_f64() / self.elapsed.as_secs_f64()
        }
    }
}

/// The per-node helper process model.
#[derive(Clone, Debug)]
pub struct HelperProcess {
    params: HelperParams,
    stats: HelperStats,
    metrics: Metrics,
}

impl HelperProcess {
    /// A helper with default cost parameters.
    pub fn new() -> Self {
        Self::with_params(HelperParams::default())
    }

    /// A helper with explicit parameters.
    pub fn with_params(params: HelperParams) -> Self {
        HelperProcess {
            params,
            stats: HelperStats::default(),
            metrics: Metrics::disabled(),
        }
    }

    /// Parameters in use.
    pub fn params(&self) -> HelperParams {
        self.params
    }

    /// Attach a metrics handle; subsequent scans/copies record into it.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }

    /// Charge one dirty-scan over `chunks` chunk records. Returns the
    /// CPU time consumed.
    pub fn scan(&mut self, chunks: usize) -> SimDuration {
        let cost = self.params.scan_per_chunk * chunks as u64;
        self.stats.busy += cost;
        self.stats.scans += 1;
        self.metrics.counter_add(names::HELPER_SCANS_TOTAL, 1);
        self.metrics
            .counter_add(names::HELPER_BUSY_NS_TOTAL, cost.as_nanos());
        cost
    }

    /// Charge the CPU cost of shipping one chunk of `bytes` through
    /// the *incremental* pre-copy path. Returns the CPU time consumed
    /// (wire time is the link's business).
    pub fn copy_chunk(&mut self, bytes: u64) -> SimDuration {
        self.copy_at(bytes, self.params.incremental_bandwidth)
    }

    /// Charge the CPU cost of shipping `bytes` as part of one *bulk*
    /// burst (the no-pre-copy path: everything aggregated and
    /// streamed).
    pub fn copy_bulk(&mut self, bytes: u64) -> SimDuration {
        self.copy_at(bytes, self.params.bulk_bandwidth)
    }

    fn copy_at(&mut self, bytes: u64, bandwidth: f64) -> SimDuration {
        let cost = self.params.per_op + SimDuration::for_transfer(bytes, bandwidth);
        self.stats.busy += cost;
        self.stats.bytes_copied += bytes;
        self.stats.copy_ops += 1;
        self.metrics.counter_add(names::HELPER_COPY_OPS_TOTAL, 1);
        self.metrics
            .counter_add(names::HELPER_BYTES_COPIED_TOTAL, bytes);
        self.metrics
            .counter_add(names::HELPER_BUSY_NS_TOTAL, cost.as_nanos());
        self.metrics.observe(names::HELPER_TRANSFER_BYTES, bytes);
        cost
    }

    /// Advance the helper's wall clock (busy or idle — busy time is
    /// charged separately by `scan`/`copy_chunk`).
    pub fn advance(&mut self, dur: SimDuration) {
        self.stats.elapsed += dur;
        self.metrics
            .counter_add(names::HELPER_ELAPSED_NS_TOTAL, dur.as_nanos());
    }

    /// CPU utilization of the dedicated helper core, in [0, 1+].
    pub fn cpu_utilization(&self) -> f64 {
        if self.stats.elapsed.is_zero() {
            0.0
        } else {
            self.stats.busy.as_secs_f64() / self.stats.elapsed.as_secs_f64()
        }
    }

    /// Node-wide utilization when the node has `cores` cores.
    pub fn node_utilization(&self, cores: usize) -> f64 {
        self.cpu_utilization() / cores.max(1) as f64
    }

    /// Accounting snapshot.
    pub fn stats(&self) -> HelperStats {
        self.stats
    }
}

impl Default for HelperProcess {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    #[test]
    fn utilization_is_busy_over_elapsed() {
        let mut h = HelperProcess::new();
        h.copy_bulk(576 * MB); // exactly 1 s of bulk copy at default bw
        h.advance(SimDuration::from_secs(10));
        let u = h.cpu_utilization();
        assert!((u - 0.1).abs() < 0.01, "expected ~10%, got {u}");
    }

    #[test]
    fn incremental_copies_cost_about_twice_bulk() {
        let mut a = HelperProcess::new();
        let mut b = HelperProcess::new();
        let bulk = a.copy_bulk(100 * MB);
        let incr = b.copy_chunk(100 * MB);
        let ratio = incr.as_secs_f64() / bulk.as_secs_f64();
        assert!((1.8..2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn table5_no_precopy_magnitude() {
        // Table V row 1: 370 MB/core, 12 cores, one remote interval of
        // ~60 s, burst-shipping everything once -> ~12.85% of a core.
        let mut h = HelperProcess::new();
        for _ in 0..12 {
            h.copy_bulk(370 * MB);
        }
        h.advance(SimDuration::from_secs(60));
        let u = h.cpu_utilization();
        assert!(
            (0.10..0.17).contains(&u),
            "expected ~13% helper utilization, got {u}"
        );
        // Node-wide this is tiny.
        assert!(h.node_utilization(12) < 0.015);
    }

    #[test]
    fn precopy_doubles_utilization_via_rescans_and_recopies() {
        // Pre-copy mode: continuous scanning + ~1.8x effective copy
        // volume (re-dirtied chunks shipped again) + many more ops.
        let mut h = HelperProcess::new();
        let chunks_per_rank = 31; // LAMMPS's chunk count
        for _ in 0..600 {
            h.scan(12 * chunks_per_rank); // 100 ms poll over 60 s
        }
        for _ in 0..12 {
            h.copy_chunk(370 * MB); // incremental shipping per interval
        }
        h.advance(SimDuration::from_secs(60));
        let u = h.cpu_utilization();
        assert!(
            (0.18..0.33).contains(&u),
            "expected ~25% helper utilization, got {u}"
        );
    }

    #[test]
    fn idle_helper_has_zero_utilization() {
        let mut h = HelperProcess::new();
        h.advance(SimDuration::from_secs(100));
        assert_eq!(h.cpu_utilization(), 0.0);
        let h2 = HelperProcess::new();
        assert_eq!(h2.cpu_utilization(), 0.0, "no elapsed time yet");
    }

    #[test]
    fn stats_merge_combines_every_field() {
        let a = HelperStats {
            busy: SimDuration::from_nanos(1),
            elapsed: SimDuration::from_nanos(2),
            bytes_copied: 3,
            copy_ops: 4,
            scans: 5,
        };
        let mut total = a;
        total += &a;
        assert_eq!(total.busy, SimDuration::from_nanos(2));
        assert_eq!(total.elapsed, SimDuration::from_nanos(4));
        assert_eq!(total.bytes_copied, 6);
        assert_eq!(total.copy_ops, 8);
        assert_eq!(total.scans, 10);
        assert_eq!(total.cpu_utilization(), 0.5);
    }

    #[test]
    fn metrics_mirror_stats() {
        use nvm_metrics::names;
        let mut h = HelperProcess::new();
        let m = Metrics::new();
        h.set_metrics(m.clone());
        h.scan(10);
        h.copy_chunk(MB);
        h.copy_bulk(2 * MB);
        h.advance(SimDuration::from_secs(1));
        let snap = m.registry().snapshot();
        let s = h.stats();
        assert_eq!(snap.counter(names::HELPER_SCANS_TOTAL), s.scans);
        assert_eq!(snap.counter(names::HELPER_COPY_OPS_TOTAL), s.copy_ops);
        assert_eq!(
            snap.counter(names::HELPER_BYTES_COPIED_TOTAL),
            s.bytes_copied
        );
        assert_eq!(snap.counter(names::HELPER_BUSY_NS_TOTAL), s.busy.as_nanos());
        assert_eq!(
            snap.counter(names::HELPER_ELAPSED_NS_TOTAL),
            s.elapsed.as_nanos()
        );
        let hist = snap.histogram(names::HELPER_TRANSFER_BYTES).unwrap();
        assert_eq!(hist.count, 2);
        assert_eq!(hist.max, 2 * MB);
    }

    #[test]
    fn stats_accumulate() {
        let mut h = HelperProcess::new();
        h.scan(100);
        h.copy_chunk(MB);
        h.copy_chunk(MB);
        let s = h.stats();
        assert_eq!(s.scans, 1);
        assert_eq!(s.copy_ops, 2);
        assert_eq!(s.bytes_copied, 2 * MB);
        assert!(!s.busy.is_zero());
    }
}
