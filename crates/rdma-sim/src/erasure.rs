//! XOR-parity (diskless-checkpointing style) remote redundancy.
//!
//! The paper's remote checkpoint replicates every rank's data on a
//! buddy node — 1x extra storage. The diskless-checkpointing
//! literature it builds on (Plank et al.; erasure-coded variants)
//! trades recovery breadth for space: a *parity group* of `N` data
//! nodes stores only the XOR of their checkpoints on a parity node
//! (`1/N` extra storage) and can reconstruct any **single** lost
//! member from the survivors plus the parity.
//!
//! This module implements that alternative remote tier so the
//! replication-vs-parity trade-off can be measured (`storage_bytes`
//! vs `RemoteStore::stored_bytes`) and recovery exercised end-to-end.

use nvm_chkpt::checksum::crc64;
use nvm_emu::{DeviceError, MemoryDevice, RegionId, SimDuration};
use nvm_paging::ChunkId;
use std::collections::HashMap;

/// Errors from the parity store.
#[derive(Debug)]
pub enum ErasureError {
    /// Device failure on the parity node.
    Device(DeviceError),
    /// Encoding requires every group member's block.
    WrongMemberCount {
        /// Blocks supplied.
        got: usize,
        /// Group size.
        expected: usize,
    },
    /// Recovery needs exactly `group_size - 1` survivors.
    WrongSurvivorCount {
        /// Survivors supplied.
        got: usize,
        /// Survivors required.
        expected: usize,
    },
    /// No parity stored for this chunk.
    NoParity(ChunkId),
    /// Parity block failed its checksum.
    ParityCorrupt(ChunkId),
}

impl From<DeviceError> for ErasureError {
    fn from(e: DeviceError) -> Self {
        ErasureError::Device(e)
    }
}

impl std::fmt::Display for ErasureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ErasureError::Device(e) => write!(f, "parity device: {e}"),
            ErasureError::WrongMemberCount { got, expected } => {
                write!(f, "need {expected} member blocks, got {got}")
            }
            ErasureError::WrongSurvivorCount { got, expected } => {
                write!(f, "need {expected} survivor blocks, got {got}")
            }
            ErasureError::NoParity(id) => write!(f, "no parity for {id:?}"),
            ErasureError::ParityCorrupt(id) => write!(f, "parity corrupt for {id:?}"),
        }
    }
}

impl std::error::Error for ErasureError {}

struct ParityEntry {
    region: RegionId,
    len: usize,
    checksum: u64,
}

/// A parity node serving one group of `group_size` data nodes.
pub struct ParityStore {
    nvm: MemoryDevice,
    group_size: usize,
    entries: HashMap<ChunkId, ParityEntry>,
}

impl ParityStore {
    /// A parity store on `nvm` for a group of `group_size` members.
    pub fn new(nvm: &MemoryDevice, group_size: usize) -> Self {
        assert!(group_size >= 2, "a parity group needs at least 2 members");
        ParityStore {
            nvm: nvm.clone(),
            group_size,
            entries: HashMap::new(),
        }
    }

    /// Group size `N`.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// XOR-fold `blocks` (one per member, padded to the longest) and
    /// persist the parity. Returns the NVM write cost.
    pub fn encode(
        &mut self,
        chunk: ChunkId,
        blocks: &[&[u8]],
    ) -> Result<SimDuration, ErasureError> {
        if blocks.len() != self.group_size {
            return Err(ErasureError::WrongMemberCount {
                got: blocks.len(),
                expected: self.group_size,
            });
        }
        let len = blocks.iter().map(|b| b.len()).max().unwrap_or(0);
        let mut parity = vec![0u8; len];
        for b in blocks {
            for (p, &x) in parity.iter_mut().zip(b.iter()) {
                *p ^= x;
            }
        }
        // Replace any previous parity block.
        if let Some(old) = self.entries.remove(&chunk) {
            self.nvm.free(old.region)?;
        }
        let region = self.nvm.alloc(len.max(1))?;
        let cost = self.nvm.write(region, 0, &parity, 1)?;
        let cost = cost + self.nvm.flush(region, len)?;
        self.entries.insert(
            chunk,
            ParityEntry {
                region,
                len,
                checksum: crc64(&parity),
            },
        );
        Ok(cost)
    }

    /// Reconstruct the lost member's block from the `group_size - 1`
    /// survivors plus the stored parity. Survivor blocks shorter than
    /// the parity are zero-padded (their tails contributed zeros).
    pub fn recover(
        &self,
        chunk: ChunkId,
        survivors: &[&[u8]],
    ) -> Result<(Vec<u8>, SimDuration), ErasureError> {
        if survivors.len() != self.group_size - 1 {
            return Err(ErasureError::WrongSurvivorCount {
                got: survivors.len(),
                expected: self.group_size - 1,
            });
        }
        let entry = self
            .entries
            .get(&chunk)
            .ok_or(ErasureError::NoParity(chunk))?;
        let mut block = vec![0u8; entry.len];
        let cost = self.nvm.read(entry.region, 0, &mut block, 1)?;
        if crc64(&block) != entry.checksum {
            return Err(ErasureError::ParityCorrupt(chunk));
        }
        for s in survivors {
            for (b, &x) in block.iter_mut().zip(s.iter()) {
                *b ^= x;
            }
        }
        Ok((block, cost))
    }

    /// Bytes of parity stored (the space the scheme saves shows up
    /// when comparing against `group_size` full replicas).
    pub fn storage_bytes(&self) -> u64 {
        self.entries.values().map(|e| e.len as u64).sum()
    }

    /// Number of parity blocks held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no parity is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(n: usize) -> ParityStore {
        ParityStore::new(&MemoryDevice::pcm(64 << 20), n)
    }

    fn member_data(rank: u64, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(17).wrapping_add(rank as u8))
            .collect()
    }

    #[test]
    fn recover_any_single_member() {
        let mut s = store(4);
        let chunk = ChunkId(1);
        let blocks: Vec<Vec<u8>> = (0..4).map(|r| member_data(r, 8192)).collect();
        let refs: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
        s.encode(chunk, &refs).unwrap();

        for lost in 0..4 {
            let survivors: Vec<&[u8]> = blocks
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != lost)
                .map(|(_, b)| b.as_slice())
                .collect();
            let (recovered, cost) = s.recover(chunk, &survivors).unwrap();
            assert_eq!(recovered, blocks[lost], "lost member {lost}");
            assert!(!cost.is_zero());
        }
    }

    #[test]
    fn unequal_lengths_are_padded() {
        let mut s = store(3);
        let chunk = ChunkId(2);
        let a = member_data(0, 4096);
        let b = member_data(1, 1024); // shorter
        let c = member_data(2, 4096);
        s.encode(chunk, &[&a, &b, &c]).unwrap();
        let (recovered, _) = s.recover(chunk, &[&a, &c]).unwrap();
        assert_eq!(&recovered[..1024], &b[..]);
        assert!(recovered[1024..].iter().all(|&x| x == 0));
    }

    #[test]
    fn parity_storage_is_fraction_of_replication() {
        let mut s = store(4);
        let blocks: Vec<Vec<u8>> = (0..4).map(|r| member_data(r, 1 << 20)).collect();
        let refs: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
        s.encode(ChunkId(1), &refs).unwrap();
        // Replication of 4 members would store 4 MB; parity stores 1 MB.
        assert_eq!(s.storage_bytes(), 1 << 20);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn re_encode_replaces_old_parity() {
        let mut s = store(2);
        let chunk = ChunkId(9);
        let a1 = member_data(0, 512);
        let b1 = member_data(1, 512);
        s.encode(chunk, &[&a1, &b1]).unwrap();
        let a2 = member_data(7, 512);
        let b2 = member_data(8, 512);
        s.encode(chunk, &[&a2, &b2]).unwrap();
        let (rec, _) = s.recover(chunk, &[&a2]).unwrap();
        assert_eq!(rec, b2, "must reflect the latest encoding");
        assert_eq!(s.storage_bytes(), 512, "old parity freed");
    }

    #[test]
    fn arity_errors() {
        let mut s = store(3);
        let a = member_data(0, 64);
        assert!(matches!(
            s.encode(ChunkId(1), &[&a]),
            Err(ErasureError::WrongMemberCount { .. })
        ));
        let b = member_data(1, 64);
        let c = member_data(2, 64);
        s.encode(ChunkId(1), &[&a, &b, &c]).unwrap();
        assert!(matches!(
            s.recover(ChunkId(1), &[&a]),
            Err(ErasureError::WrongSurvivorCount { .. })
        ));
        assert!(matches!(
            s.recover(ChunkId(42), &[&a, &b]),
            Err(ErasureError::NoParity(_))
        ));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_group_rejected() {
        let _ = store(1);
    }
}
