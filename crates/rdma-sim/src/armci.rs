//! ARMCI-style remote memory for checkpoints.
//!
//! The paper extends the aggregate-remote-memory-copy (ARMCI) library
//! so a node can allocate, access and copy NVM buffers on *remote*
//! nodes over RDMA. [`RemoteStore`] is the receiving side: a buddy
//! node's NVM holding checkpoint copies for every (rank, chunk) pair,
//! with the same two-version commit discipline as local checkpoints —
//! a crash mid-remote-checkpoint must leave the previous remote
//! version intact.

use nvm_chkpt::checksum::crc64;
use nvm_emu::{DeviceError, MemoryDevice, RegionId, SimDuration};
use nvm_paging::ChunkId;
use std::collections::HashMap;

/// Key of a remote entry: source rank + chunk.
pub type RemoteKey = (u64, ChunkId);

#[derive(Debug)]
struct RemoteEntry {
    len: usize,
    slots: [Option<RegionId>; 2],
    committed: Option<u8>,
    /// Slot holding data newer than `committed`, not yet committed.
    staged: Option<u8>,
    /// Per-slot checksums: staging a new version must not clobber the
    /// committed version's checksum.
    checksums: [Option<u64>; 2],
    epoch: u64,
    /// Variable name of the source chunk, if the sender recorded it —
    /// needed when a failed rank is rebuilt from this store alone.
    name: Option<String>,
}

/// Errors from the remote store.
#[non_exhaustive]
#[derive(Debug)]
pub enum RemoteError {
    /// Device-level failure on the remote NVM.
    Device(DeviceError),
    /// No entry for this (rank, chunk).
    NoSuchEntry(RemoteKey),
    /// The entry exists but nothing was ever committed.
    NothingCommitted(RemoteKey),
    /// Fetched bytes do not match the stored checksum.
    ChecksumMismatch(RemoteKey),
    /// A recovery transfer was lost on the wire (injected link fault).
    LinkFault {
        /// Entry whose transfer was lost.
        key: RemoteKey,
        /// 1-based attempt number that was lost.
        attempt: u32,
    },
    /// Every retry of a recovery transfer was lost.
    RetriesExhausted {
        /// Entry whose transfers kept failing.
        key: RemoteKey,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// XOR-parity reconstruction fallback failed.
    Parity(crate::erasure::ErasureError),
}

nvm_emu::error_enum! {
    RemoteError, f {
        wrap Device(DeviceError) => "remote device",
        wrap Parity(crate::erasure::ErasureError) => "parity fallback",
        leaf RemoteError::NoSuchEntry(k) => write!(f, "no remote entry for {k:?}"),
        leaf RemoteError::NothingCommitted(k) => write!(f, "nothing committed for {k:?}"),
        leaf RemoteError::ChecksumMismatch(k) => write!(f, "remote checksum mismatch for {k:?}"),
        leaf RemoteError::LinkFault { key, attempt } => {
            write!(f, "recovery transfer for {key:?} lost on attempt {attempt}")
        },
        leaf RemoteError::RetriesExhausted { key, attempts } => {
            write!(f, "recovery of {key:?} gave up after {attempts} lost transfers")
        },
    }
}

/// A buddy node's NVM-backed checkpoint store.
pub struct RemoteStore {
    nvm: MemoryDevice,
    entries: HashMap<RemoteKey, RemoteEntry>,
    materialized: bool,
}

impl RemoteStore {
    /// A store on the given (remote) NVM device. `materialized`
    /// controls whether real bytes are kept.
    pub fn new(nvm: &MemoryDevice, materialized: bool) -> Self {
        RemoteStore {
            nvm: nvm.clone(),
            entries: HashMap::new(),
            materialized,
        }
    }

    fn ensure_entry(&mut self, key: RemoteKey, len: usize) -> Result<(), RemoteError> {
        use std::collections::hash_map::Entry;
        match self.entries.entry(key) {
            Entry::Occupied(mut e) => {
                // Grown chunk: reallocate both slots.
                if e.get().len < len {
                    let old = e.get_mut();
                    for slot in old.slots.iter_mut().flatten() {
                        self.nvm.free(*slot)?;
                    }
                    let name = old.name.take();
                    *old = RemoteEntry {
                        len,
                        slots: [None, None],
                        committed: None,
                        staged: None,
                        checksums: [None, None],
                        epoch: 0,
                        name,
                    };
                }
                Ok(())
            }
            Entry::Vacant(v) => {
                v.insert(RemoteEntry {
                    len,
                    slots: [None, None],
                    committed: None,
                    staged: None,
                    checksums: [None, None],
                    epoch: 0,
                    name: None,
                });
                Ok(())
            }
        }
    }

    fn slot_region(&mut self, key: RemoteKey, slot: u8) -> Result<RegionId, RemoteError> {
        let materialized = self.materialized;
        let entry = self
            .entries
            .get_mut(&key)
            .ok_or(RemoteError::NoSuchEntry(key))?;
        if let Some(r) = entry.slots[slot as usize] {
            return Ok(r);
        }
        let region = if materialized {
            self.nvm.alloc(entry.len)?
        } else {
            self.nvm.alloc_synthetic(entry.len)?
        };
        let entry = self.entries.get_mut(&key).expect("present");
        entry.slots[slot as usize] = Some(region);
        Ok(region)
    }

    /// RDMA put of real bytes into the in-progress slot. Returns the
    /// remote NVM write cost (the wire cost is the caller's [`Link`]
    /// business).
    ///
    /// [`Link`]: crate::link::Link
    pub fn put(
        &mut self,
        rank: u64,
        chunk: ChunkId,
        data: &[u8],
    ) -> Result<SimDuration, RemoteError> {
        let key = (rank, chunk);
        self.ensure_entry(key, data.len())?;
        let slot = self.staging_slot(key);
        let region = self.slot_region(key, slot)?;
        let cost = self.nvm.write(region, 0, data, 1)?;
        let sum = crc64(data);
        let entry = self.entries.get_mut(&key).expect("present");
        entry.staged = Some(slot);
        entry.checksums[slot as usize] = Some(sum);
        Ok(cost)
    }

    /// RDMA put, size-only.
    pub fn put_synthetic(
        &mut self,
        rank: u64,
        chunk: ChunkId,
        len: usize,
    ) -> Result<SimDuration, RemoteError> {
        let key = (rank, chunk);
        self.ensure_entry(key, len)?;
        let slot = self.staging_slot(key);
        let region = self.slot_region(key, slot)?;
        let cost = self.nvm.write_synthetic(region, 0, len, 1)?;
        let entry = self.entries.get_mut(&key).expect("present");
        entry.staged = Some(slot);
        entry.checksums[slot as usize] = None;
        Ok(cost)
    }

    fn staging_slot(&self, key: RemoteKey) -> u8 {
        match self.entries.get(&key).and_then(|e| e.committed) {
            Some(0) => 1,
            _ => 0,
        }
    }

    /// Commit every staged entry of `rank` at `epoch` — the remote
    /// checkpoint completion barrier.
    pub fn commit_rank(&mut self, rank: u64, epoch: u64) -> usize {
        let mut committed = 0;
        for (key, entry) in self.entries.iter_mut() {
            if key.0 == rank {
                if let Some(slot) = entry.staged.take() {
                    entry.committed = Some(slot);
                    entry.epoch = epoch;
                    committed += 1;
                }
            }
        }
        committed
    }

    /// Fetch the committed bytes for a chunk (remote recovery path).
    /// Verifies the checksum recorded at put time.
    pub fn fetch(&self, rank: u64, chunk: ChunkId) -> Result<(Vec<u8>, SimDuration), RemoteError> {
        let key = (rank, chunk);
        let entry = self
            .entries
            .get(&key)
            .ok_or(RemoteError::NoSuchEntry(key))?;
        let slot = entry.committed.ok_or(RemoteError::NothingCommitted(key))?;
        let region = entry.slots[slot as usize].expect("committed slot allocated");
        let mut buf = vec![0u8; entry.len];
        let cost = self.nvm.read(region, 0, &mut buf, 1)?;
        if let Some(expected) = entry.checksums[slot as usize] {
            if crc64(&buf) != expected {
                return Err(RemoteError::ChecksumMismatch(key));
            }
        }
        Ok((buf, cost))
    }

    /// Charge the cost of fetching a committed chunk without
    /// materializing bytes (size-only runs). Returns the logical
    /// length and the remote NVM read cost.
    pub fn fetch_synthetic(
        &self,
        rank: u64,
        chunk: ChunkId,
    ) -> Result<(usize, SimDuration), RemoteError> {
        let key = (rank, chunk);
        let entry = self
            .entries
            .get(&key)
            .ok_or(RemoteError::NoSuchEntry(key))?;
        let slot = entry.committed.ok_or(RemoteError::NothingCommitted(key))?;
        let region = entry.slots[slot as usize].expect("committed slot allocated");
        let cost = self.nvm.read_synthetic(region, 0, entry.len, 1)?;
        Ok((entry.len, cost))
    }

    /// Committed epoch of a chunk, if any.
    pub fn committed_epoch(&self, rank: u64, chunk: ChunkId) -> Option<u64> {
        self.entries
            .get(&(rank, chunk))
            .and_then(|e| e.committed.map(|_| e.epoch))
    }

    /// Record the variable name of an entry (used when a failed rank
    /// is rebuilt from this store: the name is part of the chunk
    /// table a fresh engine needs).
    pub fn set_chunk_name(
        &mut self,
        rank: u64,
        chunk: ChunkId,
        name: &str,
    ) -> Result<(), RemoteError> {
        let key = (rank, chunk);
        let entry = self
            .entries
            .get_mut(&key)
            .ok_or(RemoteError::NoSuchEntry(key))?;
        entry.name = Some(name.to_string());
        Ok(())
    }

    /// Recorded variable name of an entry, if the sender set one.
    pub fn chunk_name(&self, rank: u64, chunk: ChunkId) -> Option<&str> {
        self.entries
            .get(&(rank, chunk))
            .and_then(|e| e.name.as_deref())
    }

    /// Logical length of an entry.
    pub fn chunk_len(&self, rank: u64, chunk: ChunkId) -> Option<usize> {
        self.entries.get(&(rank, chunk)).map(|e| e.len)
    }

    /// Chunk ids of `rank` holding a committed version, sorted — the
    /// enumeration a recovery walks to rebuild the rank.
    pub fn committed_chunks(&self, rank: u64) -> Vec<ChunkId> {
        let mut ids: Vec<ChunkId> = self
            .entries
            .iter()
            .filter(|((r, _), e)| *r == rank && e.committed.is_some())
            .map(|((_, c), _)| *c)
            .collect();
        ids.sort();
        ids
    }

    /// Overwrite a committed slot's bytes *without* updating its
    /// checksum — silent remote corruption, for fault-injection tests
    /// of the checksum-verified fetch and the parity fallback.
    pub fn corrupt_committed(&mut self, rank: u64, chunk: ChunkId) -> Result<(), RemoteError> {
        let key = (rank, chunk);
        let entry = self
            .entries
            .get(&key)
            .ok_or(RemoteError::NoSuchEntry(key))?;
        let slot = entry.committed.ok_or(RemoteError::NothingCommitted(key))?;
        let region = entry.slots[slot as usize].expect("committed slot allocated");
        let garbage = vec![0x5Au8; entry.len.min(64)];
        self.nvm.write(region, 0, &garbage, 1)?;
        Ok(())
    }

    /// Number of (rank, chunk) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total logical bytes stored (committed + staged slots).
    pub fn stored_bytes(&self) -> u64 {
        self.entries
            .values()
            .map(|e| e.slots.iter().flatten().count() as u64 * e.len as u64)
            .sum()
    }

    /// Simulate losing the buddy node (hard failure of the remote).
    pub fn destroy(&mut self) {
        self.entries.clear();
        self.nvm.destroy();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: usize = 1 << 20;

    fn store() -> RemoteStore {
        RemoteStore::new(&MemoryDevice::pcm(64 * MB), true)
    }

    #[test]
    fn put_commit_fetch_roundtrip() {
        let mut s = store();
        let c = ChunkId(1);
        s.put(0, c, &[7u8; 1024]).unwrap();
        // Staged but not committed: fetch fails.
        assert!(matches!(
            s.fetch(0, c),
            Err(RemoteError::NothingCommitted(_))
        ));
        assert_eq!(s.commit_rank(0, 5), 1);
        let (data, cost) = s.fetch(0, c).unwrap();
        assert_eq!(data, vec![7u8; 1024]);
        assert!(!cost.is_zero());
        assert_eq!(s.committed_epoch(0, c), Some(5));
    }

    #[test]
    fn two_version_discipline_survives_partial_update() {
        let mut s = store();
        let c = ChunkId(1);
        s.put(0, c, &[1u8; 512]).unwrap();
        s.commit_rank(0, 1);
        // New epoch staged but "crash" before commit.
        s.put(0, c, &[2u8; 512]).unwrap();
        let (data, _) = s.fetch(0, c).unwrap();
        assert_eq!(data, vec![1u8; 512], "old version must survive");
        // Now commit and see the new one.
        s.commit_rank(0, 2);
        let (data, _) = s.fetch(0, c).unwrap();
        assert_eq!(data, vec![2u8; 512]);
    }

    #[test]
    fn slots_alternate_across_epochs() {
        let mut s = store();
        let c = ChunkId(9);
        for epoch in 0..6u64 {
            let fill = epoch as u8;
            s.put(3, c, &[fill; 256]).unwrap();
            s.commit_rank(3, epoch);
            let (data, _) = s.fetch(3, c).unwrap();
            assert_eq!(data, vec![fill; 256]);
        }
        // Exactly two slots allocated despite six epochs.
        assert_eq!(s.stored_bytes(), 2 * 256);
    }

    #[test]
    fn ranks_commit_independently() {
        let mut s = store();
        let c = ChunkId(1);
        s.put(0, c, &[1u8; 64]).unwrap();
        s.put(1, c, &[2u8; 64]).unwrap();
        s.commit_rank(0, 1);
        assert!(s.fetch(0, c).is_ok());
        assert!(matches!(
            s.fetch(1, c),
            Err(RemoteError::NothingCommitted(_))
        ));
    }

    #[test]
    fn synthetic_puts_track_size_only() {
        let mut s = RemoteStore::new(&MemoryDevice::pcm(64 * MB), false);
        let c = ChunkId(1);
        let cost = s.put_synthetic(0, c, 8 * MB).unwrap();
        assert!(!cost.is_zero());
        s.commit_rank(0, 1);
        assert!(matches!(s.fetch(0, c), Err(RemoteError::Device(_))));
        assert_eq!(s.stored_bytes(), 8 * MB as u64);
    }

    #[test]
    fn grown_chunk_reallocates() {
        let mut s = store();
        let c = ChunkId(1);
        s.put(0, c, &[1u8; 1024]).unwrap();
        s.commit_rank(0, 1);
        s.put(0, c, &vec![2u8; 4096]).unwrap();
        s.commit_rank(0, 2);
        let (data, _) = s.fetch(0, c).unwrap();
        assert_eq!(data.len(), 4096);
    }

    #[test]
    fn destroy_loses_everything() {
        let mut s = store();
        s.put(0, ChunkId(1), &[1u8; 64]).unwrap();
        s.commit_rank(0, 1);
        s.destroy();
        assert!(s.is_empty());
    }
}
