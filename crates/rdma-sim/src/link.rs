//! Interconnect link model.
//!
//! The paper's testbed uses 40 Gb/s InfiniBand. A [`Link`] models one
//! node's NIC: transfers are charged `bytes / (capacity / flows)` and
//! recorded into a [`UsageTrace`]. The link also computes the
//! *contention penalty* an application communication phase suffers
//! when checkpoint traffic shares the wire: the slowdown is
//! proportional to the checkpoint's instantaneous share of link
//! bandwidth — which is exactly why pre-copy (low, flat rate) beats a
//! post-checkpoint burst (full-rate) even at equal data volume.

use crate::trace::UsageTrace;
use nvm_emu::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// 40 Gb/s InfiniBand payload bandwidth in bytes/second (QDR 4x,
/// ~80% protocol efficiency).
pub const IB_40GBPS: f64 = 4.0e9;

/// Statistics for one link.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Total bytes sent.
    pub bytes_sent: u64,
    /// Number of transfer operations.
    pub transfers: u64,
    /// Accumulated busy time.
    pub busy: SimDuration,
}

/// One node's NIC/link.
#[derive(Clone, Debug)]
pub struct Link {
    capacity: f64,
    trace: UsageTrace,
    stats: LinkStats,
    /// Per-transfer setup latency (RDMA verb post + completion).
    setup: SimDuration,
}

impl Link {
    /// A link with `capacity` bytes/s and 1-second trace buckets.
    pub fn new(capacity: f64) -> Self {
        Self::with_bucket(capacity, SimDuration::from_secs(1))
    }

    /// A link with an explicit trace bucket width.
    pub fn with_bucket(capacity: f64, bucket: SimDuration) -> Self {
        assert!(capacity > 0.0, "link capacity must be positive");
        Link {
            capacity,
            trace: UsageTrace::new(bucket),
            stats: LinkStats::default(),
            setup: SimDuration::from_micros(5),
        }
    }

    /// The paper's 40 Gb/s InfiniBand link.
    pub fn infiniband_40g() -> Self {
        Self::new(IB_40GBPS)
    }

    /// Link capacity in bytes/s.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Charge a transfer of `bytes` starting at `now`, as one of
    /// `flows` concurrent streams sharing the link. Records the span in
    /// the usage trace and returns its duration.
    pub fn transfer(&mut self, now: SimTime, bytes: u64, flows: usize) -> SimDuration {
        let share = self.capacity / flows.max(1) as f64;
        let dur = self.setup + SimDuration::for_transfer(bytes, share);
        self.trace.record(now, now + dur, bytes);
        self.stats.bytes_sent += bytes;
        self.stats.transfers += 1;
        self.stats.busy += dur;
        dur
    }

    /// Charge a transfer whose bytes are *spread* over a longer window
    /// (a throttled background pre-copy stream): records `bytes` across
    /// `[now, now + window)` and returns the window. The instantaneous
    /// rate is `bytes / window`, which is what keeps the peak low.
    pub fn transfer_spread(
        &mut self,
        now: SimTime,
        bytes: u64,
        window: SimDuration,
    ) -> SimDuration {
        let min_dur = SimDuration::for_transfer(bytes, self.capacity);
        let dur = window.max(min_dur);
        self.trace.record(now, now + dur, bytes);
        self.stats.bytes_sent += bytes;
        self.stats.transfers += 1;
        self.stats.busy += min_dur; // wire occupancy, not wall window
        dur
    }

    /// Slowdown an application communication of `app_bytes` suffers
    /// when the checkpoint stream is running at `ckpt_rate` bytes/s on
    /// this link: the app's achievable bandwidth shrinks to
    /// `capacity - ckpt_rate` (floored at 10% of capacity).
    pub fn contention_delay(&self, app_bytes: u64, ckpt_rate: f64) -> SimDuration {
        let free = (self.capacity - ckpt_rate).max(self.capacity * 0.1);
        let contended = SimDuration::for_transfer(app_bytes, free);
        let clean = SimDuration::for_transfer(app_bytes, self.capacity);
        contended - clean
    }

    /// The usage trace.
    pub fn trace(&self) -> &UsageTrace {
        &self.trace
    }

    /// Link statistics.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_matches_capacity() {
        let mut l = Link::new(1e9);
        let d = l.transfer(SimTime::ZERO, 500_000_000, 1);
        assert!((d.as_secs_f64() - 0.5).abs() < 1e-4);
        assert_eq!(l.stats().bytes_sent, 500_000_000);
    }

    #[test]
    fn flows_share_capacity() {
        let mut l = Link::new(1e9);
        let solo = l.transfer(SimTime::ZERO, 100_000_000, 1);
        let shared = l.transfer(SimTime::ZERO, 100_000_000, 4);
        assert!(shared.as_secs_f64() / solo.as_secs_f64() > 3.5);
    }

    #[test]
    fn spread_transfer_flattens_trace() {
        let mut burst_link = Link::new(1e9);
        let mut spread_link = Link::new(1e9);
        let bytes = 800_000_000u64;
        burst_link.transfer(SimTime::from_secs(10), bytes, 1);
        spread_link.transfer_spread(SimTime::from_secs(2), bytes, SimDuration::from_secs(16));
        let burst_peak = burst_link.trace().peak_bytes();
        let spread_peak = spread_link.trace().peak_bytes();
        assert!(
            burst_peak > 2.0 * spread_peak,
            "burst {burst_peak} vs spread {spread_peak}"
        );
        assert_eq!(
            burst_link.trace().total_bytes(),
            spread_link.trace().total_bytes()
        );
    }

    #[test]
    fn spread_cannot_exceed_capacity() {
        let mut l = Link::new(1e6);
        // 10 MB cannot move in 1 s over a 1 MB/s link.
        let d = l.transfer_spread(SimTime::ZERO, 10_000_000, SimDuration::from_secs(1));
        assert!(d.as_secs_f64() >= 10.0);
    }

    #[test]
    fn contention_grows_with_checkpoint_rate() {
        let l = Link::new(1e9);
        let none = l.contention_delay(100_000_000, 0.0);
        let half = l.contention_delay(100_000_000, 5e8);
        let full = l.contention_delay(100_000_000, 1e9);
        assert_eq!(none, SimDuration::ZERO);
        assert!(half > none);
        assert!(full > half);
        // Floor: app never fully starves.
        assert!(full.as_secs_f64() < 1.0);
    }

    #[test]
    fn infiniband_constant() {
        let l = Link::infiniband_40g();
        assert_eq!(l.capacity(), IB_40GBPS);
    }
}
