//! Recovery-side transfer orchestration.
//!
//! A hard node failure is survived by pulling the failed ranks' chunk
//! images back from the buddy node's [`RemoteStore`] over the
//! interconnect. Real recovery traffic is not the happy path: the
//! fabric is being drained of a dead node, so transfers time out and
//! are retried. This module models that with a deterministic
//! [`FaultModel`] (a pure hash of seed/rank/chunk/attempt decides
//! which attempts are lost — no RNG state, so outcomes are identical
//! at any thread count) and a [`RetryPolicy`] charging timeout +
//! exponential backoff for every lost attempt.
//!
//! [`fetch_with_parity_fallback`] adds the erasure-coded escape hatch:
//! when the replica itself is corrupt (checksum mismatch), the chunk
//! is reconstructed from the XOR-parity group's survivors instead of
//! failing the recovery outright.

use crate::armci::{RemoteError, RemoteStore};
use crate::erasure::ParityStore;
use crate::link::Link;
use nvm_emu::{SimDuration, SimTime};
use nvm_paging::ChunkId;

/// Retry/timeout/backoff parameters for recovery transfers.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Attempts before the fetch is abandoned (>= 1).
    pub max_attempts: u32,
    /// Backoff after the first lost attempt; doubles per further loss.
    pub base_backoff: SimDuration,
    /// Time a lost transfer burns before the loss is detected.
    pub timeout: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: SimDuration::from_millis(10),
            timeout: SimDuration::from_millis(250),
        }
    }
}

impl RetryPolicy {
    /// Time charged for the `attempt`-th (1-based) lost attempt:
    /// detection timeout plus exponential backoff.
    pub fn lost_attempt_cost(&self, attempt: u32) -> SimDuration {
        let shift = attempt.saturating_sub(1).min(16);
        self.timeout + SimDuration::from_nanos(self.base_backoff.as_nanos() << shift)
    }
}

/// Deterministic link-fault injection for recovery transfers: whether
/// an attempt is lost is a pure function of `(seed, rank, chunk,
/// attempt)`, so the same schedule of losses plays out regardless of
/// execution order or thread count.
#[derive(Clone, Copy, Debug)]
pub struct FaultModel {
    seed: u64,
    loss_ppm: u32,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl FaultModel {
    /// Faults with probability `loss_ppm` / 1,000,000 per attempt.
    pub fn new(seed: u64, loss_ppm: u32) -> Self {
        FaultModel {
            seed,
            loss_ppm: loss_ppm.min(1_000_000),
        }
    }

    /// A lossless fabric: every attempt succeeds.
    pub fn reliable() -> Self {
        FaultModel {
            seed: 0,
            loss_ppm: 0,
        }
    }

    /// Loss probability in parts-per-million.
    pub fn loss_ppm(&self) -> u32 {
        self.loss_ppm
    }

    /// True if the `attempt`-th (1-based) transfer of `(rank, chunk)`
    /// is lost.
    pub fn drops(&self, rank: u64, chunk: ChunkId, attempt: u32) -> bool {
        if self.loss_ppm == 0 {
            return false;
        }
        let h = splitmix64(
            self.seed
                ^ splitmix64(rank)
                ^ splitmix64(chunk.0.rotate_left(17))
                ^ splitmix64(u64::from(attempt).rotate_left(41)),
        );
        (h % 1_000_000) < u64::from(self.loss_ppm)
    }
}

/// Result of one chunk's recovery fetch.
#[derive(Clone, Debug)]
pub struct FetchOutcome {
    /// The committed chunk bytes.
    pub data: Vec<u8>,
    /// Total virtual time: lost attempts (timeout + backoff) plus the
    /// successful attempt's remote read + wire transfer.
    pub duration: SimDuration,
    /// Attempts made (1 = first try succeeded).
    pub attempts: u32,
    /// True if the bytes came from parity reconstruction rather than
    /// the replica.
    pub reconstructed: bool,
}

/// Fetch one committed chunk from `store` across `link`, retrying
/// lost transfers per `policy`/`faults`. The wire transfer of the
/// successful attempt is recorded on `link` starting at `now` plus
/// the time the lost attempts burned.
pub fn fetch_with_retry(
    store: &RemoteStore,
    link: &mut Link,
    now: SimTime,
    rank: u64,
    chunk: ChunkId,
    policy: &RetryPolicy,
    faults: &FaultModel,
) -> Result<FetchOutcome, RemoteError> {
    let mut elapsed = SimDuration::ZERO;
    for attempt in 1..=policy.max_attempts.max(1) {
        if faults.drops(rank, chunk, attempt) {
            elapsed += policy.lost_attempt_cost(attempt);
            continue;
        }
        let (data, read_cost) = store.fetch(rank, chunk)?;
        let wire = link.transfer(now + elapsed, data.len() as u64, 1);
        return Ok(FetchOutcome {
            duration: elapsed + read_cost + wire,
            attempts: attempt,
            data,
            reconstructed: false,
        });
    }
    Err(RemoteError::RetriesExhausted {
        key: (rank, chunk),
        attempts: policy.max_attempts.max(1),
    })
}

/// Size-only variant of [`fetch_with_retry`]: charges the same
/// retry/read/wire costs without materializing bytes. Returns the
/// logical length in place of data.
pub fn fetch_synthetic_with_retry(
    store: &RemoteStore,
    link: &mut Link,
    now: SimTime,
    rank: u64,
    chunk: ChunkId,
    policy: &RetryPolicy,
    faults: &FaultModel,
) -> Result<(usize, SimDuration, u32), RemoteError> {
    let mut elapsed = SimDuration::ZERO;
    for attempt in 1..=policy.max_attempts.max(1) {
        if faults.drops(rank, chunk, attempt) {
            elapsed += policy.lost_attempt_cost(attempt);
            continue;
        }
        let (len, read_cost) = store.fetch_synthetic(rank, chunk)?;
        let wire = link.transfer(now + elapsed, len as u64, 1);
        return Ok((len, elapsed + read_cost + wire, attempt));
    }
    Err(RemoteError::RetriesExhausted {
        key: (rank, chunk),
        attempts: policy.max_attempts.max(1),
    })
}

/// [`fetch_with_retry`], falling back to XOR-parity reconstruction
/// when the replica is corrupt: a checksum mismatch on the committed
/// replica triggers [`ParityStore::recover`] from `survivors` (the
/// other group members' blocks), and the reconstructed bytes cross
/// the wire instead. Retries-exhausted and other errors pass through.
#[allow(clippy::too_many_arguments)]
pub fn fetch_with_parity_fallback(
    store: &RemoteStore,
    parity: &ParityStore,
    survivors: &[&[u8]],
    link: &mut Link,
    now: SimTime,
    rank: u64,
    chunk: ChunkId,
    policy: &RetryPolicy,
    faults: &FaultModel,
) -> Result<FetchOutcome, RemoteError> {
    match fetch_with_retry(store, link, now, rank, chunk, policy, faults) {
        Err(RemoteError::ChecksumMismatch(_)) => {
            let (data, parity_cost) = parity.recover(chunk, survivors)?;
            let wire = link.transfer(now, data.len() as u64, 1);
            Ok(FetchOutcome {
                duration: parity_cost + wire,
                attempts: 1,
                data,
                reconstructed: true,
            })
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_emu::MemoryDevice;

    const MB: usize = 1 << 20;

    fn store_with(rank: u64, chunk: ChunkId, data: &[u8]) -> RemoteStore {
        let mut s = RemoteStore::new(&MemoryDevice::pcm(64 * MB), true);
        s.put(rank, chunk, data).unwrap();
        s.commit_rank(rank, 0);
        s
    }

    #[test]
    fn clean_fabric_fetches_first_try() {
        let s = store_with(0, ChunkId(1), &[9u8; 4096]);
        let mut link = Link::new(1e9);
        let out = fetch_with_retry(
            &s,
            &mut link,
            SimTime::ZERO,
            0,
            ChunkId(1),
            &RetryPolicy::default(),
            &FaultModel::reliable(),
        )
        .unwrap();
        assert_eq!(out.attempts, 1);
        assert_eq!(out.data, vec![9u8; 4096]);
        assert!(!out.duration.is_zero());
        assert!(!out.reconstructed);
        assert_eq!(link.stats().transfers, 1);
    }

    #[test]
    fn lossy_fabric_retries_and_charges_backoff() {
        let s = store_with(0, ChunkId(1), &[3u8; 4096]);
        // 50% loss: over many chunks some first attempts must be lost.
        let faults = FaultModel::new(42, 500_000);
        let policy = RetryPolicy {
            max_attempts: 32,
            ..RetryPolicy::default()
        };
        let mut saw_retry = false;
        for probe in 0..64u64 {
            if faults.drops(0, ChunkId(probe), 1) {
                saw_retry = true;
            }
        }
        assert!(saw_retry, "a 50% fault model must drop something");

        // Find a chunk whose first attempt is dropped and verify the
        // retry path charges strictly more time than a clean fetch.
        let dropped = (0..64u64)
            .map(ChunkId)
            .find(|c| faults.drops(0, *c, 1))
            .unwrap();
        let s2 = store_with(0, dropped, &[3u8; 4096]);
        let mut link = Link::new(1e9);
        let lossy =
            fetch_with_retry(&s2, &mut link, SimTime::ZERO, 0, dropped, &policy, &faults).unwrap();
        assert!(lossy.attempts > 1);
        let mut clean_link = Link::new(1e9);
        let clean = fetch_with_retry(
            &s,
            &mut clean_link,
            SimTime::ZERO,
            0,
            ChunkId(1),
            &policy,
            &FaultModel::reliable(),
        )
        .unwrap();
        assert!(lossy.duration > clean.duration + RetryPolicy::default().timeout);
    }

    #[test]
    fn total_loss_exhausts_retries_with_typed_error() {
        let s = store_with(0, ChunkId(1), &[1u8; 128]);
        let mut link = Link::new(1e9);
        let err = fetch_with_retry(
            &s,
            &mut link,
            SimTime::ZERO,
            0,
            ChunkId(1),
            &RetryPolicy {
                max_attempts: 3,
                ..RetryPolicy::default()
            },
            &FaultModel::new(7, 1_000_000),
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                RemoteError::RetriesExhausted {
                    key: (0, ChunkId(1)),
                    attempts: 3,
                }
            ),
            "{err}"
        );
        assert_eq!(link.stats().transfers, 0, "lost attempts never arrive");
    }

    #[test]
    fn fault_model_is_a_pure_function() {
        let f = FaultModel::new(11, 20_000);
        for attempt in 1..=8 {
            assert_eq!(
                f.drops(3, ChunkId(5), attempt),
                f.drops(3, ChunkId(5), attempt)
            );
        }
        // ~2% loss: out of 10,000 probes roughly 200 drop.
        let drops = (0..10_000u64)
            .filter(|i| f.drops(i % 16, ChunkId(i / 16), 1))
            .count();
        assert!((100..400).contains(&drops), "drops={drops}");
    }

    #[test]
    fn synthetic_fetch_charges_without_bytes() {
        let mut s = RemoteStore::new(&MemoryDevice::pcm(64 * MB), false);
        s.put_synthetic(2, ChunkId(4), 8 * MB).unwrap();
        s.commit_rank(2, 0);
        let mut link = Link::new(1e9);
        let (len, dur, attempts) = fetch_synthetic_with_retry(
            &s,
            &mut link,
            SimTime::ZERO,
            2,
            ChunkId(4),
            &RetryPolicy::default(),
            &FaultModel::reliable(),
        )
        .unwrap();
        assert_eq!(len, 8 * MB);
        assert_eq!(attempts, 1);
        assert!(dur.as_secs_f64() > 8.0 * MB as f64 / 1e9 * 0.9);
    }

    #[test]
    fn corrupt_replica_reconstructs_from_parity() {
        let a: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
        let b: Vec<u8> = (0..4096).map(|i| (i % 241 + 7) as u8).collect();
        let chunk = ChunkId(6);
        let mut s = store_with(0, chunk, &a);
        let mut parity = ParityStore::new(&MemoryDevice::pcm(64 * MB), 2);
        parity.encode(chunk, &[&a, &b]).unwrap();
        s.corrupt_committed(0, chunk).unwrap();
        // Direct fetch now fails verification...
        assert!(matches!(
            s.fetch(0, chunk),
            Err(RemoteError::ChecksumMismatch(_))
        ));
        // ...but the parity fallback reconstructs the lost member.
        let mut link = Link::new(1e9);
        let out = fetch_with_parity_fallback(
            &s,
            &parity,
            &[&b],
            &mut link,
            SimTime::ZERO,
            0,
            chunk,
            &RetryPolicy::default(),
            &FaultModel::reliable(),
        )
        .unwrap();
        assert!(out.reconstructed);
        assert_eq!(out.data, a, "reconstruction must be bit-for-bit");
    }

    #[test]
    fn parity_fallback_passes_other_errors_through() {
        let s = store_with(0, ChunkId(1), &[1u8; 64]);
        let parity = ParityStore::new(&MemoryDevice::pcm(64 * MB), 2);
        let mut link = Link::new(1e9);
        let err = fetch_with_parity_fallback(
            &s,
            &parity,
            &[],
            &mut link,
            SimTime::ZERO,
            9, // no such rank
            ChunkId(1),
            &RetryPolicy::default(),
            &FaultModel::reliable(),
        )
        .unwrap_err();
        assert!(matches!(err, RemoteError::NoSuchEntry(_)), "{err}");
    }
}
