//! Interconnect and remote-checkpoint simulation.
//!
//! The paper's remote checkpoints ride a 40 Gb/s InfiniBand fabric via
//! an ARMCI-style remote memory interface, driven by an asynchronous
//! helper process per node. This crate models each piece:
//!
//! * [`trace::UsageTrace`] — bucketed bytes-over-time series; the data
//!   behind Figure 10's peak-interconnect-usage comparison.
//! * [`link::Link`] — a NIC with capacity sharing, burst vs spread
//!   transfer shapes, and the contention-delay model for application
//!   communication slowed by checkpoint traffic.
//! * [`armci::RemoteStore`] — the buddy node's NVM checkpoint store
//!   with two-version commit and checksum-verified fetch.
//! * [`helper::HelperProcess`] — the per-node helper's CPU cost model
//!   (scan + per-op + copy), reproducing Table V's utilization.
//! * [`erasure::ParityStore`] — an XOR-parity alternative remote tier
//!   (diskless-checkpointing style) for the space/recovery trade-off.

#![warn(missing_docs)]

pub mod armci;
pub mod erasure;
pub mod helper;
pub mod link;
pub mod recovery;
pub mod trace;

pub use armci::{RemoteError, RemoteStore};
pub use erasure::{ErasureError, ParityStore};
pub use helper::{HelperParams, HelperProcess, HelperStats};
pub use link::{Link, LinkStats, IB_40GBPS};
pub use recovery::{
    fetch_synthetic_with_retry, fetch_with_parity_fallback, fetch_with_retry, FaultModel,
    FetchOutcome, RetryPolicy,
};
pub use trace::UsageTrace;
