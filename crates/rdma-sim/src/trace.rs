//! Interconnect usage timelines (the data behind Figure 10).
//!
//! A [`UsageTrace`] buckets transferred bytes into fixed windows of
//! virtual time. A transfer spanning several buckets spreads its bytes
//! proportionally, so the per-bucket series is exactly "checkpoint
//! data transferred" over a timeline — the paper's Figure 10 y-axis —
//! and the peak bucket is the *peak interconnect usage* the pre-copy
//! scheme is designed to halve.

use nvm_emu::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Bucketed bytes-over-time accumulator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct UsageTrace {
    bucket: SimDuration,
    buckets: Vec<f64>,
    total_bytes: f64,
}

impl UsageTrace {
    /// A trace with the given bucket width.
    pub fn new(bucket: SimDuration) -> Self {
        assert!(!bucket.is_zero(), "bucket width must be nonzero");
        UsageTrace {
            bucket,
            buckets: Vec::new(),
            total_bytes: 0.0,
        }
    }

    /// Bucket width.
    pub fn bucket_width(&self) -> SimDuration {
        self.bucket
    }

    /// Record a transfer of `bytes` spanning `[start, end)`. Zero-length
    /// spans deposit all bytes into the starting bucket.
    pub fn record(&mut self, start: SimTime, end: SimTime, bytes: u64) {
        assert!(end >= start, "transfer ends before it starts");
        self.total_bytes += bytes as f64;
        let bw = self.bucket.as_nanos() as f64;
        let s = start.as_nanos() as f64;
        let e = end.as_nanos() as f64;
        let first = (s / bw) as usize;
        let last = (e / bw) as usize;
        if last >= self.buckets.len() {
            self.buckets.resize(last + 1, 0.0);
        }
        if e == s {
            self.buckets[first] += bytes as f64;
            return;
        }
        let span = e - s;
        for b in first..=last {
            let b_start = b as f64 * bw;
            let b_end = b_start + bw;
            let overlap = (e.min(b_end) - s.max(b_start)).max(0.0);
            self.buckets[b] += bytes as f64 * overlap / span;
        }
    }

    /// Bytes in each bucket, indexed from t = 0.
    pub fn series(&self) -> &[f64] {
        &self.buckets
    }

    /// `(bucket_start_time, bytes)` pairs.
    pub fn timeline(&self) -> Vec<(SimTime, f64)> {
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, &b)| (SimTime::from_nanos(i as u64 * self.bucket.as_nanos()), b))
            .collect()
    }

    /// Peak bucket, in bytes.
    pub fn peak_bytes(&self) -> f64 {
        self.buckets.iter().copied().fold(0.0, f64::max)
    }

    /// Peak bandwidth, bytes/second.
    pub fn peak_bandwidth(&self) -> f64 {
        self.peak_bytes() / self.bucket.as_secs_f64()
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> f64 {
        self.total_bytes
    }

    /// Mean bucket occupancy over the non-empty prefix, in bytes.
    pub fn mean_bytes(&self) -> f64 {
        if self.buckets.is_empty() {
            0.0
        } else {
            self.total_bytes / self.buckets.len() as f64
        }
    }

    /// Peak-to-mean ratio — the "burstiness" pre-copy flattens.
    pub fn peak_to_mean(&self) -> f64 {
        let mean = self.mean_bytes();
        if mean == 0.0 {
            0.0
        } else {
            self.peak_bytes() / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn single_bucket_transfer() {
        let mut t = UsageTrace::new(SimDuration::from_secs(1));
        t.record(secs(0), SimTime::from_millis(500), 1000);
        assert_eq!(t.series(), &[1000.0]);
        assert_eq!(t.peak_bytes(), 1000.0);
        assert_eq!(t.total_bytes(), 1000.0);
    }

    #[test]
    fn spanning_transfer_spreads_proportionally() {
        let mut t = UsageTrace::new(SimDuration::from_secs(1));
        // 3000 bytes over [0.5, 3.5): 1/6 + 1/3 + 1/3 + 1/6 of 3 s span.
        t.record(SimTime::from_millis(500), SimTime::from_millis(3500), 3000);
        let s = t.series();
        assert_eq!(s.len(), 4);
        assert!((s[0] - 500.0).abs() < 1e-6);
        assert!((s[1] - 1000.0).abs() < 1e-6);
        assert!((s[2] - 1000.0).abs() < 1e-6);
        assert!((s[3] - 500.0).abs() < 1e-6);
        assert!((t.total_bytes() - 3000.0).abs() < 1e-6);
    }

    #[test]
    fn instantaneous_transfer_lands_in_one_bucket() {
        let mut t = UsageTrace::new(SimDuration::from_secs(1));
        t.record(secs(2), secs(2), 77);
        assert_eq!(t.series(), &[0.0, 0.0, 77.0]);
    }

    #[test]
    fn burst_vs_spread_peaks() {
        // Same volume; the burst has 4x the peak of the spread — the
        // Figure-10 effect in miniature.
        let mut burst = UsageTrace::new(SimDuration::from_secs(1));
        burst.record(secs(10), secs(11), 4000);
        let mut spread = UsageTrace::new(SimDuration::from_secs(1));
        spread.record(secs(8), secs(12), 4000);
        assert_eq!(burst.peak_bytes(), 4000.0);
        assert_eq!(spread.peak_bytes(), 1000.0);
        assert!(burst.peak_to_mean() > spread.peak_to_mean());
    }

    #[test]
    fn peak_bandwidth_scales_with_bucket() {
        let mut t = UsageTrace::new(SimDuration::from_millis(100));
        t.record(secs(0), SimTime::from_millis(100), 1_000_000);
        assert!((t.peak_bandwidth() - 10_000_000.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "ends before")]
    fn backwards_span_panics() {
        let mut t = UsageTrace::new(SimDuration::from_secs(1));
        t.record(secs(2), secs(1), 10);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Bytes are conserved: the bucket series always sums to
            /// the total recorded, whatever the span layout.
            #[test]
            fn bytes_are_conserved(
                spans in proptest::collection::vec(
                    (0u64..200_000, 0u64..50_000, 1u64..1_000_000), 1..40)
            ) {
                let mut t = UsageTrace::new(SimDuration::from_millis(250));
                let mut total = 0u64;
                for (start_ms, len_ms, bytes) in spans {
                    let s = SimTime::from_millis(start_ms);
                    let e = s + SimDuration::from_millis(len_ms);
                    t.record(s, e, bytes);
                    total += bytes;
                }
                let sum: f64 = t.series().iter().sum();
                prop_assert!((sum - total as f64).abs() < total as f64 * 1e-9 + 1e-6);
                prop_assert!(t.peak_bytes() <= sum + 1e-6);
            }
        }
    }
}
