//! Deterministic structured event tracing for the NVM checkpoint stack.
//!
//! The paper's central claims are *timeline* claims: pre-copy drains
//! dirty chunks in the background, DCPC/DCPCP defer hot chunks, the
//! coordinated step shrinks. End-of-run aggregates cannot show any of
//! that, so this crate provides a virtual-time-stamped event stream
//! that the engine, cluster simulator, and device layer all feed.
//!
//! Design constraints, in priority order:
//!
//! 1. **Zero cost when disabled.** A [`Tracer`] is a clonable handle
//!    that is `None` by default; every emission site guards on
//!    [`Tracer::enabled`], which is a single branch on an `Option`.
//! 2. **Deterministic.** Events carry a `u64` virtual-time stamp
//!    (`t_ns`, nanoseconds on the owning rank's clock) and a rank tag.
//!    Per-rank buffers merged with [`merge_ranked`] produce an event
//!    stream that is bit-identical whether ranks executed serially or
//!    on a thread pool, extending the cluster simulator's determinism
//!    guarantee to the trace itself.
//! 3. **Pluggable output.** [`TraceSink`] is object-safe; shipped
//!    sinks are [`NullSink`], an in-memory ring [`BufferSink`] for
//!    tests, and a streaming [`JsonlSink`]. [`to_jsonl`] and
//!    [`to_chrome_trace`] render collected events offline — the latter
//!    loads in `chrome://tracing` / Perfetto.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

/// Version of the JSONL trace format written by [`to_jsonl`] and
/// [`JsonlSink`]. Bumped whenever an event gains a field or a new
/// variant changes the wire shape in a way old readers cannot ignore.
/// History:
///
/// * **1** — seed format, no header line.
/// * **2** — header line `{"schema_version":2}`; `PrecopyDrain` gained
///   `cost_ns`; new kinds `precopy_end`, `barrier_wait`,
///   `recovery_verify`. Version-1 traces are upgraded on read
///   (`cost_ns` defaults to 0).
/// * **3** — new kinds `kv_op`, `kv_checkpoint_begin`,
///   `kv_checkpoint_end`, `kv_recovery_seek` emitted by the `nvm-kv`
///   serving layer. No existing kind changed shape, so version-2
///   traces load unmodified.
pub const SCHEMA_VERSION: u32 = 3;

/// What happened. Variants map one-to-one onto the mechanisms the
/// paper's timeline figures argue about; see DESIGN.md for the
/// figure-by-figure mapping.
#[non_exhaustive]
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TraceEventKind {
    /// First write to a protected chunk after a checkpoint: the MMU
    /// write-protection fault that makes the chunk dirty.
    ProtectionFault {
        /// Chunk that faulted.
        chunk: u64,
    },
    /// A background pre-copy window opened inside the compute phase.
    PrecopyStart {
        /// Epoch the window belongs to.
        epoch: u64,
        /// Stable (drainable) chunks visible at window start.
        candidates: u64,
    },
    /// Pre-copy drained one chunk to its shadow slot.
    PrecopyDrain {
        /// Chunk drained.
        chunk: u64,
        /// Bytes copied.
        bytes: u64,
        /// Virtual nanoseconds the helper spent on this drain (0 in
        /// schema-version-1 traces, which predate the field).
        cost_ns: u64,
    },
    /// The background pre-copy window inside a compute phase closed.
    /// Together with [`TraceEventKind::PrecopyStart`] this bounds the
    /// *hidden* (overlapped) checkpoint work of the epoch.
    PrecopyEnd {
        /// Epoch the window belonged to.
        epoch: u64,
        /// Virtual nanoseconds of helper copy work done this window.
        busy_ns: u64,
        /// Virtual nanoseconds of compute slowdown charged to the
        /// application because the helper shared the memory system —
        /// checkpoint cost that *was* exposed despite the overlap.
        interference_ns: u64,
    },
    /// A pre-copied chunk was re-dirtied before the checkpoint: the
    /// background copy was wasted work.
    PrecopyWaste {
        /// Chunk whose pre-copy was invalidated.
        chunk: u64,
    },
    /// The coordinated (blocking) checkpoint phase began.
    CoordinatedBegin {
        /// Epoch being committed.
        epoch: u64,
        /// Dirty chunks left for the coordinated step.
        dirty: u64,
    },
    /// The coordinated checkpoint phase finished.
    CoordinatedEnd {
        /// Epoch committed.
        epoch: u64,
        /// Bytes copied during the blocking step.
        copied_bytes: u64,
    },
    /// A chunk's committed-version pointer flipped to a new slot
    /// (the two-version commit).
    CommitFlip {
        /// Chunk committed.
        chunk: u64,
        /// Slot index (0 or 1) now holding the committed version.
        slot: u64,
    },
    /// The engine restored state from the last committed checkpoint.
    Restart {
        /// Restart strategy name (`eager`, `parallel`, `lazy`).
        strategy: String,
        /// Chunks restored (0 for lazy, which defers).
        chunks: u64,
    },
    /// A remote helper shipped checkpoint bytes to a buddy node.
    RemoteTransfer {
        /// Bytes moved over the interconnect.
        bytes: u64,
        /// True for incremental (pre-copy) shipping, false for a bulk
        /// post-checkpoint burst.
        incremental: bool,
    },
    /// A memory device charged virtual time for an operation.
    DeviceCharge {
        /// Device name (e.g. `nvm`, `dram`).
        device: String,
        /// Operation (`write`, `read`, `flush`).
        op: String,
        /// Bytes involved.
        bytes: u64,
        /// Virtual nanoseconds charged.
        cost_ns: u64,
    },
    /// A rank failed during a cluster run.
    RankFailure {
        /// Iteration at which the failure struck.
        iteration: u64,
        /// True if the node was lost (recovery from the remote copy).
        hard: bool,
    },
    /// A rank reached a cluster barrier and (possibly) waited for the
    /// stragglers. Emitted at the rank's arrival time; `wait_ns` is 0
    /// for the straggler itself.
    BarrierWait {
        /// Monotonic barrier sequence number within the run, shared by
        /// all ranks of one barrier — the causal join edge of the DAG.
        id: u64,
        /// Virtual nanoseconds this rank stalled before release.
        wait_ns: u64,
    },
    /// A rank waited on a communication collective.
    CommWait {
        /// Collective name (`halo`, `allreduce`, `alltoall`, `bcast`).
        op: String,
        /// Virtual nanoseconds spent waiting.
        wait_ns: u64,
    },
    /// A chunk payload was staged into the durable store's shadow slot.
    StoreWrite {
        /// Chunk staged.
        chunk: u64,
        /// Payload bytes written to media.
        bytes: u64,
    },
    /// The durable store appended + fsynced a commit record.
    StoreCommit {
        /// Epoch made durable.
        epoch: u64,
    },
    /// An engine was rebuilt from a durable store's recovery scan.
    StoreRecovery {
        /// Last durable epoch (`None` for a virgin container).
        epoch: Option<u64>,
        /// Chunks in the recovered table.
        chunks: u64,
        /// Torn trailing records detected and discarded by the scan.
        torn: u64,
    },
    /// Hard-failure recovery of a node began.
    RecoveryStart {
        /// Node being recovered.
        node: u64,
        /// Recovery source (`local-store`, `remote-buddy`, `virgin`,
        /// `modeled`).
        source: String,
    },
    /// A recovery transfer attempt was lost and retried.
    RecoveryRetry {
        /// Rank whose chunk was being fetched.
        rank: u64,
        /// Chunk being fetched.
        chunk: u64,
        /// Attempt number that finally succeeded (>= 2).
        attempt: u64,
    },
    /// One chunk of a recovered rank was verified bit-for-bit against
    /// the image the recovery source supplied.
    RecoveryVerify {
        /// Rank whose chunk was verified.
        rank: u64,
        /// Chunk verified.
        chunk: u64,
        /// Bytes compared.
        bytes: u64,
    },
    /// Hard-failure recovery of a node completed.
    RecoveryEnd {
        /// Node recovered.
        node: u64,
        /// Bytes pulled over the interconnect.
        bytes: u64,
        /// Chunks verified bit-for-bit against the recovered images.
        verified: u64,
    },
    /// One key-value operation completed on a serving session
    /// (emitted only when the kv store is configured to trace
    /// individual operations — high-volume runs keep this off).
    KvOp {
        /// Operation name (`upsert`, `read`, `rmw`, `delete`).
        op: String,
        /// Serving session that issued the operation.
        session: u64,
        /// The session's serial number for this operation.
        serial: u64,
        /// Whether the key existed (reads/rmw/deletes; always true
        /// for upserts).
        hit: bool,
    },
    /// A CPR-style checkpoint token was opened: per-session serialized
    /// prefixes are marked while sessions keep serving.
    KvCheckpointBegin {
        /// Monotone checkpoint token id.
        token: u64,
    },
    /// The checkpoint token's metadata (log prefix + session
    /// watermarks) finished writing; durability rides the engine's
    /// next coordinated commit.
    KvCheckpointEnd {
        /// Token id.
        token: u64,
        /// Record-log bytes covered by the token.
        log_bytes: u64,
        /// Serving sessions whose watermarks the token captured.
        sessions: u64,
    },
    /// Recovery sought the kv store back to its last committed
    /// checkpoint token, replaying the committed log prefix and
    /// dropping acknowledged-after-token records.
    KvRecoverySeek {
        /// Token recovered to.
        token: u64,
        /// Log records replayed into the rebuilt index.
        replayed: u64,
        /// Records found past the token's log prefix and dropped.
        dropped: u64,
    },
}

impl TraceEventKind {
    /// Short stable name for this event kind (used as the Chrome
    /// trace event name).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::ProtectionFault { .. } => "fault",
            TraceEventKind::PrecopyStart { .. } => "precopy_start",
            TraceEventKind::PrecopyDrain { .. } => "precopy_drain",
            TraceEventKind::PrecopyEnd { .. } => "precopy_end",
            TraceEventKind::PrecopyWaste { .. } => "precopy_waste",
            TraceEventKind::CoordinatedBegin { .. } => "coordinated",
            TraceEventKind::CoordinatedEnd { .. } => "coordinated",
            TraceEventKind::CommitFlip { .. } => "commit_flip",
            TraceEventKind::Restart { .. } => "restart",
            TraceEventKind::RemoteTransfer { .. } => "remote_transfer",
            TraceEventKind::DeviceCharge { .. } => "device_charge",
            TraceEventKind::RankFailure { .. } => "rank_failure",
            TraceEventKind::BarrierWait { .. } => "barrier_wait",
            TraceEventKind::CommWait { .. } => "comm_wait",
            TraceEventKind::StoreWrite { .. } => "store_write",
            TraceEventKind::StoreCommit { .. } => "store_commit",
            TraceEventKind::StoreRecovery { .. } => "store_recovery",
            TraceEventKind::RecoveryStart { .. } => "recovery_start",
            TraceEventKind::RecoveryRetry { .. } => "recovery_retry",
            TraceEventKind::RecoveryVerify { .. } => "recovery_verify",
            TraceEventKind::RecoveryEnd { .. } => "recovery_end",
            TraceEventKind::KvOp { .. } => "kv_op",
            TraceEventKind::KvCheckpointBegin { .. } => "kv_checkpoint_begin",
            TraceEventKind::KvCheckpointEnd { .. } => "kv_checkpoint_end",
            TraceEventKind::KvRecoverySeek { .. } => "kv_recovery_seek",
        }
    }
}

/// One timestamped event on one rank's virtual clock.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Virtual time in nanoseconds on the emitting rank's clock.
    pub t_ns: u64,
    /// Rank that emitted the event (0 for single-process runs).
    pub rank: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

/// Destination for emitted events. Implementations use interior
/// mutability; `record` takes `&self` so one sink can be shared by
/// clones of a [`Tracer`].
pub trait TraceSink: Send + Sync {
    /// Accept one event.
    fn record(&self, event: TraceEvent);
}

/// Sink that discards everything. Tracing call sites normally guard
/// on [`Tracer::enabled`] and never reach a sink at all; `NullSink`
/// exists for code that wants an always-valid sink object.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _event: TraceEvent) {}
}

/// In-memory ring buffer sink for tests and for per-rank collection
/// in the cluster simulator. Unbounded by default; with a capacity,
/// keeps only the most recent events.
#[derive(Debug, Default)]
pub struct BufferSink {
    events: Mutex<Vec<TraceEvent>>,
    capacity: Option<usize>,
}

impl BufferSink {
    /// Unbounded buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ring buffer keeping at most `capacity` most-recent events.
    pub fn with_capacity(capacity: usize) -> Self {
        BufferSink {
            events: Mutex::new(Vec::new()),
            capacity: Some(capacity.max(1)),
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// True if nothing has been recorded (or everything was drained).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy of the buffered events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().unwrap().clone()
    }

    /// Remove and return the buffered events, oldest first.
    pub fn drain(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().unwrap())
    }
}

impl TraceSink for BufferSink {
    fn record(&self, event: TraceEvent) {
        let mut events = self.events.lock().unwrap();
        if let Some(cap) = self.capacity {
            if events.len() == cap {
                events.remove(0);
            }
        }
        events.push(event);
    }
}

/// Streaming sink that writes one JSON object per line as events
/// arrive. Buffered; flushed on drop.
pub struct JsonlSink {
    writer: Mutex<Box<dyn std::io::Write + Send>>,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// Create (truncate) `path` and stream events to it, preceded by
    /// the [`SCHEMA_VERSION`] header line.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        let mut writer: Box<dyn std::io::Write + Send> = Box::new(std::io::BufWriter::new(file));
        writeln!(writer, "{}", jsonl_header())?;
        Ok(JsonlSink {
            writer: Mutex::new(writer),
        })
    }

    /// Stream events to an arbitrary writer (tests). Writes the same
    /// [`SCHEMA_VERSION`] header line as [`JsonlSink::create`].
    pub fn from_writer(mut writer: Box<dyn std::io::Write + Send>) -> Self {
        let _ = writeln!(writer, "{}", jsonl_header());
        JsonlSink {
            writer: Mutex::new(writer),
        }
    }

    /// Flush the underlying writer.
    pub fn flush(&self) -> std::io::Result<()> {
        self.writer.lock().unwrap().flush()
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, event: TraceEvent) {
        let line = serde_json::to_string(&event).expect("trace events always serialize");
        let mut writer = self.writer.lock().unwrap();
        let _ = writeln!(writer, "{line}");
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.writer.lock().unwrap().flush();
    }
}

/// Clonable emission handle: an optional shared sink plus the rank
/// tag stamped onto every event. The default handle is disabled and
/// costs one `Option` branch per call site.
#[derive(Clone, Default)]
pub struct Tracer {
    sink: Option<Arc<dyn TraceSink>>,
    rank: u64,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .field("rank", &self.rank)
            .finish()
    }
}

impl Tracer {
    /// Disabled handle; every emission is a no-op.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// Handle feeding `sink`, tagged rank 0.
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        Tracer {
            sink: Some(sink),
            rank: 0,
        }
    }

    /// Same sink, different rank tag.
    pub fn with_rank(&self, rank: u64) -> Self {
        Tracer {
            sink: self.sink.clone(),
            rank,
        }
    }

    /// Rank stamped onto emitted events.
    pub fn rank(&self) -> u64 {
        self.rank
    }

    /// True when a sink is attached. Call sites that need to compute
    /// anything to build an event should guard on this first.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emit one event at virtual time `t_ns`. No-op when disabled.
    #[inline]
    pub fn emit(&self, t_ns: u64, kind: TraceEventKind) {
        if let Some(sink) = &self.sink {
            sink.record(TraceEvent {
                t_ns,
                rank: self.rank,
                kind,
            });
        }
    }
}

/// Merge per-rank event buffers (index = rank order) into one
/// deterministic stream: stable sort on `(t_ns, rank)`, preserving
/// each rank's own emission order. The result is independent of how
/// the ranks were scheduled onto threads.
pub fn merge_ranked(buffers: Vec<Vec<TraceEvent>>) -> Vec<TraceEvent> {
    // Preallocate the exact output size and move whole buffers in
    // (`append` is a memmove) — no per-event clone, no regrowth.
    let total = buffers.iter().map(Vec::len).sum();
    let mut merged: Vec<TraceEvent> = Vec::with_capacity(total);
    for mut buffer in buffers {
        merged.append(&mut buffer);
    }
    merged.sort_by_key(|e| (e.t_ns, e.rank));
    merged
}

/// The JSONL header line: a one-key object carrying the schema
/// version, distinguishable from any event (events always have a
/// `kind` field).
fn jsonl_header() -> String {
    format!("{{\"schema_version\":{SCHEMA_VERSION}}}")
}

/// Render events as JSONL: the [`SCHEMA_VERSION`] header line, then
/// one compact JSON object per line, in input order.
/// Byte-deterministic for a given event sequence.
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = jsonl_header();
    out.push('\n');
    for event in events {
        let line = serde_json::to_string(event).expect("trace events always serialize");
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Why a recorded JSONL trace could not be loaded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceReadError {
    /// The trace header declares a schema version newer than this
    /// reader understands; re-record or upgrade the reader.
    Schema {
        /// Version declared by the trace header.
        found: u32,
        /// Newest version this reader supports ([`SCHEMA_VERSION`]).
        supported: u32,
    },
    /// A line was not a valid event (JSON syntax or shape).
    Parse {
        /// 1-based line number within the input.
        line: usize,
        /// Parser message.
        message: String,
    },
}

impl std::fmt::Display for TraceReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceReadError::Schema { found, supported } => write!(
                f,
                "trace schema version {found} is newer than supported version {supported}"
            ),
            TraceReadError::Parse { line, message } => {
                write!(f, "trace line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceReadError {}

/// Parse JSONL produced by [`to_jsonl`] (or a [`JsonlSink`]),
/// validating the schema header. Headerless input is treated as a
/// legacy version-1 trace and upgraded in place (fields added since
/// v1 take their documented defaults); a header declaring a version
/// newer than [`SCHEMA_VERSION`] is rejected with
/// [`TraceReadError::Schema`].
pub fn read_jsonl(text: &str) -> Result<Vec<TraceEvent>, TraceReadError> {
    let mut events = Vec::new();
    let mut saw_header = false;
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parse_err = |e: &dyn std::fmt::Display| TraceReadError::Parse {
            line: idx + 1,
            message: e.to_string(),
        };
        let value: serde::Value = serde_json::from_str(line).map_err(|e| parse_err(&e))?;
        if let Some(version) = value.get("schema_version") {
            let found = match version {
                serde::Value::Number(n) => n.as_u64(),
                _ => None,
            }
            .ok_or_else(|| parse_err(&"schema_version is not an unsigned integer"))?
                as u32;
            if found > SCHEMA_VERSION {
                return Err(TraceReadError::Schema {
                    found,
                    supported: SCHEMA_VERSION,
                });
            }
            saw_header = true;
            continue;
        }
        let mut value = value;
        upgrade_event_value(&mut value);
        events.push(serde_json::from_value(&value).map_err(|e| parse_err(&e))?);
    }
    let _ = saw_header; // headerless == legacy v1, upgraded above
    Ok(events)
}

/// Parse JSONL produced by [`to_jsonl`] (or a [`JsonlSink`]). Lenient
/// variant of [`read_jsonl`]: header lines are skipped without
/// version enforcement (use `read_jsonl` to get a typed
/// [`TraceReadError`] for version mismatches).
pub fn from_jsonl(text: &str) -> Result<Vec<TraceEvent>, serde_json::Error> {
    text.lines()
        .filter(|line| !line.trim().is_empty())
        .filter_map(|line| {
            let value: serde::Value = match serde_json::from_str(line) {
                Ok(v) => v,
                Err(e) => return Some(Err(e)),
            };
            if value.get("schema_version").is_some() {
                return None;
            }
            let mut value = value;
            upgrade_event_value(&mut value);
            Some(serde_json::from_value(&value))
        })
        .collect()
}

/// Upgrade one event's value tree from any older schema version to
/// the current one: `PrecopyDrain` records written before
/// [`SCHEMA_VERSION`] 2 lack `cost_ns`, which defaults to 0.
fn upgrade_event_value(value: &mut serde::Value) {
    let serde::Value::Object(event_fields) = value else {
        return;
    };
    let Some((_, kind)) = event_fields.iter_mut().find(|(k, _)| k == "kind") else {
        return;
    };
    let serde::Value::Object(kind_fields) = kind else {
        return;
    };
    let Some((tag, payload)) = kind_fields.iter_mut().next() else {
        return;
    };
    if tag == "PrecopyDrain" {
        if let serde::Value::Object(fields) = payload {
            if !fields.iter().any(|(k, _)| k == "cost_ns") {
                fields.push((
                    "cost_ns".to_string(),
                    serde::Value::Number(serde::Number::U64(0)),
                ));
            }
        }
    }
}

/// Render events in Chrome `trace_event` JSON-array format, loadable
/// in `chrome://tracing` or Perfetto. Coordinated phases and recovery
/// ladders become duration begin/end pairs; everything else becomes a
/// thread-scoped instant event. Normal execution renders on `pid` 0
/// with one `tid` track per rank; the recovery ladder
/// (`recovery_start`/`recovery_end` spans with `recovery_retry` and
/// `recovery_verify` instants nested inside) renders on `pid` 1 with
/// the same per-rank `tid` lanes, so recoveries appear as their own
/// process group instead of instants lost in the rank tracks.
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::from("[");
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let (ph, pid) = match event.kind {
            TraceEventKind::CoordinatedBegin { .. } => ("B", 0),
            TraceEventKind::CoordinatedEnd { .. } => ("E", 0),
            TraceEventKind::RecoveryStart { .. } => ("B", 1),
            TraceEventKind::RecoveryEnd { .. } => ("E", 1),
            TraceEventKind::RecoveryRetry { .. } | TraceEventKind::RecoveryVerify { .. } => {
                ("i", 1)
            }
            _ => ("i", 0),
        };
        // Begin/end pairs share one name so viewers pair them on the
        // (pid, tid) stack, matching how the coordinated span already
        // uses "coordinated" for both edges.
        let name = match event.kind {
            TraceEventKind::RecoveryStart { .. } | TraceEventKind::RecoveryEnd { .. } => "recovery",
            _ => event.kind.name(),
        };
        let args = kind_args(&event.kind);
        let us_whole = event.t_ns / 1000;
        let us_frac = event.t_ns % 1000;
        write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"{}\",\"ts\":{}.{:03},\"pid\":{},\"tid\":{}",
            name, ph, us_whole, us_frac, pid, event.rank
        )
        .expect("writing to a String cannot fail");
        if ph == "i" {
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(",\"args\":");
        out.push_str(&args);
        out.push('}');
    }
    out.push(']');
    out
}

/// JSON object holding the payload fields of `kind` (the externally
/// tagged serde form with the tag stripped).
fn kind_args(kind: &TraceEventKind) -> String {
    match kind.to_value() {
        // Data-carrying variants serialize as {"Variant": {fields}}.
        serde::Value::Object(fields) if fields.len() == 1 => {
            serde_json::to_string(&fields[0].1).expect("trace events always serialize")
        }
        // Unit variants serialize as a bare string: no payload.
        _ => String::from("{}"),
    }
}

/// Per-kind event counts plus total charged device time — the compact
/// summary bench reports print.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Total events.
    pub events: u64,
    /// Protection faults.
    pub faults: u64,
    /// Chunks drained by pre-copy.
    pub precopy_drains: u64,
    /// Pre-copied chunks invalidated by later writes.
    pub precopy_wastes: u64,
    /// Coordinated checkpoint phases completed.
    pub coordinated: u64,
    /// Commit pointer flips.
    pub commit_flips: u64,
    /// Restarts.
    pub restarts: u64,
    /// Remote helper transfers.
    pub remote_transfers: u64,
    /// Bytes shipped by remote helpers.
    pub remote_bytes: u64,
    /// Rank failures.
    pub rank_failures: u64,
    /// Hard-failure node recoveries completed.
    pub recoveries: u64,
    /// Recovery transfer attempts that were lost and retried.
    pub recovery_retries: u64,
    /// Per-chunk bit-for-bit recovery verifications.
    pub recovery_verifies: u64,
    /// Barrier arrivals recorded (one per rank per barrier).
    pub barrier_waits: u64,
    /// Durable-store chunk writes.
    pub store_writes: u64,
    /// Durable-store epoch commits.
    pub store_commits: u64,
    /// Key-value operations (only present when per-op kv tracing was
    /// on).
    pub kv_ops: u64,
    /// CPR checkpoint tokens completed by the kv serving layer.
    pub kv_checkpoints: u64,
    /// Kv recovery seeks (rebuilds to a committed token).
    pub kv_recovery_seeks: u64,
}

/// Summarize an event stream.
pub fn summarize(events: &[TraceEvent]) -> TraceSummary {
    let mut s = TraceSummary {
        events: events.len() as u64,
        ..TraceSummary::default()
    };
    for event in events {
        match &event.kind {
            TraceEventKind::ProtectionFault { .. } => s.faults += 1,
            TraceEventKind::PrecopyDrain { .. } => s.precopy_drains += 1,
            TraceEventKind::PrecopyWaste { .. } => s.precopy_wastes += 1,
            TraceEventKind::CoordinatedEnd { .. } => s.coordinated += 1,
            TraceEventKind::CommitFlip { .. } => s.commit_flips += 1,
            TraceEventKind::Restart { .. } => s.restarts += 1,
            TraceEventKind::RemoteTransfer { bytes, .. } => {
                s.remote_transfers += 1;
                s.remote_bytes += bytes;
            }
            TraceEventKind::RankFailure { .. } => s.rank_failures += 1,
            TraceEventKind::RecoveryEnd { .. } => s.recoveries += 1,
            TraceEventKind::RecoveryRetry { .. } => s.recovery_retries += 1,
            TraceEventKind::RecoveryVerify { .. } => s.recovery_verifies += 1,
            TraceEventKind::BarrierWait { .. } => s.barrier_waits += 1,
            TraceEventKind::StoreWrite { .. } => s.store_writes += 1,
            TraceEventKind::StoreCommit { .. } => s.store_commits += 1,
            TraceEventKind::KvOp { .. } => s.kv_ops += 1,
            TraceEventKind::KvCheckpointEnd { .. } => s.kv_checkpoints += 1,
            TraceEventKind::KvRecoverySeek { .. } => s.kv_recovery_seeks += 1,
            _ => {}
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_ns: u64, rank: u64, chunk: u64) -> TraceEvent {
        TraceEvent {
            t_ns,
            rank,
            kind: TraceEventKind::ProtectionFault { chunk },
        }
    }

    #[test]
    fn disabled_tracer_emits_nothing() {
        let tracer = Tracer::disabled();
        assert!(!tracer.enabled());
        tracer.emit(1, TraceEventKind::ProtectionFault { chunk: 0 });
    }

    #[test]
    fn buffer_sink_records_in_order() {
        let sink = Arc::new(BufferSink::new());
        let tracer = Tracer::new(sink.clone()).with_rank(3);
        tracer.emit(10, TraceEventKind::ProtectionFault { chunk: 1 });
        tracer.emit(20, TraceEventKind::PrecopyWaste { chunk: 1 });
        let events = sink.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].t_ns, 10);
        assert_eq!(events[0].rank, 3);
        assert_eq!(events[1].kind, TraceEventKind::PrecopyWaste { chunk: 1 });
        assert!(sink.is_empty());
    }

    #[test]
    fn ring_buffer_keeps_most_recent() {
        let sink = BufferSink::with_capacity(2);
        for t in 0..5 {
            sink.record(ev(t, 0, t));
        }
        let events = sink.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].t_ns, 3);
        assert_eq!(events[1].t_ns, 4);
    }

    #[test]
    fn merge_is_schedule_independent() {
        // Rank buffers as a serial run would fill them...
        let r0 = vec![ev(5, 0, 0), ev(15, 0, 1)];
        let r1 = vec![ev(5, 1, 0), ev(10, 1, 1)];
        let a = merge_ranked(vec![r0.clone(), r1.clone()]);
        // ...and in the opposite completion order: same merge.
        let b = merge_ranked(vec![r0, r1]);
        assert_eq!(a, b);
        let order: Vec<(u64, u64)> = a.iter().map(|e| (e.t_ns, e.rank)).collect();
        assert_eq!(order, vec![(5, 0), (5, 1), (10, 1), (15, 0)]);
    }

    #[test]
    fn jsonl_round_trips() {
        let events = vec![
            ev(1, 0, 7),
            TraceEvent {
                t_ns: 2,
                rank: 1,
                kind: TraceEventKind::Restart {
                    strategy: "lazy".into(),
                    chunks: 0,
                },
            },
        ];
        let text = to_jsonl(&events);
        // Header line + one line per event.
        assert_eq!(text.lines().count(), 3);
        assert_eq!(
            text.lines().next().unwrap(),
            format!("{{\"schema_version\":{SCHEMA_VERSION}}}")
        );
        let back = from_jsonl(&text).unwrap();
        assert_eq!(back, events);
        // The strict reader accepts its own output too.
        assert_eq!(read_jsonl(&text).unwrap(), events);
    }

    #[test]
    fn legacy_v1_trace_upgrades_on_read() {
        // A headerless trace with a pre-`cost_ns` drain record, as a
        // schema-version-1 writer produced it.
        let v1 = "{\"t_ns\":5,\"rank\":0,\"kind\":{\"PrecopyDrain\":{\"chunk\":3,\"bytes\":64}}}\n";
        for events in [read_jsonl(v1).unwrap(), from_jsonl(v1).unwrap()] {
            assert_eq!(events.len(), 1);
            assert_eq!(
                events[0].kind,
                TraceEventKind::PrecopyDrain {
                    chunk: 3,
                    bytes: 64,
                    cost_ns: 0,
                }
            );
        }
    }

    #[test]
    fn future_schema_version_is_rejected_with_typed_error() {
        let future = format!("{{\"schema_version\":{}}}\n", SCHEMA_VERSION + 1);
        let err = read_jsonl(&future).unwrap_err();
        assert_eq!(
            err,
            TraceReadError::Schema {
                found: SCHEMA_VERSION + 1,
                supported: SCHEMA_VERSION,
            }
        );
        // The lenient reader skips the header without enforcing it.
        assert_eq!(from_jsonl(&future).unwrap(), Vec::new());
    }

    #[test]
    fn garbage_line_reports_its_line_number() {
        let text = format!("{}\nnot json\n", super::jsonl_header());
        match read_jsonl(&text).unwrap_err() {
            TraceReadError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn jsonl_sink_matches_offline_rendering() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));

        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Shared {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let events = vec![ev(1, 0, 7), ev(2, 0, 8)];
        let sink = JsonlSink::from_writer(Box::new(Shared(buf.clone())));
        for e in &events {
            sink.record(e.clone());
        }
        drop(sink);
        let written = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(written, to_jsonl(&events));
    }

    #[test]
    fn chrome_trace_is_valid_json_with_phase_pairs() {
        let events = vec![
            TraceEvent {
                t_ns: 1_500,
                rank: 0,
                kind: TraceEventKind::CoordinatedBegin { epoch: 1, dirty: 4 },
            },
            TraceEvent {
                t_ns: 2_500,
                rank: 0,
                kind: TraceEventKind::CoordinatedEnd {
                    epoch: 1,
                    copied_bytes: 4096,
                },
            },
        ];
        let json = to_chrome_trace(&events);
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        let items = value.as_array().unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].get("ph").unwrap().as_str(), Some("B"));
        assert_eq!(items[1].get("ph").unwrap().as_str(), Some("E"));
        // 1500 ns = 1.500 µs.
        assert!(json.contains("\"ts\":1.500"));
    }

    #[test]
    fn recovery_ladder_renders_as_nested_spans_on_pid_1() {
        let events = vec![
            TraceEvent {
                t_ns: 100,
                rank: 2,
                kind: TraceEventKind::RecoveryStart {
                    node: 1,
                    source: "remote-buddy".into(),
                },
            },
            TraceEvent {
                t_ns: 150,
                rank: 2,
                kind: TraceEventKind::RecoveryVerify {
                    rank: 2,
                    chunk: 0,
                    bytes: 4096,
                },
            },
            TraceEvent {
                t_ns: 200,
                rank: 2,
                kind: TraceEventKind::RecoveryEnd {
                    node: 1,
                    bytes: 4096,
                    verified: 1,
                },
            },
        ];
        let json = to_chrome_trace(&events);
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        let items = value.as_array().unwrap();
        assert_eq!(items.len(), 3);
        fn num(v: &serde_json::Value, key: &str) -> u64 {
            match v.get(key) {
                Some(serde::Value::Number(n)) => n.as_u64().unwrap(),
                other => panic!("expected number for {key}, got {other:?}"),
            }
        }
        for item in items {
            // The whole ladder lives on the recovery process lane.
            assert_eq!(num(item, "pid"), 1);
            assert_eq!(num(item, "tid"), 2);
        }
        // Begin/end share a name so viewers nest the verify instant
        // inside the span.
        assert_eq!(items[0].get("ph").unwrap().as_str(), Some("B"));
        assert_eq!(items[0].get("name").unwrap().as_str(), Some("recovery"));
        assert_eq!(items[1].get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(items[2].get("ph").unwrap().as_str(), Some("E"));
        assert_eq!(items[2].get("name").unwrap().as_str(), Some("recovery"));
    }

    #[test]
    fn kv_events_round_trip_and_summarize() {
        let events = vec![
            TraceEvent {
                t_ns: 1,
                rank: 0,
                kind: TraceEventKind::KvOp {
                    op: "upsert".into(),
                    session: 2,
                    serial: 7,
                    hit: true,
                },
            },
            TraceEvent {
                t_ns: 2,
                rank: 0,
                kind: TraceEventKind::KvCheckpointBegin { token: 1 },
            },
            TraceEvent {
                t_ns: 3,
                rank: 0,
                kind: TraceEventKind::KvCheckpointEnd {
                    token: 1,
                    log_bytes: 96,
                    sessions: 2,
                },
            },
            TraceEvent {
                t_ns: 4,
                rank: 0,
                kind: TraceEventKind::KvRecoverySeek {
                    token: 1,
                    replayed: 3,
                    dropped: 1,
                },
            },
        ];
        let text = to_jsonl(&events);
        assert_eq!(read_jsonl(&text).unwrap(), events);
        let s = summarize(&events);
        assert_eq!(s.kv_ops, 1);
        assert_eq!(s.kv_checkpoints, 1);
        assert_eq!(s.kv_recovery_seeks, 1);
        assert_eq!(events[0].kind.name(), "kv_op");
        assert_eq!(events[3].kind.name(), "kv_recovery_seek");
    }

    #[test]
    fn version_2_traces_still_load() {
        // A v2 trace (pre-kv kinds): header declares 2, events carry
        // every v2 field. Loads without upgrades.
        let v2 = "{\"schema_version\":2}\n\
                  {\"t_ns\":5,\"rank\":0,\"kind\":{\"PrecopyDrain\":{\"chunk\":3,\"bytes\":64,\"cost_ns\":9}}}\n";
        let events = read_jsonl(v2).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].kind,
            TraceEventKind::PrecopyDrain {
                chunk: 3,
                bytes: 64,
                cost_ns: 9,
            }
        );
    }

    #[test]
    fn summary_counts_kinds() {
        let events = vec![
            ev(1, 0, 0),
            TraceEvent {
                t_ns: 2,
                rank: 0,
                kind: TraceEventKind::RemoteTransfer {
                    bytes: 100,
                    incremental: true,
                },
            },
            TraceEvent {
                t_ns: 3,
                rank: 0,
                kind: TraceEventKind::RemoteTransfer {
                    bytes: 50,
                    incremental: false,
                },
            },
        ];
        let s = summarize(&events);
        assert_eq!(s.events, 3);
        assert_eq!(s.faults, 1);
        assert_eq!(s.remote_transfers, 2);
        assert_eq!(s.remote_bytes, 150);
    }
}
