//! NVM-checkpoints core engine.
//!
//! This crate is the primary contribution of the reproduced paper
//! ("Optimizing Checkpoints Using NVM as Virtual Memory", IPDPS 2013):
//! an application-initiated checkpoint library that treats emulated
//! byte-addressable NVM as slow *virtual memory* rather than a fast
//! disk, and hides the NVM's write-latency and bandwidth limits with
//! shadow buffering and three pre-copy schemes.
//!
//! * [`engine::CheckpointEngine`] — per-process engine: allocation
//!   (Table III interfaces), shadow buffering, background pre-copy,
//!   coordinated checkpoint with two-version commit, checksummed
//!   restart.
//! * [`config::PrecopyPolicy`] — `None` (baseline), `Cpc`, `Dcpc`,
//!   `Dcpcp`.
//! * [`precopy::PrecopyPlanner`] — learns the checkpoint interval and
//!   data size, yields the `T_p = I - D/BW` threshold.
//! * [`predict::PredictionTable`] — per-chunk modification-count
//!   predictor that keeps hot chunks out of the pre-copy stream.
//! * [`checksum`] — CRC-64 used for commit/restart integrity.
//!
//! # Quick example
//!
//! ```
//! use nvm_chkpt::{CheckpointEngine, EngineConfig};
//! use nvm_emu::{MemoryDevice, SimDuration, VirtualClock};
//!
//! let dram = MemoryDevice::dram(64 << 20);
//! let nvm = MemoryDevice::pcm(64 << 20);
//! let clock = VirtualClock::new();
//! let mut engine = CheckpointEngine::new(
//!     0, &dram, &nvm, 32 << 20, clock.clone(), EngineConfig::default(),
//! ).unwrap();
//!
//! let field = engine.nvmalloc("field", 4096, true).unwrap();
//! engine.write(field, 0, &[42u8; 4096]).unwrap();
//! engine.compute(SimDuration::from_secs(1));
//! let report = engine.nvchkptall().unwrap();
//! assert_eq!(report.total_bytes(), 4096);
//! assert_eq!(engine.committed_bytes(field).unwrap(), vec![42u8; 4096]);
//! ```

#![warn(missing_docs)]

pub mod capi;
pub mod checksum;
pub mod compress;
pub mod config;
pub mod engine;
pub mod persist;
pub mod precopy;
pub mod predict;
pub mod restart;
pub mod stats;
pub mod transparent;

pub use compress::{compress, decompress, CompressionModel, CompressionStats};
pub use config::{ConfigError, EngineConfig, EngineConfigBuilder, PrecopyPolicy};
pub use engine::{CheckpointEngine, EngineError, RemoteImage, RestartReport};
pub use persist::{
    PersistError, Persistence, RecoveredChunk, RecoveredState, StoreStats, SyntheticPayload,
};
pub use precopy::PrecopyPlanner;
pub use predict::PredictionTable;
pub use restart::RestartStrategy;
pub use stats::{EngineStats, EpochReport};
pub use transparent::TransparentProcess;

// The Table-III C surface, re-exported so bindings and examples import
// from the crate root instead of reaching into `capi`.
pub use capi::{
    nv2dalloc, nv_genid, nvalloc, nvchkptall, nvchkptid, nvcompute, nvdelete, nvm_close,
    nvm_last_error, nvm_last_error_len, nvm_open, nvm_simulate_restart, nvread, nvwrite, NvmCtx,
};

// Re-exports so downstream crates rarely need the substrate crates
// directly.
pub use nvm_heap::{Materialization, Versioning};
pub use nvm_paging::{genid, ChunkId, Granularity};

// Event-tracing surface: attach a `Tracer` with
// [`CheckpointEngine::set_tracer`] and collect [`TraceEvent`]s from
// any [`TraceSink`].
pub use nvm_trace::{
    BufferSink, JsonlSink, NullSink, TraceEvent, TraceEventKind, TraceSink, Tracer,
};
