//! Restart strategies — the paper's explicit future work.
//!
//! The paper's restart component is deliberately simple ("our current
//! restart mechanism is simplistic and our future plans will consider
//! its in-depth analysis and possible optimizations") and notes that
//! NVM *read* speeds are DRAM-class, making restart a promising
//! optimization target. This module implements three strategies:
//!
//! * [`RestartStrategy::Eager`] — the paper's baseline: verify and
//!   restore every committed chunk serially before returning control.
//! * [`RestartStrategy::Parallel`] — restore with several concurrent
//!   read streams; wall time shrinks toward `total / streams`, bounded
//!   by the contended per-stream bandwidth.
//! * [`RestartStrategy::Lazy`] — return control immediately; each
//!   chunk is verified and restored on *first access* (the same idea
//!   as the shadow-buffer read path: "the application can directly
//!   access write protected NVM, and an attempt to modify the data
//!   would move the data back to DRAM"). Applications that touch only
//!   part of their state after a failure never pay for the rest.

use serde::{Deserialize, Serialize};

/// How a restarted process repopulates its DRAM working copies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum RestartStrategy {
    /// Verify + restore everything before returning (the baseline).
    #[default]
    Eager,
    /// Verify + restore everything with `streams` concurrent readers.
    Parallel {
        /// Concurrent restore streams.
        streams: usize,
    },
    /// Defer each chunk's verify + restore to its first access.
    Lazy,
}

impl RestartStrategy {
    /// Short lowercase name, used to label trace events.
    pub fn name(self) -> &'static str {
        match self {
            RestartStrategy::Eager => "eager",
            RestartStrategy::Parallel { .. } => "parallel",
            RestartStrategy::Lazy => "lazy",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_eager() {
        assert_eq!(RestartStrategy::default(), RestartStrategy::Eager);
    }
}
