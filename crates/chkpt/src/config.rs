//! Engine configuration.

use nvm_heap::{Materialization, Versioning};
use nvm_paging::Granularity;
use serde::{Deserialize, Serialize};

/// Which pre-copy scheme the engine runs (Section IV of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrecopyPolicy {
    /// No pre-copy: the entire dirty set is copied at the coordinated
    /// checkpoint (the paper's "no pre-copy" baseline).
    None,
    /// Chunk-based pre-copy: dirty chunks stream to NVM in the
    /// background from the start of the compute interval.
    Cpc,
    /// Delayed chunk pre-copy: background copying starts only at the
    /// pre-copy threshold `T_p = I - D / NVMBW_core`, so chunks that
    /// mutate early in the interval are not copied repeatedly.
    Dcpc,
    /// Delayed pre-copy with prediction: DCPC plus a per-chunk
    /// modification-count prediction table; *hot chunks* (those that
    /// mutate until the end of the interval) are not pre-copied until
    /// their learned modification count is reached.
    Dcpcp,
}

impl PrecopyPolicy {
    /// Whether any background copying happens at all.
    pub fn enabled(self) -> bool {
        !matches!(self, PrecopyPolicy::None)
    }

    /// Whether the threshold delay applies.
    pub fn delayed(self) -> bool {
        matches!(self, PrecopyPolicy::Dcpc | PrecopyPolicy::Dcpcp)
    }

    /// Whether the prediction table gates pre-copy.
    pub fn predictive(self) -> bool {
        matches!(self, PrecopyPolicy::Dcpcp)
    }
}

/// Full engine configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Pre-copy scheme.
    pub precopy: PrecopyPolicy,
    /// One or two NVM versions per chunk.
    pub versioning: Versioning,
    /// Chunk- or page-level protection (page-level only for ablation).
    pub granularity: Granularity,
    /// Compute per-chunk checksums at commit and verify on restart.
    pub checksums: bool,
    /// Byte-backed or size-only payloads.
    pub materialization: Materialization,
    /// How many application processes share this node's NVM device
    /// during a coordinated checkpoint (sets the contention level the
    /// device model sees).
    pub node_concurrency: usize,
    /// Fraction of a background copy's duration that surfaces as
    /// application slowdown (memory-bandwidth interference between the
    /// pre-copy stream and the computation). 0 = free overlap,
    /// 1 = fully serialized.
    pub precopy_interference: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            precopy: PrecopyPolicy::Dcpcp,
            versioning: Versioning::Double,
            granularity: Granularity::Chunk,
            checksums: true,
            materialization: Materialization::Bytes,
            node_concurrency: 1,
            precopy_interference: 0.25,
        }
    }
}

impl EngineConfig {
    /// The paper's "no pre-copy" baseline with otherwise default knobs.
    pub fn no_precopy() -> Self {
        EngineConfig {
            precopy: PrecopyPolicy::None,
            ..Self::default()
        }
    }

    /// Builder-style setter for the pre-copy policy.
    pub fn with_precopy(mut self, p: PrecopyPolicy) -> Self {
        self.precopy = p;
        self
    }

    /// Builder-style setter for materialization.
    pub fn with_materialization(mut self, m: Materialization) -> Self {
        self.materialization = m;
        self
    }

    /// Builder-style setter for node concurrency.
    pub fn with_node_concurrency(mut self, n: usize) -> Self {
        self.node_concurrency = n.max(1);
        self
    }

    /// Builder-style setter for versioning.
    pub fn with_versioning(mut self, v: Versioning) -> Self {
        self.versioning = v;
        self
    }

    /// Builder-style setter for protection granularity.
    pub fn with_granularity(mut self, g: Granularity) -> Self {
        self.granularity = g;
        self
    }

    /// Builder-style setter for checksumming.
    pub fn with_checksums(mut self, on: bool) -> Self {
        self.checksums = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_predicates() {
        assert!(!PrecopyPolicy::None.enabled());
        assert!(PrecopyPolicy::Cpc.enabled());
        assert!(!PrecopyPolicy::Cpc.delayed());
        assert!(PrecopyPolicy::Dcpc.delayed());
        assert!(!PrecopyPolicy::Dcpc.predictive());
        assert!(PrecopyPolicy::Dcpcp.delayed());
        assert!(PrecopyPolicy::Dcpcp.predictive());
    }

    #[test]
    fn builders_compose() {
        let c = EngineConfig::default()
            .with_precopy(PrecopyPolicy::Cpc)
            .with_node_concurrency(0)
            .with_checksums(false);
        assert_eq!(c.precopy, PrecopyPolicy::Cpc);
        assert_eq!(c.node_concurrency, 1, "clamped to >= 1");
        assert!(!c.checksums);
    }
}
