//! Engine configuration.

use nvm_heap::{Materialization, Versioning};
use nvm_paging::Granularity;
use serde::{Deserialize, Serialize};

/// Which pre-copy scheme the engine runs (Section IV of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrecopyPolicy {
    /// No pre-copy: the entire dirty set is copied at the coordinated
    /// checkpoint (the paper's "no pre-copy" baseline).
    None,
    /// Chunk-based pre-copy: dirty chunks stream to NVM in the
    /// background from the start of the compute interval.
    Cpc,
    /// Delayed chunk pre-copy: background copying starts only at the
    /// pre-copy threshold `T_p = I - D / NVMBW_core`, so chunks that
    /// mutate early in the interval are not copied repeatedly.
    Dcpc,
    /// Delayed pre-copy with prediction: DCPC plus a per-chunk
    /// modification-count prediction table; *hot chunks* (those that
    /// mutate until the end of the interval) are not pre-copied until
    /// their learned modification count is reached.
    Dcpcp,
}

impl PrecopyPolicy {
    /// Whether any background copying happens at all.
    pub fn enabled(self) -> bool {
        !matches!(self, PrecopyPolicy::None)
    }

    /// Whether the threshold delay applies.
    pub fn delayed(self) -> bool {
        matches!(self, PrecopyPolicy::Dcpc | PrecopyPolicy::Dcpcp)
    }

    /// Whether the prediction table gates pre-copy.
    pub fn predictive(self) -> bool {
        matches!(self, PrecopyPolicy::Dcpcp)
    }
}

/// Rejected engine configurations (raised by
/// [`EngineConfigBuilder::build`] and at engine construction, so an
/// invalid combination fails before a run starts instead of mid-run).
#[non_exhaustive]
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// `node_concurrency` must be at least 1.
    ZeroNodeConcurrency,
    /// `precopy_interference` must be finite and within `[0, 1]`.
    InvalidInterference(f64),
    /// Checksums need real bytes: `checksums = true` is meaningless
    /// with size-only (synthetic) payloads.
    ChecksumsRequireBytes,
    /// DCPCP's prediction table needs at least one warm-up epoch to
    /// learn per-chunk modification counts before it can gate pre-copy.
    PredictionNeedsWarmup,
    /// The engine's NVM shadow container must not be empty.
    ZeroShadowRegion,
}

nvm_emu::error_enum! {
    ConfigError, f {
        leaf ConfigError::ZeroNodeConcurrency =>
            write!(f, "node_concurrency must be >= 1"),
        leaf ConfigError::InvalidInterference(v) =>
            write!(f, "precopy_interference must be finite in [0, 1], got {v}"),
        leaf ConfigError::ChecksumsRequireBytes =>
            write!(f, "checksums require byte-backed (non-synthetic) materialization"),
        leaf ConfigError::PredictionNeedsWarmup =>
            write!(f, "DCPCP needs warmup_epochs >= 1 for its prediction table"),
        leaf ConfigError::ZeroShadowRegion =>
            write!(f, "NVM shadow container capacity must be > 0"),
    }
}

/// Full engine configuration.
///
/// Construct via [`EngineConfig::builder`] (validating) or start from
/// [`EngineConfig::default`] and use the `with_*` setters. The engine
/// re-validates at construction, so invalid combinations are caught
/// even for hand-assembled structs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Pre-copy scheme.
    pub precopy: PrecopyPolicy,
    /// One or two NVM versions per chunk.
    pub versioning: Versioning,
    /// Chunk- or page-level protection (page-level only for ablation).
    pub granularity: Granularity,
    /// Compute per-chunk checksums at commit and verify on restart.
    pub checksums: bool,
    /// Byte-backed or size-only payloads.
    pub materialization: Materialization,
    /// How many application processes share this node's NVM device
    /// during a coordinated checkpoint (sets the contention level the
    /// device model sees).
    pub node_concurrency: usize,
    /// Fraction of a background copy's duration that surfaces as
    /// application slowdown (memory-bandwidth interference between the
    /// pre-copy stream and the computation). 0 = free overlap,
    /// 1 = fully serialized.
    pub precopy_interference: f64,
    /// Epochs the delayed pre-copy policies observe before the learned
    /// threshold (and, for DCPCP, the prediction table) takes effect.
    /// The paper's scheme "waits for the first checkpoint step to
    /// complete", i.e. 1.
    pub warmup_epochs: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            precopy: PrecopyPolicy::Dcpcp,
            versioning: Versioning::Double,
            granularity: Granularity::Chunk,
            checksums: true,
            materialization: Materialization::Bytes,
            node_concurrency: 1,
            precopy_interference: 0.25,
            warmup_epochs: 1,
        }
    }
}

impl EngineConfig {
    /// Validating builder, seeded with the default configuration.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder {
            config: Self::default(),
        }
    }

    /// Check the configuration for invalid combinations. Called by
    /// [`EngineConfigBuilder::build`] and by the engine constructor.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.node_concurrency == 0 {
            return Err(ConfigError::ZeroNodeConcurrency);
        }
        if !self.precopy_interference.is_finite()
            || !(0.0..=1.0).contains(&self.precopy_interference)
        {
            return Err(ConfigError::InvalidInterference(self.precopy_interference));
        }
        if self.checksums && self.materialization == Materialization::Synthetic {
            return Err(ConfigError::ChecksumsRequireBytes);
        }
        if self.precopy.predictive() && self.warmup_epochs == 0 {
            return Err(ConfigError::PredictionNeedsWarmup);
        }
        Ok(())
    }

    /// The paper's "no pre-copy" baseline with otherwise default knobs.
    pub fn no_precopy() -> Self {
        EngineConfig {
            precopy: PrecopyPolicy::None,
            ..Self::default()
        }
    }

    /// Builder-style setter for the pre-copy policy.
    pub fn with_precopy(mut self, p: PrecopyPolicy) -> Self {
        self.precopy = p;
        self
    }

    /// Builder-style setter for materialization.
    pub fn with_materialization(mut self, m: Materialization) -> Self {
        self.materialization = m;
        self
    }

    /// Builder-style setter for node concurrency.
    pub fn with_node_concurrency(mut self, n: usize) -> Self {
        self.node_concurrency = n.max(1);
        self
    }

    /// Builder-style setter for versioning.
    pub fn with_versioning(mut self, v: Versioning) -> Self {
        self.versioning = v;
        self
    }

    /// Builder-style setter for protection granularity.
    pub fn with_granularity(mut self, g: Granularity) -> Self {
        self.granularity = g;
        self
    }

    /// Builder-style setter for checksumming.
    pub fn with_checksums(mut self, on: bool) -> Self {
        self.checksums = on;
        self
    }

    /// Builder-style setter for the warm-up epoch count.
    pub fn with_warmup_epochs(mut self, epochs: u64) -> Self {
        self.warmup_epochs = epochs;
        self
    }
}

/// Validating builder for [`EngineConfig`].
///
/// Unlike the `with_*` setters (which keep legacy clamping behavior),
/// the builder stores exactly what it is given and [`build`] rejects
/// invalid combinations with a [`ConfigError`].
///
/// [`build`]: EngineConfigBuilder::build
#[derive(Clone, Debug)]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// Set the pre-copy policy.
    pub fn precopy(mut self, p: PrecopyPolicy) -> Self {
        self.config.precopy = p;
        self
    }

    /// Set the versioning scheme.
    pub fn versioning(mut self, v: Versioning) -> Self {
        self.config.versioning = v;
        self
    }

    /// Set the protection granularity.
    pub fn granularity(mut self, g: Granularity) -> Self {
        self.config.granularity = g;
        self
    }

    /// Enable or disable commit-time checksums.
    pub fn checksums(mut self, on: bool) -> Self {
        self.config.checksums = on;
        self
    }

    /// Set byte-backed or size-only payloads. Disabling bytes also
    /// requires disabling checksums (validated at [`build`]).
    ///
    /// [`build`]: EngineConfigBuilder::build
    pub fn materialization(mut self, m: Materialization) -> Self {
        self.config.materialization = m;
        self
    }

    /// Set how many ranks share the node's NVM device.
    pub fn node_concurrency(mut self, n: usize) -> Self {
        self.config.node_concurrency = n;
        self
    }

    /// Set the pre-copy interference fraction in `[0, 1]`.
    pub fn precopy_interference(mut self, frac: f64) -> Self {
        self.config.precopy_interference = frac;
        self
    }

    /// Set the number of warm-up epochs for delayed pre-copy.
    pub fn warmup_epochs(mut self, epochs: u64) -> Self {
        self.config.warmup_epochs = epochs;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<EngineConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_predicates() {
        assert!(!PrecopyPolicy::None.enabled());
        assert!(PrecopyPolicy::Cpc.enabled());
        assert!(!PrecopyPolicy::Cpc.delayed());
        assert!(PrecopyPolicy::Dcpc.delayed());
        assert!(!PrecopyPolicy::Dcpc.predictive());
        assert!(PrecopyPolicy::Dcpcp.delayed());
        assert!(PrecopyPolicy::Dcpcp.predictive());
    }

    #[test]
    fn builder_accepts_valid_configs() {
        let c = EngineConfig::builder()
            .precopy(PrecopyPolicy::Cpc)
            .materialization(Materialization::Synthetic)
            .checksums(false)
            .node_concurrency(12)
            .precopy_interference(0.5)
            .build()
            .unwrap();
        assert_eq!(c.precopy, PrecopyPolicy::Cpc);
        assert_eq!(c.node_concurrency, 12);
        assert_eq!(c.precopy_interference, 0.5);
        // Untouched knobs come from Default.
        assert_eq!(c.versioning, EngineConfig::default().versioning);
    }

    #[test]
    fn builder_defaults_match_default() {
        assert_eq!(EngineConfig::builder().build().unwrap(), {
            EngineConfig::default()
        });
    }

    #[test]
    fn builder_rejects_invalid_combinations() {
        assert_eq!(
            EngineConfig::builder().node_concurrency(0).build(),
            Err(ConfigError::ZeroNodeConcurrency)
        );
        assert_eq!(
            EngineConfig::builder().precopy_interference(1.5).build(),
            Err(ConfigError::InvalidInterference(1.5))
        );
        assert!(matches!(
            EngineConfig::builder()
                .precopy_interference(f64::NAN)
                .build(),
            Err(ConfigError::InvalidInterference(_))
        ));
        assert_eq!(
            EngineConfig::builder()
                .materialization(Materialization::Synthetic)
                .build(),
            Err(ConfigError::ChecksumsRequireBytes)
        );
        assert_eq!(
            EngineConfig::builder()
                .precopy(PrecopyPolicy::Dcpcp)
                .warmup_epochs(0)
                .build(),
            Err(ConfigError::PredictionNeedsWarmup)
        );
        // DCPC (non-predictive) tolerates zero warm-up.
        assert!(EngineConfig::builder()
            .precopy(PrecopyPolicy::Dcpc)
            .warmup_epochs(0)
            .build()
            .is_ok());
    }

    #[test]
    fn builders_compose() {
        let c = EngineConfig::default()
            .with_precopy(PrecopyPolicy::Cpc)
            .with_node_concurrency(0)
            .with_checksums(false);
        assert_eq!(c.precopy, PrecopyPolicy::Cpc);
        assert_eq!(c.node_concurrency, 1, "clamped to >= 1");
        assert!(!c.checksums);
    }
}
