//! C ABI for the checkpoint library.
//!
//! The paper's user library "provides Fortran and C/C++ interfaces" so
//! HPC codes can adopt NVM checkpointing with minimal changes. This
//! module exports the Table-III surface over a stable `extern "C"`
//! ABI: an opaque context handle, `u64` chunk ids (`nv_genid` output),
//! and integer status codes. Fortran binds to the same symbols via
//! `iso_c_binding`.
//!
//! Conventions:
//! * functions returning `i32` yield `0` on success, negative on error
//!   (the message is retrievable with [`nvm_last_error`]);
//! * functions returning `u64` ids yield `0` on error;
//! * all pointers must be valid for the stated lengths; `name` strings
//!   are NUL-terminated UTF-8.

use crate::config::EngineConfig;
use crate::engine::CheckpointEngine;
use nvm_emu::{MemoryDevice, SimDuration, VirtualClock};
use nvm_paging::ChunkId;
use std::cell::RefCell;
use std::ffi::{c_char, CStr};

thread_local! {
    static LAST_ERROR: RefCell<String> = const { RefCell::new(String::new()) };
}

fn set_error(msg: impl ToString) {
    LAST_ERROR.with(|e| *e.borrow_mut() = msg.to_string());
}

/// Collapse a `Result` into the C status convention: `0` on success,
/// `-1` with the error recorded for [`nvm_last_error`] otherwise.
fn status<T>(res: Result<T, impl ToString>) -> i32 {
    match res {
        Ok(_) => 0,
        Err(e) => {
            set_error(e);
            -1
        }
    }
}

/// Collapse a `Result<ChunkId>` into the C id convention: the raw id
/// on success, `0` with the error recorded otherwise.
fn id_status(res: Result<ChunkId, impl ToString>) -> u64 {
    match res {
        Ok(id) => id.0,
        Err(e) => {
            set_error(e);
            0
        }
    }
}

/// Opaque context: one emulated node + one checkpoint engine.
pub struct NvmCtx {
    dram: MemoryDevice,
    nvm: MemoryDevice,
    clock: VirtualClock,
    engine: CheckpointEngine,
}

/// Length of the last error message on this thread (bytes, no NUL).
///
/// # Safety
/// Always safe; exported for symmetry with [`nvm_last_error`].
#[no_mangle]
pub extern "C" fn nvm_last_error_len() -> usize {
    LAST_ERROR.with(|e| e.borrow().len())
}

/// Copy the last error message into `buf` (up to `len` bytes, no NUL
/// terminator added). Returns the number of bytes written.
///
/// # Safety
/// `buf` must be valid for `len` bytes.
#[no_mangle]
pub unsafe extern "C" fn nvm_last_error(buf: *mut u8, len: usize) -> usize {
    LAST_ERROR.with(|e| {
        let msg = e.borrow();
        let n = msg.len().min(len);
        if n > 0 && !buf.is_null() {
            std::ptr::copy_nonoverlapping(msg.as_ptr(), buf, n);
        }
        n
    })
}

/// Open a context: an emulated node with `dram_bytes` of DRAM,
/// `nvm_bytes` of PCM, and a per-process NVM container of
/// `container_bytes`. Returns NULL on failure.
///
/// # Safety
/// The returned pointer must be released with [`nvm_close`].
#[no_mangle]
pub extern "C" fn nvm_open(
    process_id: u64,
    dram_bytes: usize,
    nvm_bytes: usize,
    container_bytes: usize,
) -> *mut NvmCtx {
    let dram = MemoryDevice::dram(dram_bytes);
    let nvm = MemoryDevice::pcm(nvm_bytes);
    let clock = VirtualClock::new();
    match CheckpointEngine::new(
        process_id,
        &dram,
        &nvm,
        container_bytes,
        clock.clone(),
        EngineConfig::default(),
    ) {
        Ok(engine) => Box::into_raw(Box::new(NvmCtx {
            dram,
            nvm,
            clock,
            engine,
        })),
        Err(e) => {
            set_error(e);
            std::ptr::null_mut()
        }
    }
}

/// Close a context and free its resources.
///
/// # Safety
/// `ctx` must be a pointer returned by [`nvm_open`] (or
/// [`nvm_simulate_restart`]) and not already closed.
#[no_mangle]
pub unsafe extern "C" fn nvm_close(ctx: *mut NvmCtx) {
    if !ctx.is_null() {
        drop(Box::from_raw(ctx));
    }
}

unsafe fn ctx_mut<'a>(ctx: *mut NvmCtx) -> Option<&'a mut NvmCtx> {
    if ctx.is_null() {
        set_error("null context");
        None
    } else {
        Some(&mut *ctx)
    }
}

unsafe fn name_str<'a>(name: *const c_char) -> Option<&'a str> {
    if name.is_null() {
        set_error("null name");
        return None;
    }
    match CStr::from_ptr(name).to_str() {
        Ok(s) => Some(s),
        Err(_) => {
            set_error("name is not valid UTF-8");
            None
        }
    }
}

/// `genid(varname)` — stable chunk id from a variable name.
///
/// # Safety
/// `name` must be a valid NUL-terminated string.
#[no_mangle]
pub unsafe extern "C" fn nv_genid(name: *const c_char) -> u64 {
    match name_str(name) {
        Some(s) => nvm_paging::genid(s).0,
        None => 0,
    }
}

/// `nvalloc(id, size, pflg)` — allocate a chunk; returns its id, 0 on
/// error.
///
/// # Safety
/// `ctx` must be a live context; `name` a valid NUL-terminated string.
#[no_mangle]
pub unsafe extern "C" fn nvalloc(
    ctx: *mut NvmCtx,
    name: *const c_char,
    size: usize,
    pflg: i32,
) -> u64 {
    let (Some(c), Some(n)) = (ctx_mut(ctx), name_str(name)) else {
        return 0;
    };
    id_status(c.engine.nvmalloc(n, size, pflg != 0))
}

/// `nv2dalloc(dim1, dim2)` — 2-D allocation wrapper (8-byte elements,
/// matching the Fortran `real*8` arrays it exists for).
///
/// # Safety
/// Same contract as [`nvalloc`].
#[no_mangle]
pub unsafe extern "C" fn nv2dalloc(
    ctx: *mut NvmCtx,
    name: *const c_char,
    dim1: usize,
    dim2: usize,
) -> u64 {
    let (Some(c), Some(n)) = (ctx_mut(ctx), name_str(name)) else {
        return 0;
    };
    id_status(c.engine.nv2dalloc(n, dim1, dim2, 8, true))
}

/// Write `len` bytes at `offset` into a chunk's working copy.
///
/// # Safety
/// `ctx` live; `data` valid for `len` bytes.
#[no_mangle]
pub unsafe extern "C" fn nvwrite(
    ctx: *mut NvmCtx,
    id: u64,
    offset: usize,
    data: *const u8,
    len: usize,
) -> i32 {
    let Some(c) = ctx_mut(ctx) else { return -1 };
    if data.is_null() && len > 0 {
        set_error("null data");
        return -1;
    }
    let slice = std::slice::from_raw_parts(data, len);
    status(c.engine.write(ChunkId(id), offset, slice))
}

/// Read `len` bytes at `offset` from a chunk's working copy.
///
/// # Safety
/// `ctx` live; `buf` valid for `len` bytes.
#[no_mangle]
pub unsafe extern "C" fn nvread(
    ctx: *mut NvmCtx,
    id: u64,
    offset: usize,
    buf: *mut u8,
    len: usize,
) -> i32 {
    let Some(c) = ctx_mut(ctx) else { return -1 };
    if buf.is_null() && len > 0 {
        set_error("null buffer");
        return -1;
    }
    let slice = std::slice::from_raw_parts_mut(buf, len);
    status(c.engine.read(ChunkId(id), offset, slice))
}

/// Model a compute phase of `seconds` of virtual time (background
/// pre-copy runs inside).
///
/// # Safety
/// `ctx` must be live.
#[no_mangle]
pub unsafe extern "C" fn nvcompute(ctx: *mut NvmCtx, seconds: f64) -> i32 {
    let Some(c) = ctx_mut(ctx) else { return -1 };
    if seconds < 0.0 || !seconds.is_finite() {
        set_error("invalid duration");
        return -1;
    }
    c.engine.compute(SimDuration::from_secs_f64(seconds));
    0
}

/// `nvchkptall()` — coordinated checkpoint of every persistent chunk.
///
/// # Safety
/// `ctx` must be live.
#[no_mangle]
pub unsafe extern "C" fn nvchkptall(ctx: *mut NvmCtx) -> i32 {
    let Some(c) = ctx_mut(ctx) else { return -1 };
    status(c.engine.nvchkptall())
}

/// `nvchkptid(id)` — checkpoint one chunk.
///
/// # Safety
/// `ctx` must be live.
#[no_mangle]
pub unsafe extern "C" fn nvchkptid(ctx: *mut NvmCtx, id: u64) -> i32 {
    let Some(c) = ctx_mut(ctx) else { return -1 };
    status(c.engine.nvchkptid(ChunkId(id)))
}

/// `nvdelete(id)` — drop a chunk.
///
/// # Safety
/// `ctx` must be live.
#[no_mangle]
pub unsafe extern "C" fn nvdelete(ctx: *mut NvmCtx, id: u64) -> i32 {
    let Some(c) = ctx_mut(ctx) else { return -1 };
    status(c.engine.nvdelete(ChunkId(id)))
}

/// Simulate a process crash + restart on the same node: the context's
/// engine is torn down and rebuilt from the persistent metadata region
/// (the emulated NVM survives inside the context). Returns the number
/// of chunks restored, or negative on error.
///
/// # Safety
/// `ctx` must be live; on success its previous chunk working copies
/// are gone (as after a real crash).
#[no_mangle]
pub unsafe extern "C" fn nvm_simulate_restart(ctx: *mut NvmCtx) -> i64 {
    let Some(c) = ctx_mut(ctx) else { return -1 };
    let region = c.engine.metadata_region();
    // Build the replacement engine before dropping the old one.
    match CheckpointEngine::restart(&c.dram, &c.nvm, region, c.clock.clone(), *c.engine.config()) {
        Ok((engine, report)) => {
            c.engine = engine;
            report.restored.len() as i64
        }
        Err(e) => {
            set_error(e);
            -1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::ffi::CString;

    #[test]
    fn full_c_lifecycle() {
        unsafe {
            let ctx = nvm_open(7, 64 << 20, 64 << 20, 32 << 20);
            assert!(!ctx.is_null());

            let name = CString::new("ions").unwrap();
            let id = nvalloc(ctx, name.as_ptr(), 4096, 1);
            assert_ne!(id, 0);
            assert_eq!(id, nv_genid(name.as_ptr()), "nvalloc uses genid");

            let data = vec![42u8; 4096];
            assert_eq!(nvwrite(ctx, id, 0, data.as_ptr(), data.len()), 0);
            assert_eq!(nvcompute(ctx, 1.0), 0);
            assert_eq!(nvchkptall(ctx), 0);

            // Clobber, crash, restart, verify.
            let junk = vec![0u8; 4096];
            assert_eq!(nvwrite(ctx, id, 0, junk.as_ptr(), junk.len()), 0);
            let restored = nvm_simulate_restart(ctx);
            assert_eq!(restored, 1);
            let mut buf = vec![0u8; 4096];
            assert_eq!(nvread(ctx, id, 0, buf.as_mut_ptr(), buf.len()), 0);
            assert_eq!(buf, data);

            assert_eq!(nvdelete(ctx, id), 0);
            nvm_close(ctx);
        }
    }

    #[test]
    fn errors_set_message_and_codes() {
        unsafe {
            let ctx = nvm_open(1, 16 << 20, 16 << 20, 8 << 20);
            // Unknown chunk.
            assert_eq!(nvchkptid(ctx, 999), -1);
            assert!(nvm_last_error_len() > 0);
            let mut buf = vec![0u8; 256];
            let n = nvm_last_error(buf.as_mut_ptr(), buf.len());
            let msg = std::str::from_utf8(&buf[..n]).unwrap();
            assert!(msg.contains("no"), "msg: {msg}");

            // Null pointers.
            assert_eq!(nvwrite(ctx, 1, 0, std::ptr::null(), 8), -1);
            assert_eq!(nvalloc(ctx, std::ptr::null(), 8, 1), 0);
            assert_eq!(nv_genid(std::ptr::null()), 0);
            assert_eq!(nvcompute(ctx, f64::NAN), -1);

            // Null context is rejected everywhere.
            assert_eq!(nvchkptall(std::ptr::null_mut()), -1);
            assert_eq!(nvm_simulate_restart(std::ptr::null_mut()), -1);
            nvm_close(ctx);
            nvm_close(std::ptr::null_mut()); // harmless
        }
    }

    #[test]
    fn two_d_alloc_sizes_like_fortran() {
        unsafe {
            let ctx = nvm_open(1, 64 << 20, 64 << 20, 32 << 20);
            let name = CString::new("phi").unwrap();
            let id = nv2dalloc(ctx, name.as_ptr(), 100, 50);
            assert_ne!(id, 0);
            // 100 x 50 real*8 = 40000 bytes: offset 39992 is writable,
            // 40000 is not.
            let v = [1u8; 8];
            assert_eq!(nvwrite(ctx, id, 39992, v.as_ptr(), 8), 0);
            assert_eq!(nvwrite(ctx, id, 40000, v.as_ptr(), 8), -1);
            nvm_close(ctx);
        }
    }
}
