//! CRC-64 checksums for checkpoint integrity.
//!
//! The paper's optional checksum feature computes a checksum per chunk
//! after every checkpoint and re-verifies it on restart; a mismatch
//! sends the restart component to the remote copy. We use CRC-64/XZ
//! (ECMA-182 polynomial, reflected), implemented with a lazily built
//! 256-entry table — no external dependency.

use std::sync::OnceLock;

const POLY: u64 = 0xC96C_5795_D787_0F42; // ECMA-182, reflected

fn table() -> &'static [u64; 256] {
    static TABLE: OnceLock<[u64; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u64; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut crc = i as u64;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *e = crc;
        }
        t
    })
}

/// Streaming CRC-64 hasher.
#[derive(Clone, Debug)]
pub struct Crc64 {
    state: u64,
}

impl Crc64 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Crc64 { state: !0 }
    }

    /// Feed bytes.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            self.state = t[((self.state ^ b as u64) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// Finalize the digest.
    pub fn finish(&self) -> u64 {
        !self.state
    }
}

impl Default for Crc64 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-64 of a byte slice.
pub fn crc64(data: &[u8]) -> u64 {
    let mut h = Crc64::new();
    h.update(data);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // CRC-64/XZ of "123456789" is 0x995DC9BBDF1939FA.
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i * 7 % 256) as u8).collect();
        let mut h = Crc64::new();
        for chunk in data.chunks(137) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), crc64(&data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0x5Au8; 4096];
        let before = crc64(&data);
        data[2048] ^= 0x01;
        assert_ne!(crc64(&data), before);
    }

    #[test]
    fn detects_transposition() {
        assert_ne!(crc64(b"ab"), crc64(b"ba"));
    }
}
