//! Checkpoint compression (extension).
//!
//! The paper's related work (Islam et al., mcrEngine) shows that
//! checkpoint aggregation + compression meaningfully shrinks data
//! movement; HPC checkpoint arrays are often zero-heavy or piecewise
//! constant, which simple run-length encoding captures at memory-bus
//! speed. This module provides:
//!
//! * a byte-exact RLE codec ([`compress`]/[`decompress`]) with a
//!   worst-case expansion below 0.4%,
//! * a [`CompressionModel`] charging virtual time for the CPU cost,
//!   so remote-checkpoint experiments can trade wire bytes for helper
//!   cycles.
//!
//! Format: a sequence of ops — `[n >= 1][n literal bytes]` or
//! `[0x00][len: u16 LE][byte]` for runs of 4 or more equal bytes.

use nvm_emu::SimDuration;
use serde::{Deserialize, Serialize};

/// Minimum run length worth encoding (shorter runs go out as
/// literals: a run op costs 4 bytes).
const MIN_RUN: usize = 4;
/// Longest run one op can carry.
const MAX_RUN: usize = u16::MAX as usize;
/// Longest literal block one op can carry.
const MAX_LIT: usize = 255;

/// Compress `data` with RLE.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 4 + 16);
    let mut i = 0;
    let mut lit_start = 0;
    while i < data.len() {
        // Measure the run at i.
        let b = data[i];
        let mut run = 1;
        while i + run < data.len() && data[i + run] == b && run < MAX_RUN {
            run += 1;
        }
        if run >= MIN_RUN {
            flush_literals(&mut out, &data[lit_start..i]);
            out.push(0x00);
            out.extend_from_slice(&(run as u16).to_le_bytes());
            out.push(b);
            i += run;
            lit_start = i;
        } else {
            i += run;
        }
    }
    flush_literals(&mut out, &data[lit_start..]);
    out
}

fn flush_literals(out: &mut Vec<u8>, lits: &[u8]) {
    for block in lits.chunks(MAX_LIT) {
        out.push(block.len() as u8);
        out.extend_from_slice(block);
    }
}

/// Errors from [`decompress`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompressError {
    /// The stream ended inside an op.
    Truncated,
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::Truncated => write!(f, "truncated RLE stream"),
        }
    }
}

impl std::error::Error for CompressError {}

/// Decompress an RLE stream produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, CompressError> {
    let mut out = Vec::with_capacity(data.len() * 2);
    let mut i = 0;
    while i < data.len() {
        let op = data[i];
        i += 1;
        if op == 0x00 {
            if i + 3 > data.len() {
                return Err(CompressError::Truncated);
            }
            let len = u16::from_le_bytes([data[i], data[i + 1]]) as usize;
            let b = data[i + 2];
            i += 3;
            out.resize(out.len() + len, b);
        } else {
            let n = op as usize;
            if i + n > data.len() {
                return Err(CompressError::Truncated);
            }
            out.extend_from_slice(&data[i..i + n]);
            i += n;
        }
    }
    Ok(out)
}

/// CPU cost model for the codec.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CompressionModel {
    /// Compression throughput, input bytes/s.
    pub compress_bw: f64,
    /// Decompression throughput, output bytes/s.
    pub decompress_bw: f64,
}

impl Default for CompressionModel {
    fn default() -> Self {
        CompressionModel {
            compress_bw: 1.5e9,
            decompress_bw: 3.0e9,
        }
    }
}

impl CompressionModel {
    /// Virtual time to compress `bytes` of input.
    pub fn compress_cost(&self, bytes: u64) -> SimDuration {
        SimDuration::for_transfer(bytes, self.compress_bw)
    }

    /// Virtual time to decompress to `bytes` of output.
    pub fn decompress_cost(&self, bytes: u64) -> SimDuration {
        SimDuration::for_transfer(bytes, self.decompress_bw)
    }
}

/// Aggregate compression accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressionStats {
    /// Input bytes seen.
    pub in_bytes: u64,
    /// Output bytes produced.
    pub out_bytes: u64,
}

impl CompressionStats {
    /// Record one compression.
    pub fn record(&mut self, input: usize, output: usize) {
        self.in_bytes += input as u64;
        self.out_bytes += output as u64;
    }

    /// Output/input ratio (1.0 = incompressible, lower is better).
    pub fn ratio(&self) -> f64 {
        if self.in_bytes == 0 {
            1.0
        } else {
            self.out_bytes as f64 / self.in_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_heavy_data_shrinks_dramatically() {
        let mut data = vec![0u8; 1 << 20];
        for i in (0..data.len()).step_by(4096) {
            data[i] = (i / 4096) as u8; // sparse nonzeros
        }
        let c = compress(&data);
        assert!(
            c.len() * 100 < data.len(),
            "zero-heavy 1 MB should compress >100x, got {}",
            c.len()
        );
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn incompressible_data_expands_below_half_percent() {
        let data: Vec<u8> = (0..100_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        let c = compress(&data);
        assert!(c.len() >= data.len(), "no free lunch");
        let expansion = c.len() as f64 / data.len() as f64;
        assert!(expansion < 1.005, "expansion {expansion}");
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(compress(&[]), Vec::<u8>::new());
        assert_eq!(decompress(&[]).unwrap(), Vec::<u8>::new());
        for data in [&b"a"[..], b"ab", b"aaa", b"aaaa", b"aaaaa"] {
            assert_eq!(decompress(&compress(data)).unwrap(), data);
        }
    }

    #[test]
    fn long_runs_split_correctly() {
        let data = vec![7u8; 200_000]; // > u16::MAX, multiple run ops
        let c = compress(&data);
        assert!(c.len() < 20);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn truncated_streams_error() {
        let c = compress(&[5u8; 100]);
        assert_eq!(decompress(&c[..c.len() - 1]), Err(CompressError::Truncated));
        assert_eq!(decompress(&[0x00, 0x10]), Err(CompressError::Truncated));
        assert_eq!(decompress(&[3, 1, 2]), Err(CompressError::Truncated));
    }

    #[test]
    fn cost_model_and_stats() {
        let m = CompressionModel::default();
        assert_eq!(
            m.compress_cost(1_500_000_000).as_nanos(),
            1_000_000_000,
            "1.5 GB at 1.5 GB/s = 1 s"
        );
        assert!(m.decompress_cost(1 << 20) < m.compress_cost(1 << 20));
        let mut s = CompressionStats::default();
        s.record(1000, 100);
        s.record(1000, 300);
        assert!((s.ratio() - 0.2).abs() < 1e-12);
        assert_eq!(CompressionStats::default().ratio(), 1.0);
    }

    proptest! {
        #[test]
        fn roundtrip_is_identity(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
            prop_assert_eq!(decompress(&compress(&data)).unwrap(), data);
        }

        #[test]
        fn roundtrip_runs(runs in proptest::collection::vec((any::<u8>(), 1usize..300), 0..20)) {
            let mut data = Vec::new();
            for (b, n) in runs {
                data.resize(data.len() + n, b);
            }
            prop_assert_eq!(decompress(&compress(&data)).unwrap(), data);
        }
    }
}
