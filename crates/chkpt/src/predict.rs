//! Chunk-modification prediction table (the DCPCP mechanism, Fig. 6).
//!
//! Some chunks — *hot chunks*, like the LAMMPS 3-D result array — are
//! modified repeatedly until the very end of a compute iteration.
//! Pre-copying them early is wasted work: every re-modification forces
//! another copy. The paper's fix is a prediction table: during the
//! first checkpoint interval (the *learning phase*) each chunk's
//! modification count and order is recorded; in later intervals a
//! chunk becomes eligible for pre-copy only once its observed
//! modification count reaches the learned count (the counter "becomes
//! 0" in the paper's phrasing).
//!
//! Predictions are *optimizations, not correctness*: a chunk whose
//! prediction fails is simply copied at the coordinated checkpoint.

use nvm_paging::ChunkId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Table phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// First interval: record counts, allow eager pre-copy.
    Learning,
    /// Subsequent intervals: gate pre-copy on learned counts.
    Trained,
}

/// Accuracy counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictionStats {
    /// Chunks whose observed count exceeded the learned count (the
    /// chunk was modified again after we declared it stable).
    pub underpredictions: u64,
    /// Chunks that ended an interval with fewer modifications than
    /// learned (pre-copy never triggered; the coordinated step covered
    /// them).
    pub overpredictions: u64,
    /// Intervals completed.
    pub intervals: u64,
}

/// Per-chunk modification predictor.
#[derive(Clone, Debug)]
pub struct PredictionTable {
    phase: Phase,
    /// Learned modifications per interval.
    learned: HashMap<ChunkId, u32>,
    /// Modifications observed in the current interval.
    observed: HashMap<ChunkId, u32>,
    /// Chunk-modification order observed during learning (first-touch
    /// order — the state machine's transition order in Fig. 6).
    order: Vec<ChunkId>,
    stats: PredictionStats,
}

impl PredictionTable {
    /// A table in its learning phase.
    pub fn new() -> Self {
        PredictionTable {
            phase: Phase::Learning,
            learned: HashMap::new(),
            observed: HashMap::new(),
            order: Vec::new(),
            stats: PredictionStats::default(),
        }
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Record one modification of `id` (one application write event).
    pub fn record_modification(&mut self, id: ChunkId) {
        let count = self.observed.entry(id).or_insert(0);
        if *count == 0 && self.phase == Phase::Learning {
            self.order.push(id);
        }
        *count += 1;
        if self.phase == Phase::Trained {
            let learned = self.learned.get(&id).copied().unwrap_or(0);
            if *count == learned + 1 {
                self.stats.underpredictions += 1;
            }
        }
    }

    /// Is `id` eligible for pre-copy *now*? During learning everything
    /// is eligible (the paper's initial bandwidth spike in Fig. 10 is
    /// exactly this eager learning-phase behaviour). Once trained, a
    /// chunk is eligible only when its observed count has reached the
    /// learned count.
    pub fn ready_for_precopy(&self, id: ChunkId) -> bool {
        match self.phase {
            Phase::Learning => true,
            Phase::Trained => {
                let learned = self.learned.get(&id).copied().unwrap_or(0);
                let observed = self.observed.get(&id).copied().unwrap_or(0);
                observed >= learned
            }
        }
    }

    /// Remaining modifications predicted before `id` goes quiet
    /// (the per-chunk countdown in Fig. 6).
    pub fn expected_remaining(&self, id: ChunkId) -> u32 {
        let learned = self.learned.get(&id).copied().unwrap_or(0);
        let observed = self.observed.get(&id).copied().unwrap_or(0);
        learned.saturating_sub(observed)
    }

    /// Learned modification order (stable across intervals).
    pub fn learned_order(&self) -> &[ChunkId] {
        &self.order
    }

    /// Close an interval: fold observations into the learned counts
    /// (last-value prediction — iterations repeat without input change,
    /// so the paper finds the order "fairly constant") and reset
    /// observations.
    pub fn end_interval(&mut self) {
        if self.phase == Phase::Trained {
            for (id, learned) in &self.learned {
                let observed = self.observed.get(id).copied().unwrap_or(0);
                if observed < *learned {
                    self.stats.overpredictions += 1;
                }
            }
        }
        for (id, observed) in self.observed.drain() {
            self.learned.insert(id, observed);
        }
        self.phase = Phase::Trained;
        self.stats.intervals += 1;
    }

    /// Drop a chunk from the table (`nvdelete`).
    pub fn forget(&mut self, id: ChunkId) {
        self.learned.remove(&id);
        self.observed.remove(&id);
        self.order.retain(|&c| c != id);
    }

    /// Accuracy counters.
    pub fn stats(&self) -> PredictionStats {
        self.stats
    }
}

impl Default for PredictionTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> ChunkId {
        ChunkId(n)
    }

    #[test]
    fn learning_phase_is_always_ready() {
        let mut t = PredictionTable::new();
        assert!(t.ready_for_precopy(id(1)));
        t.record_modification(id(1));
        assert!(t.ready_for_precopy(id(1)));
        assert_eq!(t.phase(), Phase::Learning);
    }

    #[test]
    fn trained_phase_gates_on_learned_count() {
        let mut t = PredictionTable::new();
        // Learning: C3 modified 3 times (the paper's Fig. 6 example).
        for _ in 0..3 {
            t.record_modification(id(3));
        }
        t.end_interval();
        assert_eq!(t.phase(), Phase::Trained);

        // Replay: not ready until the 3rd modification.
        assert!(!t.ready_for_precopy(id(3)));
        assert_eq!(t.expected_remaining(id(3)), 3);
        t.record_modification(id(3));
        t.record_modification(id(3));
        assert!(!t.ready_for_precopy(id(3)));
        assert_eq!(t.expected_remaining(id(3)), 1);
        t.record_modification(id(3));
        assert!(t.ready_for_precopy(id(3)));
        assert_eq!(t.expected_remaining(id(3)), 0);
    }

    #[test]
    fn unknown_chunks_are_ready_when_trained() {
        let mut t = PredictionTable::new();
        t.end_interval();
        // Never-seen chunk: learned count 0, so immediately eligible.
        assert!(t.ready_for_precopy(id(42)));
    }

    #[test]
    fn underprediction_is_counted() {
        let mut t = PredictionTable::new();
        t.record_modification(id(1));
        t.end_interval(); // learned = 1
        t.record_modification(id(1));
        assert_eq!(t.stats().underpredictions, 0);
        t.record_modification(id(1)); // 2nd mod: exceeded learned count
        assert_eq!(t.stats().underpredictions, 1);
        t.record_modification(id(1)); // counted once per interval
        assert_eq!(t.stats().underpredictions, 1);
    }

    #[test]
    fn overprediction_is_counted_at_interval_end() {
        let mut t = PredictionTable::new();
        for _ in 0..5 {
            t.record_modification(id(1));
        }
        t.end_interval(); // learned = 5
        t.record_modification(id(1)); // only 1 this interval
        t.end_interval();
        assert_eq!(t.stats().overpredictions, 1);
        // Adaptation: learned count updated to last observation.
        t.record_modification(id(1));
        assert!(t.ready_for_precopy(id(1)), "learned count adapted to 1");
    }

    #[test]
    fn adaptation_follows_changing_behaviour() {
        let mut t = PredictionTable::new();
        for _ in 0..2 {
            t.record_modification(id(7));
        }
        t.end_interval(); // learned = 2
        for _ in 0..4 {
            t.record_modification(id(7));
        }
        t.end_interval(); // learned = 4
        for _ in 0..3 {
            t.record_modification(id(7));
        }
        assert!(!t.ready_for_precopy(id(7)));
        t.record_modification(id(7));
        assert!(t.ready_for_precopy(id(7)));
    }

    #[test]
    fn learned_order_is_first_touch_order() {
        let mut t = PredictionTable::new();
        for n in [5u64, 2, 5, 9, 2] {
            t.record_modification(id(n));
        }
        assert_eq!(t.learned_order(), &[id(5), id(2), id(9)]);
        t.end_interval();
        // Order does not change after learning.
        t.record_modification(id(1));
        assert_eq!(t.learned_order(), &[id(5), id(2), id(9)]);
    }

    #[test]
    fn forget_removes_chunk() {
        let mut t = PredictionTable::new();
        t.record_modification(id(1));
        t.end_interval();
        t.forget(id(1));
        assert!(t.learned_order().is_empty());
        assert!(t.ready_for_precopy(id(1)));
    }
}
