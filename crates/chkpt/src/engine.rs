//! The checkpoint engine: shadow buffering, pre-copy, versioned
//! commit, and restart.
//!
//! [`CheckpointEngine`] ties the substrates together for one process
//! (MPI rank):
//!
//! * allocation calls go to the [`NvmHeap`] and register pages with the
//!   [`Mmu`];
//! * application writes land in the DRAM working copy, take protection
//!   faults per the configured granularity, and feed the DCPCP
//!   prediction table;
//! * [`CheckpointEngine::compute`] models a compute segment, during
//!   which background pre-copy drains eligible dirty chunks to their
//!   in-progress NVM version slots (CPC immediately; DCPC/DCPCP after
//!   the planner's threshold);
//! * [`CheckpointEngine::nvchkptall`] is the coordinated local
//!   checkpoint: copy what is still dirty, flush, checksum, and commit
//!   by flipping each chunk's committed slot and persisting the
//!   metadata region — a crash at any earlier point leaves the previous
//!   committed version intact;
//! * [`CheckpointEngine::restart`] rebuilds a process from the
//!   metadata region, verifying checksums and restoring working copies.
//!
//! All operations charge a shared [`VirtualClock`].

use crate::checksum::crc64;
#[cfg(test)]
use crate::config::PrecopyPolicy;
use crate::config::{ConfigError, EngineConfig};
use crate::persist::{PersistError, Persistence, RecoveredChunk, SyntheticPayload};
use crate::precopy::PrecopyPlanner;
use crate::predict::{PredictionStats, PredictionTable};
use crate::restart::RestartStrategy;
use crate::stats::{EngineStats, EpochReport};
use nvm_emu::{
    pages_for, DeviceError, MemoryDevice, RegionId, SimDuration, SimTime, VirtualClock, PAGE_SIZE,
};
use nvm_heap::{HeapError, Materialization, NvmHeap};
use nvm_metrics::{names, CounterHandle, HistogramHandle, Metrics};
use nvm_paging::metadata::MetadataError;
use nvm_paging::{ChunkId, MetadataRegion, Mmu};
use nvm_trace::{TraceEventKind, Tracer};
use std::collections::{BTreeMap, BTreeSet};

/// Errors surfaced by the engine.
#[non_exhaustive]
#[derive(Debug)]
pub enum EngineError {
    /// Allocator failure.
    Heap(HeapError),
    /// Device failure.
    Device(DeviceError),
    /// Metadata region failure.
    Metadata(MetadataError),
    /// A committed chunk failed checksum verification on restart.
    ChecksumMismatch {
        /// The offending chunk.
        chunk: ChunkId,
        /// Checksum stored at commit.
        expected: u64,
        /// Checksum of the bytes actually read back.
        actual: u64,
    },
    /// Restart was asked for a chunk that has no committed version.
    NoCommittedData(ChunkId),
    /// The configuration was rejected at engine construction.
    Config(ConfigError),
    /// The attached durable persistence backend failed.
    Store(PersistError),
}

nvm_emu::error_enum! {
    EngineError, f {
        wrap Heap(HeapError) => "heap",
        wrap Config(ConfigError) => "config",
        wrap Device(DeviceError) => "device",
        wrap Metadata(MetadataError) => "metadata",
        wrap Store(PersistError) => "store",
        leaf EngineError::ChecksumMismatch { chunk, expected, actual } => write!(
            f,
            "checksum mismatch on {chunk:?}: stored {expected:#x}, read {actual:#x}"
        ),
        leaf EngineError::NoCommittedData(id) => write!(f, "no committed checkpoint for {id:?}"),
    }
}

/// Outcome of a restart.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RestartReport {
    /// Chunks restored into DRAM from their committed NVM version.
    pub restored: Vec<ChunkId>,
    /// Chunks whose committed data failed checksum verification — the
    /// caller should fetch these from the remote copy.
    pub corrupt: Vec<ChunkId>,
    /// Chunks that had no committed version (allocated but never
    /// checkpointed before the failure).
    pub never_committed: Vec<ChunkId>,
    /// Chunks whose restore was deferred to first access
    /// ([`RestartStrategy::Lazy`]).
    pub deferred: Vec<ChunkId>,
    /// Virtual time the restart took (`R_lcl` in the model).
    pub duration: SimDuration,
}

/// One chunk image fetched from a buddy node's remote container,
/// ready to be installed by [`CheckpointEngine::restart_from_images`].
/// The fetch itself (retries, wire time) is the caller's business —
/// this is the arrived, verified-or-verifiable payload.
#[derive(Clone, Debug)]
pub struct RemoteImage {
    /// Chunk identity, preserved across the restart.
    pub id: ChunkId,
    /// Chunk name, preserved across the restart.
    pub name: String,
    /// Logical chunk length in bytes (equals `payload.len()` for
    /// byte-materialized images).
    pub len: usize,
    /// CRC-64 recorded at remote-put time; `None` recomputes it from
    /// the payload on install.
    pub checksum: Option<u64>,
    /// Remote epoch the image was committed under.
    pub epoch: u64,
    /// The chunk bytes as last committed to the buddy.
    pub payload: Vec<u8>,
}

/// The per-process checkpoint engine.
pub struct CheckpointEngine {
    heap: NvmHeap,
    mmu: Mmu,
    clock: VirtualClock,
    config: EngineConfig,
    metadata: MetadataRegion,
    predictor: PredictionTable,
    planner: PrecopyPlanner,
    epoch: u64,
    interval_start: SimTime,
    /// Chunks fully pre-copied and still clean this interval.
    precopy_done: BTreeSet<ChunkId>,
    /// Background-copy budget in seconds; may go negative when a large
    /// chunk overdraws one compute segment and repays in the next.
    precopy_credit_secs: f64,
    epoch_precopied: u64,
    epoch_wasted: u64,
    faults_at_interval_start: u64,
    /// Chunks awaiting lazy (first-access) restore.
    lazy_pending: BTreeSet<ChunkId>,
    /// Chunks awaiting lazy restore *from the durable store* (their
    /// payload was never materialized in this process's NVM device),
    /// with the recovered table entry needed to install them.
    lazy_store_pending: BTreeMap<ChunkId, RecoveredChunk>,
    /// Durable backend every commit is mirrored into (cost-free in
    /// virtual time; the devices already charged the copies).
    persistence: Option<Box<dyn Persistence>>,
    stats: EngineStats,
    log: Vec<EpochReport>,
    /// Event-stream handle; disabled (one branch per emission site) by
    /// default.
    tracer: Tracer,
    /// Aggregate-metrics handle; disabled (one branch per update) by
    /// default.
    metrics: Metrics,
    /// Lock-free cells for the per-write/per-copy metrics, resolved
    /// once at attach so the simulate loop never locks a registry or
    /// walks the name map.
    hot: HotMetrics,
}

/// Pre-resolved handles for the metrics updated inside the simulate
/// loop (per protection fault / per pre-copy drain). Per-epoch metrics
/// stay on the name-keyed locked path, which is cold.
#[derive(Clone, Default)]
struct HotMetrics {
    faults_total: CounterHandle,
    fault_time_ns_total: CounterHandle,
    fault_ns: HistogramHandle,
    wasted_precopy_bytes_total: CounterHandle,
    interference_time_ns_total: CounterHandle,
    precopied_bytes_total: CounterHandle,
}

impl HotMetrics {
    fn resolve(metrics: &Metrics) -> Self {
        HotMetrics {
            faults_total: metrics.counter_handle(names::CHKPT_FAULTS_TOTAL),
            fault_time_ns_total: metrics.counter_handle(names::CHKPT_FAULT_TIME_NS_TOTAL),
            fault_ns: metrics.histogram_handle(names::CHKPT_FAULT_NS),
            wasted_precopy_bytes_total: metrics
                .counter_handle(names::CHKPT_WASTED_PRECOPY_BYTES_TOTAL),
            interference_time_ns_total: metrics
                .counter_handle(names::CHKPT_INTERFERENCE_TIME_NS_TOTAL),
            precopied_bytes_total: metrics.counter_handle(names::CHKPT_PRECOPIED_BYTES_TOTAL),
        }
    }
}

impl CheckpointEngine {
    /// Create an engine for process `process_id` with an NVM container
    /// of `container_capacity` bytes.
    pub fn new(
        process_id: u64,
        dram: &MemoryDevice,
        nvm: &MemoryDevice,
        container_capacity: usize,
        clock: VirtualClock,
        config: EngineConfig,
    ) -> Result<Self, EngineError> {
        config.validate()?;
        if container_capacity == 0 {
            return Err(ConfigError::ZeroShadowRegion.into());
        }
        let heap = NvmHeap::new(
            process_id,
            dram,
            nvm,
            container_capacity,
            config.versioning,
            config.materialization,
        )?;
        let metadata = MetadataRegion::create(nvm)?;
        let now = clock.now();
        Ok(CheckpointEngine {
            heap,
            mmu: Mmu::with_granularity(config.granularity),
            clock,
            config,
            metadata,
            predictor: PredictionTable::new(),
            planner: PrecopyPlanner::new(),
            epoch: 0,
            interval_start: now,
            precopy_done: BTreeSet::new(),
            precopy_credit_secs: 0.0,
            epoch_precopied: 0,
            epoch_wasted: 0,
            faults_at_interval_start: 0,
            lazy_pending: BTreeSet::new(),
            lazy_store_pending: BTreeMap::new(),
            persistence: None,
            stats: EngineStats::default(),
            log: Vec::new(),
            tracer: Tracer::disabled(),
            metrics: Metrics::disabled(),
            hot: HotMetrics::default(),
        })
    }

    /// Attach a [`Tracer`]: protection faults, pre-copy activity,
    /// coordinated phases, commit flips, and restarts emit structured
    /// events stamped with this engine's virtual clock. Pass
    /// [`Tracer::disabled`] to detach.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The attached tracer (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Attach a [`Metrics`] handle: faults, pre-copy volume, waste,
    /// coordinated phases, and latency distributions record into it.
    /// Pass [`Metrics::disabled`] to detach.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.hot = HotMetrics::resolve(&metrics);
        self.metrics = metrics;
    }

    /// The attached metrics handle (disabled by default).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Attach a durable [`Persistence`] backend. Every subsequent
    /// commit is mirrored into it — chunk payloads into shadow slots,
    /// then one atomic commit record — so the checkpoint survives this
    /// process. Mirroring charges no virtual time (the emulated
    /// devices already paid for every copy), so results with and
    /// without a backend are identical.
    pub fn set_persistence(&mut self, store: Box<dyn Persistence>) {
        self.persistence = Some(store);
    }

    /// Whether a durable backend is attached.
    pub fn has_persistence(&self) -> bool {
        self.persistence.is_some()
    }

    /// Counters of the attached backend, if any.
    pub fn persistence_stats(&self) -> Option<crate::persist::StoreStats> {
        self.persistence.as_ref().map(|p| p.stats())
    }

    /// Mirror one chunk's freshly committed payload into the durable
    /// backend (no-op when none is attached).
    fn store_put(&mut self, id: ChunkId, epoch: u64) -> Result<(), EngineError> {
        if self.persistence.is_none() {
            return Ok(());
        }
        let chunk = self.heap.chunk(id)?;
        let name = chunk.name.clone();
        let len = chunk.len;
        let payload = match self.heap.materialization() {
            Materialization::Bytes => self.heap.working_copy(id)?,
            // Size-only runs persist a fixed descriptor standing in
            // for the bytes; crash tests still verify it bit-for-bit.
            Materialization::Synthetic => SyntheticPayload {
                id: id.0,
                epoch,
                len: len as u64,
            }
            .encode()
            .to_vec(),
        };
        let bytes = payload.len() as u64;
        let store = self.persistence.as_mut().expect("checked above");
        store.put_chunk(id, &name, len, epoch, &payload)?;
        self.trace(TraceEventKind::StoreWrite { chunk: id.0, bytes });
        Ok(())
    }

    /// Durably commit everything mirrored so far (no-op when no
    /// backend is attached).
    fn store_commit(&mut self, epoch: u64) -> Result<(), EngineError> {
        if let Some(store) = self.persistence.as_mut() {
            store.commit(epoch)?;
            self.trace(TraceEventKind::StoreCommit { epoch });
        }
        Ok(())
    }

    #[inline]
    fn trace(&self, kind: TraceEventKind) {
        self.tracer.emit(self.clock.now().as_nanos(), kind);
    }

    // ------------------------------------------------------------------
    // Allocation interfaces (Table III)
    // ------------------------------------------------------------------

    /// Allocate a checkpoint chunk (`nvalloc(genid(name), len, pflg)`).
    pub fn nvmalloc(
        &mut self,
        name: &str,
        len: usize,
        persistent: bool,
    ) -> Result<ChunkId, EngineError> {
        let id = self.heap.nvmalloc(name, len, persistent)?;
        self.register(id, len, persistent)?;
        Ok(id)
    }

    /// 2-D allocation wrapper (`nv2dalloc`).
    pub fn nv2dalloc(
        &mut self,
        name: &str,
        dim1: usize,
        dim2: usize,
        elem_size: usize,
        persistent: bool,
    ) -> Result<ChunkId, EngineError> {
        self.nvmalloc(name, dim1 * dim2 * elem_size, persistent)
    }

    /// Attach existing data as a chunk (`nvattach`).
    pub fn nvattach(&mut self, name: &str, src: &[u8]) -> Result<ChunkId, EngineError> {
        let id = self.heap.nvattach(name, src)?;
        self.register(id, src.len(), true)?;
        Ok(id)
    }

    fn register(&mut self, id: ChunkId, len: usize, persistent: bool) -> Result<(), EngineError> {
        if persistent {
            self.mmu.register_chunk(id, pages_for(len).max(1));
            let cost = self.metadata.save(&self.heap.export_metadata())?;
            self.clock.advance(cost);
        }
        Ok(())
    }

    /// Grow a chunk (`nvrealloc`).
    pub fn nvrealloc(&mut self, id: ChunkId, new_len: usize) -> Result<(), EngineError> {
        self.heap.nvrealloc(id, new_len)?;
        if self.heap.chunk(id)?.persistent {
            self.mmu.grow_chunk(id, pages_for(new_len).max(1));
            self.precopy_done.remove(&id);
            let cost = self.metadata.save(&self.heap.export_metadata())?;
            self.clock.advance(cost);
        }
        Ok(())
    }

    /// Delete a chunk (`nvdelete`).
    pub fn nvdelete(&mut self, id: ChunkId) -> Result<(), EngineError> {
        let persistent = self.heap.chunk(id)?.persistent;
        self.heap.nvdelete(id)?;
        if persistent {
            self.mmu.unregister_chunk(id);
            self.predictor.forget(id);
            self.precopy_done.remove(&id);
            self.lazy_store_pending.remove(&id);
            if let Some(store) = self.persistence.as_mut() {
                // Dropped from the store's table at the next commit;
                // its on-media extents are recycled only after that
                // commit's fsync retires the record referencing them.
                store.delete_chunk(id);
            }
            let cost = self.metadata.save(&self.heap.export_metadata())?;
            self.clock.advance(cost);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Application data path
    // ------------------------------------------------------------------

    /// Application write of real bytes into a chunk's working copy.
    pub fn write(&mut self, id: ChunkId, offset: usize, data: &[u8]) -> Result<(), EngineError> {
        self.ensure_restored(id)?;
        let cost = self.heap.write(id, offset, data)?;
        self.after_write(id, offset, data.len(), cost)
    }

    /// Application write, size-only (paper-scale benches).
    pub fn write_synthetic(
        &mut self,
        id: ChunkId,
        offset: usize,
        len: usize,
    ) -> Result<(), EngineError> {
        self.ensure_restored(id)?;
        let cost = self.heap.write_synthetic(id, offset, len)?;
        self.after_write(id, offset, len, cost)
    }

    fn after_write(
        &mut self,
        id: ChunkId,
        offset: usize,
        len: usize,
        dram_cost: SimDuration,
    ) -> Result<(), EngineError> {
        let chunk = self.heap.chunk(id)?;
        let persistent = chunk.persistent;
        let chunk_len = chunk.len;
        let mut total = dram_cost;
        if persistent && len > 0 {
            let first = offset / PAGE_SIZE;
            let last = (offset + len - 1) / PAGE_SIZE;
            let out = self.mmu.record_write(id, first, last - first + 1);
            total += out.cost;
            self.stats.faults += out.faults as u64;
            self.stats.fault_time += out.cost;
            if out.faults > 0 {
                self.trace(TraceEventKind::ProtectionFault { chunk: id.0 });
                self.hot.faults_total.add(out.faults as u64);
                self.hot.fault_time_ns_total.add(out.cost.as_nanos());
                self.hot.fault_ns.observe(out.cost.as_nanos());
            }
            self.predictor.record_modification(id);
            if self.precopy_done.remove(&id) {
                // A pre-copied chunk was modified again: the earlier
                // copy is wasted and must be redone.
                self.stats.wasted_precopy_bytes += chunk_len as u64;
                self.epoch_wasted += chunk_len as u64;
                self.trace(TraceEventKind::PrecopyWaste { chunk: id.0 });
                self.hot.wasted_precopy_bytes_total.add(chunk_len as u64);
            }
        }
        self.clock.advance(total);
        Ok(())
    }

    /// Read real bytes from a chunk's working copy.
    pub fn read(&mut self, id: ChunkId, offset: usize, buf: &mut [u8]) -> Result<(), EngineError> {
        self.ensure_restored(id)?;
        let cost = self.heap.read(id, offset, buf)?;
        self.clock.advance(cost);
        Ok(())
    }

    /// Model a compute segment of length `dur`. Background pre-copy
    /// runs during the segment per the configured policy; the clock
    /// advances by `dur` plus the memory-interference penalty of any
    /// background copying.
    pub fn compute(&mut self, dur: SimDuration) {
        let seg_start = self.clock.now();
        let window = self.precopy_window(seg_start, dur);
        let mut interference = SimDuration::ZERO;
        if !window.is_zero() {
            if self.tracer.enabled() {
                let candidates = self
                    .heap
                    .iter_persistent_ids()
                    .filter(|id| self.is_precopy_candidate(*id))
                    .count() as u64;
                self.trace(TraceEventKind::PrecopyStart {
                    epoch: self.epoch,
                    candidates,
                });
            }
            let copied_time = self.run_precopy(window);
            interference = copied_time * self.config.precopy_interference;
            self.stats.interference_time += interference;
            self.hot
                .interference_time_ns_total
                .add(interference.as_nanos());
            if self.tracer.enabled() {
                self.trace(TraceEventKind::PrecopyEnd {
                    epoch: self.epoch,
                    busy_ns: copied_time.as_nanos(),
                    interference_ns: interference.as_nanos(),
                });
            }
        }
        self.clock.advance(dur + interference);
    }

    /// How much of a compute segment starting at `seg_start` with
    /// length `dur` has active pre-copy.
    fn precopy_window(&self, seg_start: SimTime, dur: SimDuration) -> SimDuration {
        if !self.config.precopy.enabled() {
            return SimDuration::ZERO;
        }
        // CPC pre-copies eagerly from the start of every interval.
        if !self.config.precopy.delayed() {
            return dur;
        }
        // Delayed policies wait out the warm-up intervals entirely:
        // "our method waits for the first checkpoint step to complete
        // and finds the approximate interval" — no threshold (and for
        // DCPCP no learned modification counts) exists yet.
        if !self.planner.is_learned() || self.epoch < self.config.warmup_epochs {
            return SimDuration::ZERO;
        }
        let threshold = self
            .planner
            .start_time(self.interval_start)
            .expect("planner is learned");
        let seg_end = seg_start + dur;
        if threshold <= seg_start {
            dur
        } else {
            seg_end.since(threshold)
        }
    }

    /// Drain eligible dirty chunks to their in-progress slots within
    /// the given budget of background-copy time. Returns time actually
    /// spent copying.
    fn run_precopy(&mut self, budget: SimDuration) -> SimDuration {
        self.precopy_credit_secs += budget.as_secs_f64();
        let mut spent = SimDuration::ZERO;
        while self.precopy_credit_secs > 0.0 {
            let Some(id) = self.next_precopy_candidate() else {
                break;
            };
            let chunk = self.heap.chunk(id).expect("candidate exists");
            let slot = chunk.in_progress_slot(self.heap.versioning());
            let len = chunk.len as u64;
            let cost = self
                .heap
                .shadow_copy(id, slot, self.config.node_concurrency)
                .expect("pre-copy shadow copy cannot fail");
            self.precopy_credit_secs -= cost.as_secs_f64();
            spent += cost;
            self.stats.precopied_bytes += len;
            self.epoch_precopied += len;
            self.hot.precopied_bytes_total.add(len);
            self.mmu.protect_after_precopy(id);
            self.precopy_done.insert(id);
            self.trace(TraceEventKind::PrecopyDrain {
                chunk: id.0,
                bytes: len,
                cost_ns: cost.as_nanos(),
            });
        }
        // Idle budget does not bank: background copying cannot run
        // ahead of data that does not exist yet.
        if self.precopy_credit_secs > 0.0 {
            self.precopy_credit_secs = 0.0;
        }
        spent
    }

    fn is_precopy_candidate(&self, id: ChunkId) -> bool {
        self.mmu.is_dirty(id)
            && !self.precopy_done.contains(&id)
            && (!self.config.precopy.predictive() || self.predictor.ready_for_precopy(id))
    }

    fn next_precopy_candidate(&self) -> Option<ChunkId> {
        self.heap
            .iter_persistent_ids()
            .find(|id| self.is_precopy_candidate(*id))
    }

    // ------------------------------------------------------------------
    // Coordinated checkpoint
    // ------------------------------------------------------------------

    /// Coordinated local checkpoint of all persistent chunks
    /// (`nvchkptall()`). Blocks the application for the copy of
    /// still-dirty data, flushes, checksums, and commits.
    pub fn nvchkptall(&mut self) -> Result<EpochReport, EngineError> {
        // A coordinated checkpoint snapshots every persistent chunk,
        // so chunks whose store-lazy restore is still outstanding must
        // be materialized first — otherwise their unrestored working
        // copies would be committed over the recovered data.
        while let Some(id) = self.lazy_store_pending.keys().next().copied() {
            self.ensure_restored(id)?;
        }
        let t0 = self.clock.now();
        if self.tracer.enabled() {
            let dirty = self
                .heap
                .iter_persistent_ids()
                .filter(|id| self.mmu.is_dirty(*id) && !self.precopy_done.contains(id))
                .count() as u64;
            self.trace(TraceEventKind::CoordinatedBegin {
                epoch: self.epoch,
                dirty,
            });
        }
        let mut coordinated_bytes = 0u64;
        let mut skipped_bytes = 0u64;
        // Chunks whose in-progress slot receives (or already received)
        // fresh data this epoch and therefore must be committed.
        let mut to_commit: Vec<ChunkId> = Vec::new();

        for id in self.heap.persistent_ids() {
            let chunk = self.heap.chunk(id)?;
            let len = chunk.len as u64;
            let has_committed = chunk.has_committed();
            let precopied = self.precopy_done.contains(&id);
            let dirty = self.mmu.is_dirty(id);

            let copy_now = if !self.config.precopy.enabled() {
                // Baseline: no dirty tracking, copy everything.
                true
            } else if precopied {
                false // data already staged by pre-copy
            } else {
                dirty || !has_committed
            };

            if copy_now {
                let slot = chunk.in_progress_slot(self.heap.versioning());
                let cost = self
                    .heap
                    .shadow_copy(id, slot, self.config.node_concurrency)?;
                self.clock.advance(cost);
                coordinated_bytes += len;
                to_commit.push(id);
            } else if precopied {
                to_commit.push(id);
            } else {
                // Clean, already committed: dirty tracking lets us skip
                // it entirely (GTC's init-only giant arrays).
                skipped_bytes += len;
            }
        }

        // Flush + checksum + commit each freshly written slot.
        for &id in &to_commit {
            let slot = {
                let chunk = self.heap.chunk(id)?;
                chunk.in_progress_slot(self.heap.versioning())
            };
            let flush_cost = self.heap.flush_version(id, slot)?;
            self.clock.advance(flush_cost);
            let checksum =
                if self.config.checksums && self.heap.materialization() == Materialization::Bytes {
                    let (data, read_cost) = self.heap.read_version(id, slot)?;
                    self.clock.advance(read_cost);
                    Some(crc64(&data))
                } else {
                    None
                };
            let epoch = self.epoch;
            let chunk = self.heap.chunk_mut(id)?;
            chunk.committed_slot = Some(slot);
            chunk.checksum = checksum;
            chunk.committed_epoch = epoch;
            self.trace(TraceEventKind::CommitFlip {
                chunk: id.0,
                slot: slot as u64,
            });
        }

        // Mirror the freshly committed payloads into the durable
        // backend's shadow slots (no-op without one; cost-free in
        // virtual time).
        for &id in &to_commit {
            self.store_put(id, self.epoch)?;
        }

        // The commit point: persisting the metadata region. A crash
        // before this leaves every chunk's previous committed slot
        // intact.
        let meta_cost = self.metadata.save(&self.heap.export_metadata())?;
        self.clock.advance(meta_cost);
        // And the durable commit point for the backend: one atomic
        // record append + fsync.
        self.store_commit(self.epoch)?;

        // Reset dirty tracking for the next interval.
        for id in self.heap.persistent_ids() {
            if self.config.precopy.enabled() {
                self.mmu.protect_after_precopy(id);
            } else {
                self.mmu.clear_local_dirty(id);
            }
        }

        let now = self.clock.now();
        let coordinated_time = now.since(t0);
        self.trace(TraceEventKind::CoordinatedEnd {
            epoch: self.epoch,
            copied_bytes: coordinated_bytes,
        });
        let interval = now.since(self.interval_start);
        let faults_now = self.mmu.stats().faults;
        let report = EpochReport {
            epoch: self.epoch,
            coordinated_time,
            coordinated_bytes,
            precopied_bytes: self.epoch_precopied,
            skipped_bytes,
            wasted_bytes: self.epoch_wasted,
            faults: faults_now - self.faults_at_interval_start,
            interval,
        };

        // Learn/adapt.
        let moved = coordinated_bytes + self.epoch_precopied;
        let bw = self
            .heap
            .nvm()
            .per_core_bandwidth(self.config.node_concurrency, 32 << 20);
        // Learn the *compute* portion of the interval: pre-copy can only
        // overlap compute, so the threshold must leave T_c of compute
        // time, not T_c of wall time ending inside the checkpoint.
        self.planner
            .observe(interval.saturating_sub(coordinated_time), moved, bw);
        self.predictor.end_interval();

        self.stats.checkpoints += 1;
        self.stats.coordinated_bytes += coordinated_bytes;
        self.stats.skipped_bytes += skipped_bytes;
        self.stats.coordinated_time += coordinated_time;
        self.metrics.counter_add(names::CHKPT_CHECKPOINTS_TOTAL, 1);
        self.metrics
            .counter_add(names::CHKPT_COORDINATED_BYTES_TOTAL, coordinated_bytes);
        self.metrics
            .counter_add(names::CHKPT_SKIPPED_BYTES_TOTAL, skipped_bytes);
        self.metrics.counter_add(
            names::CHKPT_COORDINATED_TIME_NS_TOTAL,
            coordinated_time.as_nanos(),
        );
        self.metrics
            .observe(names::CHKPT_COORDINATED_NS, coordinated_time.as_nanos());

        self.epoch += 1;
        self.interval_start = now;
        self.precopy_done.clear();
        self.precopy_credit_secs = 0.0;
        self.epoch_precopied = 0;
        self.epoch_wasted = 0;
        self.faults_at_interval_start = faults_now;
        self.log.push(report);
        Ok(report)
    }

    /// Blocking checkpoint of a single chunk (`nvchkptid(id)`).
    /// Commits just that chunk; does not advance the epoch.
    pub fn nvchkptid(&mut self, id: ChunkId) -> Result<SimDuration, EngineError> {
        let t0 = self.clock.now();
        let chunk = self.heap.chunk(id)?;
        if !chunk.persistent {
            return Err(EngineError::NoCommittedData(id));
        }
        let slot = chunk.in_progress_slot(self.heap.versioning());
        let len = chunk.len as u64;
        let cost = self
            .heap
            .shadow_copy(id, slot, self.config.node_concurrency)?;
        self.clock.advance(cost);
        let flush_cost = self.heap.flush_version(id, slot)?;
        self.clock.advance(flush_cost);
        let checksum =
            if self.config.checksums && self.heap.materialization() == Materialization::Bytes {
                let (data, read_cost) = self.heap.read_version(id, slot)?;
                self.clock.advance(read_cost);
                Some(crc64(&data))
            } else {
                None
            };
        let epoch = self.epoch;
        let chunk = self.heap.chunk_mut(id)?;
        chunk.committed_slot = Some(slot);
        chunk.checksum = checksum;
        chunk.committed_epoch = epoch;
        self.trace(TraceEventKind::CommitFlip {
            chunk: id.0,
            slot: slot as u64,
        });
        self.store_put(id, epoch)?;
        let meta_cost = self.metadata.save(&self.heap.export_metadata())?;
        self.clock.advance(meta_cost);
        self.store_commit(epoch)?;
        self.mmu.clear_local_dirty(id);
        if self.config.precopy.enabled() {
            self.mmu.protect_after_precopy(id);
        }
        self.precopy_done.remove(&id);
        self.stats.coordinated_bytes += len;
        self.metrics
            .counter_add(names::CHKPT_COORDINATED_BYTES_TOTAL, len);
        Ok(self.clock.now().since(t0))
    }

    // ------------------------------------------------------------------
    // Restart
    // ------------------------------------------------------------------

    /// Rebuild an engine from a persisted metadata region after a
    /// process restart (soft failure: the NVM device survived), using
    /// the baseline eager strategy.
    ///
    /// Verifies checksums where available and restores committed data
    /// into fresh DRAM working copies. Chunks that fail verification
    /// are listed in the report for remote recovery.
    pub fn restart(
        dram: &MemoryDevice,
        nvm: &MemoryDevice,
        metadata_region: RegionId,
        clock: VirtualClock,
        config: EngineConfig,
    ) -> Result<(Self, RestartReport), EngineError> {
        Self::restart_with(
            dram,
            nvm,
            metadata_region,
            clock,
            config,
            RestartStrategy::Eager,
        )
    }

    /// Rebuild an engine with an explicit [`RestartStrategy`]:
    /// `Eager` (verify + restore everything serially), `Parallel`
    /// (concurrent restore streams), or `Lazy` (restore each chunk on
    /// first access).
    pub fn restart_with(
        dram: &MemoryDevice,
        nvm: &MemoryDevice,
        metadata_region: RegionId,
        clock: VirtualClock,
        config: EngineConfig,
        strategy: RestartStrategy,
    ) -> Result<(Self, RestartReport), EngineError> {
        Self::restart_traced(
            dram,
            nvm,
            metadata_region,
            clock,
            config,
            strategy,
            Tracer::disabled(),
        )
    }

    /// [`CheckpointEngine::restart_with`] with a [`Tracer`] attached
    /// from the first instruction: the restart itself is recorded as a
    /// [`TraceEventKind::Restart`] event and the rebuilt engine keeps
    /// the tracer.
    #[allow(clippy::too_many_arguments)]
    pub fn restart_traced(
        dram: &MemoryDevice,
        nvm: &MemoryDevice,
        metadata_region: RegionId,
        clock: VirtualClock,
        config: EngineConfig,
        strategy: RestartStrategy,
        tracer: Tracer,
    ) -> Result<(Self, RestartReport), EngineError> {
        let t0 = clock.now();
        let metadata = MetadataRegion::open(nvm, metadata_region)?;
        let (meta, load_cost) = metadata.load()?;
        clock.advance(load_cost);
        let mut heap =
            NvmHeap::reopen(dram, nvm, &meta, config.materialization, config.versioning)?;
        let mut mmu = Mmu::with_granularity(config.granularity);
        let mut report = RestartReport::default();
        let mut lazy_pending = BTreeSet::new();
        let mut restore_cost = SimDuration::ZERO;

        for id in heap.chunk_ids() {
            let chunk = heap.chunk(id)?.clone();
            mmu.register_chunk(id, pages_for(chunk.len).max(1));
            if !chunk.has_committed() {
                report.never_committed.push(id);
                continue;
            }
            if strategy == RestartStrategy::Lazy {
                // Defer verification + restore to first access. The
                // chunk is clean: its committed NVM copy is the truth.
                mmu.clear_local_dirty(id);
                mmu.clear_remote_dirty(id);
                lazy_pending.insert(id);
                report.deferred.push(id);
                continue;
            }
            let slot = chunk.committed_slot.expect("checked");
            // Verify checksum when we have both bytes and a stored sum.
            if config.materialization == Materialization::Bytes {
                if let Some(expected) = chunk.checksum {
                    let (data, read_cost) = heap.read_version(id, slot)?;
                    restore_cost += read_cost;
                    let actual = crc64(&data);
                    if actual != expected {
                        report.corrupt.push(id);
                        continue;
                    }
                }
            }
            restore_cost += heap.restore_to_dram(id)?;
            // Restored chunks are in sync with their committed version.
            mmu.clear_local_dirty(id);
            mmu.clear_remote_dirty(id);
            if config.precopy.enabled() {
                mmu.protect_after_precopy(id);
            }
            report.restored.push(id);
        }
        // Charge the restore time per the strategy: parallel streams
        // overlap, bounded by the contended per-stream bandwidth.
        match strategy {
            RestartStrategy::Parallel { streams } if streams > 1 => {
                let n = streams.min(report.restored.len().max(1));
                let solo = nvm.per_core_bandwidth(1, 32 << 20);
                let shared = nvm.per_core_bandwidth(n, 32 << 20);
                let slowdown = (solo / shared).max(1.0);
                clock.advance(SimDuration::from_secs_f64(
                    restore_cost.as_secs_f64() * slowdown / n as f64,
                ));
            }
            _ => {
                clock.advance(restore_cost);
            }
        }
        report.duration = clock.now().since(t0);
        let now = clock.now();
        tracer.emit(
            now.as_nanos(),
            TraceEventKind::Restart {
                strategy: strategy.name().to_string(),
                chunks: report.restored.len() as u64,
            },
        );
        let stats = EngineStats {
            restarts: 1,
            ..EngineStats::default()
        };
        Ok((
            CheckpointEngine {
                heap,
                mmu,
                clock,
                config,
                metadata,
                predictor: PredictionTable::new(),
                planner: PrecopyPlanner::new(),
                epoch: 0,
                interval_start: now,
                precopy_done: BTreeSet::new(),
                precopy_credit_secs: 0.0,
                epoch_precopied: 0,
                epoch_wasted: 0,
                faults_at_interval_start: 0,
                lazy_pending,
                lazy_store_pending: BTreeMap::new(),
                persistence: None,
                stats,
                log: Vec::new(),
                tracer,
                metrics: Metrics::disabled(),
                hot: HotMetrics::default(),
            },
            report,
        ))
    }

    /// Rebuild an engine from a durable [`Persistence`] backend alone:
    /// nothing of the failed process survives except its container
    /// file. Fresh devices are populated from the store's last durable
    /// commit, with restore costs charged exactly as
    /// [`CheckpointEngine::restart_traced`] charges them — the store
    /// file stands in for the surviving NVM medium, so installing its
    /// payloads back into the emulated device is free while the
    /// modeled NVM-read + DRAM-write of each restore is paid per the
    /// strategy. The rebuilt engine keeps the store attached.
    #[allow(clippy::too_many_arguments)]
    pub fn restart_from_store(
        dram: &MemoryDevice,
        nvm: &MemoryDevice,
        container_capacity: usize,
        clock: VirtualClock,
        config: EngineConfig,
        strategy: RestartStrategy,
        mut store: Box<dyn Persistence>,
        tracer: Tracer,
    ) -> Result<(Self, RestartReport), EngineError> {
        config.validate()?;
        if container_capacity == 0 {
            return Err(ConfigError::ZeroShadowRegion.into());
        }
        let t0 = clock.now();
        let state = store.recover()?;
        let mut heap = NvmHeap::new(
            state.process_id,
            dram,
            nvm,
            container_capacity,
            config.versioning,
            config.materialization,
        )?;
        let metadata = MetadataRegion::create(nvm)?;
        let mut mmu = Mmu::with_granularity(config.granularity);
        let mut report = RestartReport::default();
        let mut lazy_store_pending = BTreeMap::new();
        let mut restore_cost = SimDuration::ZERO;

        for rec in &state.chunks {
            let id = heap.nvmalloc_id(rec.id, &rec.name, rec.len, true)?;
            mmu.register_chunk(id, pages_for(rec.len).max(1));
            if strategy == RestartStrategy::Lazy {
                // Defer the media read itself to first access: an
                // untouched chunk is never fetched from the store.
                mmu.clear_local_dirty(id);
                mmu.clear_remote_dirty(id);
                lazy_store_pending.insert(id, rec.clone());
                report.deferred.push(id);
                continue;
            }
            let payload = match store.read_chunk(id) {
                Ok(p) => p,
                Err(PersistError::Checksum { .. }) => {
                    report.corrupt.push(id);
                    continue;
                }
                Err(e) => return Err(e.into()),
            };
            restore_cost += Self::install_recovered(&mut heap, id, rec, &payload)?;
            mmu.clear_local_dirty(id);
            mmu.clear_remote_dirty(id);
            if config.precopy.enabled() {
                mmu.protect_after_precopy(id);
            }
            report.restored.push(id);
        }
        match strategy {
            RestartStrategy::Parallel { streams } if streams > 1 => {
                let n = streams.min(report.restored.len().max(1));
                let solo = nvm.per_core_bandwidth(1, 32 << 20);
                let shared = nvm.per_core_bandwidth(n, 32 << 20);
                let slowdown = (solo / shared).max(1.0);
                clock.advance(SimDuration::from_secs_f64(
                    restore_cost.as_secs_f64() * slowdown / n as f64,
                ));
            }
            _ => {
                clock.advance(restore_cost);
            }
        }
        report.duration = clock.now().since(t0);
        let now = clock.now();
        tracer.emit(
            now.as_nanos(),
            TraceEventKind::StoreRecovery {
                epoch: state.epoch,
                chunks: state.chunks.len() as u64,
                torn: state.torn_writes_detected,
            },
        );
        tracer.emit(
            now.as_nanos(),
            TraceEventKind::Restart {
                strategy: strategy.name().to_string(),
                chunks: report.restored.len() as u64,
            },
        );
        let stats = EngineStats {
            restarts: 1,
            ..EngineStats::default()
        };
        Ok((
            CheckpointEngine {
                heap,
                mmu,
                clock,
                config,
                metadata,
                predictor: PredictionTable::new(),
                planner: PrecopyPlanner::new(),
                epoch: state.epoch.map_or(0, |e| e + 1),
                interval_start: now,
                precopy_done: BTreeSet::new(),
                precopy_credit_secs: 0.0,
                epoch_precopied: 0,
                epoch_wasted: 0,
                faults_at_interval_start: 0,
                lazy_pending: BTreeSet::new(),
                lazy_store_pending,
                persistence: Some(store),
                stats,
                log: Vec::new(),
                tracer,
                metrics: Metrics::disabled(),
                hot: HotMetrics::default(),
            },
            report,
        ))
    }

    /// Rebuild an engine from chunk images fetched off a buddy node's
    /// remote container — the paper's hard-failure path: the failed
    /// node's local NVM is gone, so the replacement process is seeded
    /// entirely from images that crossed the interconnect. Transfer
    /// costs (retries, wire time) belong to the caller; this charges
    /// only the install side — NVM seed + DRAM restore per chunk —
    /// exactly as [`CheckpointEngine::restart_from_store`] charges its
    /// restores. `next_epoch` sets the rebuilt engine's epoch counter
    /// (the cluster's local-checkpoint count, so epoch numbering keeps
    /// advancing instead of rewinding to the remote epoch).
    /// [`RestartStrategy::Lazy`] is charged as `Eager`: remote images
    /// only exist because they were already fetched, so there is
    /// nothing left to defer.
    #[allow(clippy::too_many_arguments)]
    pub fn restart_from_images(
        process_id: u64,
        dram: &MemoryDevice,
        nvm: &MemoryDevice,
        container_capacity: usize,
        clock: VirtualClock,
        config: EngineConfig,
        strategy: RestartStrategy,
        images: &[RemoteImage],
        next_epoch: u64,
        tracer: Tracer,
    ) -> Result<(Self, RestartReport), EngineError> {
        config.validate()?;
        if container_capacity == 0 {
            return Err(ConfigError::ZeroShadowRegion.into());
        }
        let t0 = clock.now();
        let mut heap = NvmHeap::new(
            process_id,
            dram,
            nvm,
            container_capacity,
            config.versioning,
            config.materialization,
        )?;
        let metadata = MetadataRegion::create(nvm)?;
        let mut mmu = Mmu::with_granularity(config.granularity);
        let mut report = RestartReport::default();
        let mut restore_cost = SimDuration::ZERO;

        for img in images {
            let id = heap.nvmalloc_id(img.id, &img.name, img.len, true)?;
            mmu.register_chunk(id, pages_for(img.len).max(1));
            let rec = RecoveredChunk {
                id: img.id,
                name: img.name.clone(),
                len: img.len,
                payload_len: img.payload.len(),
                checksum: img.checksum.unwrap_or_else(|| crc64(&img.payload)),
                epoch: img.epoch,
            };
            restore_cost += Self::install_recovered(&mut heap, id, &rec, &img.payload)?;
            mmu.clear_local_dirty(id);
            mmu.clear_remote_dirty(id);
            if config.precopy.enabled() {
                mmu.protect_after_precopy(id);
            }
            report.restored.push(id);
        }
        match strategy {
            RestartStrategy::Parallel { streams } if streams > 1 => {
                let n = streams.min(report.restored.len().max(1));
                let solo = nvm.per_core_bandwidth(1, 32 << 20);
                let shared = nvm.per_core_bandwidth(n, 32 << 20);
                let slowdown = (solo / shared).max(1.0);
                clock.advance(SimDuration::from_secs_f64(
                    restore_cost.as_secs_f64() * slowdown / n as f64,
                ));
            }
            _ => {
                clock.advance(restore_cost);
            }
        }
        report.duration = clock.now().since(t0);
        let now = clock.now();
        tracer.emit(
            now.as_nanos(),
            TraceEventKind::Restart {
                strategy: strategy.name().to_string(),
                chunks: report.restored.len() as u64,
            },
        );
        let stats = EngineStats {
            restarts: 1,
            ..EngineStats::default()
        };
        Ok((
            CheckpointEngine {
                heap,
                mmu,
                clock,
                config,
                metadata,
                predictor: PredictionTable::new(),
                planner: PrecopyPlanner::new(),
                epoch: next_epoch,
                interval_start: now,
                precopy_done: BTreeSet::new(),
                precopy_credit_secs: 0.0,
                epoch_precopied: 0,
                epoch_wasted: 0,
                faults_at_interval_start: 0,
                lazy_pending: BTreeSet::new(),
                lazy_store_pending: BTreeMap::new(),
                persistence: None,
                stats,
                log: Vec::new(),
                tracer,
                metrics: Metrics::disabled(),
                hot: HotMetrics::default(),
            },
            report,
        ))
    }

    /// Install one payload recovered from a durable store into a
    /// freshly allocated chunk: seed the NVM version slot (free —
    /// those bytes survived on the medium), mark it committed, and
    /// restore the DRAM working copy. Returns the modeled restore
    /// cost, which the caller charges per its strategy.
    fn install_recovered(
        heap: &mut NvmHeap,
        id: ChunkId,
        rec: &RecoveredChunk,
        payload: &[u8],
    ) -> Result<SimDuration, EngineError> {
        let versioning = heap.versioning();
        let slot = heap.chunk(id)?.in_progress_slot(versioning);
        match heap.materialization() {
            Materialization::Bytes => {
                if payload.len() != rec.len {
                    return Err(EngineError::Store(PersistError::Corrupt(format!(
                        "recovered payload length mismatch for chunk {}",
                        id.0
                    ))));
                }
                heap.seed_version(id, slot, payload)?;
                let chunk = heap.chunk_mut(id)?;
                chunk.committed_slot = Some(slot);
                chunk.checksum = Some(rec.checksum);
                chunk.committed_epoch = rec.epoch;
            }
            Materialization::Synthetic => {
                let desc = SyntheticPayload::decode(payload).map_err(EngineError::Store)?;
                if desc.id != id.0 || desc.len as usize != rec.len {
                    return Err(EngineError::Store(PersistError::Corrupt(format!(
                        "synthetic descriptor mismatch for chunk {}",
                        id.0
                    ))));
                }
                let chunk = heap.chunk_mut(id)?;
                chunk.committed_slot = Some(slot);
                chunk.checksum = None;
                chunk.committed_epoch = rec.epoch;
            }
        }
        Ok(heap.restore_to_dram(id)?)
    }

    /// First-access restore of a store-lazy chunk: read the payload
    /// from the durable backend (checksum-verified on the way),
    /// install it, and charge the restore like any lazy restore.
    fn restore_from_store(&mut self, id: ChunkId, rec: &RecoveredChunk) -> Result<(), EngineError> {
        let store = self
            .persistence
            .as_mut()
            .expect("store-lazy chunks require an attached backend");
        let payload = match store.read_chunk(id) {
            Ok(p) => p,
            Err(PersistError::Checksum {
                chunk,
                expected,
                actual,
            }) => {
                return Err(EngineError::ChecksumMismatch {
                    chunk: ChunkId(chunk),
                    expected,
                    actual,
                })
            }
            Err(e) => return Err(e.into()),
        };
        let cost = Self::install_recovered(&mut self.heap, id, rec, &payload)?;
        self.clock.advance(cost);
        if self.config.precopy.enabled() {
            self.mmu.protect_after_precopy(id);
        }
        self.trace(TraceEventKind::Restart {
            strategy: "lazy".to_string(),
            chunks: 1,
        });
        Ok(())
    }

    /// Number of chunks still awaiting lazy restore.
    pub fn lazy_pending_count(&self) -> usize {
        self.lazy_pending.len()
    }

    /// Number of chunks still awaiting lazy restore from the durable
    /// store (their payloads have not been read from media yet).
    pub fn store_lazy_pending_count(&self) -> usize {
        self.lazy_store_pending.len()
    }

    /// Verify + restore a lazily-deferred chunk now (called on first
    /// access). No-op for chunks that are not pending.
    fn ensure_restored(&mut self, id: ChunkId) -> Result<(), EngineError> {
        if let Some(rec) = self.lazy_store_pending.remove(&id) {
            return self.restore_from_store(id, &rec);
        }
        if !self.lazy_pending.remove(&id) {
            return Ok(());
        }
        let chunk = self.heap.chunk(id)?;
        let slot = chunk
            .committed_slot
            .ok_or(EngineError::NoCommittedData(id))?;
        let expected = chunk.checksum;
        if self.config.materialization == Materialization::Bytes {
            if let Some(expected) = expected {
                let (data, read_cost) = self.heap.read_version(id, slot)?;
                self.clock.advance(read_cost);
                let actual = crc64(&data);
                if actual != expected {
                    return Err(EngineError::ChecksumMismatch {
                        chunk: id,
                        expected,
                        actual,
                    });
                }
            }
        }
        let cost = self.heap.restore_to_dram(id)?;
        self.clock.advance(cost);
        if self.config.precopy.enabled() {
            self.mmu.protect_after_precopy(id);
        }
        self.trace(TraceEventKind::Restart {
            strategy: "lazy".to_string(),
            chunks: 1,
        });
        Ok(())
    }

    /// Overwrite committed NVM bytes of a chunk *without* updating its
    /// checksum — silent data corruption, for failure-injection tests
    /// and the restart-fallback experiments.
    pub fn corrupt_committed(&mut self, id: ChunkId) -> Result<(), EngineError> {
        let chunk = self.heap.chunk(id)?;
        let ext = chunk
            .committed_extent()
            .ok_or(EngineError::NoCommittedData(id))?;
        let garbage = vec![0xA5u8; ext.len.min(64)];
        self.heap
            .nvm()
            .write(self.heap.container(), ext.offset, &garbage, 1)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Introspection / remote-checkpoint hooks
    // ------------------------------------------------------------------

    /// The shared virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Underlying heap (the remote helper reads committed data through
    /// the shared-NVM interface).
    pub fn heap(&self) -> &NvmHeap {
        &self.heap
    }

    /// Mutable heap access (failure-injection tests).
    pub fn heap_mut(&mut self) -> &mut NvmHeap {
        &mut self.heap
    }

    /// The metadata region id (needed to restart this process later).
    pub fn metadata_region(&self) -> RegionId {
        self.metadata.region()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> EngineStats {
        let mut s = self.stats;
        let m = self.mmu.stats();
        s.faults = m.faults;
        s.fault_time = m.fault_time;
        s
    }

    /// Per-epoch reports so far.
    pub fn log(&self) -> &[EpochReport] {
        &self.log
    }

    /// Completed checkpoint count.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Prediction-table accuracy.
    pub fn predictor_stats(&self) -> PredictionStats {
        self.predictor.stats()
    }

    /// The DCPC planner (read-only).
    pub fn planner(&self) -> &PrecopyPlanner {
        &self.planner
    }

    /// Per-process checkpoint data size `D`.
    pub fn checkpoint_bytes(&self) -> usize {
        self.heap.checkpoint_bytes()
    }

    /// Chunks with pending *remote* (`nvdirty`) state — what the
    /// remote-checkpoint helper scans.
    pub fn remote_dirty_chunks(&self) -> Vec<ChunkId> {
        self.mmu.nvdirty_chunks()
    }

    /// Chunks whose remote copy is stale (`nvdirty`) but whose local
    /// state is stable (not locally dirty) — what the remote pre-copy
    /// helper ships incrementally. Hot chunks stay locally dirty until
    /// late in the interval and are therefore deferred automatically.
    pub fn remote_stable_chunks(&self) -> Vec<ChunkId> {
        self.mmu
            .nvdirty_chunks()
            .into_iter()
            .filter(|id| !self.mmu.is_dirty(*id))
            .collect()
    }

    /// Clear a chunk's remote-dirty state after the helper copied it.
    pub fn mark_remote_copied(&mut self, id: ChunkId) {
        self.mmu.clear_remote_dirty(id);
    }

    /// Length of a chunk in bytes.
    pub fn chunk_len(&self, id: ChunkId) -> Result<usize, EngineError> {
        Ok(self.heap.chunk(id)?.len)
    }

    /// Committed bytes of a chunk (what a remote checkpoint ships).
    pub fn committed_bytes(&self, id: ChunkId) -> Result<Vec<u8>, EngineError> {
        let chunk = self.heap.chunk(id)?;
        let slot = chunk
            .committed_slot
            .ok_or(EngineError::NoCommittedData(id))?;
        let (data, _) = self.heap.read_version(id, slot)?;
        Ok(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_heap::Versioning;

    const MB: usize = 1 << 20;

    fn setup(config: EngineConfig) -> (CheckpointEngine, MemoryDevice, MemoryDevice, VirtualClock) {
        let dram = MemoryDevice::dram(256 * MB);
        let nvm = MemoryDevice::pcm(256 * MB);
        let clock = VirtualClock::new();
        let engine =
            CheckpointEngine::new(0, &dram, &nvm, 128 * MB, clock.clone(), config).unwrap();
        (engine, dram, nvm, clock)
    }

    #[test]
    fn checkpoint_restore_roundtrip() {
        let (mut e, dram, nvm, clock) = setup(EngineConfig::default());
        let a = e.nvmalloc("a", 4096, true).unwrap();
        let b = e.nvmalloc("b", 8192, true).unwrap();
        e.write(a, 0, &[1u8; 4096]).unwrap();
        e.write(b, 0, &[2u8; 8192]).unwrap();
        e.compute(SimDuration::from_secs(1));
        e.nvchkptall().unwrap();

        let region = e.metadata_region();
        drop(e); // process dies (soft failure)

        let (mut e2, report) =
            CheckpointEngine::restart(&dram, &nvm, region, clock, EngineConfig::default()).unwrap();
        assert_eq!(report.restored.len(), 2);
        assert!(report.corrupt.is_empty());
        let mut buf = vec![0u8; 4096];
        e2.read(a, 0, &mut buf).unwrap();
        assert_eq!(buf, vec![1u8; 4096]);
        let mut buf = vec![0u8; 8192];
        e2.read(b, 0, &mut buf).unwrap();
        assert_eq!(buf, vec![2u8; 8192]);
    }

    #[test]
    fn crash_before_commit_preserves_previous_checkpoint() {
        let (mut e, dram, nvm, clock) = setup(EngineConfig::default());
        let a = e.nvmalloc("a", 4096, true).unwrap();
        e.write(a, 0, &[1u8; 4096]).unwrap();
        e.nvchkptall().unwrap(); // epoch 0 committed with 1s

        // New data, *partially* checkpointed: shadow-copy into the
        // in-progress slot but crash before commit (no metadata save).
        e.write(a, 0, &[9u8; 4096]).unwrap();
        let slot = {
            let c = e.heap().chunk(a).unwrap();
            c.in_progress_slot(Versioning::Double)
        };
        e.heap_mut().shadow_copy(a, slot, 1).unwrap();
        let region = e.metadata_region();
        drop(e); // crash

        let (mut e2, report) =
            CheckpointEngine::restart(&dram, &nvm, region, clock, EngineConfig::default()).unwrap();
        assert_eq!(report.restored, vec![a]);
        let mut buf = vec![0u8; 4096];
        e2.read(a, 0, &mut buf).unwrap();
        assert_eq!(buf, vec![1u8; 4096], "must restore the committed version");
    }

    #[test]
    fn corruption_is_detected_on_restart() {
        let (mut e, dram, nvm, clock) = setup(EngineConfig::default());
        let a = e.nvmalloc("a", 4096, true).unwrap();
        e.write(a, 0, &[1u8; 4096]).unwrap();
        e.nvchkptall().unwrap();
        e.corrupt_committed(a).unwrap();
        let region = e.metadata_region();
        drop(e);

        let (_e2, report) =
            CheckpointEngine::restart(&dram, &nvm, region, clock, EngineConfig::default()).unwrap();
        assert_eq!(report.corrupt, vec![a], "checksum must catch corruption");
        assert!(report.restored.is_empty());
    }

    #[test]
    fn precopy_drains_data_before_coordinated_step() {
        let mut cfg = EngineConfig::default().with_precopy(PrecopyPolicy::Cpc);
        cfg.checksums = false;
        let (mut e, ..) = setup(cfg);
        let a = e.nvmalloc("a", 4 * MB, true).unwrap();
        e.write(a, 0, &vec![3u8; 4 * MB]).unwrap();
        // Long compute: plenty of background bandwidth to drain 4 MB.
        e.compute(SimDuration::from_secs(5));
        let report = e.nvchkptall().unwrap();
        assert_eq!(report.precopied_bytes, 4 * MB as u64);
        assert_eq!(report.coordinated_bytes, 0);
        assert!(report.coordinated_time < SimDuration::from_millis(100));
    }

    #[test]
    fn no_precopy_copies_everything_at_checkpoint() {
        let (mut e, ..) = setup(EngineConfig::no_precopy());
        let a = e.nvmalloc("a", 4 * MB, true).unwrap();
        e.write(a, 0, &vec![3u8; 4 * MB]).unwrap();
        e.compute(SimDuration::from_secs(5));
        let report = e.nvchkptall().unwrap();
        assert_eq!(report.precopied_bytes, 0);
        assert_eq!(report.coordinated_bytes, 4 * MB as u64);
        // And it re-copies even unmodified data next epoch.
        e.compute(SimDuration::from_secs(5));
        let r2 = e.nvchkptall().unwrap();
        assert_eq!(r2.coordinated_bytes, 4 * MB as u64);
        assert_eq!(r2.skipped_bytes, 0);
    }

    #[test]
    fn unmodified_chunks_are_skipped_with_tracking() {
        let mut cfg = EngineConfig::default().with_precopy(PrecopyPolicy::Cpc);
        cfg.checksums = false;
        let (mut e, ..) = setup(cfg);
        let a = e.nvmalloc("init_only", 4 * MB, true).unwrap();
        let b = e.nvmalloc("hot", MB, true).unwrap();
        e.write(a, 0, &vec![1u8; 4 * MB]).unwrap();
        e.write(b, 0, &vec![2u8; MB]).unwrap();
        e.compute(SimDuration::from_secs(5));
        e.nvchkptall().unwrap();

        // Second epoch: only b is touched.
        e.write(b, 0, &vec![5u8; MB]).unwrap();
        e.compute(SimDuration::from_secs(5));
        let r = e.nvchkptall().unwrap();
        assert_eq!(
            r.skipped_bytes,
            4 * MB as u64,
            "init-only chunk must be skipped (the GTC effect)"
        );
        assert_eq!(r.total_bytes(), MB as u64);
    }

    #[test]
    fn rewriting_precopied_chunk_counts_as_waste() {
        let mut cfg = EngineConfig::default().with_precopy(PrecopyPolicy::Cpc);
        cfg.checksums = false;
        let (mut e, ..) = setup(cfg);
        let a = e.nvmalloc("a", MB, true).unwrap();
        e.write(a, 0, &vec![1u8; MB]).unwrap();
        e.compute(SimDuration::from_secs(2)); // pre-copies a
        e.write(a, 0, &vec![2u8; MB]).unwrap(); // invalidates the copy
        e.compute(SimDuration::from_secs(2)); // pre-copies a again
        let r = e.nvchkptall().unwrap();
        assert_eq!(r.wasted_bytes, MB as u64);
        assert_eq!(r.precopied_bytes, 2 * MB as u64, "copied twice");
        // Content must still be the latest value.
        let data = e.committed_bytes(a).unwrap();
        assert_eq!(data, vec![2u8; MB]);
    }

    #[test]
    fn committed_content_reflects_last_write_before_checkpoint() {
        let (mut e, ..) = setup(EngineConfig::default());
        let a = e.nvmalloc("a", 1024, true).unwrap();
        for round in 0..5u8 {
            e.write(a, 0, &vec![round; 1024]).unwrap();
            e.compute(SimDuration::from_millis(100));
            e.nvchkptall().unwrap();
            assert_eq!(e.committed_bytes(a).unwrap(), vec![round; 1024]);
        }
        assert_eq!(e.epoch(), 5);
    }

    #[test]
    fn dcpc_learns_then_delays() {
        let mut cfg = EngineConfig::default().with_precopy(PrecopyPolicy::Dcpc);
        cfg.checksums = false;
        let (mut e, ..) = setup(cfg);
        let a = e.nvmalloc("a", MB, true).unwrap();
        e.write(a, 0, &vec![1u8; MB]).unwrap();
        e.compute(SimDuration::from_secs(10));
        e.nvchkptall().unwrap(); // learning interval
        assert!(e.planner().is_learned());
        let tp = e.planner().start_offset().unwrap();
        assert!(
            tp > SimDuration::from_secs(5),
            "1 MB drains fast; threshold should sit late in a ~10 s interval (got {tp})"
        );
    }

    #[test]
    fn dcpcp_defers_hot_chunks() {
        let mut cfg = EngineConfig::default().with_precopy(PrecopyPolicy::Dcpcp);
        cfg.checksums = false;
        let (mut e, ..) = setup(cfg);
        let hot = e.nvmalloc("hot", MB, true).unwrap();
        // Learning epoch: hot chunk written 3 times.
        for _ in 0..3 {
            e.write_synthetic(hot, 0, MB).unwrap();
            e.compute(SimDuration::from_secs(1));
        }
        e.nvchkptall().unwrap();
        let wasted_learning = e.stats().wasted_precopy_bytes;

        // Trained epoch, same pattern: the first two writes must not
        // trigger pre-copy, so no waste accrues this interval.
        for _ in 0..3 {
            e.write_synthetic(hot, 0, MB).unwrap();
            e.compute(SimDuration::from_secs(1));
        }
        let r = e.nvchkptall().unwrap();
        assert_eq!(
            e.stats().wasted_precopy_bytes,
            wasted_learning,
            "trained predictor must not waste copies on the hot chunk"
        );
        assert!(r.total_bytes() >= MB as u64);
    }

    #[test]
    fn faults_are_charged_and_counted() {
        let mut cfg = EngineConfig::default().with_precopy(PrecopyPolicy::Cpc);
        cfg.checksums = false;
        let (mut e, ..) = setup(cfg);
        let a = e.nvmalloc("a", MB, true).unwrap();
        e.write(a, 0, &vec![1u8; MB]).unwrap();
        e.compute(SimDuration::from_secs(2)); // precopy protects a
        let faults_before = e.stats().faults;
        e.write(a, 0, &[7u8; 64]).unwrap(); // must fault once
        assert_eq!(e.stats().faults, faults_before + 1);
        assert!(e.stats().fault_time >= SimDuration::from_micros(6));
    }

    #[test]
    fn nvchkptid_commits_single_chunk() {
        let (mut e, ..) = setup(EngineConfig::default());
        let a = e.nvmalloc("a", 1024, true).unwrap();
        let b = e.nvmalloc("b", 1024, true).unwrap();
        e.write(a, 0, &[1u8; 1024]).unwrap();
        e.write(b, 0, &[2u8; 1024]).unwrap();
        let cost = e.nvchkptid(a).unwrap();
        assert!(!cost.is_zero());
        assert!(e.heap().chunk(a).unwrap().has_committed());
        assert!(!e.heap().chunk(b).unwrap().has_committed());
        assert_eq!(e.committed_bytes(a).unwrap(), vec![1u8; 1024]);
        assert!(matches!(
            e.committed_bytes(b),
            Err(EngineError::NoCommittedData(_))
        ));
    }

    #[test]
    fn remote_dirty_tracking_is_exposed() {
        let (mut e, ..) = setup(EngineConfig::default());
        let a = e.nvmalloc("a", 1024, true).unwrap();
        e.write(a, 0, &[1u8; 1024]).unwrap();
        assert_eq!(e.remote_dirty_chunks(), vec![a]);
        e.mark_remote_copied(a);
        assert!(e.remote_dirty_chunks().is_empty());
        e.write(a, 0, &[2u8; 16]).unwrap();
        assert_eq!(e.remote_dirty_chunks(), vec![a]);
    }

    #[test]
    fn clock_advances_with_every_operation() {
        let (mut e, _, _, clock) = setup(EngineConfig::default());
        let t0 = clock.now();
        let a = e.nvmalloc("a", MB, true).unwrap();
        let t1 = clock.now();
        assert!(t1 > t0, "metadata save must cost time");
        e.write(a, 0, &vec![1u8; MB]).unwrap();
        let t2 = clock.now();
        assert!(t2 > t1);
        e.nvchkptall().unwrap();
        assert!(clock.now() > t2);
    }

    #[test]
    fn lazy_restart_defers_until_first_access() {
        let (mut e, dram, nvm, clock) = setup(EngineConfig::default());
        let a = e.nvmalloc("a", 4096, true).unwrap();
        let b = e.nvmalloc("b", 4096, true).unwrap();
        e.write(a, 0, &[1u8; 4096]).unwrap();
        e.write(b, 0, &[2u8; 4096]).unwrap();
        e.nvchkptall().unwrap();
        let region = e.metadata_region();
        drop(e);

        let (mut e2, report) = CheckpointEngine::restart_with(
            &dram,
            &nvm,
            region,
            clock,
            EngineConfig::default(),
            crate::restart::RestartStrategy::Lazy,
        )
        .unwrap();
        assert!(report.restored.is_empty());
        assert_eq!(report.deferred.len(), 2);
        assert_eq!(e2.lazy_pending_count(), 2);

        // First access restores; the other stays pending.
        let mut buf = vec![0u8; 4096];
        e2.read(a, 0, &mut buf).unwrap();
        assert_eq!(buf, vec![1u8; 4096]);
        assert_eq!(e2.lazy_pending_count(), 1);
        // Writes also trigger restore first.
        e2.write(b, 0, &[9u8; 16]).unwrap();
        assert_eq!(e2.lazy_pending_count(), 0);
        let mut buf = vec![0u8; 4096];
        e2.read(b, 0, &mut buf).unwrap();
        assert_eq!(&buf[..16], &[9u8; 16]);
        assert_eq!(&buf[16..], &vec![2u8; 4080][..]);
    }

    #[test]
    fn lazy_restart_is_cheaper_upfront_than_eager() {
        let mk = || {
            let dram = MemoryDevice::dram(256 * MB);
            let nvm = MemoryDevice::pcm(256 * MB);
            let clock = VirtualClock::new();
            let mut e = CheckpointEngine::new(
                0,
                &dram,
                &nvm,
                128 * MB,
                clock.clone(),
                EngineConfig::default(),
            )
            .unwrap();
            let a = e.nvmalloc("a", 16 * MB, true).unwrap();
            e.write(a, 0, &vec![1u8; 16 * MB]).unwrap();
            e.nvchkptall().unwrap();
            let region = e.metadata_region();
            drop(e);
            (dram, nvm, clock, region)
        };
        let (dram, nvm, clock, region) = mk();
        let (_, eager) = CheckpointEngine::restart_with(
            &dram,
            &nvm,
            region,
            clock,
            EngineConfig::default(),
            crate::restart::RestartStrategy::Eager,
        )
        .unwrap();
        let (dram, nvm, clock, region) = mk();
        let (_, lazy) = CheckpointEngine::restart_with(
            &dram,
            &nvm,
            region,
            clock,
            EngineConfig::default(),
            crate::restart::RestartStrategy::Lazy,
        )
        .unwrap();
        assert!(
            lazy.duration.as_nanos() * 10 < eager.duration.as_nanos(),
            "lazy {} vs eager {}",
            lazy.duration,
            eager.duration
        );
    }

    #[test]
    fn parallel_restart_is_faster_than_eager() {
        let mk = || {
            let dram = MemoryDevice::dram(512 * MB);
            let nvm = MemoryDevice::pcm(512 * MB);
            let clock = VirtualClock::new();
            let cfg = EngineConfig::builder().checksums(false).build().unwrap();
            let mut e =
                CheckpointEngine::new(0, &dram, &nvm, 256 * MB, clock.clone(), cfg).unwrap();
            for i in 0..8 {
                let id = e.nvmalloc(&format!("c{i}"), 8 * MB, true).unwrap();
                e.write_synthetic(id, 0, 8 * MB).unwrap();
            }
            e.nvchkptall().unwrap();
            let region = e.metadata_region();
            drop(e);
            (dram, nvm, clock, region, cfg)
        };
        let (dram, nvm, clock, region, cfg) = mk();
        let (_, eager) = CheckpointEngine::restart_with(
            &dram,
            &nvm,
            region,
            clock,
            cfg,
            crate::restart::RestartStrategy::Eager,
        )
        .unwrap();
        let (dram, nvm, clock, region, cfg) = mk();
        let (_, parallel) = CheckpointEngine::restart_with(
            &dram,
            &nvm,
            region,
            clock,
            cfg,
            crate::restart::RestartStrategy::Parallel { streams: 8 },
        )
        .unwrap();
        assert!(
            parallel.duration < eager.duration,
            "parallel {} vs eager {}",
            parallel.duration,
            eager.duration
        );
        assert_eq!(parallel.restored.len(), 8);
    }

    #[test]
    fn lazy_restore_detects_corruption_on_access() {
        let (mut e, dram, nvm, clock) = setup(EngineConfig::default());
        let a = e.nvmalloc("a", 4096, true).unwrap();
        e.write(a, 0, &[1u8; 4096]).unwrap();
        e.nvchkptall().unwrap();
        e.corrupt_committed(a).unwrap();
        let region = e.metadata_region();
        drop(e);
        let (mut e2, report) = CheckpointEngine::restart_with(
            &dram,
            &nvm,
            region,
            clock,
            EngineConfig::default(),
            crate::restart::RestartStrategy::Lazy,
        )
        .unwrap();
        assert!(report.corrupt.is_empty(), "not detected yet");
        let mut buf = vec![0u8; 4096];
        let err = e2.read(a, 0, &mut buf).unwrap_err();
        assert!(matches!(err, EngineError::ChecksumMismatch { .. }));
    }

    #[test]
    fn nvattach_then_checkpoint_roundtrips() {
        let (mut e, ..) = setup(EngineConfig::default());
        let src: Vec<u8> = (0..8192u32).map(|i| (i % 254) as u8).collect();
        let id = e.nvattach("custom_alloc", &src).unwrap();
        e.nvchkptall().unwrap();
        assert_eq!(e.committed_bytes(id).unwrap(), src);
    }

    #[test]
    fn nvrealloc_invalidates_commit_until_next_checkpoint() {
        let (mut e, ..) = setup(EngineConfig::default());
        let id = e.nvmalloc("grid", 4096, true).unwrap();
        e.write(id, 0, &[1u8; 4096]).unwrap();
        e.nvchkptall().unwrap();
        e.nvrealloc(id, 16384).unwrap();
        assert!(
            matches!(e.committed_bytes(id), Err(EngineError::NoCommittedData(_))),
            "grown chunk has no committed version yet"
        );
        e.write(id, 0, &[2u8; 16384]).unwrap();
        e.nvchkptall().unwrap();
        assert_eq!(e.committed_bytes(id).unwrap(), vec![2u8; 16384]);
    }

    #[test]
    fn nvdelete_survives_restart_cleanly() {
        let (mut e, dram, nvm, clock) = setup(EngineConfig::default());
        let keep = e.nvmalloc("keep", 4096, true).unwrap();
        let gone = e.nvmalloc("gone", 4096, true).unwrap();
        e.write(keep, 0, &[1u8; 4096]).unwrap();
        e.write(gone, 0, &[2u8; 4096]).unwrap();
        e.nvchkptall().unwrap();
        e.nvdelete(gone).unwrap();
        let region = e.metadata_region();
        drop(e);
        let (e2, report) =
            CheckpointEngine::restart(&dram, &nvm, region, clock, EngineConfig::default()).unwrap();
        assert_eq!(report.restored, vec![keep], "deleted chunk stays gone");
        assert!(e2.heap().chunk(gone).is_err());
    }

    #[test]
    fn epoch_log_accumulates_reports() {
        let (mut e, ..) = setup(EngineConfig::default());
        let id = e.nvmalloc("x", 4096, true).unwrap();
        for i in 0..4u8 {
            e.write(id, 0, &[i; 4096]).unwrap();
            e.compute(SimDuration::from_millis(50));
            e.nvchkptall().unwrap();
        }
        let log = e.log();
        assert_eq!(log.len(), 4);
        assert!(log.windows(2).all(|w| w[0].epoch + 1 == w[1].epoch));
        assert!(log.iter().all(|r| !r.interval.is_zero()));
        assert_eq!(e.stats().checkpoints, 4);
    }

    #[test]
    fn non_persistent_chunks_never_checkpoint() {
        let (mut e, ..) = setup(EngineConfig::default());
        let tmp = e.nvmalloc("scratch", MB, false).unwrap();
        e.write(tmp, 0, &vec![1u8; MB]).unwrap();
        let r = e.nvchkptall().unwrap();
        assert_eq!(r.total_bytes(), 0);
        assert!(matches!(
            e.nvchkptid(tmp),
            Err(EngineError::NoCommittedData(_))
        ));
    }

    #[test]
    fn invalid_configs_rejected_at_construction() {
        let dram = MemoryDevice::dram(MB);
        let nvm = MemoryDevice::pcm(16 * MB);
        let bad = EngineConfig {
            node_concurrency: 0,
            ..EngineConfig::default()
        };
        assert!(matches!(
            CheckpointEngine::new(0, &dram, &nvm, 8 * MB, VirtualClock::new(), bad),
            Err(EngineError::Config(ConfigError::ZeroNodeConcurrency))
        ));
        assert!(matches!(
            CheckpointEngine::new(
                0,
                &dram,
                &nvm,
                0,
                VirtualClock::new(),
                EngineConfig::default()
            ),
            Err(EngineError::Config(ConfigError::ZeroShadowRegion))
        ));
    }

    #[test]
    fn error_sources_chain_to_the_device() {
        use std::error::Error as _;
        let err = EngineError::from(HeapError::from(nvm_emu::DeviceError::NoSuchRegion(3)));
        let heap = err.source().expect("engine error wraps heap error");
        assert_eq!(heap.to_string(), "device error: no such region: 3");
        let device = heap.source().expect("heap error wraps device error");
        assert_eq!(device.to_string(), "no such region: 3");
        assert!(device.source().is_none());
        assert_eq!(err.to_string(), "heap: device error: no such region: 3");
    }

    #[test]
    fn tracer_records_fault_precopy_and_commit_events() {
        use nvm_trace::BufferSink;
        use std::sync::Arc;

        let (mut e, ..) = setup(EngineConfig::default().with_precopy(PrecopyPolicy::Cpc));
        let sink = Arc::new(BufferSink::new());
        e.set_tracer(Tracer::new(sink.clone()));

        let id = e.nvmalloc("x", 64 * 1024, true).unwrap();
        e.write(id, 0, &[7u8; 64 * 1024]).unwrap(); // fresh chunk: no fault
        e.compute(SimDuration::from_secs(1)); // CPC pre-copy drains it
        e.write(id, 0, &[8u8; 64 * 1024]).unwrap(); // fault + waste
        e.nvchkptall().unwrap();

        let kinds: Vec<&'static str> = sink
            .snapshot()
            .iter()
            .map(|ev| match &ev.kind {
                TraceEventKind::ProtectionFault { .. } => "fault",
                TraceEventKind::PrecopyStart { .. } => "precopy_start",
                TraceEventKind::PrecopyDrain { .. } => "drain",
                TraceEventKind::PrecopyEnd { .. } => "precopy_end",
                TraceEventKind::PrecopyWaste { .. } => "waste",
                TraceEventKind::CoordinatedBegin { .. } => "begin",
                TraceEventKind::CommitFlip { .. } => "flip",
                TraceEventKind::CoordinatedEnd { .. } => "end",
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                "precopy_start",
                "drain",
                "precopy_end",
                "fault",
                "waste",
                "begin",
                "flip",
                "end"
            ]
        );
        // Timestamps are monotone non-decreasing on one engine's clock.
        let ts: Vec<u64> = sink.snapshot().iter().map(|ev| ev.t_ns).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
    }

    #[test]
    fn metrics_mirror_engine_stats() {
        let (mut e, ..) = setup(EngineConfig::default().with_precopy(PrecopyPolicy::Cpc));
        let m = Metrics::new();
        e.set_metrics(m.clone());

        let id = e.nvmalloc("x", 64 * 1024, true).unwrap();
        e.write(id, 0, &[7u8; 64 * 1024]).unwrap();
        e.compute(SimDuration::from_secs(1)); // CPC pre-copy drains it
        e.write(id, 0, &[8u8; 64 * 1024]).unwrap(); // fault + waste
        e.nvchkptall().unwrap();

        let snap = m.registry().snapshot();
        let s = e.stats();
        assert_eq!(snap.counter(names::CHKPT_CHECKPOINTS_TOTAL), s.checkpoints);
        assert_eq!(snap.counter(names::CHKPT_FAULTS_TOTAL), s.faults);
        assert_eq!(
            snap.counter(names::CHKPT_PRECOPIED_BYTES_TOTAL),
            s.precopied_bytes
        );
        assert_eq!(
            snap.counter(names::CHKPT_COORDINATED_BYTES_TOTAL),
            s.coordinated_bytes
        );
        assert_eq!(
            snap.counter(names::CHKPT_SKIPPED_BYTES_TOTAL),
            s.skipped_bytes
        );
        assert_eq!(
            snap.counter(names::CHKPT_WASTED_PRECOPY_BYTES_TOTAL),
            s.wasted_precopy_bytes
        );
        assert_eq!(
            snap.counter(names::CHKPT_COORDINATED_TIME_NS_TOTAL),
            s.coordinated_time.as_nanos()
        );
        assert_eq!(
            snap.counter(names::CHKPT_FAULT_TIME_NS_TOTAL),
            s.fault_time.as_nanos()
        );
        assert_eq!(
            snap.counter(names::CHKPT_INTERFERENCE_TIME_NS_TOTAL),
            s.interference_time.as_nanos()
        );
        // Latency distributions carry exact maxima.
        let coord = snap.histogram(names::CHKPT_COORDINATED_NS).unwrap();
        assert_eq!(coord.count, s.checkpoints);
        let fault = snap.histogram(names::CHKPT_FAULT_NS).unwrap();
        assert_eq!(fault.count, s.faults);
        assert_eq!(fault.sum, s.fault_time.as_nanos());
    }

    #[test]
    fn disabled_metrics_change_nothing() {
        let run = |instrumented: bool| {
            let (mut e, _, _, clock) = setup(EngineConfig::default());
            if instrumented {
                e.set_metrics(Metrics::new());
            }
            let id = e.nvmalloc("x", 4096, true).unwrap();
            for i in 0..3u8 {
                e.write(id, 0, &[i; 4096]).unwrap();
                e.compute(SimDuration::from_millis(100));
                e.nvchkptall().unwrap();
            }
            clock.now().as_nanos()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn disabled_tracer_changes_nothing() {
        let run = |traced: bool| {
            let (mut e, _, _, clock) = setup(EngineConfig::default());
            if traced {
                e.set_tracer(Tracer::new(std::sync::Arc::new(nvm_trace::NullSink)));
            }
            let id = e.nvmalloc("x", 4096, true).unwrap();
            for i in 0..3u8 {
                e.write(id, 0, &[i; 4096]).unwrap();
                e.compute(SimDuration::from_millis(100));
                e.nvchkptall().unwrap();
            }
            clock.now().as_nanos()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn restart_from_images_rebuilds_the_process_bit_for_bit() {
        // Simulate the buddy's view: capture committed chunk images
        // from a byte-materialized engine, kill it, and rebuild a new
        // process on fresh devices from the images alone.
        let config = EngineConfig::builder()
            .materialization(Materialization::Bytes)
            .checksums(true)
            .build()
            .unwrap();
        let (mut e, _, _, _) = setup(config);
        let a = e.nvmalloc("a", 4096, true).unwrap();
        let b = e.nvmalloc("b", 10_000, true).unwrap();
        let bytes_a: Vec<u8> = (0..4096).map(|i| (i % 253) as u8).collect();
        let bytes_b: Vec<u8> = (0..10_000).map(|i| (i % 101 + 3) as u8).collect();
        e.write(a, 0, &bytes_a).unwrap();
        e.write(b, 0, &bytes_b).unwrap();
        e.nvchkptall().unwrap();

        let images: Vec<RemoteImage> = [(a, "a"), (b, "b")]
            .iter()
            .map(|&(id, name)| {
                let payload = e.committed_bytes(id).unwrap();
                RemoteImage {
                    id,
                    name: name.to_string(),
                    len: payload.len(),
                    checksum: Some(crc64(&payload)),
                    epoch: 0,
                    payload,
                }
            })
            .collect();
        drop(e); // hard failure: node, devices, everything gone

        let dram = MemoryDevice::dram(256 * MB);
        let nvm = MemoryDevice::pcm(256 * MB);
        let clock = VirtualClock::new();
        let (e2, report) = CheckpointEngine::restart_from_images(
            0,
            &dram,
            &nvm,
            128 * MB,
            clock,
            config,
            RestartStrategy::Eager,
            &images,
            5,
            Tracer::disabled(),
        )
        .unwrap();
        assert_eq!(report.restored, vec![a, b]);
        assert!(report.corrupt.is_empty());
        assert!(report.duration > SimDuration::ZERO, "restore costs time");
        assert_eq!(e2.committed_bytes(a).unwrap(), bytes_a);
        assert_eq!(e2.committed_bytes(b).unwrap(), bytes_b);
        assert_eq!(e2.epoch(), 5, "epoch counter resumes where told");
        assert_eq!(e2.stats().restarts, 1);
    }

    #[test]
    fn restart_from_images_rejects_length_mismatch() {
        let config = EngineConfig::builder()
            .materialization(Materialization::Bytes)
            .build()
            .unwrap();
        let dram = MemoryDevice::dram(64 * MB);
        let nvm = MemoryDevice::pcm(64 * MB);
        let images = vec![RemoteImage {
            id: ChunkId(1),
            name: "x".into(),
            len: 4096,
            checksum: None,
            epoch: 0,
            payload: vec![0u8; 100], // truncated in flight
        }];
        let result = CheckpointEngine::restart_from_images(
            0,
            &dram,
            &nvm,
            32 * MB,
            VirtualClock::new(),
            config,
            RestartStrategy::Eager,
            &images,
            0,
            Tracer::disabled(),
        );
        match result {
            Err(EngineError::Store(PersistError::Corrupt(_))) => {}
            Err(e) => panic!("wrong error: {e}"),
            Ok(_) => panic!("length mismatch must be rejected"),
        }
    }
}
