//! Transparent (whole-address-space) checkpointing mode (extension).
//!
//! The paper targets application-initiated checkpoints but notes its
//! mechanisms "are sufficiently general that they can also be used to
//! support transparent checkpointing" — at the price of checkpointing
//! the entire process footprint. [`TransparentProcess`] demonstrates
//! that generalization: the address space is covered by fixed-size
//! segments, each auto-registered as a chunk; plain `store`/`load`
//! calls replace the Table-III marking interfaces, and every segment
//! participates in checkpoints whether or not it holds live data.
//!
//! The cost difference the paper warns about ("possibly prohibitive
//! checkpoint sizes") falls out directly: a transparent checkpoint
//! moves `address_space` bytes where the application-initiated one
//! moves only the marked working set — compare
//! [`TransparentProcess::footprint_bytes`] against a marked engine's
//! `checkpoint_bytes()`.

use crate::config::EngineConfig;
use crate::engine::{CheckpointEngine, EngineError, RestartReport};
use crate::stats::EpochReport;
use nvm_emu::{MemoryDevice, RegionId, SimDuration, VirtualClock};
use nvm_paging::ChunkId;

/// A transparently-checkpointed process image.
pub struct TransparentProcess {
    engine: CheckpointEngine,
    segment_bytes: usize,
    segments: Vec<ChunkId>,
}

impl TransparentProcess {
    /// Create a process image of `address_space` bytes covered by
    /// `segment_bytes` segments (the last may be partial).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        process_id: u64,
        dram: &MemoryDevice,
        nvm: &MemoryDevice,
        container_capacity: usize,
        clock: VirtualClock,
        config: EngineConfig,
        address_space: usize,
        segment_bytes: usize,
    ) -> Result<Self, EngineError> {
        assert!(segment_bytes > 0 && address_space > 0);
        let mut engine =
            CheckpointEngine::new(process_id, dram, nvm, container_capacity, clock, config)?;
        let mut segments = Vec::new();
        let mut off = 0;
        let mut i = 0;
        while off < address_space {
            let len = segment_bytes.min(address_space - off);
            let id = engine.nvmalloc(&format!("__seg_{i}"), len, true)?;
            segments.push(id);
            off += len;
            i += 1;
        }
        Ok(TransparentProcess {
            engine,
            segment_bytes,
            segments,
        })
    }

    /// Address-space size in bytes — the transparent checkpoint
    /// footprint.
    pub fn footprint_bytes(&self) -> usize {
        self.engine.checkpoint_bytes()
    }

    /// Number of covering segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The wrapped engine (stats, clock, metadata region).
    pub fn engine(&self) -> &CheckpointEngine {
        &self.engine
    }

    /// Attach a tracer to the wrapped engine: stores, checkpoints, and
    /// restarts of this process image appear on the event stream.
    pub fn set_tracer(&mut self, tracer: nvm_trace::Tracer) {
        self.engine.set_tracer(tracer);
    }

    /// Attach a metrics handle to the wrapped engine: faults, copies,
    /// and checkpoint latencies of this process image record into it.
    pub fn set_metrics(&mut self, metrics: nvm_metrics::Metrics) {
        self.engine.set_metrics(metrics);
    }

    fn locate(&self, addr: usize) -> (usize, usize) {
        (addr / self.segment_bytes, addr % self.segment_bytes)
    }

    /// Store bytes at an absolute address (may span segments) — the
    /// transparent analogue of an ordinary memory write.
    pub fn store(&mut self, addr: usize, data: &[u8]) -> Result<(), EngineError> {
        let mut addr = addr;
        let mut data = data;
        while !data.is_empty() {
            let (seg, off) = self.locate(addr);
            let id = self.segments[seg];
            let room = self.engine.chunk_len(id)? - off;
            let n = room.min(data.len());
            self.engine.write(id, off, &data[..n])?;
            addr += n;
            data = &data[n..];
        }
        Ok(())
    }

    /// Load bytes from an absolute address (may span segments).
    pub fn load(&mut self, addr: usize, buf: &mut [u8]) -> Result<(), EngineError> {
        let mut addr = addr;
        let mut filled = 0;
        while filled < buf.len() {
            let (seg, off) = self.locate(addr);
            let id = self.segments[seg];
            let room = self.engine.chunk_len(id)? - off;
            let n = room.min(buf.len() - filled);
            self.engine.read(id, off, &mut buf[filled..filled + n])?;
            addr += n;
            filled += n;
        }
        Ok(())
    }

    /// Model a compute segment (background pre-copy included).
    pub fn compute(&mut self, dur: SimDuration) {
        self.engine.compute(dur);
    }

    /// Transparent coordinated checkpoint of the whole image.
    pub fn checkpoint(&mut self) -> Result<EpochReport, EngineError> {
        self.engine.nvchkptall()
    }

    /// Metadata region for later restart.
    pub fn metadata_region(&self) -> RegionId {
        self.engine.metadata_region()
    }

    /// Restart a transparent process from its metadata region.
    pub fn restart(
        dram: &MemoryDevice,
        nvm: &MemoryDevice,
        metadata_region: RegionId,
        clock: VirtualClock,
        config: EngineConfig,
        segment_bytes: usize,
    ) -> Result<(Self, RestartReport), EngineError> {
        let (engine, report) =
            CheckpointEngine::restart(dram, nvm, metadata_region, clock, config)?;
        let mut segments: Vec<(usize, ChunkId)> = engine
            .heap()
            .chunks()
            .filter_map(|c| {
                c.name
                    .strip_prefix("__seg_")
                    .and_then(|n| n.parse::<usize>().ok())
                    .map(|i| (i, c.id))
            })
            .collect();
        segments.sort_by_key(|(i, _)| *i);
        Ok((
            TransparentProcess {
                engine,
                segment_bytes,
                segments: segments.into_iter().map(|(_, id)| id).collect(),
            },
            report,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;

    const MB: usize = 1 << 20;

    fn proc(
        space: usize,
        seg: usize,
    ) -> (TransparentProcess, MemoryDevice, MemoryDevice, VirtualClock) {
        let dram = MemoryDevice::dram(64 * MB);
        let nvm = MemoryDevice::pcm(64 * MB);
        let clock = VirtualClock::new();
        let p = TransparentProcess::new(
            0,
            &dram,
            &nvm,
            32 * MB,
            clock.clone(),
            EngineConfig::default(),
            space,
            seg,
        )
        .unwrap();
        (p, dram, nvm, clock)
    }

    #[test]
    fn covers_space_with_segments() {
        let (p, ..) = proc(10 * 4096 + 100, 4096);
        assert_eq!(p.segment_count(), 11, "last partial segment counts");
        assert_eq!(p.footprint_bytes(), 10 * 4096 + 100);
    }

    #[test]
    fn store_load_roundtrip_across_segments() {
        let (mut p, ..) = proc(64 * 1024, 4096);
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        // Deliberately unaligned, spanning 3 segments.
        p.store(3000, &data).unwrap();
        let mut buf = vec![0u8; 10_000];
        p.load(3000, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn transparent_checkpoint_and_restart() {
        let (mut p, dram, nvm, clock) = proc(32 * 1024, 4096);
        p.store(0, &[7u8; 32 * 1024]).unwrap();
        p.compute(SimDuration::from_secs(1));
        let report = p.checkpoint().unwrap();
        assert_eq!(report.total_bytes(), 32 * 1024);
        let region = p.metadata_region();
        drop(p);

        let (mut p2, restart) =
            TransparentProcess::restart(&dram, &nvm, region, clock, EngineConfig::default(), 4096)
                .unwrap();
        assert_eq!(restart.restored.len(), 8);
        assert_eq!(p2.segment_count(), 8);
        let mut buf = vec![0u8; 32 * 1024];
        p2.load(0, &mut buf).unwrap();
        assert_eq!(buf, vec![7u8; 32 * 1024]);
    }

    #[test]
    fn transparent_footprint_exceeds_marked_working_set() {
        // The paper's warning: transparent mode checkpoints the whole
        // image even when the app only needs a fraction persistent.
        let (mut p, ..) = proc(16 * 4096, 4096);
        p.store(0, &[1u8; 4096]).unwrap(); // app only really uses 1 page
        p.compute(SimDuration::from_secs(1));
        let transparent = p.checkpoint().unwrap();

        let dram = MemoryDevice::dram(64 * MB);
        let nvm = MemoryDevice::pcm(64 * MB);
        let mut marked = CheckpointEngine::new(
            1,
            &dram,
            &nvm,
            32 * MB,
            VirtualClock::new(),
            EngineConfig::default(),
        )
        .unwrap();
        let id = marked.nvmalloc("live", 4096, true).unwrap();
        marked.write(id, 0, &[1u8; 4096]).unwrap();
        marked.compute(SimDuration::from_secs(1));
        let initiated = marked.nvchkptall().unwrap();

        assert!(
            transparent.total_bytes() >= 16 * initiated.total_bytes(),
            "transparent {} vs initiated {}",
            transparent.total_bytes(),
            initiated.total_bytes()
        );
    }

    #[test]
    fn segment_dirty_tracking_limits_recopy() {
        let (mut p, ..) = proc(16 * 4096, 4096);
        p.store(0, &vec![1u8; 16 * 4096]).unwrap();
        p.compute(SimDuration::from_secs(1));
        p.checkpoint().unwrap();
        // Touch one segment only: the next checkpoint moves one
        // segment, not the image.
        p.store(5 * 4096, &[9u8; 100]).unwrap();
        p.compute(SimDuration::from_secs(1));
        let r = p.checkpoint().unwrap();
        assert_eq!(r.total_bytes(), 4096);
        assert_eq!(r.skipped_bytes, 15 * 4096);
    }
}
