//! Engine statistics and per-epoch reports.

use nvm_emu::SimDuration;
use serde::{Deserialize, Serialize};

/// Cumulative counters over the life of a [`crate::CheckpointEngine`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Checkpoints committed.
    pub checkpoints: u64,
    /// Bytes moved to NVM by background pre-copy.
    pub precopied_bytes: u64,
    /// Bytes moved to NVM during coordinated (blocking) checkpoints.
    pub coordinated_bytes: u64,
    /// Bytes *not* moved because chunk dirty-tracking proved them
    /// unmodified since the last commit (GTC's init-only chunks).
    pub skipped_bytes: u64,
    /// Pre-copied bytes that were invalidated by a later modification
    /// in the same interval (wasted pre-copy work).
    pub wasted_precopy_bytes: u64,
    /// Total blocking time spent inside coordinated checkpoints.
    pub coordinated_time: SimDuration,
    /// Application slowdown charged for pre-copy memory interference.
    pub interference_time: SimDuration,
    /// Time spent in protection-fault handling.
    pub fault_time: SimDuration,
    /// Protection faults taken.
    pub faults: u64,
    /// Restarts performed.
    pub restarts: u64,
}

impl EngineStats {
    /// All bytes moved to NVM for checkpointing.
    pub fn total_copied_bytes(&self) -> u64 {
        self.precopied_bytes + self.coordinated_bytes
    }

    /// Fraction of copied bytes moved by pre-copy (how much of the
    /// checkpoint was drained in the background).
    pub fn precopy_fraction(&self) -> f64 {
        let total = self.total_copied_bytes();
        if total == 0 {
            0.0
        } else {
            self.precopied_bytes as f64 / total as f64
        }
    }
}

/// Per-checkpoint (epoch) report — one row of the paper's local
/// checkpoint figures.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EpochReport {
    /// Epoch number (0-based).
    pub epoch: u64,
    /// Blocking duration of the coordinated step (`t_lcl`).
    pub coordinated_time: SimDuration,
    /// Bytes copied during the coordinated step.
    pub coordinated_bytes: u64,
    /// Bytes pre-copied in the background during this interval.
    pub precopied_bytes: u64,
    /// Bytes skipped because the chunk was unmodified.
    pub skipped_bytes: u64,
    /// Wasted (re-copied) pre-copy bytes this interval.
    pub wasted_bytes: u64,
    /// Protection faults taken during this interval.
    pub faults: u64,
    /// Interval length (end of previous checkpoint to end of this one).
    pub interval: SimDuration,
}

impl EpochReport {
    /// All bytes this epoch moved to NVM.
    pub fn total_bytes(&self) -> u64 {
        self.coordinated_bytes + self.precopied_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precopy_fraction_handles_zero() {
        let s = EngineStats::default();
        assert_eq!(s.precopy_fraction(), 0.0);
    }

    #[test]
    fn precopy_fraction_math() {
        let s = EngineStats {
            precopied_bytes: 300,
            coordinated_bytes: 100,
            ..Default::default()
        };
        assert_eq!(s.total_copied_bytes(), 400);
        assert!((s.precopy_fraction() - 0.75).abs() < 1e-12);
    }
}
