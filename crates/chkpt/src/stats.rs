//! Engine statistics and per-epoch reports.

use nvm_emu::SimDuration;
use serde::{Deserialize, Serialize};

/// Cumulative counters over the life of a [`crate::CheckpointEngine`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Checkpoints committed.
    pub checkpoints: u64,
    /// Bytes moved to NVM by background pre-copy.
    pub precopied_bytes: u64,
    /// Bytes moved to NVM during coordinated (blocking) checkpoints.
    pub coordinated_bytes: u64,
    /// Bytes *not* moved because chunk dirty-tracking proved them
    /// unmodified since the last commit (GTC's init-only chunks).
    pub skipped_bytes: u64,
    /// Pre-copied bytes that were invalidated by a later modification
    /// in the same interval (wasted pre-copy work).
    pub wasted_precopy_bytes: u64,
    /// Total blocking time spent inside coordinated checkpoints.
    pub coordinated_time: SimDuration,
    /// Application slowdown charged for pre-copy memory interference.
    pub interference_time: SimDuration,
    /// Time spent in protection-fault handling.
    pub fault_time: SimDuration,
    /// Protection faults taken.
    pub faults: u64,
    /// Restarts performed.
    pub restarts: u64,
}

/// Field-exhaustive accumulation: the destructuring has no `..`, so a
/// field added to [`EngineStats`] is a compile error here until the
/// aggregation handles it — the cluster coordinator's totals can no
/// longer silently drop a field (as the old field-by-field summation
/// did with `restarts`). This also provides
/// [`nvm_metrics::MergeStats`] via its blanket impl.
impl std::ops::AddAssign<&EngineStats> for EngineStats {
    fn add_assign(&mut self, rhs: &EngineStats) {
        let EngineStats {
            checkpoints,
            precopied_bytes,
            coordinated_bytes,
            skipped_bytes,
            wasted_precopy_bytes,
            coordinated_time,
            interference_time,
            fault_time,
            faults,
            restarts,
        } = *rhs;
        self.checkpoints += checkpoints;
        self.precopied_bytes += precopied_bytes;
        self.coordinated_bytes += coordinated_bytes;
        self.skipped_bytes += skipped_bytes;
        self.wasted_precopy_bytes += wasted_precopy_bytes;
        self.coordinated_time += coordinated_time;
        self.interference_time += interference_time;
        self.fault_time += fault_time;
        self.faults += faults;
        self.restarts += restarts;
    }
}

impl EngineStats {
    /// All bytes moved to NVM for checkpointing.
    pub fn total_copied_bytes(&self) -> u64 {
        self.precopied_bytes + self.coordinated_bytes
    }

    /// Fraction of copied bytes moved by pre-copy (how much of the
    /// checkpoint was drained in the background).
    pub fn precopy_fraction(&self) -> f64 {
        let total = self.total_copied_bytes();
        if total == 0 {
            0.0
        } else {
            self.precopied_bytes as f64 / total as f64
        }
    }
}

/// Per-checkpoint (epoch) report — one row of the paper's local
/// checkpoint figures.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EpochReport {
    /// Epoch number (0-based).
    pub epoch: u64,
    /// Blocking duration of the coordinated step (`t_lcl`).
    pub coordinated_time: SimDuration,
    /// Bytes copied during the coordinated step.
    pub coordinated_bytes: u64,
    /// Bytes pre-copied in the background during this interval.
    pub precopied_bytes: u64,
    /// Bytes skipped because the chunk was unmodified.
    pub skipped_bytes: u64,
    /// Wasted (re-copied) pre-copy bytes this interval.
    pub wasted_bytes: u64,
    /// Protection faults taken during this interval.
    pub faults: u64,
    /// Interval length (end of previous checkpoint to end of this one).
    pub interval: SimDuration,
}

impl EpochReport {
    /// All bytes this epoch moved to NVM.
    pub fn total_bytes(&self) -> u64 {
        self.coordinated_bytes + self.precopied_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precopy_fraction_handles_zero() {
        let s = EngineStats::default();
        assert_eq!(s.precopy_fraction(), 0.0);
    }

    #[test]
    fn add_assign_merges_every_field() {
        use nvm_emu::SimDuration;
        // One distinct value per field: if any field were dropped from
        // the merge, the corresponding assertion below would fail.
        let a = EngineStats {
            checkpoints: 1,
            precopied_bytes: 2,
            coordinated_bytes: 3,
            skipped_bytes: 4,
            wasted_precopy_bytes: 5,
            coordinated_time: SimDuration::from_nanos(6),
            interference_time: SimDuration::from_nanos(7),
            fault_time: SimDuration::from_nanos(8),
            faults: 9,
            restarts: 10,
        };
        let mut total = a;
        total += &a;
        assert_eq!(total.checkpoints, 2);
        assert_eq!(total.precopied_bytes, 4);
        assert_eq!(total.coordinated_bytes, 6);
        assert_eq!(total.skipped_bytes, 8);
        assert_eq!(total.wasted_precopy_bytes, 10);
        assert_eq!(total.coordinated_time, SimDuration::from_nanos(12));
        assert_eq!(total.interference_time, SimDuration::from_nanos(14));
        assert_eq!(total.fault_time, SimDuration::from_nanos(16));
        assert_eq!(total.faults, 18);
        assert_eq!(total.restarts, 20);
    }

    #[test]
    fn precopy_fraction_math() {
        let s = EngineStats {
            precopied_bytes: 300,
            coordinated_bytes: 100,
            ..Default::default()
        };
        assert_eq!(s.total_copied_bytes(), 400);
        assert!((s.precopy_fraction() - 0.75).abs() < 1e-12);
    }
}
