//! Pre-copy threshold planner (the DCPC mechanism).
//!
//! Starting pre-copy at the very beginning of a compute interval is
//! wasteful: chunks modified repeatedly would be copied repeatedly.
//! DCPC instead starts pre-copy at the *pre-copy threshold*
//!
//! ```text
//! T_c = D / NVMBW_core        (estimated checkpoint copy time)
//! T_p = I - T_c               (offset into the interval to start)
//! ```
//!
//! so that background copying has just enough time to drain all
//! checkpoint data before the coordinated step. `I` and `D` are
//! *learned* from the first checkpoint and continuously adapted — the
//! paper: "We continuously adapt the pre-copy threshold to deal with
//! application changes across iterations."

use nvm_emu::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// EWMA weight for new observations when adapting `I` and `D`.
const ADAPT_ALPHA: f64 = 0.5;

/// Safety factor on the estimated copy time: start slightly earlier
/// than strictly necessary so jitter does not leave data uncopied.
const HEADROOM: f64 = 1.2;

/// Planner state for the delayed pre-copy threshold.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PrecopyPlanner {
    /// Smoothed checkpoint interval `I` (compute + local checkpoint),
    /// `None` until the first checkpoint completes.
    interval: Option<SimDuration>,
    /// Smoothed per-process checkpoint data size `D`, bytes.
    data_bytes: f64,
    /// Effective NVM bandwidth per core used for the `T_c` estimate.
    bw_core: f64,
}

impl PrecopyPlanner {
    /// A planner that has not yet observed a checkpoint.
    pub fn new() -> Self {
        PrecopyPlanner {
            interval: None,
            data_bytes: 0.0,
            bw_core: 1.0,
        }
    }

    /// True once the first interval has been observed.
    pub fn is_learned(&self) -> bool {
        self.interval.is_some()
    }

    /// Feed one completed checkpoint interval: its duration, the bytes
    /// the checkpoint had to move, and the effective per-core NVM
    /// bandwidth seen.
    pub fn observe(&mut self, interval: SimDuration, data_bytes: u64, bw_core: f64) {
        assert!(bw_core > 0.0, "bandwidth must be positive");
        match self.interval {
            None => {
                self.interval = Some(interval);
                self.data_bytes = data_bytes as f64;
            }
            Some(prev) => {
                let blended =
                    prev.as_secs_f64() * (1.0 - ADAPT_ALPHA) + interval.as_secs_f64() * ADAPT_ALPHA;
                self.interval = Some(SimDuration::from_secs_f64(blended));
                self.data_bytes =
                    self.data_bytes * (1.0 - ADAPT_ALPHA) + data_bytes as f64 * ADAPT_ALPHA;
            }
        }
        self.bw_core = bw_core;
    }

    /// Estimated coordinated-checkpoint copy time `T_c = D / BW`.
    pub fn estimated_checkpoint_time(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.data_bytes / self.bw_core * HEADROOM)
    }

    /// The learned interval `I`, if any.
    pub fn interval(&self) -> Option<SimDuration> {
        self.interval
    }

    /// Offset into the interval at which pre-copy should start
    /// (`T_p = I - T_c`, clamped at zero — if the checkpoint cannot
    /// drain within one interval, start immediately). `None` while
    /// still unlearned.
    pub fn start_offset(&self) -> Option<SimDuration> {
        let interval = self.interval?;
        Some(interval.saturating_sub(self.estimated_checkpoint_time()))
    }

    /// Absolute time at which pre-copy becomes active for an interval
    /// that started at `interval_start`.
    pub fn start_time(&self, interval_start: SimTime) -> Option<SimTime> {
        self.start_offset().map(|off| interval_start + off)
    }
}

impl Default for PrecopyPlanner {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlearned_planner_has_no_threshold() {
        let p = PrecopyPlanner::new();
        assert!(!p.is_learned());
        assert_eq!(p.start_offset(), None);
        assert_eq!(p.start_time(SimTime::ZERO), None);
    }

    #[test]
    fn threshold_formula_t_p_equals_i_minus_t_c() {
        let mut p = PrecopyPlanner::new();
        // I = 40 s, D = 400 MB, BW = 400 MB/s  =>  T_c = 1.2 s (with
        // 1.2 headroom), T_p = 38.8 s.
        p.observe(
            SimDuration::from_secs(40),
            400 << 20,
            400.0 * (1 << 20) as f64,
        );
        let tc = p.estimated_checkpoint_time();
        assert!((tc.as_secs_f64() - 1.2).abs() < 1e-9);
        let tp = p.start_offset().unwrap();
        assert!((tp.as_secs_f64() - 38.8).abs() < 1e-9);
        let start = p.start_time(SimTime::from_secs(100)).unwrap();
        assert!((start.as_secs_f64() - 138.8).abs() < 1e-6);
    }

    #[test]
    fn oversized_checkpoint_starts_immediately() {
        let mut p = PrecopyPlanner::new();
        // Copy time (10 GB at 100 MB/s = 100 s) exceeds the 40 s
        // interval: clamp to zero.
        p.observe(
            SimDuration::from_secs(40),
            10 << 30,
            100.0 * (1 << 20) as f64,
        );
        assert_eq!(p.start_offset().unwrap(), SimDuration::ZERO);
    }

    #[test]
    fn adaptation_blends_observations() {
        let mut p = PrecopyPlanner::new();
        p.observe(SimDuration::from_secs(40), 100 << 20, 1e9);
        p.observe(SimDuration::from_secs(80), 100 << 20, 1e9);
        // EWMA with alpha 0.5: 60 s.
        let i = p.interval().unwrap().as_secs_f64();
        assert!((i - 60.0).abs() < 1e-6, "interval={i}");
        // Growing data size shifts the threshold earlier.
        let tp_before = p.start_offset().unwrap();
        p.observe(SimDuration::from_secs(60), 4 << 30, 1e9);
        let tp_after = p.start_offset().unwrap();
        assert!(tp_after < tp_before);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let mut p = PrecopyPlanner::new();
        p.observe(SimDuration::from_secs(1), 1, 0.0);
    }
}
