//! Pluggable durable-persistence backends for the checkpoint engine.
//!
//! The simulator's NVM device is process-volatile: bytes live in the
//! emulator's address space and die with it. A [`Persistence`] backend
//! gives every committed chunk a real on-media home (the `nvm-store`
//! crate ships the file-backed container), so recovery paths can be
//! exercised against media that actually survives the process.
//!
//! The engine mirrors its commit protocol into the backend:
//!
//! * [`Persistence::put_chunk`] stages one chunk's payload for the
//!   epoch in progress (the backend writes it to the *non-committed*
//!   shadow slot — never over live data);
//! * [`Persistence::commit`] makes everything staged durable in one
//!   atomic step (append a commit record + fsync);
//! * [`Persistence::recover`] scans media and returns the chunk table
//!   of the last durable commit — or a clean "no checkpoint";
//! * [`Persistence::read_chunk`] fetches one committed payload with
//!   checksum verification.
//!
//! Mirroring is cost-free in virtual time: the emulated NVM device has
//! already charged write time/bandwidth/wear for every shadow copy, so
//! attaching a backend never perturbs simulation results.

use nvm_paging::ChunkId;
use serde::{Deserialize, Serialize};

/// Errors surfaced by persistence backends.
#[non_exhaustive]
#[derive(Debug)]
pub enum PersistError {
    /// Underlying media I/O failure.
    Io(std::io::Error),
    /// On-media structure is malformed (bad magic, impossible length,
    /// truncated region, ...).
    Corrupt(String),
    /// A committed payload failed checksum verification.
    Checksum {
        /// Chunk whose payload is damaged.
        chunk: u64,
        /// CRC-64 recorded at commit.
        expected: u64,
        /// CRC-64 of the bytes actually on media.
        actual: u64,
    },
    /// The requested chunk is not in the recovered/committed table.
    NoSuchChunk(u64),
    /// The container's data region cannot fit the payload.
    OutOfSpace {
        /// Bytes requested (header + payload).
        requested: usize,
    },
}

nvm_emu::error_enum! {
    PersistError, f {
        wrap Io(std::io::Error) => "io",
        leaf PersistError::Corrupt(what) => write!(f, "corrupt container: {what}"),
        leaf PersistError::Checksum { chunk, expected, actual } => write!(
            f,
            "store checksum mismatch on chunk {chunk}: stored {expected:#x}, read {actual:#x}"
        ),
        leaf PersistError::NoSuchChunk(id) => write!(f, "no committed chunk {id} in store"),
        leaf PersistError::OutOfSpace { requested } => {
            write!(f, "store data region full: {requested} bytes requested")
        },
    }
}

/// Cumulative backend counters (exact, deterministic).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Payload + header + record bytes written to media.
    pub bytes_written: u64,
    /// fsync (durability barrier) calls.
    pub fsyncs: u64,
    /// Commit records appended.
    pub commits: u64,
    /// Committed payloads read back (restart / lazy access).
    pub payload_reads: u64,
    /// Bytes of payload read back.
    pub payload_read_bytes: u64,
    /// Recovery scans performed.
    pub recoveries: u64,
    /// Torn/invalid trailing records detected (and discarded) during
    /// recovery scans.
    pub torn_writes_detected: u64,
}

impl std::ops::AddAssign for StoreStats {
    fn add_assign(&mut self, rhs: Self) {
        // Exhaustive destructuring: adding a field without updating the
        // merge is a compile error, not a silently dropped counter.
        let StoreStats {
            bytes_written,
            fsyncs,
            commits,
            payload_reads,
            payload_read_bytes,
            recoveries,
            torn_writes_detected,
        } = rhs;
        self.bytes_written += bytes_written;
        self.fsyncs += fsyncs;
        self.commits += commits;
        self.payload_reads += payload_reads;
        self.payload_read_bytes += payload_read_bytes;
        self.recoveries += recoveries;
        self.torn_writes_detected += torn_writes_detected;
    }
}

impl StoreStats {
    /// Sum a collection of per-backend stats.
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a StoreStats>) -> StoreStats {
        let mut out = StoreStats::default();
        for p in parts {
            out += *p;
        }
        out
    }
}

/// One chunk in a recovered commit table.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveredChunk {
    /// Chunk id.
    pub id: ChunkId,
    /// Variable name registered at allocation.
    pub name: String,
    /// Logical chunk length in bytes.
    pub len: usize,
    /// Bytes stored on media (equals `len` for materialized payloads,
    /// [`SyntheticPayload::ENCODED_LEN`] for size-only runs).
    pub payload_len: usize,
    /// CRC-64 of the stored payload.
    pub checksum: u64,
    /// Epoch at which this payload was committed.
    pub epoch: u64,
}

/// Result of a recovery scan.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveredState {
    /// Process id recorded in the container superblock.
    pub process_id: u64,
    /// Last durably committed epoch; `None` on a virgin container (no
    /// commit record survived).
    pub epoch: Option<u64>,
    /// Chunk table of that epoch, sorted by id. Empty when `epoch` is
    /// `None`.
    pub chunks: Vec<RecoveredChunk>,
    /// Torn/invalid trailing records discarded by this scan.
    pub torn_writes_detected: u64,
}

/// A durable checkpoint backend. Implementations must never overwrite
/// data referenced by the last durable commit record (shadow slots +
/// append-only commit log), so a crash at any media operation leaves
/// the previous checkpoint recoverable.
pub trait Persistence: Send {
    /// Stage `payload` as chunk `id`'s data for `epoch`. Written to
    /// the chunk's non-committed shadow slot; becomes the recovery
    /// version only after the next [`Persistence::commit`].
    fn put_chunk(
        &mut self,
        id: ChunkId,
        name: &str,
        len: usize,
        epoch: u64,
        payload: &[u8],
    ) -> Result<(), PersistError>;

    /// Remove a chunk from the staged table (durable at next commit).
    fn delete_chunk(&mut self, id: ChunkId);

    /// Durably commit everything staged: one atomic append + fsync.
    fn commit(&mut self, epoch: u64) -> Result<(), PersistError>;

    /// Scan media and return the last durable commit's chunk table.
    fn recover(&mut self) -> Result<RecoveredState, PersistError>;

    /// Read one committed payload back, verifying its checksum.
    fn read_chunk(&mut self, id: ChunkId) -> Result<Vec<u8>, PersistError>;

    /// Cumulative counters.
    fn stats(&self) -> StoreStats;
}

/// Payload stored for a chunk in size-only ([`Synthetic`]) runs: a
/// fixed-size descriptor standing in for the real bytes, so crash and
/// recovery tests can still verify bit-for-bit identity of what is on
/// media without materializing hundreds of megabytes.
///
/// [`Synthetic`]: nvm_heap::Materialization::Synthetic
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SyntheticPayload {
    /// Chunk id.
    pub id: u64,
    /// Epoch the descriptor was written for.
    pub epoch: u64,
    /// Logical chunk length the descriptor stands in for.
    pub len: u64,
}

impl SyntheticPayload {
    /// Encoded descriptor size in bytes.
    pub const ENCODED_LEN: usize = 32;

    const MAGIC: [u8; 8] = *b"NVMSYNTH";

    /// Serialize to the fixed 32-byte on-media form.
    pub fn encode(&self) -> [u8; Self::ENCODED_LEN] {
        let mut out = [0u8; Self::ENCODED_LEN];
        out[..8].copy_from_slice(&Self::MAGIC);
        out[8..16].copy_from_slice(&self.id.to_le_bytes());
        out[16..24].copy_from_slice(&self.epoch.to_le_bytes());
        out[24..32].copy_from_slice(&self.len.to_le_bytes());
        out
    }

    /// Parse an on-media descriptor.
    pub fn decode(bytes: &[u8]) -> Result<Self, PersistError> {
        if bytes.len() != Self::ENCODED_LEN || bytes[..8] != Self::MAGIC {
            return Err(PersistError::Corrupt(
                "synthetic payload descriptor malformed".to_string(),
            ));
        }
        let word = |i: usize| u64::from_le_bytes(bytes[i..i + 8].try_into().expect("8-byte slice"));
        Ok(SyntheticPayload {
            id: word(8),
            epoch: word(16),
            len: word(24),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_payload_round_trips() {
        let p = SyntheticPayload {
            id: 7,
            epoch: 3,
            len: 400 << 20,
        };
        let enc = p.encode();
        assert_eq!(enc.len(), SyntheticPayload::ENCODED_LEN);
        assert_eq!(SyntheticPayload::decode(&enc).unwrap(), p);
        // Corruption is rejected.
        let mut bad = enc;
        bad[0] ^= 0xFF;
        assert!(matches!(
            SyntheticPayload::decode(&bad),
            Err(PersistError::Corrupt(_))
        ));
        assert!(SyntheticPayload::decode(&enc[..16]).is_err());
    }

    #[test]
    fn store_stats_merge_is_exact() {
        let a = StoreStats {
            bytes_written: 10,
            fsyncs: 1,
            commits: 1,
            payload_reads: 2,
            payload_read_bytes: 64,
            recoveries: 1,
            torn_writes_detected: 0,
        };
        let b = StoreStats {
            bytes_written: 5,
            torn_writes_detected: 2,
            ..StoreStats::default()
        };
        let m = StoreStats::merged([&a, &b]);
        assert_eq!(m.bytes_written, 15);
        assert_eq!(m.payload_read_bytes, 64);
        assert_eq!(m.torn_writes_detected, 2);
    }

    #[test]
    fn persist_error_displays_and_chains() {
        let e = PersistError::from(std::io::Error::other("boom"));
        assert!(e.to_string().starts_with("io:"));
        assert!(std::error::Error::source(&e).is_some());
        let c = PersistError::Checksum {
            chunk: 3,
            expected: 1,
            actual: 2,
        };
        assert!(c.to_string().contains("chunk 3"));
    }
}
