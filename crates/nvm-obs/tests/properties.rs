//! Property tests for the blame invariants (ISSUE 8 satellite):
//!
//! * critical-path length never exceeds the wall;
//! * blame shares tile the critical path *exactly* (integer
//!   nanoseconds, zero rounding drift), whole-run and per-epoch.
//!
//! Traces are generated the way the cluster produces them: per-rank
//! timelines of compute/interference/comm that all join at shared
//! barriers, with the straggler waiting zero — so the generator
//! exercises the same consistency the simulator guarantees.

use nvm_obs::{analyze, blame, to_stable_json};
use nvm_trace::{TraceEvent, TraceEventKind};
use proptest::prelude::*;

fn ev(t_ns: u64, rank: u64, kind: TraceEventKind) -> TraceEvent {
    TraceEvent { t_ns, rank, kind }
}

/// Per-(rank, epoch) phase durations:
/// `(compute, busy, interference, comm, coordinated)`.
type EpochWork = (u64, u64, u64, u64, u64);

/// Build a consistent cluster-shaped trace: for each epoch, each rank
/// computes (with optional hidden pre-copy + interference + comm
/// stall), joins a barrier, runs a coordinated phase, and joins a
/// closing barrier.
fn synthesize(work: &[Vec<EpochWork>]) -> Vec<TraceEvent> {
    let ranks = work.len();
    let epochs = work[0].len();
    let mut clocks = vec![0u64; ranks];
    let mut buffers: Vec<Vec<TraceEvent>> = vec![Vec::new(); ranks];
    let mut barrier_id = 0u64;
    let mut barrier = |clocks: &mut [u64], buffers: &mut [Vec<TraceEvent>]| {
        barrier_id += 1;
        let release = clocks.iter().copied().max().unwrap();
        for (rank, clock) in clocks.iter_mut().enumerate() {
            let wait_ns = release - *clock;
            buffers[rank].push(ev(
                *clock,
                rank as u64,
                TraceEventKind::BarrierWait {
                    id: barrier_id,
                    wait_ns,
                },
            ));
            *clock = release;
        }
    };
    #[allow(clippy::needless_range_loop)]
    for epoch in 0..epochs {
        for rank in 0..ranks {
            let (compute, busy, interference, comm, _) = work[rank][epoch];
            let start = clocks[rank];
            if busy + interference > 0 {
                buffers[rank].push(ev(
                    start,
                    rank as u64,
                    TraceEventKind::PrecopyEnd {
                        epoch: epoch as u64,
                        busy_ns: busy,
                        interference_ns: interference,
                    },
                ));
            }
            clocks[rank] += compute + interference;
            if comm > 0 {
                buffers[rank].push(ev(
                    clocks[rank],
                    rank as u64,
                    TraceEventKind::CommWait {
                        op: "halo".into(),
                        wait_ns: comm,
                    },
                ));
                clocks[rank] += comm;
            }
        }
        barrier(&mut clocks, &mut buffers);
        for rank in 0..ranks {
            let (_, _, _, _, coordinated) = work[rank][epoch];
            let start = clocks[rank];
            buffers[rank].push(ev(
                start,
                rank as u64,
                TraceEventKind::CoordinatedBegin {
                    epoch: epoch as u64,
                    dirty: 1,
                },
            ));
            buffers[rank].push(ev(
                start + coordinated,
                rank as u64,
                TraceEventKind::CoordinatedEnd {
                    epoch: epoch as u64,
                    copied_bytes: 64,
                },
            ));
            clocks[rank] += coordinated;
        }
        barrier(&mut clocks, &mut buffers);
    }
    nvm_trace::merge_ranked(buffers)
}

const MAX_RANKS: usize = 3;
const MAX_EPOCHS: usize = 3;

/// Flat pool of phase-duration cells; `shape` trims it to
/// `ranks x epochs`. (The vendored proptest shim has no
/// `prop_flat_map`, so dimensions and cells are drawn independently.)
type Cell = (u64, u64, u64, (u64, u64));

fn cell_strategy() -> impl Strategy<Value = Vec<Cell>> {
    proptest::collection::vec(
        (
            0u64..10_000,
            0u64..2_000,
            0u64..1_000,
            (0u64..1_000, 0u64..3_000),
        ),
        MAX_RANKS * MAX_EPOCHS,
    )
}

fn shape(ranks: usize, epochs: usize, cells: &[Cell]) -> Vec<Vec<EpochWork>> {
    (0..ranks)
        .map(|r| {
            (0..epochs)
                .map(|e| {
                    let (compute, busy, interference, (comm, coordinated)) =
                        cells[r * MAX_EPOCHS + e];
                    (compute, busy, interference, comm, coordinated)
                })
                .collect()
        })
        .collect()
}

proptest! {
    #[test]
    fn critical_path_never_exceeds_wall(
        ranks in 1usize..MAX_RANKS + 1,
        epochs in 1usize..MAX_EPOCHS + 1,
        cells in cell_strategy(),
    ) {
        let events = synthesize(&shape(ranks, epochs, &cells));
        let report = blame(&events);
        prop_assert!(report.critical_path_ns <= report.wall_ns);
    }

    #[test]
    fn blame_shares_tile_the_critical_path_exactly(
        ranks in 1usize..MAX_RANKS + 1,
        epochs in 1usize..MAX_EPOCHS + 1,
        cells in cell_strategy(),
    ) {
        let events = synthesize(&shape(ranks, epochs, &cells));
        let report = blame(&events);
        prop_assert_eq!(report.totals.total(), report.critical_path_ns);
        let per_epoch: u64 = report.epochs.iter().map(|e| e.shares.total()).sum();
        prop_assert_eq!(per_epoch, report.critical_path_ns);
        // Fractions live in [0, 1].
        prop_assert!((0.0..=1.0).contains(&report.exposed_checkpoint_fraction));
        prop_assert!((0.0..=1.0).contains(&report.hidden_checkpoint_fraction));
        prop_assert!((0.0..=1.0).contains(&report.overlap_efficiency));
    }

    #[test]
    fn analysis_json_is_deterministic(
        ranks in 1usize..MAX_RANKS + 1,
        epochs in 1usize..MAX_EPOCHS + 1,
        cells in cell_strategy(),
    ) {
        let events = synthesize(&shape(ranks, epochs, &cells));
        let a = to_stable_json(&analyze(&events, 1_000));
        let b = to_stable_json(&analyze(&events, 1_000));
        prop_assert_eq!(a, b);
    }
}
