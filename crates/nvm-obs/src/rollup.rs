//! Virtual-time rollups: interval-bucketed time series derived from
//! the trace.
//!
//! A [`Rollup`] is a pure function of the event stream — it never
//! looks at host state — so two properties fall out for free:
//!
//! * **thread-count identity**: the merged cluster trace is
//!   bit-identical at any `--threads N`, hence so is the rollup;
//! * **merge associativity**: bucket sums commute, so building one
//!   rollup per rank (or per shard) and merging rank→shard→coordinator
//!   equals building a single rollup over the merged trace. Cluster
//!   runs use exactly that path.
//!
//! Series are named by the `series::*` constants; values are plain
//! `u64` sums per bucket (bytes or nanoseconds or counts — per-bucket
//! *rates* are `value / bucket_ns` and left to presentation). Wear
//! rate is tracked through `nvm_write_bytes` (media writes are what
//! age PCM; see the wear map in nvm-paging for the per-line view).

use nvm_trace::{TraceEvent, TraceEventKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Default bucket width: one virtual second.
pub const DEFAULT_BUCKET_NS: u64 = 1_000_000_000;

/// Stable series names.
pub mod series {
    /// Bytes written to NVM media per bucket (drains + coordinated
    /// copies + durable-store staging) — the write-bandwidth and wear
    /// proxy.
    pub const NVM_WRITE_BYTES: &str = "nvm_write_bytes";
    /// Write-protection faults per bucket — the dirty-page rate.
    pub const DIRTY_FAULTS: &str = "dirty_faults";
    /// Interconnect bytes per bucket (remote shipping + recovery
    /// pulls) — link utilization.
    pub const LINK_BYTES: &str = "link_bytes";
    /// Helper copy nanoseconds per bucket (hidden checkpoint work).
    pub const PRECOPY_BUSY_NS: &str = "precopy_busy_ns";
    /// Pre-copied chunks invalidated per bucket (wasted copies).
    pub const PRECOPY_WASTE: &str = "precopy_waste";
    /// Collective-stall nanoseconds per bucket.
    pub const COMM_WAIT_NS: &str = "comm_wait_ns";
    /// Barrier-stall nanoseconds per bucket.
    pub const BARRIER_WAIT_NS: &str = "barrier_wait_ns";
    /// Durable-store staged bytes per bucket (spill/store residency
    /// growth).
    pub const STORE_WRITE_BYTES: &str = "store_write_bytes";
    /// Key-value serving operations per bucket (only populated when
    /// the kv store traces individual ops).
    pub const KV_OPS: &str = "kv_ops";
    /// CPR checkpoint tokens published per bucket.
    pub const KV_TOKENS: &str = "kv_tokens";
    /// Record-log bytes covered by tokens published in the bucket —
    /// how much serving state each token makes recoverable.
    pub const KV_TOKEN_LOG_BYTES: &str = "kv_token_log_bytes";
}

/// Interval-bucketed time series over `SimTime`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Rollup {
    /// Bucket width in virtual nanoseconds.
    pub bucket_ns: u64,
    /// Series name -> per-bucket sums. Trailing buckets may be
    /// missing (treat absent as zero); series only appear once they
    /// see a nonzero value, keeping quiet runs compact.
    pub series: BTreeMap<String, Vec<u64>>,
}

impl Rollup {
    /// Empty rollup with the given bucket width (must be nonzero).
    pub fn new(bucket_ns: u64) -> Self {
        assert!(bucket_ns > 0, "rollup bucket width must be nonzero");
        Rollup {
            bucket_ns,
            series: BTreeMap::new(),
        }
    }

    /// Add `value` to `name`'s bucket containing `t_ns`. Zero values
    /// are dropped so series existence is value-driven, not
    /// event-driven.
    pub fn add(&mut self, name: &str, t_ns: u64, value: u64) {
        if value == 0 {
            return;
        }
        let bucket = (t_ns / self.bucket_ns) as usize;
        let row = self.series.entry(name.to_string()).or_default();
        if row.len() <= bucket {
            row.resize(bucket + 1, 0);
        }
        row[bucket] += value;
    }

    /// Fold one event into the rollup.
    pub fn record(&mut self, event: &TraceEvent) {
        let t = event.t_ns;
        match &event.kind {
            TraceEventKind::ProtectionFault { .. } => self.add(series::DIRTY_FAULTS, t, 1),
            TraceEventKind::PrecopyDrain { bytes, .. } => {
                self.add(series::NVM_WRITE_BYTES, t, *bytes)
            }
            TraceEventKind::PrecopyEnd { busy_ns, .. } => {
                self.add(series::PRECOPY_BUSY_NS, t, *busy_ns)
            }
            TraceEventKind::PrecopyWaste { .. } => self.add(series::PRECOPY_WASTE, t, 1),
            TraceEventKind::CoordinatedEnd { copied_bytes, .. } => {
                self.add(series::NVM_WRITE_BYTES, t, *copied_bytes)
            }
            TraceEventKind::RemoteTransfer { bytes, .. } => self.add(series::LINK_BYTES, t, *bytes),
            TraceEventKind::BarrierWait { wait_ns, .. } => {
                self.add(series::BARRIER_WAIT_NS, t, *wait_ns)
            }
            TraceEventKind::CommWait { wait_ns, .. } => self.add(series::COMM_WAIT_NS, t, *wait_ns),
            TraceEventKind::StoreWrite { bytes, .. } => {
                self.add(series::NVM_WRITE_BYTES, t, *bytes);
                self.add(series::STORE_WRITE_BYTES, t, *bytes);
            }
            TraceEventKind::RecoveryEnd { bytes, .. } => self.add(series::LINK_BYTES, t, *bytes),
            TraceEventKind::KvOp { .. } => self.add(series::KV_OPS, t, 1),
            TraceEventKind::KvCheckpointEnd { log_bytes, .. } => {
                self.add(series::KV_TOKENS, t, 1);
                self.add(series::KV_TOKEN_LOG_BYTES, t, *log_bytes);
            }
            _ => {}
        }
    }

    /// Build a rollup over a whole stream.
    pub fn from_events(events: &[TraceEvent], bucket_ns: u64) -> Self {
        let mut rollup = Rollup::new(bucket_ns);
        for event in events {
            rollup.record(event);
        }
        rollup
    }

    /// Element-wise merge (rank→shard→coordinator reduction step).
    /// Bucket widths must match — merging differently-bucketed
    /// rollups would silently misalign time.
    pub fn merge_from(&mut self, other: &Rollup) {
        assert_eq!(
            self.bucket_ns, other.bucket_ns,
            "cannot merge rollups with different bucket widths"
        );
        for (name, row) in &other.series {
            let mine = self.series.entry(name.clone()).or_default();
            if mine.len() < row.len() {
                mine.resize(row.len(), 0);
            }
            for (slot, value) in mine.iter_mut().zip(row) {
                *slot += value;
            }
        }
    }

    /// Total across all buckets of one series (0 if absent).
    pub fn total(&self, name: &str) -> u64 {
        self.series.get(name).map_or(0, |row| row.iter().sum())
    }

    /// Number of buckets in the longest series.
    pub fn buckets(&self) -> usize {
        self.series.values().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_ns: u64, rank: u64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent { t_ns, rank, kind }
    }

    fn sample() -> Vec<TraceEvent> {
        vec![
            ev(0, 0, TraceEventKind::ProtectionFault { chunk: 1 }),
            ev(
                500,
                0,
                TraceEventKind::PrecopyDrain {
                    chunk: 1,
                    bytes: 64,
                    cost_ns: 9,
                },
            ),
            ev(
                1_500,
                1,
                TraceEventKind::RemoteTransfer {
                    bytes: 128,
                    incremental: true,
                },
            ),
            ev(
                2_000,
                1,
                TraceEventKind::StoreWrite {
                    chunk: 1,
                    bytes: 32,
                },
            ),
        ]
    }

    #[test]
    fn buckets_by_virtual_time() {
        let rollup = Rollup::from_events(&sample(), 1_000);
        assert_eq!(
            rollup.series[series::NVM_WRITE_BYTES],
            vec![64, 0, 32],
            "drain lands in bucket 0, store staging in bucket 2"
        );
        assert_eq!(rollup.series[series::LINK_BYTES], vec![0, 128]);
        assert_eq!(rollup.series[series::DIRTY_FAULTS], vec![1]);
        assert_eq!(rollup.total(series::NVM_WRITE_BYTES), 96);
        assert_eq!(rollup.buckets(), 3);
    }

    #[test]
    fn merge_of_per_rank_rollups_equals_whole_stream_rollup() {
        let events = sample();
        let whole = Rollup::from_events(&events, 1_000);
        let rank0: Vec<TraceEvent> = events.iter().filter(|e| e.rank == 0).cloned().collect();
        let rank1: Vec<TraceEvent> = events.iter().filter(|e| e.rank == 1).cloned().collect();
        let mut merged = Rollup::from_events(&rank0, 1_000);
        merged.merge_from(&Rollup::from_events(&rank1, 1_000));
        assert_eq!(merged, whole);
        // Merge order must not matter either.
        let mut reversed = Rollup::from_events(&rank1, 1_000);
        reversed.merge_from(&Rollup::from_events(&rank0, 1_000));
        assert_eq!(reversed, whole);
    }

    #[test]
    fn kv_events_land_in_their_series() {
        let events = vec![
            ev(
                100,
                0,
                TraceEventKind::KvOp {
                    op: "upsert".to_string(),
                    session: 0,
                    serial: 1,
                    hit: true,
                },
            ),
            ev(
                1_200,
                0,
                TraceEventKind::KvCheckpointEnd {
                    token: 1,
                    log_bytes: 4096,
                    sessions: 1,
                },
            ),
        ];
        let rollup = Rollup::from_events(&events, 1_000);
        assert_eq!(rollup.series[series::KV_OPS], vec![1]);
        assert_eq!(rollup.series[series::KV_TOKENS], vec![0, 1]);
        assert_eq!(rollup.series[series::KV_TOKEN_LOG_BYTES], vec![0, 4096]);
    }

    #[test]
    #[should_panic(expected = "different bucket widths")]
    fn merging_mismatched_buckets_panics() {
        let mut a = Rollup::new(1_000);
        a.merge_from(&Rollup::new(2_000));
    }

    #[test]
    fn zero_values_do_not_materialize_series() {
        let events = vec![ev(0, 0, TraceEventKind::BarrierWait { id: 1, wait_ns: 0 })];
        let rollup = Rollup::from_events(&events, 1_000);
        assert!(rollup.series.is_empty());
    }
}
