//! Critical-path extraction and blame decomposition.
//!
//! ## Model
//!
//! A cluster run is a chain of *barrier segments*. Every
//! [`TraceEventKind::BarrierWait`] carries the barrier's sequence id
//! and the rank's stall time; the barrier's *release instant* is the
//! max over ranks of `arrival + wait`, and the run's critical path is
//! the chain of segments `[previous release, release]`. Within a
//! segment exactly the ranks that arrived last (stalled zero
//! nanoseconds) were on the critical path; we pick the lowest such
//! rank as the segment's *critical rank* (a deterministic tie-break —
//! any zero-wait rank's timeline has the same length by definition).
//!
//! The DAG edges are therefore: program order within a rank,
//! barrier-join edges between all ranks and the release instant, and
//! recovery intervals (which block the whole cluster and are charged
//! to their segment regardless of emitting rank). Commit/fetch
//! ordering is subsumed by the barriers that bracket the coordinated
//! phase, so no separate edge type is needed for them.
//!
//! ## Blame
//!
//! Each segment's length is decomposed by walking the critical rank's
//! spans that *start* inside the segment, clamping categories in a
//! fixed order (recovery, coordinated, interference, comm, barrier)
//! against the time still unaccounted, and assigning the remainder to
//! compute. Clamping makes the shares sum to the segment length
//! *exactly* in integer nanoseconds, so whole-run totals tile the
//! critical path with zero rounding drift — the invariant the
//! property tests pin.
//!
//! Traces without barriers (single-engine runs) degrade to one
//! segment covering the whole wall whose critical rank is the rank
//! with the latest event.

use crate::span::{build_spans, wall_ns, Span, SpanKind};
use nvm_trace::{TraceEvent, TraceEventKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Critical-path nanoseconds by category. Shares always sum exactly
/// to the length of the path they decompose.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlameShares {
    /// Application compute (the remainder after all stalls).
    pub compute_ns: u64,
    /// Blocking coordinated checkpoint phase.
    pub coordinated_ns: u64,
    /// Compute slowdown from the pre-copy helper sharing the memory
    /// system — checkpoint cost exposed despite overlap.
    pub interference_ns: u64,
    /// Communication-collective stalls.
    pub comm_ns: u64,
    /// Barrier stalls (zero on a true critical path; nonzero only in
    /// degenerate tail segments).
    pub barrier_ns: u64,
    /// Hard-failure recovery.
    pub recovery_ns: u64,
}

impl BlameShares {
    /// Sum of all categories.
    pub fn total(&self) -> u64 {
        self.compute_ns
            + self.coordinated_ns
            + self.interference_ns
            + self.comm_ns
            + self.barrier_ns
            + self.recovery_ns
    }

    fn add(&mut self, other: &BlameShares) {
        self.compute_ns += other.compute_ns;
        self.coordinated_ns += other.coordinated_ns;
        self.interference_ns += other.interference_ns;
        self.comm_ns += other.comm_ns;
        self.barrier_ns += other.barrier_ns;
        self.recovery_ns += other.recovery_ns;
    }
}

/// Blame for one checkpoint epoch (all segments up to and including
/// the one that committed the epoch).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EpochBlame {
    /// Epoch index.
    pub epoch: u64,
    /// Critical-path nanoseconds spent in this epoch.
    pub wall_ns: u64,
    /// Decomposition of `wall_ns`.
    pub shares: BlameShares,
    /// Helper copy nanoseconds overlapped under compute, summed over
    /// all ranks (hidden checkpoint work).
    pub hidden_precopy_ns: u64,
    /// Subset of the hidden work invalidated by re-dirtied chunks.
    pub wasted_precopy_ns: u64,
}

/// Whole-run critical-path blame report.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct BlameReport {
    /// Ranks observed in the trace.
    pub ranks: u64,
    /// Barrier joins observed in the trace.
    pub barriers: u64,
    /// End of the run on the virtual clock.
    pub wall_ns: u64,
    /// Length of the extracted critical path (== `wall_ns` when the
    /// trace has a final barrier, never greater).
    pub critical_path_ns: u64,
    /// Critical-path decomposition, whole run.
    pub totals: BlameShares,
    /// Checkpoint time on the critical path: coordinated + helper
    /// interference.
    pub exposed_checkpoint_ns: u64,
    /// Helper copy nanoseconds hidden under compute, all ranks.
    pub hidden_precopy_ns: u64,
    /// Hidden nanoseconds invalidated by re-dirtied chunks ("wasted
    /// copy" — the paper's argument against constant pre-copy).
    pub wasted_precopy_ns: u64,
    /// `exposed_checkpoint_ns / critical_path_ns`.
    pub exposed_checkpoint_fraction: f64,
    /// Hidden helper work as a fraction of total rank-time
    /// (`hidden / (ranks * wall)`).
    pub hidden_checkpoint_fraction: f64,
    /// Fraction of all checkpoint copy work (hidden + exposed, summed
    /// over ranks) that ran hidden *and* survived to commit.
    pub overlap_efficiency: f64,
    /// `totals.comm_ns / critical_path_ns`.
    pub comm_stall_share: f64,
    /// `totals.recovery_ns / critical_path_ns`.
    pub recovery_share: f64,
    /// Per-epoch decomposition.
    pub epochs: Vec<EpochBlame>,
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// One extracted critical-path segment.
struct Segment {
    start_ns: u64,
    end_ns: u64,
    critical_rank: u64,
}

/// Extract the barrier-segment chain. Returns segments tiling
/// `[0, critical_path_ns]` in order.
fn segments(events: &[TraceEvent], wall: u64) -> Vec<Segment> {
    // Barrier id -> (release instant, lowest zero-wait rank).
    let mut barriers: BTreeMap<u64, (u64, Option<u64>)> = BTreeMap::new();
    // Rank -> latest event timestamp (fallback critical rank).
    let mut last_seen: BTreeMap<u64, u64> = BTreeMap::new();
    for event in events {
        let seen = last_seen.entry(event.rank).or_insert(0);
        *seen = (*seen).max(event.t_ns);
        if let TraceEventKind::BarrierWait { id, wait_ns } = event.kind {
            let entry = barriers.entry(id).or_insert((0, None));
            entry.0 = entry.0.max(event.t_ns + wait_ns);
            if wait_ns == 0 {
                entry.1 = Some(entry.1.map_or(event.rank, |r: u64| r.min(event.rank)));
            }
        }
    }
    // The rank whose timeline ends last: critical for barrierless
    // traces and for any tail past the final barrier.
    let busiest = last_seen
        .iter()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
        .map(|(rank, _)| *rank)
        .unwrap_or(0);
    let mut releases: Vec<(u64, u64)> = barriers
        .values()
        .map(|(release, rank)| (*release, rank.unwrap_or(busiest)))
        .collect();
    releases.sort_unstable();
    let mut out = Vec::new();
    let mut start = 0;
    for (release, rank) in releases {
        // Barriers released at the same instant collapse into the
        // later one; empty segments carry no blame.
        if release > start {
            out.push(Segment {
                start_ns: start,
                end_ns: release,
                critical_rank: rank,
            });
            start = release;
        }
    }
    if wall > start {
        out.push(Segment {
            start_ns: start,
            end_ns: wall,
            critical_rank: busiest,
        });
    }
    out
}

/// Charge `amount` to `*bucket`, clamped to the segment time still
/// unaccounted for.
fn charge(bucket: &mut u64, amount: u64, remaining: &mut u64) {
    let take = amount.min(*remaining);
    *bucket += take;
    *remaining -= take;
}

/// Build the whole-run blame report from a trace.
pub fn blame(events: &[TraceEvent]) -> BlameReport {
    let wall = wall_ns(events);
    let spans = build_spans(events);
    let segs = segments(events, wall);
    let ranks = {
        let mut set: Vec<u64> = events.iter().map(|e| e.rank).collect();
        set.sort_unstable();
        set.dedup();
        set.len().max(1) as u64
    };
    let barriers = events
        .iter()
        .filter_map(|e| match e.kind {
            TraceEventKind::BarrierWait { id, .. } => Some(id),
            _ => None,
        })
        .collect::<std::collections::BTreeSet<_>>()
        .len() as u64;

    // Wasted pre-copy: a PrecopyWaste event invalidates the chunk's
    // most recent drain; charge that drain's cost at the waste instant.
    let mut last_drain: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    let mut wastes: Vec<(u64, u64)> = Vec::new(); // (t_ns, cost_ns)
    for event in events {
        match event.kind {
            TraceEventKind::PrecopyDrain { chunk, cost_ns, .. } => {
                last_drain.insert((event.rank, chunk), cost_ns);
            }
            TraceEventKind::PrecopyWaste { chunk } => {
                let cost = last_drain.remove(&(event.rank, chunk)).unwrap_or(0);
                wastes.push((event.t_ns, cost));
            }
            _ => {}
        }
    }

    // Spans sorted by start for the per-segment sweep (stream order
    // sorts by *emission* time; Coordinated/Recovery spans are emitted
    // at their end).
    let mut by_start: Vec<&Span> = spans.iter().collect();
    by_start.sort_by_key(|s| s.start_ns);

    let mut totals = BlameShares::default();
    let mut epochs: BTreeMap<u64, EpochBlame> = BTreeMap::new();
    let mut epoch_idx = 0u64;
    let mut cursor = 0usize;
    let mut waste_cursor = 0usize;
    let last_seg = segs.len().saturating_sub(1);
    for (i, seg) in segs.iter().enumerate() {
        let seg_len = seg.end_ns - seg.start_ns;
        let mut remaining = seg_len;
        let mut shares = BlameShares::default();
        let mut hidden = 0u64;
        let mut committed = false;
        // A span belongs to the segment containing its start; the
        // final segment also takes spans starting exactly at the wall.
        let in_seg = |start: u64| start < seg.end_ns || (i == last_seg && start == seg.end_ns);
        let begin = cursor;
        while cursor < by_start.len() && in_seg(by_start[cursor].start_ns) {
            cursor += 1;
        }
        // Pass 1: whole-cluster charges (recovery blocks every rank).
        for span in &by_start[begin..cursor] {
            match span.kind {
                SpanKind::Recovery => charge(&mut shares.recovery_ns, span.dur_ns, &mut remaining),
                SpanKind::PrecopyBusy => hidden += span.dur_ns,
                SpanKind::Coordinated => committed = true,
                _ => {}
            }
        }
        // Pass 2..: the critical rank's own timeline, one category at
        // a time so the clamp order is deterministic.
        let critical = |kind: SpanKind| {
            by_start[begin..cursor]
                .iter()
                .filter(|s| s.rank == seg.critical_rank && s.kind == kind)
                .map(|s| s.dur_ns)
                .sum::<u64>()
        };
        charge(
            &mut shares.coordinated_ns,
            critical(SpanKind::Coordinated),
            &mut remaining,
        );
        charge(
            &mut shares.interference_ns,
            critical(SpanKind::Interference),
            &mut remaining,
        );
        charge(
            &mut shares.comm_ns,
            critical(SpanKind::CommWait),
            &mut remaining,
        );
        charge(
            &mut shares.barrier_ns,
            critical(SpanKind::BarrierWait),
            &mut remaining,
        );
        shares.compute_ns = remaining;

        let mut wasted = 0u64;
        while waste_cursor < wastes.len() && in_seg(wastes[waste_cursor].0) {
            wasted += wastes[waste_cursor].1;
            waste_cursor += 1;
        }

        totals.add(&shares);
        let row = epochs.entry(epoch_idx).or_insert_with(|| EpochBlame {
            epoch: epoch_idx,
            ..EpochBlame::default()
        });
        row.wall_ns += seg_len;
        row.shares.add(&shares);
        row.hidden_precopy_ns += hidden;
        row.wasted_precopy_ns += wasted;
        if committed {
            epoch_idx += 1;
        }
    }

    let critical_path_ns = segs.last().map_or(0, |s| s.end_ns);
    let hidden_precopy_ns: u64 = epochs.values().map(|e| e.hidden_precopy_ns).sum();
    let wasted_precopy_ns: u64 = epochs.values().map(|e| e.wasted_precopy_ns).sum();
    let exposed_checkpoint_ns = totals.coordinated_ns + totals.interference_ns;
    // Overlap efficiency compares like with like: helper nanoseconds
    // summed over every rank, hidden vs exposed.
    let all_rank_exposed: u64 = spans
        .iter()
        .filter(|s| matches!(s.kind, SpanKind::Coordinated | SpanKind::Interference))
        .map(|s| s.dur_ns)
        .sum();
    let useful_hidden = hidden_precopy_ns.saturating_sub(wasted_precopy_ns);

    BlameReport {
        ranks,
        barriers,
        wall_ns: wall,
        critical_path_ns,
        exposed_checkpoint_fraction: ratio(exposed_checkpoint_ns, critical_path_ns),
        hidden_checkpoint_fraction: ratio(hidden_precopy_ns, ranks * wall),
        overlap_efficiency: ratio(useful_hidden, hidden_precopy_ns + all_rank_exposed),
        comm_stall_share: ratio(totals.comm_ns, critical_path_ns),
        recovery_share: ratio(totals.recovery_ns, critical_path_ns),
        totals,
        exposed_checkpoint_ns,
        hidden_precopy_ns,
        wasted_precopy_ns,
        epochs: epochs.into_values().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_ns: u64, rank: u64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent { t_ns, rank, kind }
    }

    /// Two ranks, one epoch: rank 1 computes longer (arrives at the
    /// barrier last, waits 0), then a bracketed coordinated phase.
    fn two_rank_epoch() -> Vec<TraceEvent> {
        vec![
            // Rank 0 arrives at t=60 and waits 40; rank 1 arrives at
            // t=100 and releases the barrier.
            ev(60, 0, TraceEventKind::BarrierWait { id: 1, wait_ns: 40 }),
            ev(
                0,
                1,
                TraceEventKind::PrecopyEnd {
                    epoch: 0,
                    busy_ns: 30,
                    interference_ns: 10,
                },
            ),
            ev(100, 1, TraceEventKind::BarrierWait { id: 1, wait_ns: 0 }),
            // Coordinated phase 100..125 on both ranks, then the
            // closing barrier at 125.
            ev(
                100,
                0,
                TraceEventKind::CoordinatedBegin { epoch: 0, dirty: 1 },
            ),
            ev(
                115,
                0,
                TraceEventKind::CoordinatedEnd {
                    epoch: 0,
                    copied_bytes: 64,
                },
            ),
            ev(
                100,
                1,
                TraceEventKind::CoordinatedBegin { epoch: 0, dirty: 1 },
            ),
            ev(
                125,
                1,
                TraceEventKind::CoordinatedEnd {
                    epoch: 0,
                    copied_bytes: 64,
                },
            ),
            ev(115, 0, TraceEventKind::BarrierWait { id: 2, wait_ns: 10 }),
            ev(125, 1, TraceEventKind::BarrierWait { id: 2, wait_ns: 0 }),
        ]
    }

    #[test]
    fn critical_rank_is_the_zero_wait_straggler() {
        let report = blame(&two_rank_epoch());
        assert_eq!(report.ranks, 2);
        assert_eq!(report.barriers, 2);
        assert_eq!(report.wall_ns, 125);
        assert_eq!(report.critical_path_ns, 125);
        // Segment 1 (0..100): rank 1 critical — 10 ns interference,
        // 90 ns compute. Segment 2 (100..125): rank 1's coordinated
        // phase, 25 ns.
        assert_eq!(report.totals.interference_ns, 10);
        assert_eq!(report.totals.coordinated_ns, 25);
        assert_eq!(report.totals.compute_ns, 90);
        assert_eq!(report.totals.barrier_ns, 0);
        assert_eq!(report.totals.total(), 125);
        assert_eq!(report.exposed_checkpoint_ns, 35);
        assert_eq!(report.hidden_precopy_ns, 30);
        // One committed epoch; both segments fold into it.
        assert_eq!(report.epochs.len(), 1);
        assert_eq!(report.epochs[0].wall_ns, 125);
        assert_eq!(report.epochs[0].shares.total(), 125);
    }

    #[test]
    fn shares_tile_the_critical_path_exactly() {
        let report = blame(&two_rank_epoch());
        assert_eq!(report.totals.total(), report.critical_path_ns);
        let per_epoch: u64 = report.epochs.iter().map(|e| e.shares.total()).sum();
        assert_eq!(per_epoch, report.critical_path_ns);
    }

    #[test]
    fn waste_invalidates_the_last_drain_of_the_chunk() {
        let events = vec![
            ev(
                0,
                0,
                TraceEventKind::PrecopyDrain {
                    chunk: 7,
                    bytes: 64,
                    cost_ns: 12,
                },
            ),
            ev(5, 0, TraceEventKind::PrecopyWaste { chunk: 7 }),
            // A second waste of the same chunk with no fresh drain
            // charges nothing.
            ev(6, 0, TraceEventKind::PrecopyWaste { chunk: 7 }),
        ];
        let report = blame(&events);
        assert_eq!(report.wasted_precopy_ns, 12);
    }

    #[test]
    fn barrierless_trace_is_one_segment_owned_by_latest_rank() {
        let events = vec![
            ev(
                0,
                0,
                TraceEventKind::CoordinatedBegin { epoch: 0, dirty: 0 },
            ),
            ev(
                40,
                0,
                TraceEventKind::CoordinatedEnd {
                    epoch: 0,
                    copied_bytes: 0,
                },
            ),
            ev(90, 1, TraceEventKind::ProtectionFault { chunk: 1 }),
        ];
        let report = blame(&events);
        assert_eq!(report.barriers, 0);
        assert_eq!(report.critical_path_ns, 90);
        // Rank 1 has the latest event, so rank 0's coordinated span is
        // not on the critical path; everything is compute.
        assert_eq!(report.totals.compute_ns, 90);
        assert_eq!(report.totals.coordinated_ns, 0);
    }

    #[test]
    fn empty_trace_yields_a_zero_report() {
        let report = blame(&[]);
        assert_eq!(report.critical_path_ns, 0);
        assert_eq!(report.totals.total(), 0);
        assert!(report.epochs.is_empty());
        assert_eq!(report.exposed_checkpoint_fraction, 0.0);
    }

    #[test]
    fn recovery_blocks_the_segment_regardless_of_emitting_rank() {
        let mut events = two_rank_epoch();
        // A 20 ns recovery emitted by rank 0 inside segment 1; rank 1
        // is the critical rank but the cluster still stalled.
        events.push(ev(
            20,
            0,
            TraceEventKind::RecoveryStart {
                node: 0,
                source: "local-store".into(),
            },
        ));
        events.push(ev(
            40,
            0,
            TraceEventKind::RecoveryEnd {
                node: 0,
                bytes: 64,
                verified: 1,
            },
        ));
        let report = blame(&events);
        assert_eq!(report.totals.recovery_ns, 20);
        assert_eq!(report.totals.compute_ns, 70);
        assert_eq!(report.totals.total(), report.critical_path_ns);
        assert!(report.recovery_share > 0.0);
    }
}
