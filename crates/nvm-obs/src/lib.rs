//! # nvm-obs — trace analysis for the NVM checkpoint simulator
//!
//! Turns the deterministic [`nvm_trace`] event stream into answers:
//! how much checkpoint time was *exposed* on the critical path versus
//! *hidden* under compute, where the critical path spends its time,
//! and how utilization evolves over virtual time.
//!
//! Three layers (see DESIGN.md §15):
//!
//! * [`span`] — reconstruct per-rank duration spans from the flat
//!   event stream (begin/end pairing + carried durations);
//! * [`blame`] — barrier-segment critical-path extraction and an
//!   exact-sum blame decomposition ([`BlameReport`]); [`rollup`] —
//!   interval-bucketed time series ([`Rollup`]), mergeable
//!   rank→shard→coordinator;
//! * exporters — folded-stack flamegraphs ([`to_folded`]), the
//!   stable-JSON [`AnalysisReport`] consumed by `run_all --analyze`,
//!   and the bounded [`FlightDump`] ring attached to fatal errors.
//!
//! Everything here is a pure function of the event stream, so every
//! output is bit-identical at any `--threads N` and identical whether
//! computed live or offline from a recorded JSONL trace.

mod blame;
mod flame;
mod flight;
mod rollup;
mod span;

pub use blame::{blame, BlameReport, BlameShares, EpochBlame};
pub use flame::to_folded;
pub use flight::FlightDump;
pub use rollup::{series, Rollup, DEFAULT_BUCKET_NS};
pub use span::{build_spans, wall_ns, Span, SpanKind};

use nvm_trace::TraceEvent;
use serde::{Deserialize, Serialize};

/// The full analyzer output: blame + rollups, plus enough context to
/// interpret them. Serialized with [`to_stable_json`]; byte-identical
/// across thread counts and live vs offline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Trace schema the analyzer was built against.
    pub schema_version: u32,
    /// Events analyzed.
    pub events: u64,
    /// Rollup bucket width used.
    pub bucket_ns: u64,
    /// Critical-path blame decomposition.
    pub blame: BlameReport,
    /// Virtual-time rollups.
    pub rollup: Rollup,
}

/// Analyze a trace: blame + rollup in one pass over the stream.
pub fn analyze(events: &[TraceEvent], bucket_ns: u64) -> AnalysisReport {
    AnalysisReport {
        schema_version: nvm_trace::SCHEMA_VERSION,
        events: events.len() as u64,
        bucket_ns,
        blame: blame(events),
        rollup: Rollup::from_events(events, bucket_ns),
    }
}

/// Stable pretty-printed JSON (trailing newline, insertion-ordered
/// keys) — safe to byte-diff in tests and CI.
pub fn to_stable_json(report: &AnalysisReport) -> String {
    let mut out = serde_json::to_string_pretty(report).expect("report serializes");
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_trace::TraceEventKind;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                t_ns: 0,
                rank: 0,
                kind: TraceEventKind::PrecopyEnd {
                    epoch: 0,
                    busy_ns: 10,
                    interference_ns: 2,
                },
            },
            TraceEvent {
                t_ns: 50,
                rank: 0,
                kind: TraceEventKind::CoordinatedBegin { epoch: 0, dirty: 1 },
            },
            TraceEvent {
                t_ns: 70,
                rank: 0,
                kind: TraceEventKind::CoordinatedEnd {
                    epoch: 0,
                    copied_bytes: 64,
                },
            },
        ]
    }

    #[test]
    fn report_round_trips_through_stable_json() {
        let report = analyze(&sample(), 1_000);
        let json = to_stable_json(&report);
        assert!(json.ends_with('\n'));
        let back: AnalysisReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn analysis_is_a_pure_function_of_the_stream() {
        let events = sample();
        assert_eq!(
            to_stable_json(&analyze(&events, 1_000)),
            to_stable_json(&analyze(&events, 1_000))
        );
    }

    #[test]
    fn report_carries_schema_and_event_count() {
        let report = analyze(&sample(), 1_000);
        assert_eq!(report.schema_version, nvm_trace::SCHEMA_VERSION);
        assert_eq!(report.events, 3);
        assert_eq!(report.blame.exposed_checkpoint_ns, 22);
    }
}
