//! Bounded flight recorder: the last N events per rank, captured at
//! the moment a run dies.
//!
//! Long cluster runs cannot afford to keep (or ship) full traces just
//! in case something fails; the flight recorder keeps a cheap bounded
//! tail per rank and only materializes it into the error report when
//! a run actually dies (`SimError::Unrecoverable`, or a recovery
//! ladder falling through to virgin state). The dump is an ordinary
//! merged event stream, so every analysis in this crate — and the
//! JSONL/Chrome exporters in nvm-trace — work on it unchanged.

use nvm_trace::{merge_ranked, TraceEvent};
use serde::{Deserialize, Serialize};

/// The materialized tail of a dying run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlightDump {
    /// Why the dump was taken (e.g. `unrecoverable node 3`,
    /// `recovery fell through to virgin`).
    pub reason: String,
    /// Per-rank tail bound the recorder ran with.
    pub per_rank: usize,
    /// Last `<= per_rank` events of every rank, merged in
    /// `(t_ns, rank)` order like any cluster trace.
    pub events: Vec<TraceEvent>,
}

impl FlightDump {
    /// Capture the tail of each rank's buffer and merge.
    pub fn capture(
        reason: impl Into<String>,
        per_rank: usize,
        buffers: Vec<Vec<TraceEvent>>,
    ) -> Self {
        let tails = buffers
            .into_iter()
            .map(|mut events| {
                let excess = events.len().saturating_sub(per_rank);
                if excess > 0 {
                    events.drain(..excess);
                }
                events
            })
            .collect();
        FlightDump {
            reason: reason.into(),
            per_rank,
            events: merge_ranked(tails),
        }
    }

    /// Human-readable block for error reports: a header line plus one
    /// line per event.
    pub fn render(&self) -> String {
        let mut out = format!(
            "flight recorder ({}): last {} event(s) per rank, {} total\n",
            self.reason,
            self.per_rank,
            self.events.len()
        );
        for event in &self.events {
            out.push_str(&format!(
                "  t={}ns rank={} {:?}\n",
                event.t_ns, event.rank, event.kind
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_trace::TraceEventKind;

    fn ev(t_ns: u64, rank: u64, chunk: u64) -> TraceEvent {
        TraceEvent {
            t_ns,
            rank,
            kind: TraceEventKind::ProtectionFault { chunk },
        }
    }

    #[test]
    fn keeps_only_the_tail_and_merges_in_time_rank_order() {
        let rank0 = vec![ev(0, 0, 1), ev(10, 0, 2), ev(20, 0, 3)];
        let rank1 = vec![ev(5, 1, 4), ev(15, 1, 5)];
        let dump = FlightDump::capture("test", 2, vec![rank0, rank1]);
        let stamps: Vec<(u64, u64)> = dump.events.iter().map(|e| (e.t_ns, e.rank)).collect();
        // Rank 0 lost its first event (bound 2); merge is (t, rank).
        assert_eq!(stamps, vec![(5, 1), (10, 0), (15, 1), (20, 0)]);
        assert_eq!(dump.per_rank, 2);
    }

    #[test]
    fn render_carries_reason_and_every_event() {
        let dump = FlightDump::capture("unrecoverable node 3", 8, vec![vec![ev(7, 0, 9)]]);
        let text = dump.render();
        assert!(text.starts_with("flight recorder (unrecoverable node 3)"));
        assert!(text.contains("t=7ns rank=0"));
        assert_eq!(text.lines().count(), 2);
    }
}
