//! Span reconstruction: fold the flat [`TraceEvent`] stream back into
//! per-rank, per-epoch duration spans.
//!
//! The trace records *points* (a drain finished, a barrier was
//! reached); analysis wants *intervals* (this rank spent 4 ms stalled
//! at barrier 17). This module pairs the begin/end event kinds and
//! carries the single-event durations (`wait_ns`, `busy_ns`,
//! `cost_ns`) into explicit [`Span`]s so the blame and flamegraph
//! layers never have to know event pairing rules.
//!
//! Epoch attribution: events that carry an epoch keep it; everything
//! else inherits the rank's running epoch counter (the number of
//! `CoordinatedEnd` events the rank has emitted so far), which matches
//! the engine's own epoch numbering.

use nvm_trace::{TraceEvent, TraceEventKind};
use std::collections::BTreeMap;

/// What a reconstructed span spent its time on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// Background helper copy work overlapped under compute — the
    /// *hidden* checkpoint time of the epoch.
    PrecopyBusy,
    /// Compute slowdown charged because the helper shared the memory
    /// system — checkpoint cost exposed *despite* the overlap.
    Interference,
    /// One background drain of a single chunk (a sub-interval of
    /// [`SpanKind::PrecopyBusy`], kept for waste attribution).
    Drain,
    /// The blocking coordinated checkpoint phase.
    Coordinated,
    /// Stall at a cluster barrier waiting for stragglers.
    BarrierWait,
    /// Stall in a communication collective.
    CommWait,
    /// Hard-failure recovery: ladder walk, transfers, verification.
    Recovery,
}

impl SpanKind {
    /// Stable lowercase label (flamegraph frames, report keys).
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::PrecopyBusy => "precopy_hidden",
            SpanKind::Interference => "interference",
            SpanKind::Drain => "drain",
            SpanKind::Coordinated => "coordinated",
            SpanKind::BarrierWait => "barrier",
            SpanKind::CommWait => "comm",
            SpanKind::Recovery => "recovery",
        }
    }
}

/// One reconstructed interval on one rank's virtual clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Rank the interval belongs to.
    pub rank: u64,
    /// Checkpoint epoch the interval belongs to.
    pub epoch: u64,
    /// What the time was spent on.
    pub kind: SpanKind,
    /// Start, virtual nanoseconds.
    pub start_ns: u64,
    /// Length, virtual nanoseconds.
    pub dur_ns: u64,
}

impl Span {
    /// Exclusive end of the interval.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

#[derive(Default)]
struct RankState {
    /// Epochs committed so far == epoch of in-flight work.
    epoch: u64,
    /// Open `CoordinatedBegin` (start time, epoch).
    open_coord: Option<(u64, u64)>,
    /// Open `RecoveryStart` times (stack; recoveries never really
    /// nest, but pairing by stack is robust to replayed traces).
    open_recovery: Vec<u64>,
}

/// Reconstruct duration spans from an event stream.
///
/// The stream may be a single engine's buffer or a merged cluster
/// trace; per-rank event order is all that matters and both preserve
/// it. Zero-length intervals are dropped except `Coordinated`, whose
/// presence (even at zero cost) marks an epoch boundary for the blame
/// layer.
pub fn build_spans(events: &[TraceEvent]) -> Vec<Span> {
    let mut states: BTreeMap<u64, RankState> = BTreeMap::new();
    let mut spans = Vec::new();
    for event in events {
        let state = states.entry(event.rank).or_default();
        let mut push = |kind: SpanKind, epoch: u64, start_ns: u64, dur_ns: u64| {
            if dur_ns > 0 || kind == SpanKind::Coordinated {
                spans.push(Span {
                    rank: event.rank,
                    epoch,
                    kind,
                    start_ns,
                    dur_ns,
                });
            }
        };
        match &event.kind {
            TraceEventKind::PrecopyDrain { cost_ns, .. } => {
                push(SpanKind::Drain, state.epoch, event.t_ns, *cost_ns);
            }
            TraceEventKind::PrecopyEnd {
                epoch,
                busy_ns,
                interference_ns,
            } => {
                push(SpanKind::PrecopyBusy, *epoch, event.t_ns, *busy_ns);
                push(SpanKind::Interference, *epoch, event.t_ns, *interference_ns);
            }
            TraceEventKind::CoordinatedBegin { epoch, .. } => {
                state.open_coord = Some((event.t_ns, *epoch));
            }
            TraceEventKind::CoordinatedEnd { .. } => {
                if let Some((start, epoch)) = state.open_coord.take() {
                    push(
                        SpanKind::Coordinated,
                        epoch,
                        start,
                        event.t_ns.saturating_sub(start),
                    );
                }
                state.epoch += 1;
            }
            TraceEventKind::BarrierWait { wait_ns, .. } => {
                push(SpanKind::BarrierWait, state.epoch, event.t_ns, *wait_ns);
            }
            TraceEventKind::CommWait { wait_ns, .. } => {
                push(SpanKind::CommWait, state.epoch, event.t_ns, *wait_ns);
            }
            TraceEventKind::RecoveryStart { .. } => {
                state.open_recovery.push(event.t_ns);
            }
            TraceEventKind::RecoveryEnd { .. } => {
                if let Some(start) = state.open_recovery.pop() {
                    push(
                        SpanKind::Recovery,
                        state.epoch,
                        start,
                        event.t_ns.saturating_sub(start),
                    );
                }
            }
            _ => {}
        }
    }
    spans
}

/// End of the run on the virtual clock: the latest instant any event
/// or reconstructed interval touches.
pub fn wall_ns(events: &[TraceEvent]) -> u64 {
    let mut wall = 0;
    for event in events {
        let end = match &event.kind {
            // These events are stamped at *arrival*; the stall they
            // describe extends past the timestamp.
            TraceEventKind::BarrierWait { wait_ns, .. }
            | TraceEventKind::CommWait { wait_ns, .. } => event.t_ns + wait_ns,
            TraceEventKind::PrecopyDrain { cost_ns, .. } => event.t_ns + cost_ns,
            _ => event.t_ns,
        };
        wall = wall.max(end);
    }
    wall
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_ns: u64, rank: u64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent { t_ns, rank, kind }
    }

    #[test]
    fn pairs_coordinated_and_recovery_and_carries_durations() {
        let events = vec![
            ev(
                0,
                1,
                TraceEventKind::PrecopyEnd {
                    epoch: 0,
                    busy_ns: 40,
                    interference_ns: 4,
                },
            ),
            ev(100, 1, TraceEventKind::BarrierWait { id: 1, wait_ns: 20 }),
            ev(
                120,
                1,
                TraceEventKind::CoordinatedBegin { epoch: 0, dirty: 1 },
            ),
            ev(
                150,
                1,
                TraceEventKind::CoordinatedEnd {
                    epoch: 0,
                    copied_bytes: 64,
                },
            ),
            ev(
                150,
                1,
                TraceEventKind::RecoveryStart {
                    node: 0,
                    source: "remote-buddy".into(),
                },
            ),
            ev(
                190,
                1,
                TraceEventKind::RecoveryEnd {
                    node: 0,
                    bytes: 64,
                    verified: 1,
                },
            ),
        ];
        let spans = build_spans(&events);
        assert_eq!(
            spans,
            vec![
                Span {
                    rank: 1,
                    epoch: 0,
                    kind: SpanKind::PrecopyBusy,
                    start_ns: 0,
                    dur_ns: 40
                },
                Span {
                    rank: 1,
                    epoch: 0,
                    kind: SpanKind::Interference,
                    start_ns: 0,
                    dur_ns: 4
                },
                Span {
                    rank: 1,
                    epoch: 0,
                    kind: SpanKind::BarrierWait,
                    start_ns: 100,
                    dur_ns: 20
                },
                Span {
                    rank: 1,
                    epoch: 0,
                    kind: SpanKind::Coordinated,
                    start_ns: 120,
                    dur_ns: 30
                },
                // Post-commit events belong to the next epoch.
                Span {
                    rank: 1,
                    epoch: 1,
                    kind: SpanKind::Recovery,
                    start_ns: 150,
                    dur_ns: 40
                },
            ]
        );
        assert_eq!(wall_ns(&events), 190);
    }

    #[test]
    fn zero_length_stalls_are_dropped_but_empty_commits_kept() {
        let events = vec![
            ev(10, 0, TraceEventKind::BarrierWait { id: 1, wait_ns: 0 }),
            ev(
                10,
                0,
                TraceEventKind::CoordinatedBegin { epoch: 0, dirty: 0 },
            ),
            ev(
                10,
                0,
                TraceEventKind::CoordinatedEnd {
                    epoch: 0,
                    copied_bytes: 0,
                },
            ),
        ];
        let spans = build_spans(&events);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].kind, SpanKind::Coordinated);
        assert_eq!(spans[0].dur_ns, 0);
    }

    #[test]
    fn wall_extends_past_arrival_stamped_stalls() {
        let events = vec![ev(
            50,
            0,
            TraceEventKind::CommWait {
                op: "halo".into(),
                wait_ns: 25,
            },
        )];
        assert_eq!(wall_ns(&events), 75);
    }
}
