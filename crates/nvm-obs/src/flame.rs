//! Folded-stack flamegraph export.
//!
//! One line per stack, `frame;frame;frame weight`, weights in virtual
//! nanoseconds — the format `inferno`/`flamegraph.pl` consume. Stacks
//! are three levels deep at most:
//!
//! ```text
//! rank_0;compute 9921875000
//! rank_0;compute;precopy_hidden 31250000
//! rank_0;checkpoint;coordinated 15625000
//! rank_0;checkpoint;interference 3125000
//! rank_0;stall;barrier 12500000
//! rank_0;stall;comm 6250000
//! rank_0;recovery 25000000
//! ```
//!
//! Hidden pre-copy renders as a *child of compute* (that is the whole
//! point of overlap: the helper runs under the application), so a
//! rank's `compute` self-weight plus its children always sums to the
//! run wall. Lines are emitted in lexicographic stack order, so the
//! output is byte-stable for a given trace.

use crate::span::{build_spans, wall_ns, SpanKind};
use nvm_trace::TraceEvent;
use std::collections::BTreeMap;

/// Render the trace as folded stacks.
pub fn to_folded(events: &[TraceEvent]) -> String {
    let wall = wall_ns(events);
    let spans = build_spans(events);
    // (rank, kind) -> total ns. Drains are a sub-interval of the
    // busy time already counted by PrecopyBusy; skip them here.
    let mut sums: BTreeMap<(u64, SpanKind), u64> = BTreeMap::new();
    let mut ranks: std::collections::BTreeSet<u64> = events.iter().map(|e| e.rank).collect();
    for span in &spans {
        ranks.insert(span.rank);
        if span.kind != SpanKind::Drain {
            *sums.entry((span.rank, span.kind)).or_default() += span.dur_ns;
        }
    }
    let mut lines: BTreeMap<String, u64> = BTreeMap::new();
    for rank in ranks {
        let get = |kind: SpanKind| sums.get(&(rank, kind)).copied().unwrap_or(0);
        let exposed = get(SpanKind::Coordinated)
            + get(SpanKind::Interference)
            + get(SpanKind::BarrierWait)
            + get(SpanKind::CommWait)
            + get(SpanKind::Recovery);
        let hidden = get(SpanKind::PrecopyBusy);
        // Compute self-weight: wall minus exposed phases minus the
        // helper work nested under it.
        let compute = wall.saturating_sub(exposed + hidden);
        let mut put = |stack: String, weight: u64| {
            if weight > 0 {
                *lines.entry(stack).or_default() += weight;
            }
        };
        put(format!("rank_{rank};compute"), compute);
        put(format!("rank_{rank};compute;precopy_hidden"), hidden);
        put(
            format!("rank_{rank};checkpoint;coordinated"),
            get(SpanKind::Coordinated),
        );
        put(
            format!("rank_{rank};checkpoint;interference"),
            get(SpanKind::Interference),
        );
        put(
            format!("rank_{rank};stall;barrier"),
            get(SpanKind::BarrierWait),
        );
        put(format!("rank_{rank};stall;comm"), get(SpanKind::CommWait));
        put(format!("rank_{rank};recovery"), get(SpanKind::Recovery));
    }
    let mut out = String::new();
    for (stack, weight) in lines {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&weight.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_trace::TraceEventKind;

    fn ev(t_ns: u64, rank: u64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent { t_ns, rank, kind }
    }

    #[test]
    fn folded_lines_are_stack_space_weight() {
        let events = vec![
            ev(
                0,
                0,
                TraceEventKind::PrecopyEnd {
                    epoch: 0,
                    busy_ns: 10,
                    interference_ns: 5,
                },
            ),
            ev(80, 0, TraceEventKind::BarrierWait { id: 1, wait_ns: 20 }),
        ];
        let folded = to_folded(&events);
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            vec![
                "rank_0;checkpoint;interference 5",
                "rank_0;compute 65",
                "rank_0;compute;precopy_hidden 10",
                "rank_0;stall;barrier 20",
            ]
        );
        // Every line parses as "<frames> <u64>" and the rank's total
        // is the wall.
        let mut total = 0u64;
        for line in &lines {
            let (stack, weight) = line.rsplit_once(' ').unwrap();
            assert!(!stack.is_empty() && stack.split(';').count() >= 2);
            total += weight.parse::<u64>().unwrap();
        }
        assert_eq!(total, 100);
    }

    #[test]
    fn ranks_with_only_point_events_still_get_a_compute_row() {
        let events = vec![
            ev(30, 3, TraceEventKind::ProtectionFault { chunk: 1 }),
            ev(60, 5, TraceEventKind::ProtectionFault { chunk: 2 }),
        ];
        let folded = to_folded(&events);
        assert_eq!(folded, "rank_3;compute 60\nrank_5;compute 60\n");
    }
}
