//! Bandwidth/statistics accounting under concurrent charge calls.
//!
//! ClusterSim executes ranks on a worker pool; every rank charges
//! write/read costs against its node's shared [`MemoryDevice`]. These
//! tests pin down the property that makes parallel rank execution
//! bit-identical to serial: per-operation costs are functions of
//! (length, concurrency, model) only, and the device statistics are
//! commutative sums, so neither depends on the order in which
//! concurrent threads win the device lock.

use nvm_emu::{MemoryDevice, SimDuration};
use std::thread;

const MB: usize = 1 << 20;
const THREADS: usize = 8;
const OPS_PER_THREAD: usize = 16;

/// Per-thread write length: distinct per thread so an ordering bug in
/// the accounting would actually change per-op costs.
fn write_len(thread: usize, op: usize) -> usize {
    (thread + 1) * 64 * 1024 + op * 4096
}

#[test]
fn concurrent_charges_match_serial_reference() {
    let run = |concurrent: bool| -> (nvm_emu::DeviceStats, Vec<Vec<SimDuration>>) {
        let dev = MemoryDevice::pcm(256 * MB);
        let regions: Vec<_> = (0..THREADS)
            .map(|_| dev.alloc_synthetic(4 * MB).unwrap())
            .collect();
        let work = |t: usize| {
            let dev = dev.clone();
            let id = regions[t];
            move || {
                let mut costs = Vec::with_capacity(OPS_PER_THREAD);
                for op in 0..OPS_PER_THREAD {
                    let len = write_len(t, op);
                    costs.push(dev.write_synthetic(id, 0, len, THREADS).unwrap());
                    dev.read_synthetic(id, 0, len / 2, THREADS).unwrap();
                }
                costs
            }
        };
        let costs: Vec<Vec<SimDuration>> = if concurrent {
            thread::scope(|s| {
                let handles: Vec<_> = (0..THREADS).map(|t| s.spawn(work(t))).collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
        } else {
            (0..THREADS).map(|t| work(t)()).collect()
        };
        (dev.stats(), costs)
    };

    let (serial_stats, serial_costs) = run(false);
    let (conc_stats, conc_costs) = run(true);

    // Charged costs are pure functions of (len, concurrency, model):
    // every thread sees the same durations in both schedules.
    assert_eq!(serial_costs, conc_costs);

    // Statistics are commutative sums; lock-acquisition order must not
    // show through. (Energy is an f64 sum whose rounding can depend on
    // addition order, so it gets a tolerance instead of equality.)
    assert_eq!(serial_stats.bytes_written, conc_stats.bytes_written);
    assert_eq!(serial_stats.bytes_read, conc_stats.bytes_read);
    assert_eq!(serial_stats.write_ops, conc_stats.write_ops);
    assert_eq!(serial_stats.read_ops, conc_stats.read_ops);
    assert_eq!(serial_stats.flush_ops, conc_stats.flush_ops);
    assert_eq!(serial_stats.busy, conc_stats.busy);
    let (e_serial, e_conc) = (serial_stats.energy.joules(), conc_stats.energy.joules());
    assert!(
        (e_serial - e_conc).abs() <= e_serial.abs() * 1e-9,
        "energy {e_serial} vs {e_conc}"
    );

    // Totals are the expected closed-form sums, not just self-consistent.
    let expected_written: u64 = (0..THREADS)
        .flat_map(|t| (0..OPS_PER_THREAD).map(move |op| write_len(t, op) as u64))
        .sum();
    assert_eq!(conc_stats.bytes_written, expected_written);
    assert_eq!(conc_stats.write_ops, (THREADS * OPS_PER_THREAD) as u64);
    assert_eq!(conc_stats.read_ops, (THREADS * OPS_PER_THREAD) as u64);
}

#[test]
fn wear_tracking_is_region_private_under_concurrency() {
    let dev = MemoryDevice::pcm(256 * MB);
    let regions: Vec<_> = (0..THREADS)
        .map(|_| dev.alloc_synthetic(MB).unwrap())
        .collect();
    thread::scope(|s| {
        for (t, &id) in regions.iter().enumerate() {
            let dev = dev.clone();
            s.spawn(move || {
                // Thread t rewrites its whole region t+1 times.
                for _ in 0..=t {
                    dev.write_synthetic(id, 0, MB, THREADS).unwrap();
                }
            });
        }
    });
    for (t, &id) in regions.iter().enumerate() {
        assert_eq!(dev.max_wear(id).unwrap(), (t + 1) as u64, "region {t}");
    }
}
