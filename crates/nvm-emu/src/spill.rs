//! Spill backing for materialized regions.
//!
//! A [`MemoryDevice`] normally keeps materialized region contents in
//! process RAM (`Vec<u8>` per region). That is fine at paper scale
//! (8 nodes) but sinks thousand-rank byte-materialized cluster runs:
//! every rank's two NVM version slots, its DRAM working copy, *and*
//! its buddy's remote checkpoint images all end up resident at once.
//!
//! [`SpillStore`] is the narrow interface a device uses to push those
//! bytes out of RAM instead: slot-granular alloc/free plus random
//! access reads and writes. Attaching one (see
//! `MemoryDevice::attach_spill`) changes **only where bytes live** —
//! every virtual-time charge, wear increment, statistic, and metric is
//! computed by the same code path as before, so simulation results
//! stay bit-identical with and without a spill store.
//!
//! The production implementation (`nvm_store::FileSpill`) keeps slots
//! in an extent-allocated file through the nvm-store media layer; the
//! [`MemSpill`] here is the in-RAM reference used by unit tests.
//!
//! [`MemoryDevice`]: crate::device::MemoryDevice

use std::io;

/// Slot-granular byte store a [`MemoryDevice`] can spill materialized
/// regions to. One slot backs one region for the region's lifetime.
///
/// Contract: [`SpillStore::alloc`] returns a slot that reads back as
/// `len` zero bytes; reads and writes are bounds-checked by the caller
/// (the device validates against region length before calling down).
///
/// [`MemoryDevice`]: crate::device::MemoryDevice
pub trait SpillStore: Send {
    /// Allocate a zero-filled slot of `len` bytes and return its id.
    fn alloc(&mut self, len: usize) -> io::Result<u64>;

    /// Write `data` into `slot` at `offset`.
    fn write(&mut self, slot: u64, offset: usize, data: &[u8]) -> io::Result<()>;

    /// Fill `buf` from `slot` at `offset`.
    fn read(&mut self, slot: u64, offset: usize, buf: &mut [u8]) -> io::Result<()>;

    /// Release a slot of `len` bytes (the caller tracks slot lengths).
    fn free(&mut self, slot: u64, len: usize);

    /// Bytes currently live in slots.
    fn live_bytes(&self) -> u64;

    /// High-water mark of [`SpillStore::live_bytes`] over the store's
    /// lifetime — what the spilled data would have cost in RAM at its
    /// peak had it not been spilled.
    fn peak_bytes(&self) -> u64;
}

/// In-RAM [`SpillStore`]: one `Vec<u8>` per slot. Defeats the purpose
/// of spilling (the bytes are still resident) but exercises the exact
/// same device code path as a file-backed store, which is what the
/// emulator's own tests need.
#[derive(Debug, Default)]
pub struct MemSpill {
    slots: Vec<Option<Vec<u8>>>,
    live: u64,
    peak: u64,
}

impl MemSpill {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SpillStore for MemSpill {
    fn alloc(&mut self, len: usize) -> io::Result<u64> {
        self.live += len as u64;
        self.peak = self.peak.max(self.live);
        self.slots.push(Some(vec![0u8; len]));
        Ok(self.slots.len() as u64 - 1)
    }

    fn write(&mut self, slot: u64, offset: usize, data: &[u8]) -> io::Result<()> {
        let bytes = self.slots[slot as usize]
            .as_mut()
            .ok_or_else(|| io::Error::other("slot freed"))?;
        bytes[offset..offset + data.len()].copy_from_slice(data);
        Ok(())
    }

    fn read(&mut self, slot: u64, offset: usize, buf: &mut [u8]) -> io::Result<()> {
        let bytes = self.slots[slot as usize]
            .as_ref()
            .ok_or_else(|| io::Error::other("slot freed"))?;
        buf.copy_from_slice(&bytes[offset..offset + buf.len()]);
        Ok(())
    }

    fn free(&mut self, slot: u64, len: usize) {
        if self.slots[slot as usize].take().is_some() {
            self.live -= len as u64;
        }
    }

    fn live_bytes(&self) -> u64 {
        self.live
    }

    fn peak_bytes(&self) -> u64 {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_spill_round_trips_and_tracks_bytes() {
        let mut s = MemSpill::new();
        let a = s.alloc(8).unwrap();
        let b = s.alloc(4).unwrap();
        assert_eq!(s.live_bytes(), 12);
        let mut buf = [0xFFu8; 8];
        s.read(a, 0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 8], "fresh slots read as zeros");
        s.write(a, 2, &[1, 2, 3]).unwrap();
        s.read(a, 0, &mut buf).unwrap();
        assert_eq!(buf, [0, 0, 1, 2, 3, 0, 0, 0]);
        s.free(b, 4);
        assert_eq!(s.live_bytes(), 8);
        assert_eq!(s.peak_bytes(), 12, "peak survives frees");
    }
}
