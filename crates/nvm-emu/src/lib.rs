//! Emulated byte-addressable non-volatile memory (NVM) and DRAM devices.
//!
//! This crate is the hardware substrate for the NVM-checkpoints
//! reproduction. The original paper (Kannan et al., IPDPS 2013) emulates
//! PCM by reserving a DRAM partition and injecting copy delays derived
//! from the LANL parallel-memcpy benchmark; this crate does the same
//! thing in-process:
//!
//! * [`time`] — a shared virtual clock ([`time::VirtualClock`]) and
//!   [`time::SimTime`]/[`time::SimDuration`] arithmetic. All performance
//!   experiments run in virtual time so paper-scale data sizes (hundreds
//!   of megabytes per rank) cost microseconds of wall time.
//! * [`params`] — the Table-I hardware model: DRAM vs PCM bandwidth,
//!   page read/write latency, write endurance and energy.
//! * [`bandwidth`] — the parallel-memcpy contention model behind Figure 4
//!   of the paper: effective per-core copy bandwidth as a function of
//!   concurrent copier count and buffer size.
//! * [`device`] — [`device::MemoryDevice`]: an emulated memory device
//!   holding *regions* of bytes (materialized or synthetic), charging
//!   virtual time for reads/writes/flushes and accounting wear + energy.
//! * [`energy`] — write-energy accounting (PCM write energy is ~40x DRAM
//!   per bit).
//!
//! Devices are deliberately *passive*: they expose cost functions and
//! record statistics but never advance a clock themselves. Callers (the
//! checkpoint engine, the cluster simulator) decide concurrency levels
//! and advance their own clocks, which keeps every cost model unit
//! testable in isolation.
//!
//! ```
//! use nvm_emu::{MemoryDevice, VirtualClock};
//!
//! let clock = VirtualClock::new();
//! let pcm = MemoryDevice::pcm(16 << 20);
//! let region = pcm.alloc(4096).unwrap();
//! let cost = pcm.write(region, 0, &[7u8; 4096], /* concurrency */ 1).unwrap();
//! clock.advance(cost);
//! // PCM writes are slow: a page costs microseconds, not nanoseconds.
//! assert!(cost.as_micros() >= 1);
//! let mut back = [0u8; 4096];
//! pcm.read(region, 0, &mut back, 1).unwrap();
//! assert_eq!(back[0], 7);
//! ```

#![warn(missing_docs)]

pub mod bandwidth;
pub mod device;
pub mod energy;
pub mod error;
pub mod params;
pub mod spill;
pub mod tempdir;
pub mod time;
pub mod wear;
pub mod wearmap;

pub use bandwidth::BandwidthModel;
pub use device::{DeviceStats, MemoryDevice, RegionId};
pub use error::DeviceError;
pub use params::{DeviceKind, DeviceParams};
pub use spill::{MemSpill, SpillStore};
pub use tempdir::TempDir;
pub use time::{SimDuration, SimTime, VirtualClock};
pub use wear::StartGap;

/// Page size used throughout the emulation (matches Linux x86-64).
pub const PAGE_SIZE: usize = 4096;

/// Round `bytes` up to a whole number of pages.
#[inline]
pub fn pages_for(bytes: usize) -> usize {
    bytes.div_ceil(PAGE_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(pages_for(0), 0);
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(PAGE_SIZE), 1);
        assert_eq!(pages_for(PAGE_SIZE + 1), 2);
        assert_eq!(pages_for(10 * PAGE_SIZE), 10);
    }
}
