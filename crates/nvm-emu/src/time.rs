//! Virtual time for the emulation.
//!
//! Every performance experiment in this workspace runs against a
//! [`VirtualClock`] rather than the wall clock: data movement charges
//! `size / effective_bandwidth` plus per-page latencies, protection
//! faults charge their measured cost, and so on. This lets benches
//! replay the paper's experiments (48 ranks x ~410 MB checkpoints) in
//! milliseconds of wall time while keeping every latency relationship
//! intact.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant; used as an "infinitely far
    /// away" sentinel by event schedulers.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "invalid time: {s}");
        SimTime((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds since epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since epoch as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "invalid duration: {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Time to move `bytes` at `bytes_per_sec`.
    #[inline]
    pub fn for_transfer(bytes: u64, bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec > 0.0,
            "bandwidth must be positive, got {bytes_per_sec}"
        );
        SimDuration::from_secs_f64(bytes as f64 / bytes_per_sec)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True iff the duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: f64) -> SimDuration {
        assert!(rhs >= 0.0 && rhs.is_finite());
        SimDuration((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2}us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        }
    }
}

/// A shared, monotonically non-decreasing virtual clock.
///
/// Cloning a `VirtualClock` yields a handle to the *same* clock: the
/// checkpoint engine, the NVM devices and the workload driver all share
/// one timeline. The clock only ever moves forward; `advance_to` with a
/// past instant is a no-op, which makes it safe for multiple logical
/// actors to race each other to a common barrier time.
#[derive(Clone, Default)]
pub struct VirtualClock {
    ns: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A fresh clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        SimTime(self.ns.load(Ordering::Acquire))
    }

    /// Advance the clock by `d` and return the new time.
    pub fn advance(&self, d: SimDuration) -> SimTime {
        let new = self
            .ns
            .fetch_add(d.0, Ordering::AcqRel)
            .checked_add(d.0)
            .expect("VirtualClock overflow");
        SimTime(new)
    }

    /// Move the clock forward to `t` if `t` is in the future; never
    /// moves it backwards. Returns the (possibly newer) current time.
    pub fn advance_to(&self, t: SimTime) -> SimTime {
        let mut cur = self.ns.load(Ordering::Acquire);
        while cur < t.0 {
            match self
                .ns
                .compare_exchange(cur, t.0, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return t,
                Err(actual) => cur = actual,
            }
        }
        SimTime(cur)
    }
}

impl fmt::Debug for VirtualClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VirtualClock({})", self.now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_arithmetic() {
        let t = SimTime::from_secs(1);
        let d = SimDuration::from_millis(250);
        assert_eq!((t + d).as_nanos(), 1_250_000_000);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.since(t + d), SimDuration::ZERO);
        assert_eq!((t + d).since(t), d);
    }

    #[test]
    fn duration_for_transfer() {
        // 2 GB/s device moving 2 GiB-ish: 1 GB at 2e9 B/s = 0.5 s.
        let d = SimDuration::for_transfer(1_000_000_000, 2e9);
        assert_eq!(d.as_nanos(), 500_000_000);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        let _ = SimDuration::for_transfer(1, 0.0);
    }

    #[test]
    fn clock_is_shared_and_monotonic() {
        let c1 = VirtualClock::new();
        let c2 = c1.clone();
        c1.advance(SimDuration::from_secs(3));
        assert_eq!(c2.now(), SimTime::from_secs(3));
        // advance_to backwards is a no-op
        c2.advance_to(SimTime::from_secs(1));
        assert_eq!(c1.now(), SimTime::from_secs(3));
        c2.advance_to(SimTime::from_secs(5));
        assert_eq!(c1.now(), SimTime::from_secs(5));
    }

    #[test]
    fn clock_concurrent_advance_to() {
        let c = VirtualClock::new();
        let mut handles = vec![];
        for i in 1..=8u64 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                c.advance_to(SimTime::from_secs(i));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.now(), SimTime::from_secs(8));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(6).to_string(), "6.00us");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.00ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn secs_f64_roundtrip() {
        let d = SimDuration::from_secs_f64(1.5);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
        let t = SimTime::from_secs_f64(40.0);
        assert_eq!(t, SimTime::from_secs(40));
    }
}
