//! Start-gap wear leveling (extension).
//!
//! PCM cells endure ~10^8 writes (Table I) — a hot page written every
//! checkpoint would die in weeks. Real PCM controllers level wear in
//! hardware; the canonical algebraic scheme is *Start-Gap* (Qureshi et
//! al., MICRO'09): one spare "gap" frame rotates through the physical
//! space, shifting the logical-to-physical mapping by one frame every
//! `period` writes. After `frames + 1` rotations every logical page
//! has visited every physical frame, bounding any frame's share of a
//! hot spot.
//!
//! [`StartGap`] implements the mapping plus a wear histogram so tests
//! and benches can quantify the leveling effect against an identity
//! mapping.

use serde::{Deserialize, Serialize};

/// Start-Gap wear leveler over `frames` physical frames serving
/// `frames - 1` logical pages (one frame is always the gap).
///
/// The hardware scheme computes the mapping algebraically from two
/// registers; this model keeps the permutation explicit (one table
/// each way), which is simpler to reason about and lets tests verify
/// injectivity directly.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StartGap {
    frames: usize,
    /// Physical index of the current gap frame.
    gap: usize,
    /// logical -> physical.
    phys_of: Vec<usize>,
    /// physical -> logical (`None` = the gap).
    logical_at: Vec<Option<usize>>,
    /// Writes since the last gap move.
    writes_since_move: u64,
    /// Gap moves once per this many writes.
    period: u64,
    /// Writes landed per physical frame.
    wear: Vec<u64>,
}

impl StartGap {
    /// A leveler with `frames` physical frames, moving the gap every
    /// `period` writes. Qureshi et al. use period = 100.
    pub fn new(frames: usize, period: u64) -> Self {
        assert!(frames >= 2, "need at least one logical page plus the gap");
        assert!(period >= 1);
        StartGap {
            frames,
            gap: frames - 1,
            phys_of: (0..frames - 1).collect(),
            logical_at: (0..frames)
                .map(|p| if p < frames - 1 { Some(p) } else { None })
                .collect(),
            writes_since_move: 0,
            period,
            wear: vec![0; frames],
        }
    }

    /// Logical pages served.
    pub fn logical_pages(&self) -> usize {
        self.frames - 1
    }

    /// Physical index of the current gap frame.
    pub fn gap(&self) -> usize {
        self.gap
    }

    /// Map a logical page to its current physical frame.
    pub fn map(&self, logical: usize) -> usize {
        assert!(logical < self.logical_pages(), "logical page out of range");
        self.phys_of[logical]
    }

    /// Record a write to a logical page; possibly moves the gap.
    /// Returns the physical frame written.
    pub fn write(&mut self, logical: usize) -> usize {
        let phys = self.map(logical);
        self.wear[phys] += 1;
        self.writes_since_move += 1;
        if self.writes_since_move >= self.period {
            self.writes_since_move = 0;
            self.move_gap();
        }
        phys
    }

    /// Move the gap one frame down: the page in the frame below the
    /// gap relocates into the gap (one write of wear), and that frame
    /// becomes the new gap.
    fn move_gap(&mut self) {
        let displaced = if self.gap == 0 {
            self.frames - 1
        } else {
            self.gap - 1
        };
        if let Some(logical) = self.logical_at[displaced] {
            self.phys_of[logical] = self.gap;
            self.logical_at[self.gap] = Some(logical);
            self.wear[self.gap] += 1; // the relocation write
        }
        self.logical_at[displaced] = None;
        self.gap = displaced;
    }

    /// Maximum writes any physical frame has absorbed.
    pub fn max_wear(&self) -> u64 {
        self.wear.iter().copied().max().unwrap_or(0)
    }

    /// Mean writes per physical frame.
    pub fn mean_wear(&self) -> f64 {
        self.wear.iter().sum::<u64>() as f64 / self.frames as f64
    }

    /// Max/mean wear — 1.0 is perfect leveling.
    pub fn wear_imbalance(&self) -> f64 {
        let mean = self.mean_wear();
        if mean == 0.0 {
            1.0
        } else {
            self.max_wear() as f64 / mean
        }
    }

    /// The wear histogram.
    pub fn wear(&self) -> &[u64] {
        &self.wear
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mapping_is_injective_at_all_times() {
        let mut sg = StartGap::new(17, 3);
        for round in 0..2000 {
            let mapped: HashSet<usize> = (0..sg.logical_pages()).map(|l| sg.map(l)).collect();
            assert_eq!(
                mapped.len(),
                sg.logical_pages(),
                "collision after {round} writes"
            );
            assert!(!mapped.contains(&sg.gap), "gap frame must stay empty");
            sg.write(round % sg.logical_pages());
        }
    }

    #[test]
    fn hot_page_wear_is_spread() {
        // Without leveling, 100k writes to one page = 100k wear on one
        // frame. With Start-Gap the hot spot migrates.
        let frames = 64;
        let mut sg = StartGap::new(frames, 16);
        for _ in 0..100_000 {
            sg.write(0); // single hot page
        }
        let max = sg.max_wear();
        assert!(
            max < 100_000 / 8,
            "hot-page wear should spread by >8x, max={max}"
        );
    }

    #[test]
    fn uniform_workload_stays_balanced() {
        let mut sg = StartGap::new(32, 8);
        for i in 0..100_000 {
            sg.write(i % sg.logical_pages());
        }
        assert!(
            sg.wear_imbalance() < 1.5,
            "imbalance {}",
            sg.wear_imbalance()
        );
    }

    #[test]
    fn relocation_overhead_is_bounded() {
        // Gap moves add 1 write per `period` application writes.
        let mut sg = StartGap::new(16, 100);
        for i in 0..10_000 {
            sg.write(i % sg.logical_pages());
        }
        let total: u64 = sg.wear().iter().sum();
        // 10_000 app writes + ~100 relocations.
        assert!((10_000..=10_000 + 110).contains(&total), "total {total}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_logical_page_panics() {
        let sg = StartGap::new(4, 10);
        let _ = sg.map(3); // logical pages are 0..=2
    }
}
