//! Interval-compressed per-page wear tracking.
//!
//! The paper preset writes hundreds of megabytes per rank per epoch, so
//! the naive wear tracker — one counter bump per 4 KiB page per write —
//! turns every full-chunk store into a loop over ~10k pages and
//! dominates the whole simulation (≈78% of wall time when profiled).
//! Checkpoint traffic is highly regular, though: the same chunk-aligned
//! ranges are written over and over, so the per-page counter array is
//! almost always a handful of flat plateaus. [`WearMap`] stores those
//! plateaus directly as maximal segments of equal count, making a
//! full-chunk write O(log segments) instead of O(pages).
//!
//! Semantics are identical to the flat array: [`WearMap::increment_range`]
//! adds one write to every page in the range and returns the hottest
//! post-increment count inside it (the value strict endurance checks
//! compare against), and [`WearMap::max`] is the device-lifetime hottest
//! page. Counts only ever increase, so the global max can be cached and
//! updated on the way in rather than recomputed by scanning.

use std::collections::BTreeMap;

/// One maximal run of pages sharing a write count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Seg {
    /// Exclusive end page of the run.
    end: u64,
    /// Writes recorded for every page in the run.
    count: u64,
}

/// Per-page write counters compressed as maximal equal-count segments.
///
/// Invariants: segments are non-overlapping, cover `[0, pages)` exactly,
/// and adjacent segments never share a count (they would have been
/// merged).
#[derive(Clone, Debug, Default)]
pub struct WearMap {
    /// First page of each segment -> the segment.
    segs: BTreeMap<u64, Seg>,
    pages: u64,
    /// Cached `max(count)` over all segments; counts are monotone so
    /// this never needs a rescan.
    max: u64,
}

impl WearMap {
    /// A map covering `pages` pages, all with zero recorded writes.
    pub fn new(pages: usize) -> Self {
        let pages = pages as u64;
        let mut segs = BTreeMap::new();
        if pages > 0 {
            segs.insert(
                0,
                Seg {
                    end: pages,
                    count: 0,
                },
            );
        }
        WearMap {
            segs,
            pages,
            max: 0,
        }
    }

    /// Number of pages covered.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// Hottest page count over the whole map.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Write count of a single page.
    pub fn get(&self, page: u64) -> u64 {
        self.segs
            .range(..=page)
            .next_back()
            .filter(|(_, seg)| page < seg.end)
            .map(|(_, seg)| seg.count)
            .unwrap_or(0)
    }

    /// Number of internal segments (test/diagnostic aid).
    pub fn segment_count(&self) -> usize {
        self.segs.len()
    }

    /// Add one write to every page in `[first, last]` (inclusive) and
    /// return the hottest post-increment count within that range.
    pub fn increment_range(&mut self, first: u64, last: u64) -> u64 {
        debug_assert!(
            first <= last && last < self.pages,
            "wear range out of bounds"
        );
        self.split_at(first);
        self.split_at(last + 1);
        let mut range_max = 0;
        for seg in self.segs.range_mut(first..=last).map(|(_, s)| s) {
            seg.count += 1;
            range_max = range_max.max(seg.count);
        }
        self.max = self.max.max(range_max);
        // Incrementing preserves inequality between interior neighbours,
        // so only the two cut points can need re-merging.
        self.merge_at(first);
        self.merge_at(last + 1);
        range_max
    }

    /// Ensure a segment boundary exists at page `p` (no-op at the map
    /// edges or if one is already there).
    fn split_at(&mut self, p: u64) {
        if p == 0 || p >= self.pages {
            return;
        }
        let (&start, &seg) = self
            .segs
            .range(..=p)
            .next_back()
            .expect("segments cover [0, pages)");
        if start == p {
            return;
        }
        debug_assert!(p < seg.end);
        self.segs.insert(
            start,
            Seg {
                end: p,
                count: seg.count,
            },
        );
        self.segs.insert(p, seg);
    }

    /// Merge the segments meeting at boundary `p` if their counts are
    /// now equal.
    fn merge_at(&mut self, p: u64) {
        if p == 0 || p >= self.pages {
            return;
        }
        let Some(&right) = self.segs.get(&p) else {
            return;
        };
        let Some((&left_start, &left)) = self.segs.range(..p).next_back() else {
            return;
        };
        if left.end == p && left.count == right.count {
            self.segs.remove(&p);
            self.segs.insert(
                left_start,
                Seg {
                    end: right.end,
                    count: right.count,
                },
            );
        }
    }

    /// Expand back to a flat per-page counter array (test aid).
    #[cfg(test)]
    fn to_vec(&self) -> Vec<u64> {
        let mut v = vec![0u64; self.pages as usize];
        for (&start, seg) in &self.segs {
            for p in start..seg.end {
                v[p as usize] = seg.count;
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation: the flat array the map replaces.
    struct Flat(Vec<u64>);

    impl Flat {
        fn increment_range(&mut self, first: u64, last: u64) -> u64 {
            let mut max = 0;
            for p in first..=last {
                self.0[p as usize] += 1;
                max = max.max(self.0[p as usize]);
            }
            max
        }
    }

    #[test]
    fn single_range_counts() {
        let mut m = WearMap::new(16);
        assert_eq!(m.increment_range(0, 15), 1);
        assert_eq!(m.increment_range(0, 15), 2);
        assert_eq!(m.max(), 2);
        assert_eq!(m.get(7), 2);
        assert_eq!(m.segment_count(), 1, "full-range writes stay compressed");
    }

    #[test]
    fn overlapping_ranges_return_post_increment_range_max() {
        let mut m = WearMap::new(8);
        m.increment_range(0, 3); // pages 0..=3 -> 1
        m.increment_range(2, 5); // pages 2..=3 -> 2, 4..=5 -> 1
        assert_eq!(m.get(0), 1);
        assert_eq!(m.get(2), 2);
        assert_eq!(m.get(4), 1);
        assert_eq!(m.get(6), 0);
        assert_eq!(m.max(), 2);
        // Range max is over the incremented range only, post-increment.
        assert_eq!(m.increment_range(4, 7), 2);
        assert_eq!(m.increment_range(6, 7), 2);
    }

    #[test]
    fn coalesces_when_counts_equalize() {
        let mut m = WearMap::new(8);
        m.increment_range(0, 3);
        m.increment_range(4, 7);
        assert_eq!(m.segment_count(), 1, "equal halves merge back");
        m.increment_range(0, 1);
        assert_eq!(m.segment_count(), 2);
        m.increment_range(2, 7);
        assert_eq!(m.segment_count(), 1, "catch-up write re-merges");
        assert_eq!(m.max(), 2);
    }

    #[test]
    fn zero_and_one_page_maps() {
        let mut m = WearMap::new(1);
        assert_eq!(m.increment_range(0, 0), 1);
        assert_eq!(m.max(), 1);
        let m0 = WearMap::new(0);
        assert_eq!(m0.max(), 0);
        assert_eq!(m0.get(0), 0);
    }

    #[test]
    fn matches_flat_reference_on_deterministic_workload() {
        // Deterministic LCG so the test needs no RNG dependency.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let pages = 97u64;
        let mut map = WearMap::new(pages as usize);
        let mut flat = Flat(vec![0; pages as usize]);
        for _ in 0..2000 {
            let a = next() % pages;
            let b = next() % pages;
            let (first, last) = (a.min(b), a.max(b));
            assert_eq!(
                map.increment_range(first, last),
                flat.increment_range(first, last)
            );
        }
        assert_eq!(map.to_vec(), flat.0);
        assert_eq!(map.max(), flat.0.iter().copied().max().unwrap());
        // Compression holds: far fewer segments than pages even under
        // random ranges.
        assert!(map.segment_count() <= pages as usize);
    }
}
