//! Self-cleaning temporary directories for tests and benches.
//!
//! Everything in this workspace that touches the real filesystem (the
//! ramdisk measurement sinks, the durable `nvm-store` containers)
//! places its files inside a [`TempDir`], which removes the whole
//! directory on drop — `cargo test` leaves no stray files behind.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A uniquely named directory removed (recursively) on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create a fresh directory under the system temp dir.
    pub fn new(prefix: &str) -> std::io::Result<Self> {
        Self::new_in(std::env::temp_dir(), prefix)
    }

    /// Create a fresh directory under `base` (e.g. `/dev/shm` for
    /// ramdisk measurements that must stay on tmpfs).
    pub fn new_in(base: impl AsRef<Path>, prefix: &str) -> std::io::Result<Self> {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = base
            .as_ref()
            .join(format!("{prefix}_{}_{n}", std::process::id()));
        std::fs::create_dir_all(&path)?;
        Ok(TempDir { path })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A path for `name` inside the directory.
    pub fn join(&self, name: impl AsRef<Path>) -> PathBuf {
        self.path.join(name)
    }

    /// Consume without deleting (hand ownership of the files to the
    /// caller).
    pub fn keep(mut self) -> PathBuf {
        std::mem::take(&mut self.path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if !self.path.as_os_str().is_empty() {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tempdir_is_created_and_removed() {
        let kept;
        {
            let td = TempDir::new("nvm_emu_tempdir_test").unwrap();
            kept = td.path().to_path_buf();
            assert!(kept.is_dir());
            std::fs::write(td.join("x.bin"), b"abc").unwrap();
        }
        assert!(!kept.exists(), "dropped TempDir must clean up");
    }

    #[test]
    fn two_tempdirs_never_collide() {
        let a = TempDir::new("nvm_emu_tempdir_test").unwrap();
        let b = TempDir::new("nvm_emu_tempdir_test").unwrap();
        assert_ne!(a.path(), b.path());
    }

    #[test]
    fn keep_disarms_cleanup() {
        let td = TempDir::new("nvm_emu_tempdir_keep").unwrap();
        let path = td.keep();
        assert!(path.is_dir());
        std::fs::remove_dir_all(&path).unwrap();
    }
}
