//! Effective-bandwidth model for concurrent copiers.
//!
//! Figure 4 of the paper uses the LANL parallel-memcpy benchmark to show
//! that per-core copy bandwidth collapses as more cores copy
//! concurrently: on their 12-core Xeon node, per-core bandwidth drops by
//! **67%** going from 1 to 12 concurrent processes even at 33 MB buffer
//! sizes. The paper then argues that a 2 GB/s PCM device behind a DDR
//! interface leaves as little as ~400 MB/s of effective per-core write
//! bandwidth in a 12-core node.
//!
//! We model per-core bandwidth with a saturation law
//!
//! ```text
//! per_core(n, s) = B1(s) / (1 + beta * (n - 1))
//! ```
//!
//! where `B1(s)` is the single-stream bandwidth for buffer size `s`
//! (small buffers get a cache boost) and `beta` is fit so that
//! `per_core(12) / per_core(1) = 0.33` — the paper's 67% reduction.
//! The NVM variant scales the DRAM curve by the device/DRAM bandwidth
//! ratio, reproducing the ~400-500 MB/s per-core figure at 12 cores.

use crate::params::DeviceParams;
use serde::{Deserialize, Serialize};

/// Contention coefficient giving a 67% per-core reduction at 12 cores:
/// `1 / (1 + 11 * BETA) = 0.33`.
pub const LANL_BETA: f64 = (1.0 / 0.33 - 1.0) / 11.0;

/// Fraction of peak device bandwidth a single stream achieves (a single
/// core cannot saturate the memory controller).
pub const SINGLE_STREAM_EFFICIENCY: f64 = 0.75;

/// Effective-bandwidth model for a device shared by concurrent copiers.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum BandwidthModel {
    /// Saturation-law contention model (the Figure-4 curve).
    Contended {
        /// Single-stream bandwidth for large (out-of-cache) buffers, B/s.
        single_stream: f64,
        /// Contention coefficient (see [`LANL_BETA`]).
        beta: f64,
        /// Multiplicative boost for buffers that fit in cache.
        cache_boost: f64,
        /// Buffer size (bytes) below which the cache boost applies fully.
        cache_capacity: usize,
    },
    /// A fixed per-core bandwidth regardless of concurrency. Used by the
    /// paper-figure sweeps, which put "NVM bandwidth / core" directly on
    /// the x-axis.
    FixedPerCore(f64),
}

impl BandwidthModel {
    /// The DRAM-side LANL memcpy curve for the paper's 12-core Xeon
    /// node: 8 GB/s device peak, 75% single-stream efficiency, 67%
    /// reduction at 12 cores, 1.5x boost under 8 MiB (L3-resident).
    pub fn lanl_dram() -> Self {
        Self::for_device(&DeviceParams::dram())
    }

    /// Derive the contended curve for an arbitrary device: the DRAM
    /// curve scaled by the device's peak write bandwidth.
    pub fn for_device(params: &DeviceParams) -> Self {
        BandwidthModel::Contended {
            single_stream: params.write_bandwidth * SINGLE_STREAM_EFFICIENCY,
            beta: LANL_BETA,
            cache_boost: 1.5,
            cache_capacity: 8 << 20,
        }
    }

    /// A model that always reports `bw` bytes/s per core.
    pub fn fixed_per_core(bw: f64) -> Self {
        assert!(bw > 0.0, "per-core bandwidth must be positive");
        BandwidthModel::FixedPerCore(bw)
    }

    /// Effective bandwidth (bytes/s) seen by *one* of `concurrency`
    /// simultaneous streams copying buffers of `buffer_bytes`.
    pub fn per_core(&self, concurrency: usize, buffer_bytes: usize) -> f64 {
        let n = concurrency.max(1) as f64;
        match *self {
            BandwidthModel::FixedPerCore(bw) => bw,
            BandwidthModel::Contended {
                single_stream,
                beta,
                cache_boost,
                cache_capacity,
            } => {
                let b1 = single_stream * cache_factor(buffer_bytes, cache_capacity, cache_boost);
                b1 / (1.0 + beta * (n - 1.0))
            }
        }
    }

    /// Aggregate bandwidth (bytes/s) across all `concurrency` streams.
    pub fn aggregate(&self, concurrency: usize, buffer_bytes: usize) -> f64 {
        self.per_core(concurrency, buffer_bytes) * concurrency.max(1) as f64
    }
}

/// Smooth cache-residency factor: full boost below `capacity`, decaying
/// toward 1.0 as the buffer grows past it.
fn cache_factor(buffer_bytes: usize, capacity: usize, boost: f64) -> f64 {
    if capacity == 0 || buffer_bytes == 0 {
        return 1.0;
    }
    if buffer_bytes <= capacity {
        boost
    } else {
        // Decay: at 4x the cache size the boost is essentially gone.
        let excess = (buffer_bytes - capacity) as f64 / capacity as f64;
        1.0 + (boost - 1.0) * (-excess).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_67_percent_reduction_at_12_cores() {
        let m = BandwidthModel::lanl_dram();
        let big = 33 << 20; // the paper's 33 MB buffers
        let ratio = m.per_core(12, big) / m.per_core(1, big);
        assert!(
            (ratio - 0.33).abs() < 0.01,
            "per-core reduction should be ~67%, ratio={ratio}"
        );
    }

    #[test]
    fn per_core_is_monotonically_decreasing_in_concurrency() {
        let m = BandwidthModel::lanl_dram();
        let mut prev = f64::INFINITY;
        for n in 1..=16 {
            let bw = m.per_core(n, 33 << 20);
            assert!(bw < prev, "per-core bw must fall with concurrency");
            prev = bw;
        }
    }

    #[test]
    fn aggregate_is_monotonically_increasing() {
        let m = BandwidthModel::lanl_dram();
        let mut prev = 0.0;
        for n in 1..=16 {
            let agg = m.aggregate(n, 33 << 20);
            assert!(agg > prev, "aggregate bw must grow with concurrency");
            prev = agg;
        }
    }

    #[test]
    fn pcm_per_core_at_12_cores_matches_paper_estimate() {
        // Paper: "effective per core bandwidth can be as low as
        // 400 MB/Sec in a 12 core/node configuration" for a 2 GB/s NVM.
        let m = BandwidthModel::for_device(&DeviceParams::pcm());
        let bw = m.per_core(12, 33 << 20);
        assert!(
            (3.5e8..6.0e8).contains(&bw),
            "expected ~400-500 MB/s per core, got {bw:e}"
        );
    }

    #[test]
    fn small_buffers_get_cache_boost() {
        let m = BandwidthModel::lanl_dram();
        assert!(m.per_core(1, 1 << 20) > m.per_core(1, 128 << 20));
    }

    #[test]
    fn fixed_model_ignores_concurrency() {
        let m = BandwidthModel::fixed_per_core(4.0e8);
        assert_eq!(m.per_core(1, 1024), 4.0e8);
        assert_eq!(m.per_core(48, 400 << 20), 4.0e8);
        assert_eq!(m.aggregate(4, 1024), 1.6e9);
    }

    #[test]
    fn cache_factor_decays_smoothly() {
        let cap = 8 << 20;
        let at_cap = cache_factor(cap, cap, 1.5);
        let past = cache_factor(4 * cap, cap, 1.5);
        assert_eq!(at_cap, 1.5);
        assert!((1.0..1.05).contains(&past));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn fixed_model_rejects_zero() {
        let _ = BandwidthModel::fixed_per_core(0.0);
    }
}
