//! Emulated memory device.
//!
//! A [`MemoryDevice`] models one DRAM or NVM device in a node. It hands
//! out *regions* (contiguous logical byte ranges) and charges virtual
//! time for every read, write, and cache flush according to its
//! [`DeviceParams`] and [`BandwidthModel`].
//!
//! Two region flavors exist:
//!
//! * **materialized** — backed by real bytes. Used by the functional
//!   checkpoint path, examples, and all correctness/property tests, so
//!   checksums and restart actually verify data.
//! * **synthetic** — size-only. Used by paper-scale benches (48 ranks x
//!   410 MB) where only the *cost* of data movement matters; copying
//!   charges identical virtual time without allocating gigabytes.
//!
//! The device is passive with respect to time: operations return the
//! [`SimDuration`] they would take, and the caller advances its clock.
//! Concurrency (how many cores copy simultaneously) is an argument to
//! each transfer, because only the orchestration layer knows it.

use crate::bandwidth::BandwidthModel;
use crate::energy::EnergyMeter;
use crate::error::DeviceError;
use crate::params::{DeviceKind, DeviceParams};
use crate::spill::SpillStore;
use crate::time::{SimDuration, VirtualClock};
use crate::wearmap::WearMap;
use crate::{pages_for, PAGE_SIZE};
use nvm_metrics::{names, CounterHandle, Metrics};
use nvm_trace::{TraceEventKind, Tracer};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Identifier of a region on a device.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RegionId(pub u64);

/// Cache-line size for the flush cost model.
pub const CACHE_LINE: usize = 64;

/// Cost to flush one cache line to the persistence domain (clflush +
/// memory-controller drain, amortized).
pub const FLUSH_PER_LINE: SimDuration = SimDuration::from_nanos(10);

/// Aggregate statistics for a device.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceStats {
    /// Total bytes written (including synthetic writes).
    pub bytes_written: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Number of write operations.
    pub write_ops: u64,
    /// Number of read operations.
    pub read_ops: u64,
    /// Number of flush operations.
    pub flush_ops: u64,
    /// Virtual time the device spent busy, summed over operations.
    pub busy: SimDuration,
    /// Energy spent on writes.
    pub energy: EnergyMeter,
}

/// Backing storage of a region.
enum Backing {
    Bytes(Vec<u8>),
    /// Materialized, but the bytes live in the attached [`SpillStore`]
    /// instead of process RAM. Behaves exactly like `Bytes` through the
    /// public API (reads, snapshots, checksums all see real data).
    Spilled {
        slot: u64,
    },
    Synthetic,
}

struct Region {
    len: usize,
    backing: Backing,
    /// Writes per page of this region (wear tracking), compressed as
    /// equal-count segments so chunk-sized writes cost O(log segments)
    /// instead of O(pages).
    wear: WearMap,
}

impl Region {
    fn check_bounds(&self, id: RegionId, offset: usize, len: usize) -> Result<(), DeviceError> {
        if offset.checked_add(len).is_none_or(|end| end > self.len) {
            return Err(DeviceError::OutOfBounds {
                region: id.0,
                offset,
                len,
                region_len: self.len,
            });
        }
        Ok(())
    }

    fn record_page_writes(&mut self, offset: usize, len: usize) -> u64 {
        if len == 0 {
            return 0;
        }
        let first = (offset / PAGE_SIZE) as u64;
        let last = ((offset + len - 1) / PAGE_SIZE) as u64;
        self.wear.increment_range(first, last)
    }
}

/// Tracer attachment for a device. The device is passive (it has no
/// clock of its own), so the caller that owns the device's timeline
/// hands over the clock to stamp [`TraceEventKind::DeviceCharge`]
/// events with.
struct DeviceTracer {
    tracer: Tracer,
    clock: VirtualClock,
}

/// Metrics attachment for a device, with the per-kind counters
/// pre-resolved into lock-free cells at attach time so the charge
/// path is a couple of relaxed atomic adds — no registry mutex, no
/// name lookup. Counter adds are commutative, so unlike a tracer a
/// metrics handle may be attached to a device shared by
/// concurrently-executing ranks without breaking determinism.
struct DeviceMetrics {
    read_bytes: CounterHandle,
    write_bytes: CounterHandle,
    busy_ns: CounterHandle,
}

struct Inner {
    params: DeviceParams,
    model: BandwidthModel,
    capacity: usize,
    used: usize,
    next_id: u64,
    regions: HashMap<RegionId, Region>,
    stats: DeviceStats,
    /// When true, writes past the endurance limit return an error.
    strict_endurance: bool,
    /// Optional charge tracing; `None` (the default) costs one branch.
    tracer: Option<DeviceTracer>,
    /// Optional charge metrics; `None` (the default) costs one branch.
    metrics: Option<DeviceMetrics>,
    /// Optional spill backing: when present, materialized regions
    /// allocated afterwards keep their bytes here instead of in RAM.
    spill: Option<Box<dyn SpillStore>>,
}

/// Borrow only the `spill` field mutably (keeps borrows of other
/// `Inner` fields, like a looked-up region, alive across the call).
macro_rules! spill_of {
    ($g:expr) => {
        $g.spill
            .as_deref_mut()
            .expect("spilled region exists without a spill store")
    };
}

/// An emulated DRAM or NVM device. Cloning yields another handle to the
/// same device (it is internally shared), which is how the application
/// ranks and the asynchronous checkpoint helper see common state.
#[derive(Clone)]
pub struct MemoryDevice {
    inner: Arc<Mutex<Inner>>,
}

impl MemoryDevice {
    /// Create a device with the given parameters and capacity in bytes.
    /// The bandwidth model defaults to the contended Figure-4 curve for
    /// the device's peak bandwidth.
    pub fn new(params: DeviceParams, capacity: usize) -> Self {
        let model = BandwidthModel::for_device(&params);
        Self::with_model(params, capacity, model)
    }

    /// Create a device with an explicit bandwidth model (e.g. a fixed
    /// per-core bandwidth for the paper's x-axis sweeps).
    pub fn with_model(params: DeviceParams, capacity: usize, model: BandwidthModel) -> Self {
        MemoryDevice {
            inner: Arc::new(Mutex::new(Inner {
                params,
                model,
                capacity,
                used: 0,
                next_id: 1,
                regions: HashMap::new(),
                stats: DeviceStats::default(),
                strict_endurance: false,
                tracer: None,
                metrics: None,
                spill: None,
            })),
        }
    }

    /// Convenience: a PCM device of `capacity` bytes.
    pub fn pcm(capacity: usize) -> Self {
        Self::new(DeviceParams::pcm(), capacity)
    }

    /// Convenience: a DRAM device of `capacity` bytes.
    pub fn dram(capacity: usize) -> Self {
        Self::new(DeviceParams::dram(), capacity)
    }

    /// Replace the bandwidth model (used by sweeps that vary effective
    /// NVM bandwidth per core).
    pub fn set_model(&self, model: BandwidthModel) {
        self.inner.lock().model = model;
    }

    /// Enable or disable strict endurance checking.
    pub fn set_strict_endurance(&self, strict: bool) {
        self.inner.lock().strict_endurance = strict;
    }

    /// Attach a tracer: every subsequent read/write/flush charge emits
    /// a [`TraceEventKind::DeviceCharge`] event stamped with `clock`'s
    /// current virtual time. The device is passive, so the clock must
    /// be the one the device's caller advances. Only attach a tracer
    /// when the device has a single timeline owner — a device shared
    /// by concurrently-executing ranks would interleave events
    /// nondeterministically.
    pub fn set_tracer(&self, tracer: Tracer, clock: VirtualClock) {
        self.inner.lock().tracer = if tracer.enabled() {
            Some(DeviceTracer { tracer, clock })
        } else {
            None
        };
    }

    /// Detach any tracer attached with [`MemoryDevice::set_tracer`].
    pub fn clear_tracer(&self) {
        self.inner.lock().tracer = None;
    }

    /// Attach a metrics handle: every subsequent read/write/flush
    /// charge adds to `dev_<kind>_{read,write}_bytes_total` and
    /// `dev_<kind>_busy_ns_total`. Counter updates are commutative, so
    /// this is safe on a device shared by concurrent ranks (unlike
    /// [`MemoryDevice::set_tracer`]).
    pub fn set_metrics(&self, metrics: Metrics) {
        let mut g = self.inner.lock();
        let kind = g.params.kind.name();
        g.metrics = if metrics.enabled() {
            Some(DeviceMetrics {
                read_bytes: metrics.counter_handle(names::device_read_bytes_total(kind)),
                write_bytes: metrics.counter_handle(names::device_write_bytes_total(kind)),
                busy_ns: metrics.counter_handle(names::device_busy_ns_total(kind)),
            })
        } else {
            None
        };
    }

    /// Detach any metrics handle attached with
    /// [`MemoryDevice::set_metrics`].
    pub fn clear_metrics(&self) {
        self.inner.lock().metrics = None;
    }

    /// Device parameter block.
    pub fn params(&self) -> DeviceParams {
        self.inner.lock().params
    }

    /// Device kind.
    pub fn kind(&self) -> DeviceKind {
        self.inner.lock().params.kind
    }

    /// Whether region contents survive process restart.
    pub fn is_persistent(&self) -> bool {
        self.kind().is_persistent()
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> usize {
        self.inner.lock().used
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity
    }

    /// Bytes still available.
    pub fn available(&self) -> usize {
        let g = self.inner.lock();
        g.capacity - g.used
    }

    /// Snapshot of the device statistics.
    pub fn stats(&self) -> DeviceStats {
        self.inner.lock().stats
    }

    /// Attach a spill store: materialized regions allocated from now on
    /// keep their bytes in `store` instead of process RAM. Costs, wear,
    /// statistics, and metrics are charged by the exact same code as
    /// RAM-backed regions, so simulation results are unaffected —
    /// only the process's resident set shrinks. Regions allocated
    /// before the attach keep their RAM backing.
    pub fn attach_spill(&self, store: Box<dyn SpillStore>) {
        self.inner.lock().spill = Some(store);
    }

    /// Bytes currently held in the attached spill store (0 without one).
    pub fn spill_live_bytes(&self) -> u64 {
        self.inner
            .lock()
            .spill
            .as_ref()
            .map_or(0, |s| s.live_bytes())
    }

    /// High-water mark of spilled bytes over the device's lifetime —
    /// the RAM an unspilled device would have needed for the same
    /// regions at their peak (0 without a spill store).
    pub fn spill_peak_bytes(&self) -> u64 {
        self.inner
            .lock()
            .spill
            .as_ref()
            .map_or(0, |s| s.peak_bytes())
    }

    /// Bytes of materialized region content resident in process RAM
    /// (spilled and synthetic regions contribute nothing).
    pub fn resident_bytes(&self) -> u64 {
        let g = self.inner.lock();
        g.regions
            .values()
            .map(|r| match &r.backing {
                Backing::Bytes(b) => b.len() as u64,
                _ => 0,
            })
            .sum()
    }

    /// Allocate a materialized (zero-filled) region of `len` bytes.
    pub fn alloc(&self, len: usize) -> Result<RegionId, DeviceError> {
        self.alloc_inner(len, true)
    }

    /// Allocate a synthetic (size-only) region of `len` bytes.
    pub fn alloc_synthetic(&self, len: usize) -> Result<RegionId, DeviceError> {
        self.alloc_inner(len, false)
    }

    fn alloc_inner(&self, len: usize, materialized: bool) -> Result<RegionId, DeviceError> {
        let mut g = self.inner.lock();
        let available = g.capacity - g.used;
        if len > available {
            return Err(DeviceError::OutOfCapacity {
                requested: len,
                available,
            });
        }
        let backing = if materialized {
            match g.spill.as_deref_mut() {
                Some(spill) => {
                    let slot = spill
                        .alloc(len)
                        .map_err(|e| DeviceError::Spill(e.to_string()))?;
                    Backing::Spilled { slot }
                }
                None => Backing::Bytes(vec![0u8; len]),
            }
        } else {
            Backing::Synthetic
        };
        let id = RegionId(g.next_id);
        g.next_id += 1;
        g.used += len;
        g.regions.insert(
            id,
            Region {
                len,
                backing,
                wear: WearMap::new(pages_for(len).max(1)),
            },
        );
        Ok(id)
    }

    /// Free a region, reclaiming its capacity.
    pub fn free(&self, id: RegionId) -> Result<(), DeviceError> {
        let mut g = self.inner.lock();
        let region = g
            .regions
            .remove(&id)
            .ok_or(DeviceError::NoSuchRegion(id.0))?;
        g.used -= region.len;
        if let Backing::Spilled { slot } = region.backing {
            spill_of!(g).free(slot, region.len);
        }
        Ok(())
    }

    /// Length of a region in bytes.
    pub fn region_len(&self, id: RegionId) -> Result<usize, DeviceError> {
        let g = self.inner.lock();
        g.regions
            .get(&id)
            .map(|r| r.len)
            .ok_or(DeviceError::NoSuchRegion(id.0))
    }

    /// True if the region is materialized (byte-backed).
    pub fn is_materialized(&self, id: RegionId) -> Result<bool, DeviceError> {
        let g = self.inner.lock();
        g.regions
            .get(&id)
            .map(|r| !matches!(r.backing, Backing::Synthetic))
            .ok_or(DeviceError::NoSuchRegion(id.0))
    }

    /// Write `data` at `offset`, modeled as one of `concurrency`
    /// simultaneous streams. Returns the virtual time the write takes.
    pub fn write(
        &self,
        id: RegionId,
        offset: usize,
        data: &[u8],
        concurrency: usize,
    ) -> Result<SimDuration, DeviceError> {
        let mut g = self.inner.lock();
        let g = &mut *g;
        let cost = g.write_common(id, offset, data.len(), concurrency)?;
        let region = g.regions.get_mut(&id).expect("checked by write_common");
        match &mut region.backing {
            Backing::Bytes(bytes) => {
                bytes[offset..offset + data.len()].copy_from_slice(data);
            }
            Backing::Spilled { slot } => {
                let slot = *slot;
                spill_of!(g)
                    .write(slot, offset, data)
                    .map_err(|e| DeviceError::Spill(e.to_string()))?;
            }
            Backing::Synthetic => {}
        }
        Ok(cost)
    }

    /// Charge the cost of writing `len` bytes at `offset` without
    /// transferring real data. Valid on both synthetic and materialized
    /// regions (on the latter it models a write whose content is
    /// irrelevant to the experiment).
    pub fn write_synthetic(
        &self,
        id: RegionId,
        offset: usize,
        len: usize,
        concurrency: usize,
    ) -> Result<SimDuration, DeviceError> {
        self.inner.lock().write_common(id, offset, len, concurrency)
    }

    /// Read `buf.len()` bytes from `offset` into `buf`. Returns the
    /// virtual read time. Errors on synthetic regions.
    pub fn read(
        &self,
        id: RegionId,
        offset: usize,
        buf: &mut [u8],
        concurrency: usize,
    ) -> Result<SimDuration, DeviceError> {
        let mut g = self.inner.lock();
        let g = &mut *g;
        let region = g.regions.get(&id).ok_or(DeviceError::NoSuchRegion(id.0))?;
        region.check_bounds(id, offset, buf.len())?;
        match &region.backing {
            Backing::Synthetic => return Err(DeviceError::SyntheticAccess(id.0)),
            Backing::Bytes(bytes) => {
                buf.copy_from_slice(&bytes[offset..offset + buf.len()]);
            }
            Backing::Spilled { slot } => {
                let slot = *slot;
                spill_of!(g)
                    .read(slot, offset, buf)
                    .map_err(|e| DeviceError::Spill(e.to_string()))?;
            }
        }
        Ok(g.charge_read(buf.len(), concurrency))
    }

    /// Charge the cost of reading `len` bytes without materializing them.
    pub fn read_synthetic(
        &self,
        id: RegionId,
        offset: usize,
        len: usize,
        concurrency: usize,
    ) -> Result<SimDuration, DeviceError> {
        let mut g = self.inner.lock();
        let region = g.regions.get(&id).ok_or(DeviceError::NoSuchRegion(id.0))?;
        region.check_bounds(id, offset, len)?;
        Ok(g.charge_read(len, concurrency))
    }

    /// Place bytes into a materialized region without charging time,
    /// statistics, or wear. This is *not* a modeled operation: it
    /// reconstitutes emulator state that conceptually survived a
    /// process failure (e.g. re-loading a durable store file into a
    /// fresh NVM device on restart — on real hardware those bytes
    /// never left the medium).
    pub fn restore_bytes(
        &self,
        id: RegionId,
        offset: usize,
        data: &[u8],
    ) -> Result<(), DeviceError> {
        let mut g = self.inner.lock();
        let g = &mut *g;
        let region = g.regions.get(&id).ok_or(DeviceError::NoSuchRegion(id.0))?;
        region.check_bounds(id, offset, data.len())?;
        let region = g.regions.get_mut(&id).expect("checked above");
        match &mut region.backing {
            Backing::Bytes(bytes) => {
                bytes[offset..offset + data.len()].copy_from_slice(data);
                Ok(())
            }
            Backing::Spilled { slot } => {
                let slot = *slot;
                spill_of!(g)
                    .write(slot, offset, data)
                    .map_err(|e| DeviceError::Spill(e.to_string()))
            }
            Backing::Synthetic => Err(DeviceError::SyntheticAccess(id.0)),
        }
    }

    /// Copy of a materialized region's bytes (for checksumming/restart).
    pub fn snapshot(&self, id: RegionId) -> Result<Vec<u8>, DeviceError> {
        let mut g = self.inner.lock();
        let g = &mut *g;
        let region = g.regions.get(&id).ok_or(DeviceError::NoSuchRegion(id.0))?;
        match &region.backing {
            Backing::Bytes(bytes) => Ok(bytes.clone()),
            Backing::Spilled { slot } => {
                let (slot, len) = (*slot, region.len);
                let mut buf = vec![0u8; len];
                spill_of!(g)
                    .read(slot, 0, &mut buf)
                    .map_err(|e| DeviceError::Spill(e.to_string()))?;
                Ok(buf)
            }
            Backing::Synthetic => Err(DeviceError::SyntheticAccess(id.0)),
        }
    }

    /// Flush `len` bytes of a region from the processor cache to the
    /// persistence domain (the paper flushes before marking a checkpoint
    /// consistent). Cost: one [`FLUSH_PER_LINE`] per cache line.
    pub fn flush(&self, id: RegionId, len: usize) -> Result<SimDuration, DeviceError> {
        let mut g = self.inner.lock();
        let region = g.regions.get(&id).ok_or(DeviceError::NoSuchRegion(id.0))?;
        let len = len.min(region.len);
        let lines = len.div_ceil(CACHE_LINE) as u64;
        let cost = FLUSH_PER_LINE * lines;
        g.stats.flush_ops += 1;
        g.stats.busy += cost;
        g.trace_charge("flush", len as u64, cost);
        if let Some(dm) = &g.metrics {
            dm.busy_ns.add(cost.as_nanos());
        }
        Ok(cost)
    }

    /// Maximum per-page write count observed on a region (wear).
    pub fn max_wear(&self, id: RegionId) -> Result<u64, DeviceError> {
        let g = self.inner.lock();
        g.regions
            .get(&id)
            .map(|r| r.wear.max())
            .ok_or(DeviceError::NoSuchRegion(id.0))
    }

    /// Fraction of the endurance budget consumed by the hottest page of
    /// the hottest region, in [0, 1+].
    pub fn wear_fraction(&self) -> f64 {
        let g = self.inner.lock();
        let max = g.regions.values().map(|r| r.wear.max()).max().unwrap_or(0);
        max as f64 / g.params.write_endurance as f64
    }

    /// Destroy all contents (hard failure: the node's NVM is lost).
    pub fn destroy(&self) {
        let mut g = self.inner.lock();
        let g = &mut *g;
        for (_, region) in g.regions.drain() {
            if let Backing::Spilled { slot } = region.backing {
                spill_of!(g).free(slot, region.len);
            }
        }
        g.used = 0;
    }

    /// Number of live regions.
    pub fn region_count(&self) -> usize {
        self.inner.lock().regions.len()
    }

    /// Effective per-core bandwidth for `concurrency` streams and
    /// buffers of `buffer_bytes` (exposes the model for planners: the
    /// DCPC threshold needs `NVMBW_core`).
    pub fn per_core_bandwidth(&self, concurrency: usize, buffer_bytes: usize) -> f64 {
        self.inner.lock().model.per_core(concurrency, buffer_bytes)
    }
}

impl Inner {
    fn write_common(
        &mut self,
        id: RegionId,
        offset: usize,
        len: usize,
        concurrency: usize,
    ) -> Result<SimDuration, DeviceError> {
        let params = self.params;
        let model = self.model;
        let strict = self.strict_endurance;
        let region = self
            .regions
            .get_mut(&id)
            .ok_or(DeviceError::NoSuchRegion(id.0))?;
        region.check_bounds(id, offset, len)?;
        let max_wear = region.record_page_writes(offset, len);
        if strict && max_wear > params.write_endurance {
            return Err(DeviceError::EnduranceExceeded {
                region: id.0,
                writes: max_wear,
                limit: params.write_endurance,
            });
        }
        // The model already encodes this device's peak bandwidth (or a
        // fixed per-core override); floor it to avoid degenerate zero.
        let stream_bw = model.per_core(concurrency, len).max(1.0);
        let transfer = SimDuration::for_transfer(len as u64, stream_bw);
        let latency = params.page_write_latency * pages_for(len.max(1)) as u64;
        let cost = transfer + latency;
        self.stats.bytes_written += len as u64;
        self.stats.write_ops += 1;
        self.stats.busy += cost;
        self.stats
            .energy
            .charge_write(len as u64, params.write_energy_pj_per_bit);
        self.trace_charge("write", len as u64, cost);
        if let Some(dm) = &self.metrics {
            dm.write_bytes.add(len as u64);
            dm.busy_ns.add(cost.as_nanos());
        }
        Ok(cost)
    }

    fn charge_read(&mut self, len: usize, concurrency: usize) -> SimDuration {
        let params = self.params;
        // Reads contend like writes but against the read bandwidth.
        let write_bw = self.model.per_core(concurrency, len).max(1.0);
        let read_bw = write_bw * (params.read_bandwidth / params.write_bandwidth);
        let transfer = SimDuration::for_transfer(len as u64, read_bw.max(1.0));
        let latency = params.page_read_latency * pages_for(len.max(1)) as u64;
        let cost = transfer + latency;
        self.stats.bytes_read += len as u64;
        self.stats.read_ops += 1;
        self.stats.busy += cost;
        self.trace_charge("read", len as u64, cost);
        if let Some(dm) = &self.metrics {
            dm.read_bytes.add(len as u64);
            dm.busy_ns.add(cost.as_nanos());
        }
        cost
    }

    fn trace_charge(&self, op: &str, bytes: u64, cost: SimDuration) {
        if let Some(dt) = &self.tracer {
            dt.tracer.emit(
                dt.clock.now().as_nanos(),
                TraceEventKind::DeviceCharge {
                    device: self.params.kind.name().to_string(),
                    op: op.to_string(),
                    bytes,
                    cost_ns: cost.as_nanos(),
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: usize = 1 << 20;

    #[test]
    fn alloc_free_accounting() {
        let d = MemoryDevice::pcm(10 * MB);
        let a = d.alloc(4 * MB).unwrap();
        let b = d.alloc_synthetic(4 * MB).unwrap();
        assert_eq!(d.used(), 8 * MB);
        assert_eq!(d.available(), 2 * MB);
        assert!(matches!(
            d.alloc(4 * MB),
            Err(DeviceError::OutOfCapacity { .. })
        ));
        d.free(a).unwrap();
        d.free(b).unwrap();
        assert_eq!(d.used(), 0);
        assert!(matches!(d.free(a), Err(DeviceError::NoSuchRegion(_))));
    }

    #[test]
    fn write_read_roundtrip() {
        let d = MemoryDevice::pcm(MB);
        let r = d.alloc(1024).unwrap();
        let data: Vec<u8> = (0..1024).map(|i| (i % 251) as u8).collect();
        let wcost = d.write(r, 0, &data, 1).unwrap();
        assert!(!wcost.is_zero());
        let mut buf = vec![0u8; 1024];
        let rcost = d.read(r, 0, &mut buf, 1).unwrap();
        assert_eq!(buf, data);
        // PCM: writes much slower than reads.
        assert!(wcost > rcost, "wcost={wcost} rcost={rcost}");
    }

    #[test]
    fn partial_write_preserves_rest() {
        let d = MemoryDevice::dram(MB);
        let r = d.alloc(100).unwrap();
        d.write(r, 10, &[7; 20], 1).unwrap();
        let snap = d.snapshot(r).unwrap();
        assert!(snap[..10].iter().all(|&b| b == 0));
        assert!(snap[10..30].iter().all(|&b| b == 7));
        assert!(snap[30..].iter().all(|&b| b == 0));
    }

    #[test]
    fn out_of_bounds_rejected() {
        let d = MemoryDevice::pcm(MB);
        let r = d.alloc(100).unwrap();
        assert!(matches!(
            d.write(r, 90, &[0; 20], 1),
            Err(DeviceError::OutOfBounds { .. })
        ));
        let mut buf = [0u8; 20];
        assert!(matches!(
            d.read(r, 90, &mut buf, 1),
            Err(DeviceError::OutOfBounds { .. })
        ));
        // offset overflow must not panic
        assert!(matches!(
            d.write(r, usize::MAX, &[0; 2], 1),
            Err(DeviceError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn synthetic_regions_charge_time_but_hold_no_bytes() {
        let d = MemoryDevice::pcm(100 * MB);
        let r = d.alloc_synthetic(50 * MB).unwrap();
        let cost = d.write_synthetic(r, 0, 50 * MB, 1).unwrap();
        assert!(cost.as_secs_f64() > 0.01); // 50 MB at <= 2 GB/s
        let mut buf = [0u8; 16];
        assert!(matches!(
            d.read(r, 0, &mut buf, 1),
            Err(DeviceError::SyntheticAccess(_))
        ));
        assert!(matches!(
            d.snapshot(r),
            Err(DeviceError::SyntheticAccess(_))
        ));
        // but cost-only reads work
        assert!(d.read_synthetic(r, 0, MB, 1).is_ok());
    }

    #[test]
    fn concurrency_slows_per_stream_writes() {
        let d = MemoryDevice::pcm(100 * MB);
        let r = d.alloc_synthetic(33 * MB).unwrap();
        let solo = d.write_synthetic(r, 0, 33 * MB, 1).unwrap();
        let contended = d.write_synthetic(r, 0, 33 * MB, 12).unwrap();
        let ratio = contended.as_secs_f64() / solo.as_secs_f64();
        assert!(
            ratio > 2.0,
            "12-way contention should be >2x slower: {ratio}"
        );
    }

    #[test]
    fn pcm_slower_than_dram() {
        let pcm = MemoryDevice::pcm(100 * MB);
        let dram = MemoryDevice::dram(100 * MB);
        let rp = pcm.alloc_synthetic(10 * MB).unwrap();
        let rd = dram.alloc_synthetic(10 * MB).unwrap();
        let cp = pcm.write_synthetic(rp, 0, 10 * MB, 1).unwrap();
        let cd = dram.write_synthetic(rd, 0, 10 * MB, 1).unwrap();
        let ratio = cp.as_secs_f64() / cd.as_secs_f64();
        assert!(ratio > 3.0, "PCM writes should be ~4x slower: {ratio}");
    }

    #[test]
    fn stats_accumulate() {
        let d = MemoryDevice::pcm(MB);
        let r = d.alloc(4096).unwrap();
        d.write(r, 0, &[1; 4096], 1).unwrap();
        let mut buf = vec![0u8; 4096];
        d.read(r, 0, &mut buf, 1).unwrap();
        d.flush(r, 4096).unwrap();
        let s = d.stats();
        assert_eq!(s.bytes_written, 4096);
        assert_eq!(s.bytes_read, 4096);
        assert_eq!(s.write_ops, 1);
        assert_eq!(s.read_ops, 1);
        assert_eq!(s.flush_ops, 1);
        assert!(s.energy.joules() > 0.0);
        assert!(!s.busy.is_zero());
    }

    #[test]
    fn flush_cost_scales_with_lines() {
        let d = MemoryDevice::pcm(MB);
        let r = d.alloc(128 * 1024).unwrap();
        let small = d.flush(r, 64).unwrap();
        let big = d.flush(r, 64 * 1024).unwrap();
        assert_eq!(small, FLUSH_PER_LINE);
        assert_eq!(big, FLUSH_PER_LINE * 1024);
    }

    #[test]
    fn wear_tracking_counts_page_writes() {
        let d = MemoryDevice::pcm(MB);
        let r = d.alloc(2 * PAGE_SIZE).unwrap();
        for _ in 0..5 {
            d.write(r, 0, &[1; 64], 1).unwrap();
        }
        d.write(r, PAGE_SIZE, &[1; 64], 1).unwrap();
        assert_eq!(d.max_wear(r).unwrap(), 5);
        assert!(d.wear_fraction() > 0.0);
    }

    #[test]
    fn strict_endurance_errors_out() {
        let mut params = DeviceParams::pcm();
        params.write_endurance = 3;
        let d = MemoryDevice::new(params, MB);
        d.set_strict_endurance(true);
        let r = d.alloc(64).unwrap();
        for _ in 0..3 {
            d.write(r, 0, &[1; 8], 1).unwrap();
        }
        assert!(matches!(
            d.write(r, 0, &[1; 8], 1),
            Err(DeviceError::EnduranceExceeded { .. })
        ));
    }

    #[test]
    fn destroy_clears_contents() {
        let d = MemoryDevice::pcm(MB);
        let r = d.alloc(1024).unwrap();
        d.destroy();
        assert_eq!(d.region_count(), 0);
        assert_eq!(d.used(), 0);
        assert!(matches!(
            d.write(r, 0, &[1; 8], 1),
            Err(DeviceError::NoSuchRegion(_))
        ));
    }

    #[test]
    fn shared_handles_see_same_device() {
        let d = MemoryDevice::pcm(MB);
        let d2 = d.clone();
        let r = d.alloc(128).unwrap();
        d2.write(r, 0, &[9; 128], 1).unwrap();
        assert_eq!(d.snapshot(r).unwrap(), vec![9u8; 128]);
    }

    #[test]
    fn attached_tracer_records_charges() {
        let d = MemoryDevice::pcm(MB);
        let clock = VirtualClock::new();
        let sink = std::sync::Arc::new(nvm_trace::BufferSink::new());
        d.set_tracer(Tracer::new(sink.clone()), clock.clone());
        let r = d.alloc(4096).unwrap();
        let cost = d.write(r, 0, &[1; 4096], 1).unwrap();
        clock.advance(cost);
        d.flush(r, 4096).unwrap();
        let events = sink.drain();
        assert_eq!(events.len(), 2);
        match &events[0].kind {
            TraceEventKind::DeviceCharge {
                device,
                op,
                bytes,
                cost_ns,
            } => {
                assert_eq!(device, "pcm");
                assert_eq!(op, "write");
                assert_eq!(*bytes, 4096);
                assert_eq!(*cost_ns, cost.as_nanos());
            }
            other => panic!("expected DeviceCharge, got {other:?}"),
        }
        // The write was stamped before the clock advanced; the flush
        // after.
        assert_eq!(events[0].t_ns, 0);
        assert_eq!(events[1].t_ns, cost.as_nanos());

        // A disabled tracer detaches cleanly.
        d.set_tracer(Tracer::disabled(), clock.clone());
        d.flush(r, 64).unwrap();
        assert!(sink.is_empty());
    }

    #[test]
    fn attached_metrics_mirror_device_stats() {
        let d = MemoryDevice::pcm(MB);
        let m = Metrics::new();
        d.set_metrics(m.clone());
        let r = d.alloc(4096).unwrap();
        d.write(r, 0, &[1; 4096], 1).unwrap();
        let mut buf = vec![0u8; 1024];
        d.read(r, 0, &mut buf, 1).unwrap();
        d.flush(r, 4096).unwrap();
        let snap = m.registry().snapshot();
        let s = d.stats();
        assert_eq!(snap.counter("dev_pcm_write_bytes_total"), s.bytes_written);
        assert_eq!(snap.counter("dev_pcm_read_bytes_total"), s.bytes_read);
        assert_eq!(snap.counter("dev_pcm_busy_ns_total"), s.busy.as_nanos());

        // Commutative counter adds: a device shared by threads ends up
        // with the same totals regardless of interleaving.
        let before = m.registry().snapshot().counter("dev_pcm_write_bytes_total");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let d = d.clone();
                scope.spawn(move || {
                    for _ in 0..8 {
                        d.write(r, 0, &[2; 512], 1).unwrap();
                    }
                });
            }
        });
        let after = m.registry().snapshot().counter("dev_pcm_write_bytes_total");
        assert_eq!(after - before, 4 * 8 * 512);

        // Detaching stops recording.
        d.clear_metrics();
        d.write(r, 0, &[3; 64], 1).unwrap();
        assert_eq!(
            m.registry().snapshot().counter("dev_pcm_write_bytes_total"),
            after
        );
    }

    #[test]
    fn spilled_regions_behave_like_ram_backed_at_identical_cost() {
        use crate::spill::MemSpill;
        let plain = MemoryDevice::pcm(MB);
        let spilly = MemoryDevice::pcm(MB);
        spilly.attach_spill(Box::new(MemSpill::new()));

        let rp = plain.alloc(4096).unwrap();
        let rs = spilly.alloc(4096).unwrap();
        assert!(spilly.is_materialized(rs).unwrap());
        assert_eq!(spilly.resident_bytes(), 0, "bytes live in the spill store");
        assert_eq!(spilly.spill_live_bytes(), 4096);

        // Fresh regions read back zeros either way.
        assert_eq!(spilly.snapshot(rs).unwrap(), vec![0u8; 4096]);

        // Identical virtual-time charges, stats, and wear for the same
        // operation sequence — spilling must not perturb the model.
        let data: Vec<u8> = (0..4096).map(|i| (i % 253) as u8).collect();
        let wp = plain.write(rp, 128, &data[..1024], 2).unwrap();
        let ws = spilly.write(rs, 128, &data[..1024], 2).unwrap();
        assert_eq!(wp, ws);
        let mut bp = vec![0u8; 1024];
        let mut bs = vec![0u8; 1024];
        let rp_cost = plain.read(rp, 128, &mut bp, 2).unwrap();
        let rs_cost = spilly.read(rs, 128, &mut bs, 2).unwrap();
        assert_eq!(rp_cost, rs_cost);
        assert_eq!(bp, bs);
        assert_eq!(bs, data[..1024]);
        assert_eq!(plain.stats(), spilly.stats());
        assert_eq!(plain.max_wear(rp).unwrap(), spilly.max_wear(rs).unwrap());

        // restore_bytes and snapshot round-trip through the spill.
        spilly.restore_bytes(rs, 0, &data).unwrap();
        assert_eq!(spilly.snapshot(rs).unwrap(), data);

        // free and destroy release spill slots.
        let extra = spilly.alloc(512).unwrap();
        assert_eq!(spilly.spill_live_bytes(), 4096 + 512);
        spilly.free(extra).unwrap();
        assert_eq!(spilly.spill_live_bytes(), 4096);
        spilly.destroy();
        assert_eq!(spilly.spill_live_bytes(), 0);
        assert_eq!(spilly.spill_peak_bytes(), 4096 + 512, "peak survives");
    }

    #[test]
    fn attach_spill_leaves_existing_regions_resident() {
        use crate::spill::MemSpill;
        let d = MemoryDevice::dram(MB);
        let before = d.alloc(256).unwrap();
        d.attach_spill(Box::new(MemSpill::new()));
        let after = d.alloc(256).unwrap();
        d.write(before, 0, &[1; 256], 1).unwrap();
        d.write(after, 0, &[2; 256], 1).unwrap();
        assert_eq!(d.resident_bytes(), 256);
        assert_eq!(d.spill_live_bytes(), 256);
        assert_eq!(d.snapshot(before).unwrap(), vec![1u8; 256]);
        assert_eq!(d.snapshot(after).unwrap(), vec![2u8; 256]);
    }

    #[test]
    fn zero_length_ops_are_ok() {
        let d = MemoryDevice::pcm(MB);
        let r = d.alloc(16).unwrap();
        assert!(d.write(r, 0, &[], 1).is_ok());
        assert!(d.write(r, 16, &[], 1).is_ok());
        let mut buf = [0u8; 0];
        assert!(d.read(r, 16, &mut buf, 1).is_ok());
    }
}
