//! Device error types and the shared error-enum plumbing macro.

/// Implement `From`, `Display`, and `std::error::Error::source` for an
/// error enum in one place.
///
/// Every error enum in this workspace has the same shape: some
/// *wrapper* variants holding a lower-layer error (which want a
/// `From` impl, a `"label: {inner}"` display, and a `source()` chain)
/// plus some *leaf* variants with their own message. Before this
/// macro each crate hand-wrote the three impls; now they declare:
///
/// ```
/// #[non_exhaustive]
/// #[derive(Debug)]
/// pub enum MyError {
///     Device(nvm_emu::DeviceError),
///     Empty { name: String },
/// }
/// nvm_emu::error_enum! {
///     MyError, f {
///         wrap Device(nvm_emu::DeviceError) => "device",
///         leaf MyError::Empty { name } => write!(f, "{name} is empty"),
///     }
/// }
/// ```
///
/// `f` names the `fmt::Formatter` binding the `leaf` arms may use
/// (passed explicitly because macro hygiene would otherwise hide it).
/// `wrap` variants chain: `source()` returns the wrapped error, so
/// callers can walk `EngineError -> HeapError -> DeviceError`.
#[macro_export]
macro_rules! error_enum {
    (
        $err:ident, $f:ident {
            $( wrap $wvar:ident($winner:ty) => $wlabel:literal, )*
            $( leaf $lpat:pat => $lexpr:expr, )*
        }
    ) => {
        $(
            impl ::std::convert::From<$winner> for $err {
                fn from(e: $winner) -> Self {
                    $err::$wvar(e)
                }
            }
        )*

        impl ::std::fmt::Display for $err {
            fn fmt(&self, $f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                // `#[non_exhaustive]` does not apply inside the
                // defining crate, so this match is still checked for
                // exhaustiveness where the macro is invoked.
                match self {
                    $( $err::$wvar(e) => ::std::write!($f, concat!($wlabel, ": {}"), e), )*
                    $( $lpat => $lexpr, )*
                }
            }
        }

        impl ::std::error::Error for $err {
            fn source(&self) -> ::std::option::Option<&(dyn ::std::error::Error + 'static)> {
                #[allow(unreachable_patterns)]
                match self {
                    $( $err::$wvar(e) => ::std::option::Option::Some(e), )*
                    _ => ::std::option::Option::None,
                }
            }
        }
    };
}

/// Errors reported by the emulated memory devices.
#[non_exhaustive]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeviceError {
    /// Allocation would exceed device capacity.
    OutOfCapacity {
        /// Bytes requested by the failing allocation.
        requested: usize,
        /// Bytes still available on the device.
        available: usize,
    },
    /// The region id is unknown (never allocated or already freed).
    NoSuchRegion(u64),
    /// An access fell outside the region bounds.
    OutOfBounds {
        /// Region being accessed.
        region: u64,
        /// Starting offset of the access.
        offset: usize,
        /// Length of the access.
        len: usize,
        /// Total region length.
        region_len: usize,
    },
    /// Byte-level read from a synthetic (size-only) region.
    SyntheticAccess(u64),
    /// A write exceeded the device's endurance budget (only raised when
    /// strict wear checking is enabled).
    EnduranceExceeded {
        /// Region whose wear crossed the endurance limit.
        region: u64,
        /// Writes observed on the hottest page of that region.
        writes: u64,
        /// The device's endurance limit.
        limit: u64,
    },
    /// The attached spill store failed an I/O operation (message from
    /// the underlying `io::Error`; kept as a string so the variant
    /// stays `Clone + PartialEq` like the rest of the enum).
    Spill(String),
}

crate::error_enum! {
    DeviceError, f {
        leaf DeviceError::OutOfCapacity { requested, available } => write!(
            f,
            "out of device capacity: requested {requested} bytes, {available} available"
        ),
        leaf DeviceError::NoSuchRegion(id) => write!(f, "no such region: {id}"),
        leaf DeviceError::OutOfBounds { region, offset, len, region_len } => write!(
            f,
            "access [{offset}, {}) out of bounds for region {region} of length {region_len}",
            offset + len
        ),
        leaf DeviceError::SyntheticAccess(id) =>
            write!(f, "byte-level read from synthetic region {id}"),
        leaf DeviceError::EnduranceExceeded { region, writes, limit } => write!(
            f,
            "endurance exceeded on region {region}: {writes} writes > limit {limit}"
        ),
        leaf DeviceError::Spill(msg) => write!(f, "spill store I/O failed: {msg}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_matches_hand_written_forms() {
        assert_eq!(
            DeviceError::NoSuchRegion(7).to_string(),
            "no such region: 7"
        );
        assert_eq!(
            DeviceError::OutOfCapacity {
                requested: 10,
                available: 4
            }
            .to_string(),
            "out of device capacity: requested 10 bytes, 4 available"
        );
    }

    #[test]
    fn leaf_errors_have_no_source() {
        assert!(DeviceError::SyntheticAccess(1).source().is_none());
    }
}
