//! Device error types.

use std::fmt;

/// Errors reported by the emulated memory devices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeviceError {
    /// Allocation would exceed device capacity.
    OutOfCapacity {
        /// Bytes requested by the failing allocation.
        requested: usize,
        /// Bytes still available on the device.
        available: usize,
    },
    /// The region id is unknown (never allocated or already freed).
    NoSuchRegion(u64),
    /// An access fell outside the region bounds.
    OutOfBounds {
        /// Region being accessed.
        region: u64,
        /// Starting offset of the access.
        offset: usize,
        /// Length of the access.
        len: usize,
        /// Total region length.
        region_len: usize,
    },
    /// Byte-level read from a synthetic (size-only) region.
    SyntheticAccess(u64),
    /// A write exceeded the device's endurance budget (only raised when
    /// strict wear checking is enabled).
    EnduranceExceeded {
        /// Region whose wear crossed the endurance limit.
        region: u64,
        /// Writes observed on the hottest page of that region.
        writes: u64,
        /// The device's endurance limit.
        limit: u64,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::OutOfCapacity {
                requested,
                available,
            } => write!(
                f,
                "out of device capacity: requested {requested} bytes, {available} available"
            ),
            DeviceError::NoSuchRegion(id) => write!(f, "no such region: {id}"),
            DeviceError::OutOfBounds {
                region,
                offset,
                len,
                region_len,
            } => write!(
                f,
                "access [{offset}, {}) out of bounds for region {region} of length {region_len}",
                offset + len
            ),
            DeviceError::SyntheticAccess(id) => {
                write!(f, "byte-level read from synthetic region {id}")
            }
            DeviceError::EnduranceExceeded {
                region,
                writes,
                limit,
            } => write!(
                f,
                "endurance exceeded on region {region}: {writes} writes > limit {limit}"
            ),
        }
    }
}

impl std::error::Error for DeviceError {}
