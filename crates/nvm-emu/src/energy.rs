//! Write-energy accounting.
//!
//! Table I notes PCM writes cost ~40x the energy per bit of DRAM
//! writes. The checkpoint engine uses this to report the energy cost of
//! a checkpointing policy; the pre-copy ablations show that repeated
//! pre-copies of hot chunks waste energy as well as bandwidth, which is
//! exactly what the DCPCP prediction scheme suppresses.

use serde::{Deserialize, Serialize};

/// Accumulated energy spent on a device, in joules.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyMeter {
    joules: f64,
}

impl EnergyMeter {
    /// A meter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge the energy for writing `bytes` at `pj_per_bit` picojoules
    /// per bit.
    pub fn charge_write(&mut self, bytes: u64, pj_per_bit: f64) {
        // bits * pJ/bit -> pJ -> J
        self.joules += bytes as f64 * 8.0 * pj_per_bit * 1e-12;
    }

    /// Total joules accumulated.
    pub fn joules(&self) -> f64 {
        self.joules
    }

    /// Fold another meter into this one.
    pub fn merge(&mut self, other: &EnergyMeter) {
        self.joules += other.joules;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::DeviceParams;

    #[test]
    fn dram_vs_pcm_energy_ratio_is_40x() {
        let mut dram = EnergyMeter::new();
        let mut pcm = EnergyMeter::new();
        let bytes = 1 << 30;
        dram.charge_write(bytes, DeviceParams::dram().write_energy_pj_per_bit);
        pcm.charge_write(bytes, DeviceParams::pcm().write_energy_pj_per_bit);
        assert!((pcm.joules() / dram.joules() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn one_gigabyte_dram_write_energy_magnitude() {
        let mut m = EnergyMeter::new();
        m.charge_write(1_000_000_000, 1.0);
        // 8e9 bits * 1 pJ = 8e9 pJ = 8 mJ
        assert!((m.joules() - 8e-3).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = EnergyMeter::new();
        let mut b = EnergyMeter::new();
        a.charge_write(1000, 1.0);
        b.charge_write(1000, 1.0);
        a.merge(&b);
        assert!((a.joules() - 2.0 * 1000.0 * 8.0 * 1e-12).abs() < 1e-18);
    }
}
