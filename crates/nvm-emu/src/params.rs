//! Hardware parameter models (Table I of the paper).
//!
//! | Attribute          | DRAM      | PCM      |
//! |--------------------|-----------|----------|
//! | Write bandwidth    | ~8 GB/s   | ~2 GB/s  |
//! | Page write latency | ~20-50 ns | ~1 us    |
//! | Page read latency  | ~20-50 ns | ~50 ns   |
//! | Write endurance    | 10^16     | 10^8     |
//! | Write energy/bit   | 1x        | ~40x     |

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Which physical technology a device emulates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Volatile DRAM.
    Dram,
    /// Phase-change memory (the paper's primary NVM model).
    Pcm,
    /// A generic NVM with custom parameters (e.g. memristor what-ifs).
    CustomNvm,
}

impl DeviceKind {
    /// Whether contents survive power loss / process restart.
    pub fn is_persistent(self) -> bool {
        !matches!(self, DeviceKind::Dram)
    }

    /// Short lowercase name, used to label trace events.
    pub fn name(self) -> &'static str {
        match self {
            DeviceKind::Dram => "dram",
            DeviceKind::Pcm => "pcm",
            DeviceKind::CustomNvm => "nvm",
        }
    }
}

/// Performance/endurance model for one memory device.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeviceParams {
    /// Device technology.
    pub kind: DeviceKind,
    /// Peak sequential write bandwidth, bytes/second (whole device).
    pub write_bandwidth: f64,
    /// Peak sequential read bandwidth, bytes/second (whole device).
    pub read_bandwidth: f64,
    /// Latency to write one page (first-touch cost on top of bandwidth).
    pub page_write_latency: SimDuration,
    /// Latency to read one page.
    pub page_read_latency: SimDuration,
    /// Write endurance: how many writes a cell survives.
    pub write_endurance: u64,
    /// Energy per bit written, picojoules.
    pub write_energy_pj_per_bit: f64,
}

impl DeviceParams {
    /// Table-I DRAM: 8 GB/s, 35 ns page access (midpoint of 20-50 ns),
    /// effectively unbounded endurance, 1x energy.
    pub fn dram() -> Self {
        DeviceParams {
            kind: DeviceKind::Dram,
            write_bandwidth: 8.0e9,
            read_bandwidth: 8.0e9,
            page_write_latency: SimDuration::from_nanos(35),
            page_read_latency: SimDuration::from_nanos(35),
            write_endurance: 10u64.pow(16),
            write_energy_pj_per_bit: 1.0,
        }
    }

    /// Table-I PCM: 2 GB/s write bandwidth, 1 us page write, 50 ns page
    /// read, 10^8 endurance, 40x write energy. Read bandwidth is modeled
    /// at DRAM-like 8 GB/s — the paper states "read speeds of NVMs are
    /// comparable to DRAM".
    pub fn pcm() -> Self {
        DeviceParams {
            kind: DeviceKind::Pcm,
            write_bandwidth: 2.0e9,
            read_bandwidth: 8.0e9,
            page_write_latency: SimDuration::from_micros(1),
            page_read_latency: SimDuration::from_nanos(50),
            write_endurance: 10u64.pow(8),
            write_energy_pj_per_bit: 40.0,
        }
    }

    /// A custom NVM with the given write bandwidth, keeping the other
    /// PCM-like characteristics. Used by bandwidth sweeps.
    pub fn custom_nvm(write_bandwidth: f64) -> Self {
        DeviceParams {
            kind: DeviceKind::CustomNvm,
            write_bandwidth,
            ..Self::pcm()
        }
    }

    /// Ratio of this device's page write latency to DRAM's (the "~10x
    /// slower writes" headline for PCM; actually ~28x against the 35 ns
    /// midpoint, ~10-50x across the 20-50 ns range).
    pub fn write_latency_vs_dram(&self) -> f64 {
        self.page_write_latency.as_nanos() as f64
            / Self::dram().page_write_latency.as_nanos() as f64
    }

    /// Ratio of DRAM write bandwidth to this device's (the "4x lower
    /// bandwidth" headline for PCM).
    pub fn bandwidth_deficit_vs_dram(&self) -> f64 {
        Self::dram().write_bandwidth / self.write_bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_headline_ratios() {
        let pcm = DeviceParams::pcm();
        // Paper: "write latencies are 10x higher" (order of magnitude;
        // 1 us vs 20-50 ns is 20-50x, we assert >= 10x).
        assert!(pcm.write_latency_vs_dram() >= 10.0);
        // "overall bandwidth is 4x lower compared to DRAM"
        assert!((pcm.bandwidth_deficit_vs_dram() - 4.0).abs() < 1e-9);
        // "10^8 write durability compared to 10^16 for DRAM"
        assert_eq!(pcm.write_endurance, 100_000_000);
        assert_eq!(DeviceParams::dram().write_endurance, 10u64.pow(16));
        // "40 times higher write energy/bit"
        assert!((pcm.write_energy_pj_per_bit / 1.0 - 40.0).abs() < 1e-9);
    }

    #[test]
    fn persistence_flags() {
        assert!(!DeviceKind::Dram.is_persistent());
        assert!(DeviceKind::Pcm.is_persistent());
        assert!(DeviceKind::CustomNvm.is_persistent());
    }

    #[test]
    fn custom_nvm_overrides_bandwidth_only() {
        let c = DeviceParams::custom_nvm(4.0e8);
        assert_eq!(c.kind, DeviceKind::CustomNvm);
        assert_eq!(c.write_bandwidth, 4.0e8);
        assert_eq!(c.page_write_latency, DeviceParams::pcm().page_write_latency);
    }
}
