//! Synthetic HPC workloads for the NVM-checkpoints reproduction.
//!
//! The paper evaluates with GTC (gyrokinetic fusion PIC), LAMMPS
//! (molecular dynamics, Rhodo suite) and CM1 (hurricane simulation),
//! plus the MADBench2 I/O benchmark and the LANL parallel-memcpy
//! probe. None of those are redistributable as-is, so this crate
//! provides synthetic equivalents driven by the paper's own
//! characterization of them:
//!
//! * [`chunks`] — Table-IV chunk-size distribution generators;
//! * [`apps`] — [`apps::SyntheticApp`]: GTC/LAMMPS/CM1-shaped
//!   [`cluster_sim::Workload`]s with the modification patterns the
//!   paper describes (init-only giants, hot arrays, steady rewrites);
//! * [`madbench`] — the compute/checkpoint alternation kernel used for
//!   the ramdisk-vs-memory motivation experiment;
//! * [`memprobe`] — parallel memcpy bandwidth probe (model + real
//!   measurement);
//! * [`kv`] — YCSB-ish zipfian serving traffic against the `nvm-kv`
//!   layer ([`kv::KvServingWorkload`]), for evaluating checkpoint
//!   policies under load instead of iterate-barrier loops.

#![warn(missing_docs)]

pub mod apps;
pub mod chunks;
pub mod kv;
pub mod madbench;
pub mod memprobe;

pub use apps::{ModPattern, SyntheticApp};
pub use chunks::{
    generate_profile, measured_distribution, ChunkDistribution, ChunkSpec, SizeBucket,
};
pub use kv::{splitmix64, KvMix, KvOpKind, KvServingConfig, KvServingWorkload, Zipfian};
pub use madbench::{run_madbench, CheckpointSink, MadBenchConfig, MadBenchResult};
pub use memprobe::{measure_parallel_memcpy, model_curve, MemcpyPoint};
