//! Checkpoint chunk-size profiles (Table IV of the paper).
//!
//! The paper characterizes each application's checkpoint variables by
//! size bucket (percentage of *chunks* in each range):
//!
//! | App    | 500K-1MB | 10-20MB | 50-100MB | >100MB |
//! |--------|----------|---------|----------|--------|
//! | CM1    | 40       | 0       | 54       | 4      |
//! | GTC    | 45       | 9       | 0        | 45     |
//! | LAMMPS | 15       | 0       | 20       | 25     |
//!
//! Rows do not sum to 100 in the paper (LAMMPS leaves 40% unreported);
//! the remainder is assigned to a 1-10 MB bucket, which keeps every
//! reported percentage exact while making the profile total sane.
//!
//! Chunk-size structure is what decides how much an application gains
//! from pre-copy: the NVM bandwidth bottleneck bites on big chunks, so
//! GTC/LAMMPS (25-50% of chunks above 100 MB) benefit visibly while
//! CM1 (4%) gains little — Section VI's explanation for Figs. 7/8 vs
//! the CM1 result.

use serde::{Deserialize, Serialize};

const KB: usize = 1 << 10;
const MB: usize = 1 << 20;

/// A size bucket from Table IV.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SizeBucket {
    /// 500 KB - 1 MB.
    Small,
    /// 1 - 10 MB (the paper's unreported remainder).
    Medium,
    /// 10 - 20 MB.
    Mid,
    /// 50 - 100 MB.
    Large,
    /// Above 100 MB (we cap at 200 MB).
    Huge,
}

impl SizeBucket {
    /// Inclusive byte range of the bucket.
    pub fn range(self) -> (usize, usize) {
        match self {
            SizeBucket::Small => (500 * KB, MB),
            SizeBucket::Medium => (MB, 10 * MB),
            SizeBucket::Mid => (10 * MB, 20 * MB),
            SizeBucket::Large => (50 * MB, 100 * MB),
            SizeBucket::Huge => (100 * MB, 200 * MB),
        }
    }

    /// Which bucket a size falls into, if any (gaps between buckets
    /// return `None`).
    pub fn classify(bytes: usize) -> Option<SizeBucket> {
        for b in [
            SizeBucket::Small,
            SizeBucket::Medium,
            SizeBucket::Mid,
            SizeBucket::Large,
            SizeBucket::Huge,
        ] {
            let (lo, hi) = b.range();
            if bytes >= lo && bytes <= hi {
                return Some(b);
            }
        }
        None
    }
}

/// Percentage of chunks per bucket — one Table-IV row.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChunkDistribution {
    /// 500 KB - 1 MB chunks, %.
    pub small: f64,
    /// 10 - 20 MB chunks, %.
    pub mid: f64,
    /// 50 - 100 MB chunks, %.
    pub large: f64,
    /// > 100 MB chunks, %.
    pub huge: f64,
}

impl ChunkDistribution {
    /// The remainder assigned to the 1-10 MB bucket.
    pub fn medium(&self) -> f64 {
        (100.0 - self.small - self.mid - self.large - self.huge).max(0.0)
    }

    /// Table IV, CM1 row.
    pub fn cm1() -> Self {
        ChunkDistribution {
            small: 40.0,
            mid: 0.0,
            large: 54.0,
            huge: 4.0,
        }
    }

    /// Table IV, GTC row.
    pub fn gtc() -> Self {
        ChunkDistribution {
            small: 45.0,
            mid: 9.0,
            large: 0.0,
            huge: 45.0,
        }
    }

    /// Table IV, LAMMPS row.
    pub fn lammps() -> Self {
        ChunkDistribution {
            small: 15.0,
            mid: 0.0,
            large: 20.0,
            huge: 25.0,
        }
    }
}

/// One generated chunk.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkSpec {
    /// Variable name (`genid` input).
    pub name: String,
    /// Size in bytes.
    pub bytes: usize,
    /// Bucket it was drawn from.
    pub bucket: SizeBucket,
}

/// Generate a chunk list matching `dist` with `count` chunks, scaled
/// so the total lands near `target_total` bytes. Deterministic: sizes
/// are evenly spaced within each bucket.
///
/// Note on counts: the paper mentions 31 chunks for LAMMPS, but 31
/// chunks with 25% above 100 MB cannot total ~410 MB; Table IV's rows
/// do not even sum to 100%. We therefore pick the small chunk counts
/// that make the count-share percentages consistent with the reported
/// per-core checkpoint sizes (see `default_count`), and treat the
/// table as count-share.
pub fn generate_profile(
    app: &str,
    dist: &ChunkDistribution,
    count: usize,
    target_total: usize,
) -> Vec<ChunkSpec> {
    assert!(count > 0);
    let buckets = [
        (SizeBucket::Small, dist.small),
        (SizeBucket::Medium, dist.medium()),
        (SizeBucket::Mid, dist.mid),
        (SizeBucket::Large, dist.large),
        (SizeBucket::Huge, dist.huge),
    ];
    // Integer chunk counts per bucket (largest-remainder rounding).
    let mut counts: Vec<(SizeBucket, usize, f64)> = buckets
        .iter()
        .map(|&(b, pct)| {
            let exact = pct * count as f64 / 100.0;
            (b, exact.floor() as usize, exact.fract())
        })
        .collect();
    let mut assigned: usize = counts.iter().map(|c| c.1).sum();
    while assigned < count {
        let i = counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .2.partial_cmp(&b.1 .2).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        counts[i].1 += 1;
        counts[i].2 = 0.0;
        assigned += 1;
    }

    let mut specs = Vec::with_capacity(count);
    for (bucket, n, _) in &counts {
        let (lo, hi) = bucket.range();
        for i in 0..*n {
            // Evenly spaced sizes across the bucket range, page aligned.
            let frac = (i as f64 + 0.5) / *n as f64;
            let bytes = lo + ((hi - lo) as f64 * frac) as usize;
            let bytes = (bytes / 4096).max(1) * 4096;
            specs.push(ChunkSpec {
                name: format!("{app}_{bucket:?}_{i}").to_lowercase(),
                bytes,
                bucket: *bucket,
            });
        }
    }

    // Nudge toward the target total by rescaling the biggest buckets
    // within their legal ranges (Huge first, then Large).
    for bucket in [SizeBucket::Huge, SizeBucket::Large] {
        let total: usize = specs.iter().map(|s| s.bytes).sum();
        if target_total == 0 || total == 0 {
            break;
        }
        let bucket_total: usize = specs
            .iter()
            .filter(|s| s.bucket == bucket)
            .map(|s| s.bytes)
            .sum();
        if bucket_total == 0 {
            continue;
        }
        let rest = total - bucket_total;
        let want = target_total.saturating_sub(rest).max(1);
        let scale = want as f64 / bucket_total as f64;
        let (lo, hi) = bucket.range();
        for s in specs.iter_mut().filter(|s| s.bucket == bucket) {
            let scaled = (s.bytes as f64 * scale) as usize;
            s.bytes = (scaled.clamp(lo, hi) / 4096) * 4096;
        }
    }
    specs
}

/// Chunk count that makes the count-share table consistent with the
/// paper's per-core checkpoint size for each application.
pub fn default_count(app: &str) -> usize {
    match app {
        "gtc" => 9,
        "lammps" => 10,
        "cm1" => 9,
        _ => 12,
    }
}

/// Generate a profile at paper scale, then multiply every chunk size
/// by `scale` (tests run at a few percent of paper scale; Table V
/// scales GTC *up* to 472/588 MB per core). Bucket tags are assigned
/// *before* scaling, so count-share distributions are unaffected.
pub fn generate_profile_scaled(
    app: &str,
    dist: &ChunkDistribution,
    count: usize,
    target_total: usize,
    scale: f64,
) -> Vec<ChunkSpec> {
    assert!(scale > 0.0, "scale must be positive");
    let mut specs = generate_profile(app, dist, count, target_total);
    if scale != 1.0 {
        for s in specs.iter_mut() {
            s.bytes = (((s.bytes as f64 * scale) as usize) / 4096).max(1) * 4096;
        }
    }
    specs
}

/// Percentage of *bytes* per Table-IV bucket (the alternative reading
/// of the table; reported by the Table-IV bench alongside count
/// share).
pub fn measured_byte_share(specs: &[ChunkSpec]) -> ChunkDistribution {
    let total: usize = specs.iter().map(|s| s.bytes).sum::<usize>().max(1);
    let pct = |b: SizeBucket| {
        100.0
            * specs
                .iter()
                .filter(|s| s.bucket == b)
                .map(|s| s.bytes)
                .sum::<usize>() as f64
            / total as f64
    };
    ChunkDistribution {
        small: pct(SizeBucket::Small),
        mid: pct(SizeBucket::Mid),
        large: pct(SizeBucket::Large),
        huge: pct(SizeBucket::Huge),
    }
}

/// Percentage of chunks in each Table-IV bucket for a generated
/// profile — used by the Table-IV regeneration bench and tests.
pub fn measured_distribution(specs: &[ChunkSpec]) -> ChunkDistribution {
    let n = specs.len().max(1) as f64;
    let pct = |b: SizeBucket| 100.0 * specs.iter().filter(|s| s.bucket == b).count() as f64 / n;
    ChunkDistribution {
        small: pct(SizeBucket::Small),
        mid: pct(SizeBucket::Mid),
        large: pct(SizeBucket::Large),
        huge: pct(SizeBucket::Huge),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_classify_correctly() {
        assert_eq!(SizeBucket::classify(600 * KB), Some(SizeBucket::Small));
        assert_eq!(SizeBucket::classify(5 * MB), Some(SizeBucket::Medium));
        assert_eq!(SizeBucket::classify(15 * MB), Some(SizeBucket::Mid));
        assert_eq!(SizeBucket::classify(70 * MB), Some(SizeBucket::Large));
        assert_eq!(SizeBucket::classify(150 * MB), Some(SizeBucket::Huge));
        assert_eq!(SizeBucket::classify(30 * MB), None); // gap 20-50 MB
        assert_eq!(SizeBucket::classify(1), None);
    }

    #[test]
    fn lammps_remainder_goes_to_medium() {
        let d = ChunkDistribution::lammps();
        assert!((d.medium() - 40.0).abs() < 1e-9);
        assert!((ChunkDistribution::gtc().medium() - 1.0).abs() < 1e-9);
        assert!((ChunkDistribution::cm1().medium() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn generated_profile_matches_table4_within_rounding() {
        for (dist, count) in [
            (ChunkDistribution::lammps(), 10),
            (ChunkDistribution::gtc(), 9),
            (ChunkDistribution::cm1(), 9),
        ] {
            let specs = generate_profile("t", &dist, count, 410 * MB);
            assert_eq!(specs.len(), count);
            let m = measured_distribution(&specs);
            let tol = 100.0 / count as f64; // one chunk of slack
            assert!((m.small - dist.small).abs() <= tol, "small {m:?}");
            assert!((m.mid - dist.mid).abs() <= tol, "mid {m:?}");
            assert!((m.large - dist.large).abs() <= tol, "large {m:?}");
            assert!((m.huge - dist.huge).abs() <= tol, "huge {m:?}");
        }
    }

    #[test]
    fn sizes_stay_in_bucket_ranges() {
        let specs = generate_profile("t", &ChunkDistribution::gtc(), 9, 433 * MB);
        for s in &specs {
            let (lo, hi) = s.bucket.range();
            assert!(
                s.bytes >= lo.saturating_sub(4096) && s.bytes <= hi,
                "{s:?} outside {lo}..{hi}"
            );
            assert_eq!(s.bytes % 4096, 0, "page aligned");
        }
    }

    #[test]
    fn total_lands_near_target() {
        let target = 410 * MB;
        let specs = generate_profile("t", &ChunkDistribution::lammps(), 10, target);
        let total: usize = specs.iter().map(|s| s.bytes).sum();
        let ratio = total as f64 / target as f64;
        assert!(
            (0.7..1.3).contains(&ratio),
            "total {total} too far from target {target}"
        );
    }

    #[test]
    fn names_are_unique() {
        let specs = generate_profile("gtc", &ChunkDistribution::gtc(), 9, 433 * MB);
        let mut names: Vec<_> = specs.iter().map(|s| &s.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), specs.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_profile("x", &ChunkDistribution::cm1(), 9, 400 * MB);
        let b = generate_profile("x", &ChunkDistribution::cm1(), 9, 400 * MB);
        assert_eq!(a, b);
    }
}
