//! MADBench2-like I/O kernel (the Section-IV motivation experiment).
//!
//! MADBench2 is an out-of-core cosmology benchmark that alternates
//! dense compute with large matrix writes. The paper uses it to show
//! that even when *both* sides store data in DRAM, a checkpoint
//! through the file-system interface (ramdisk) loses badly to a plain
//! in-memory copy — 46% slower at 300 MB/core, with 3x the kernel
//! synchronization calls and 31% more lock-wait time.
//!
//! This module is the workload half: a kernel that alternates compute
//! with checkpoints through any [`CheckpointSink`]. The sinks (ramdisk
//! cost model, tmpfs real mode, in-memory copy) live in the
//! `ramdisk-baseline` crate.

use nvm_emu::SimDuration;
use serde::{Deserialize, Serialize};

/// Anything that can absorb a checkpoint: a ramdisk file, an in-memory
/// buffer, an NVM region.
pub trait CheckpointSink {
    /// Human-readable sink name.
    fn name(&self) -> &str;
    /// Absorb a checkpoint of `bytes`; returns the virtual-time cost.
    fn checkpoint(&mut self, bytes: usize) -> SimDuration;
    /// Kernel synchronization calls issued so far (the paper profiles
    /// 3x more on the ramdisk path).
    fn kernel_sync_calls(&self) -> u64 {
        0
    }
    /// Time spent waiting on kernel locks so far.
    fn lock_wait(&self) -> SimDuration {
        SimDuration::ZERO
    }
}

/// MADBench2-like kernel configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MadBenchConfig {
    /// Checkpoint bytes per core per phase (the paper sweeps
    /// 50-300 MB).
    pub data_bytes: usize,
    /// Number of compute/checkpoint phases.
    pub phases: usize,
    /// Compute time per phase.
    pub compute_per_phase: SimDuration,
}

impl MadBenchConfig {
    /// The paper's sweep point for a given MB-per-core size.
    pub fn with_data_mb(mb: usize) -> Self {
        MadBenchConfig {
            data_bytes: mb << 20,
            phases: 8,
            compute_per_phase: SimDuration::from_secs(2),
        }
    }
}

/// Result of one MADBench run against one sink.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MadBenchResult {
    /// Total virtual runtime.
    pub total_time: SimDuration,
    /// Time spent in checkpoints only.
    pub checkpoint_time: SimDuration,
    /// Kernel synchronization calls the sink issued.
    pub kernel_sync_calls: u64,
    /// Kernel lock wait the sink accumulated.
    pub lock_wait: SimDuration,
    /// Bytes checkpointed in total.
    pub bytes: u64,
}

/// Run the kernel against a sink.
pub fn run_madbench<S: CheckpointSink>(cfg: &MadBenchConfig, sink: &mut S) -> MadBenchResult {
    let mut total = SimDuration::ZERO;
    let mut ckpt = SimDuration::ZERO;
    for _ in 0..cfg.phases {
        total += cfg.compute_per_phase;
        let c = sink.checkpoint(cfg.data_bytes);
        ckpt += c;
        total += c;
    }
    MadBenchResult {
        total_time: total,
        checkpoint_time: ckpt,
        kernel_sync_calls: sink.kernel_sync_calls(),
        lock_wait: sink.lock_wait(),
        bytes: (cfg.data_bytes * cfg.phases) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FixedSink(SimDuration, u64);
    impl CheckpointSink for FixedSink {
        fn name(&self) -> &str {
            "fixed"
        }
        fn checkpoint(&mut self, _bytes: usize) -> SimDuration {
            self.1 += 1;
            self.0
        }
        fn kernel_sync_calls(&self) -> u64 {
            self.1
        }
    }

    #[test]
    fn kernel_alternates_compute_and_checkpoint() {
        let cfg = MadBenchConfig {
            data_bytes: 1 << 20,
            phases: 4,
            compute_per_phase: SimDuration::from_secs(1),
        };
        let mut sink = FixedSink(SimDuration::from_millis(500), 0);
        let r = run_madbench(&cfg, &mut sink);
        assert_eq!(r.total_time, SimDuration::from_secs(6));
        assert_eq!(r.checkpoint_time, SimDuration::from_secs(2));
        assert_eq!(r.kernel_sync_calls, 4);
        assert_eq!(r.bytes, 4 << 20);
    }

    #[test]
    fn sweep_point_constructor() {
        let cfg = MadBenchConfig::with_data_mb(300);
        assert_eq!(cfg.data_bytes, 300 << 20);
        assert_eq!(cfg.phases, 8);
    }
}
