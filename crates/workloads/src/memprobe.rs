//! Parallel memcpy probe (the LANL benchmark behind Figure 4).
//!
//! Two modes:
//!
//! * [`model_curve`] — evaluate the emulator's [`BandwidthModel`] at
//!   each concurrency level (what the simulation uses);
//! * [`measure_parallel_memcpy`] — a *real* measurement: spawn N
//!   threads, each repeatedly `copy_from_slice`-ing between private
//!   buffers, and report achieved per-core bandwidth. The Figure-4
//!   bench prints both so the model can be sanity-checked against the
//!   machine it runs on.

use nvm_emu::BandwidthModel;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// One concurrency point of the Figure-4 curve.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MemcpyPoint {
    /// Concurrent copier count.
    pub threads: usize,
    /// Buffer size per copier, bytes.
    pub buffer_bytes: usize,
    /// Per-core copy bandwidth, bytes/s.
    pub per_core_bw: f64,
    /// Aggregate bandwidth, bytes/s.
    pub aggregate_bw: f64,
}

/// Evaluate the emulation's contended-bandwidth model across
/// concurrency levels.
pub fn model_curve(
    model: &BandwidthModel,
    max_threads: usize,
    buffer_bytes: usize,
) -> Vec<MemcpyPoint> {
    (1..=max_threads)
        .map(|threads| MemcpyPoint {
            threads,
            buffer_bytes,
            per_core_bw: model.per_core(threads, buffer_bytes),
            aggregate_bw: model.aggregate(threads, buffer_bytes),
        })
        .collect()
}

/// Measure real per-core memcpy bandwidth with `threads` concurrent
/// copiers moving `buffer_bytes` each, `reps` times.
pub fn measure_parallel_memcpy(threads: usize, buffer_bytes: usize, reps: usize) -> MemcpyPoint {
    assert!(threads > 0 && buffer_bytes > 0 && reps > 0);
    let barrier = Arc::new(Barrier::new(threads + 1));
    let poison = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for _ in 0..threads {
        let barrier = barrier.clone();
        let poison = poison.clone();
        handles.push(std::thread::spawn(move || {
            let src = vec![0xA5u8; buffer_bytes];
            let mut dst = vec![0u8; buffer_bytes];
            barrier.wait(); // start together
            let t0 = Instant::now();
            for _ in 0..reps {
                dst.copy_from_slice(&src);
                // Defeat dead-copy elimination.
                if dst[buffer_bytes / 2] != 0xA5 {
                    poison.store(true, Ordering::Relaxed);
                }
            }
            let dt = t0.elapsed();
            std::hint::black_box(&dst);
            (buffer_bytes * reps) as f64 / dt.as_secs_f64()
        }));
    }
    barrier.wait();
    let per_thread: Vec<f64> = handles
        .into_iter()
        .map(|h| h.join().expect("copier thread panicked"))
        .collect();
    assert!(!poison.load(Ordering::Relaxed), "copy verification failed");
    let per_core_bw = per_thread.iter().sum::<f64>() / threads as f64;
    MemcpyPoint {
        threads,
        buffer_bytes,
        per_core_bw,
        aggregate_bw: per_thread.iter().sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_curve_shape() {
        let curve = model_curve(&BandwidthModel::lanl_dram(), 12, 33 << 20);
        assert_eq!(curve.len(), 12);
        // Monotone decline per core; 67% reduction at n=12.
        assert!(curve
            .windows(2)
            .all(|w| w[1].per_core_bw < w[0].per_core_bw));
        let ratio = curve[11].per_core_bw / curve[0].per_core_bw;
        assert!((ratio - 0.33).abs() < 0.01);
    }

    #[test]
    fn real_measurement_returns_sane_bandwidth() {
        // Small and quick: 2 threads, 1 MB, a few reps. Any real
        // machine should beat 100 MB/s per core.
        let p = measure_parallel_memcpy(2, 1 << 20, 8);
        assert_eq!(p.threads, 2);
        assert!(
            p.per_core_bw > 100.0 * (1 << 20) as f64,
            "implausibly slow: {:.1} MB/s",
            p.per_core_bw / (1 << 20) as f64
        );
        assert!(p.aggregate_bw >= p.per_core_bw);
    }
}
