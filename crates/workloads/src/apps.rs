//! Synthetic GTC, LAMMPS and CM1 mini-apps.
//!
//! Each app is a [`Workload`] whose checkpoint set follows its Table-IV
//! chunk-size profile and whose *modification patterns* follow the
//! paper's characterization:
//!
//! * **GTC** — 2-D particle arrays rewritten every iteration, plus a
//!   few huge arrays written only during initialization (the reason
//!   pre-copy *reduces* GTC's checkpointed volume in Fig. 8);
//! * **LAMMPS (Rhodo)** — chunks touched across different stages,
//!   including a hot 3-D position array modified until the end of
//!   every iteration (the DCPCP motivation, Fig. 6);
//! * **CM1** — mostly sub-megabyte and mid-size chunks rewritten each
//!   iteration; with so few >100 MB chunks, pre-copy buys <5%.

use crate::chunks::{
    default_count, generate_profile_scaled, ChunkDistribution, ChunkSpec, SizeBucket,
};
use cluster_sim::{CommPattern, Workload};
use nvm_chkpt::{CheckpointEngine, EngineError};
use nvm_emu::SimDuration;
use nvm_paging::ChunkId;

const MB: usize = 1 << 20;

/// When/how often a chunk is modified.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModPattern {
    /// Written once, during application initialization.
    InitOnly,
    /// Rewritten once early in every iteration.
    EveryIteration,
    /// A *hot chunk*: written `writes` times across the iteration,
    /// the last write landing at the iteration's very end.
    Hot {
        /// Writes per iteration.
        writes: u32,
    },
    /// Rewritten every `every`-th iteration.
    Periodic {
        /// Iteration period.
        every: u64,
    },
}

struct AppChunk {
    spec: ChunkSpec,
    pattern: ModPattern,
    id: Option<ChunkId>,
}

/// A synthetic application rank.
pub struct SyntheticApp {
    name: String,
    chunks: Vec<AppChunk>,
    compute_per_iter: SimDuration,
    comm_bytes: u64,
    /// Reusable write-schedule buffer so `iterate` allocates nothing
    /// after the first iteration.
    schedule_scratch: Vec<(f64, usize)>,
}

impl SyntheticApp {
    fn new(
        name: &str,
        specs: Vec<ChunkSpec>,
        assign: impl Fn(usize, &ChunkSpec) -> ModPattern,
        compute_per_iter: SimDuration,
        comm_bytes: u64,
    ) -> Self {
        let chunks = specs
            .into_iter()
            .enumerate()
            .map(|(i, spec)| AppChunk {
                pattern: assign(i, &spec),
                spec,
                id: None,
            })
            .collect();
        SyntheticApp {
            name: name.to_string(),
            chunks,
            compute_per_iter,
            comm_bytes,
            schedule_scratch: Vec::new(),
        }
    }

    /// GTC at the paper's scale: ~433 MB checkpoint per core.
    pub fn gtc() -> Self {
        Self::gtc_scaled(1.0)
    }

    /// GTC with checkpoint size scaled by `scale` (tests use < 1).
    pub fn gtc_scaled(scale: f64) -> Self {
        let specs = generate_profile_scaled(
            "gtc",
            &ChunkDistribution::gtc(),
            default_count("gtc"),
            433 * MB,
            scale,
        );
        let mut app = Self::new(
            "gtc",
            specs,
            |_, _| ModPattern::EveryIteration,
            SimDuration::from_secs(10),
            16 * MB as u64,
        );
        // Alternate: ~half the huge arrays are init-only ("few large
        // chunks are modified only once, during application
        // initiation").
        let mut huge_idx = 0;
        for c in app.chunks.iter_mut() {
            if c.spec.bucket == SizeBucket::Huge {
                if huge_idx % 2 == 0 {
                    c.pattern = ModPattern::InitOnly;
                }
                huge_idx += 1;
            }
        }
        app
    }

    /// LAMMPS Rhodo(-Spin): ~410 MB per core, 31 chunks.
    pub fn lammps() -> Self {
        Self::lammps_scaled(1.0)
    }

    /// LAMMPS with checkpoint size scaled by `scale`.
    pub fn lammps_scaled(scale: f64) -> Self {
        let specs = generate_profile_scaled(
            "lammps",
            &ChunkDistribution::lammps(),
            default_count("lammps"),
            410 * MB,
            scale,
        );
        let mut app = Self::new(
            "lammps",
            specs,
            |_, _| ModPattern::EveryIteration,
            SimDuration::from_secs(10),
            8 * MB as u64,
        );
        // The hot 3-D result array: the largest chunk, modified three
        // times per iteration, last time at the iteration end.
        if let Some(hot) = app.chunks.iter_mut().max_by_key(|c| c.spec.bytes) {
            hot.pattern = ModPattern::Hot { writes: 3 };
        }
        // A couple of small per-run constant tables.
        let mut small_idx = 0;
        for c in app.chunks.iter_mut() {
            if c.spec.bucket == SizeBucket::Small {
                if small_idx < 3 {
                    c.pattern = ModPattern::InitOnly;
                }
                small_idx += 1;
            }
        }
        app
    }

    /// CM1 3-D hurricane simulation: ~400 MB per core.
    pub fn cm1() -> Self {
        Self::cm1_scaled(1.0)
    }

    /// CM1 with checkpoint size scaled by `scale`.
    pub fn cm1_scaled(scale: f64) -> Self {
        let specs = generate_profile_scaled(
            "cm1",
            &ChunkDistribution::cm1(),
            default_count("cm1"),
            400 * MB,
            scale,
        );
        let mut app = Self::new(
            "cm1",
            specs,
            |_, _| ModPattern::EveryIteration,
            SimDuration::from_secs(10),
            4 * MB as u64,
        );
        // CM1's checkpoint variables are the prognostic state arrays
        // (u, v, w, theta, pressure, ...) that the time integrator
        // *finalizes at the end of each timestep*: they keep changing
        // until the iteration completes, so pre-copy cannot stage them
        // early. This write-timing structure — on top of the Table-IV
        // size profile — is what limits CM1's pre-copy benefit to <5%
        // in the paper.
        for c in app.chunks.iter_mut() {
            if c.spec.bucket == SizeBucket::Large {
                c.pattern = ModPattern::Hot { writes: 2 };
            }
        }
        // A few constant lookup tables.
        let mut small_idx = 0;
        for c in app.chunks.iter_mut() {
            if c.spec.bucket == SizeBucket::Small {
                if small_idx < 5 {
                    c.pattern = ModPattern::InitOnly;
                }
                small_idx += 1;
            }
        }
        app
    }

    /// Override the per-iteration compute time.
    pub fn with_compute(mut self, compute: SimDuration) -> Self {
        self.compute_per_iter = compute;
        self
    }

    /// Override the per-iteration communication volume.
    pub fn with_comm_bytes(mut self, bytes: u64) -> Self {
        self.comm_bytes = bytes;
        self
    }

    /// Total checkpoint bytes this app will allocate.
    pub fn checkpoint_bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.spec.bytes).sum()
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Write schedule for one iteration: `(fraction_of_iteration,
    /// chunk_index)` events, sorted by fraction.
    #[cfg(test)]
    fn schedule(&self, iter: u64) -> Vec<(f64, usize)> {
        let mut events = Vec::new();
        self.schedule_into(iter, &mut events);
        events
    }

    /// Fill `events` with one iteration's write schedule (cleared
    /// first), reusing its capacity across iterations.
    fn schedule_into(&self, iter: u64, events: &mut Vec<(f64, usize)>) {
        events.clear();
        for (i, c) in self.chunks.iter().enumerate() {
            match c.pattern {
                ModPattern::InitOnly => {
                    if iter == 0 {
                        events.push((0.0, i));
                    }
                }
                ModPattern::EveryIteration => events.push((0.1, i)),
                ModPattern::Hot { writes } => {
                    for w in 0..writes {
                        events.push(((w as f64 + 1.0) / writes as f64, i));
                    }
                }
                ModPattern::Periodic { every } => {
                    if iter % every.max(1) == 0 {
                        events.push((0.1, i));
                    }
                }
            }
        }
        events.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    }
}

impl Workload for SyntheticApp {
    fn name(&self) -> &str {
        &self.name
    }

    fn setup(&mut self, engine: &mut CheckpointEngine) -> Result<(), EngineError> {
        for c in self.chunks.iter_mut() {
            let id = engine.nvmalloc(&c.spec.name, c.spec.bytes, true)?;
            c.id = Some(id);
        }
        Ok(())
    }

    fn iterate(&mut self, engine: &mut CheckpointEngine, iter: u64) -> Result<(), EngineError> {
        let mut events = std::mem::take(&mut self.schedule_scratch);
        self.schedule_into(iter, &mut events);
        let mut last_frac = 0.0;
        for &(frac, idx) in &events {
            if frac > last_frac {
                engine.compute(self.compute_per_iter * (frac - last_frac));
                last_frac = frac;
            }
            let c = &self.chunks[idx];
            let id = c.id.expect("setup ran");
            engine.write_synthetic(id, 0, c.spec.bytes)?;
        }
        self.schedule_scratch = events;
        if last_frac < 1.0 {
            engine.compute(self.compute_per_iter * (1.0 - last_frac));
        }
        Ok(())
    }

    fn comm_bytes(&self) -> u64 {
        self.comm_bytes
    }

    fn comm_pattern(&self) -> CommPattern {
        match self.name.as_str() {
            // GTC: particle-shift alltoall + field-solve allreduce.
            "gtc" => CommPattern::gtc(self.comm_bytes * 3 / 4, self.comm_bytes / 4),
            // LAMMPS: halo exchange + small global reductions.
            "lammps" => CommPattern::md(self.comm_bytes),
            // CM1: 3-D stencil halo exchange.
            "cm1" => CommPattern::stencil(self.comm_bytes),
            _ => CommPattern::stencil(self.comm_bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_chkpt::{EngineConfig, Materialization, PrecopyPolicy};
    use nvm_emu::{MemoryDevice, VirtualClock};

    fn engine(container: usize) -> (CheckpointEngine, VirtualClock) {
        let dram = MemoryDevice::dram(container * 2 + (64 << 20));
        let nvm = MemoryDevice::pcm(container * 3 + (64 << 20));
        let clock = VirtualClock::new();
        let cfg = EngineConfig::builder()
            .materialization(Materialization::Synthetic)
            .checksums(false)
            .precopy(PrecopyPolicy::Dcpcp)
            .build()
            .unwrap();
        let e = CheckpointEngine::new(0, &dram, &nvm, container, clock.clone(), cfg).unwrap();
        (e, clock)
    }

    #[test]
    fn paper_scale_sizes() {
        let gtc = SyntheticApp::gtc();
        let lammps = SyntheticApp::lammps();
        let cm1 = SyntheticApp::cm1();
        for (app, target_mb) in [(&gtc, 433.0), (&lammps, 410.0), (&cm1, 400.0)] {
            let mb = app.checkpoint_bytes() as f64 / MB as f64;
            assert!(
                (mb / target_mb - 1.0).abs() < 0.35,
                "{} total {mb} MB vs target {target_mb}",
                app.name
            );
        }
        assert_eq!(lammps.chunk_count(), 10);
    }

    #[test]
    fn gtc_has_init_only_huge_chunks() {
        let gtc = SyntheticApp::gtc();
        let init_only_huge = gtc
            .chunks
            .iter()
            .filter(|c| c.spec.bucket == SizeBucket::Huge && c.pattern == ModPattern::InitOnly)
            .count();
        assert!(init_only_huge >= 1, "GTC needs init-only huge arrays");
    }

    #[test]
    fn lammps_hot_chunk_is_the_largest() {
        let l = SyntheticApp::lammps();
        let hot: Vec<_> = l
            .chunks
            .iter()
            .filter(|c| matches!(c.pattern, ModPattern::Hot { .. }))
            .collect();
        assert_eq!(hot.len(), 1);
        let max = l.chunks.iter().map(|c| c.spec.bytes).max().unwrap();
        assert_eq!(hot[0].spec.bytes, max);
    }

    #[test]
    fn iteration_advances_clock_by_compute_time() {
        let mut app = SyntheticApp::cm1_scaled(0.02).with_compute(SimDuration::from_secs(4));
        let (mut e, clock) = engine(64 << 20);
        app.setup(&mut e).unwrap();
        let t0 = clock.now();
        app.iterate(&mut e, 0).unwrap();
        let dt = clock.now().since(t0);
        assert!(dt >= SimDuration::from_secs(4), "dt={dt}");
        assert!(dt < SimDuration::from_secs(8), "dt={dt}");
    }

    #[test]
    fn init_only_chunks_clean_after_first_checkpoint() {
        let mut app = SyntheticApp::gtc_scaled(0.02);
        let (mut e, _clock) = engine(64 << 20);
        app.setup(&mut e).unwrap();
        app.iterate(&mut e, 0).unwrap();
        e.nvchkptall().unwrap();
        app.iterate(&mut e, 1).unwrap();
        let r = e.nvchkptall().unwrap();
        assert!(
            r.skipped_bytes > 0,
            "init-only chunks must be skipped on epoch 1"
        );
    }

    #[test]
    fn hot_chunk_writes_spread_across_iteration() {
        let app = SyntheticApp::lammps_scaled(0.02);
        let sched = app.schedule(1);
        // The hot chunk appears 3 times, once at frac 1.0.
        let hot_idx = app
            .chunks
            .iter()
            .position(|c| matches!(c.pattern, ModPattern::Hot { .. }))
            .unwrap();
        let hot_events: Vec<f64> = sched
            .iter()
            .filter(|(_, i)| *i == hot_idx)
            .map(|(f, _)| *f)
            .collect();
        assert_eq!(hot_events.len(), 3);
        assert_eq!(*hot_events.last().unwrap(), 1.0);
    }

    #[test]
    fn schedule_is_sorted_and_init_only_fires_once() {
        let app = SyntheticApp::gtc_scaled(0.02);
        let s0 = app.schedule(0);
        let s1 = app.schedule(1);
        assert!(s0.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(s1.len() < s0.len(), "init-only events only on iter 0");
    }
}
