//! YCSB-ish serving traffic for the `nvm-kv` layer.
//!
//! [`KvServingWorkload`] drives one rank's [`nvm_kv::KvStore`] as a
//! [`cluster_sim::Workload`]: every iteration issues a batch of point
//! operations whose keys follow a zipfian popularity distribution
//! (configurable `theta`, YCSB's default skew is 0.99) and whose kinds
//! follow a read/upsert/rmw/delete mix (presets A/B/C/F below), with
//! [`CheckpointEngine::compute`] slices between batches so the
//! engine's pre-copy policies get their background windows. Every
//! `checkpoint_every` iterations the workload publishes a CPR token —
//! the non-blocking part — while the engine's `nvchkptall` (driven by
//! the cluster's `local_interval`) makes tokens crash-durable.
//!
//! Randomness is a private per-rank splitmix64 stream seeded from
//! `(seed, rank)`, so runs are bit-identical serial vs `--threads N`
//! and independent of rank scheduling.

use cluster_sim::{CommPattern, Workload};
use nvm_chkpt::{CheckpointEngine, EngineError};
use nvm_emu::SimDuration;
use nvm_kv::{KvConfig, KvError, KvStore, SessionId};

/// Advance a splitmix64 state and return the next value.
/// (Steele/Lea/Flood; the same finalizer the kv layout hash uses.)
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// YCSB-style zipfian generator over `0..n`: item 0 is the hottest.
/// Uses the Gray et al. rejection-free formula with precomputed
/// normalization constants.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipfian {
    /// Build a generator over `0..n` with skew `theta` (0 = uniform,
    /// YCSB default 0.99; must be in `[0, 1)`).
    pub fn new(n: u64, theta: f64) -> Zipfian {
        assert!(n > 0, "zipfian over empty key space");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        Zipfian {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Draw the next item using `rng` as the uniform source.
    pub fn next(&self, rng: &mut u64) -> u64 {
        // 53-bit uniform in [0, 1).
        let u = (splitmix64(rng) >> 11) as f64 / (1u64 << 53) as f64;
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if self.n >= 2 && uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let item = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        item.min(self.n - 1)
    }
}

/// One operation kind drawn from a [`KvMix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvOpKind {
    /// Point read.
    Read,
    /// Blind write.
    Upsert,
    /// Read-modify-write.
    Rmw,
    /// Tombstone delete.
    Delete,
}

/// An operation mix in percent (must sum to 100).
#[derive(Debug, Clone, Copy)]
pub struct KvMix {
    /// Percent point reads.
    pub read_pct: u32,
    /// Percent upserts.
    pub upsert_pct: u32,
    /// Percent read-modify-writes.
    pub rmw_pct: u32,
    /// Percent deletes.
    pub delete_pct: u32,
}

impl KvMix {
    /// YCSB-A: update heavy (50% reads, 50% upserts).
    pub fn a() -> KvMix {
        KvMix {
            read_pct: 50,
            upsert_pct: 50,
            rmw_pct: 0,
            delete_pct: 0,
        }
    }

    /// YCSB-B: read mostly (95% reads, 5% upserts).
    pub fn b() -> KvMix {
        KvMix {
            read_pct: 95,
            upsert_pct: 5,
            rmw_pct: 0,
            delete_pct: 0,
        }
    }

    /// YCSB-C: read only.
    pub fn c() -> KvMix {
        KvMix {
            read_pct: 100,
            upsert_pct: 0,
            rmw_pct: 0,
            delete_pct: 0,
        }
    }

    /// YCSB-F: read-modify-write heavy (50% reads, 50% rmw).
    pub fn f() -> KvMix {
        KvMix {
            read_pct: 50,
            upsert_pct: 0,
            rmw_pct: 50,
            delete_pct: 0,
        }
    }

    /// Draw an operation kind.
    fn draw(&self, rng: &mut u64) -> KvOpKind {
        debug_assert_eq!(
            self.read_pct + self.upsert_pct + self.rmw_pct + self.delete_pct,
            100
        );
        let r = (splitmix64(rng) % 100) as u32;
        if r < self.read_pct {
            KvOpKind::Read
        } else if r < self.read_pct + self.upsert_pct {
            KvOpKind::Upsert
        } else if r < self.read_pct + self.upsert_pct + self.rmw_pct {
            KvOpKind::Rmw
        } else {
            KvOpKind::Delete
        }
    }
}

/// Configuration for one rank's serving workload.
#[derive(Debug, Clone)]
pub struct KvServingConfig {
    /// Keys in this rank's partition (shared-nothing across ranks).
    pub keys: u64,
    /// Value size in bytes.
    pub value_bytes: usize,
    /// Operations issued per iteration.
    pub ops_per_iteration: u64,
    /// Zipfian skew (`0` = uniform; YCSB default `0.99`).
    pub theta: f64,
    /// Read/upsert/rmw/delete mix.
    pub mix: KvMix,
    /// Preload every key during `setup` so reads hit from the start.
    pub preload: bool,
    /// Operations per batch between compute slices.
    pub batch: u64,
    /// Compute time between batches (opens pre-copy windows).
    pub compute_slice: SimDuration,
    /// Publish a CPR token every N iterations (0 = never).
    pub checkpoint_every: u64,
    /// Store geometry.
    pub kv: KvConfig,
    /// Base seed; each rank derives a private stream from
    /// `(seed, rank)`.
    pub seed: u64,
}

impl Default for KvServingConfig {
    fn default() -> Self {
        KvServingConfig {
            keys: 1024,
            value_bytes: 64,
            ops_per_iteration: 512,
            theta: 0.99,
            mix: KvMix::a(),
            preload: true,
            batch: 64,
            compute_slice: SimDuration::from_millis(200),
            checkpoint_every: 1,
            kv: KvConfig::default(),
            seed: 0x5eed_cafe,
        }
    }
}

/// Fixed-width key bytes: `user` + 12 decimal digits.
pub const KEY_BYTES: usize = 16;

fn fill_key(buf: &mut [u8; KEY_BYTES], id: u64) {
    buf[..4].copy_from_slice(b"user");
    let mut x = id;
    for i in (4..KEY_BYTES).rev() {
        buf[i] = b'0' + (x % 10) as u8;
        x /= 10;
    }
}

/// Map kv-layer errors onto the engine error the [`Workload`] trait
/// reports. Engine failures pass through; anything else is a bug in
/// the workload itself.
fn engine_err(e: KvError) -> EngineError {
    match e {
        KvError::Engine(e) => e,
        other => panic!("kv serving workload misuse: {other}"),
    }
}

/// One rank of zipfian serving traffic against a private
/// [`KvStore`].
pub struct KvServingWorkload {
    cfg: KvServingConfig,
    zipf: Zipfian,
    rng: u64,
    kv: Option<KvStore>,
    session: Option<SessionId>,
    key_buf: [u8; KEY_BYTES],
    val_buf: Vec<u8>,
}

impl KvServingWorkload {
    /// Build rank `rank`'s workload.
    pub fn new(rank: u32, cfg: KvServingConfig) -> KvServingWorkload {
        let mut seed_state = cfg.seed ^ ((rank as u64) << 32 | 0x9e37);
        let rng = splitmix64(&mut seed_state);
        KvServingWorkload {
            zipf: Zipfian::new(cfg.keys, cfg.theta),
            rng,
            kv: None,
            session: None,
            key_buf: [0u8; KEY_BYTES],
            val_buf: vec![0u8; cfg.value_bytes],
            cfg,
        }
    }

    /// The store's statistics (None before `setup`).
    pub fn stats(&self) -> Option<nvm_kv::KvStats> {
        self.kv.as_ref().map(|kv| kv.stats())
    }

    fn fill_value(&mut self, key_id: u64, salt: u64) {
        let len = self.val_buf.len();
        let mut state = key_id.wrapping_mul(0x100_0000_01b3) ^ salt;
        for chunk in self.val_buf.chunks_mut(8) {
            let w = splitmix64(&mut state).to_le_bytes();
            let n = chunk.len().min(8);
            chunk.copy_from_slice(&w[..n]);
        }
        debug_assert_eq!(self.val_buf.len(), len);
    }
}

impl Workload for KvServingWorkload {
    fn name(&self) -> &str {
        "kv_serving"
    }

    fn setup(&mut self, engine: &mut CheckpointEngine) -> Result<(), EngineError> {
        let mut kv = KvStore::create(engine, self.cfg.kv.clone()).map_err(engine_err)?;
        let session = kv.new_session().map_err(engine_err)?;
        if self.cfg.preload {
            for id in 0..self.cfg.keys {
                fill_key(&mut self.key_buf, id);
                self.fill_value(id, 0);
                let key = self.key_buf;
                kv.upsert(engine, session, &key, &self.val_buf)
                    .map_err(engine_err)?;
            }
        }
        self.kv = Some(kv);
        self.session = Some(session);
        Ok(())
    }

    fn iterate(&mut self, engine: &mut CheckpointEngine, iter: u64) -> Result<(), EngineError> {
        let mut kv = self.kv.take().expect("setup ran");
        let session = self.session.expect("setup ran");
        let mut issued = 0u64;
        while issued < self.cfg.ops_per_iteration {
            let batch = self.cfg.batch.min(self.cfg.ops_per_iteration - issued);
            for _ in 0..batch {
                let id = self.zipf.next(&mut self.rng);
                let kind = self.cfg.mix.draw(&mut self.rng);
                fill_key(&mut self.key_buf, id);
                let key = self.key_buf;
                let r = match kind {
                    KvOpKind::Read => kv.read(engine, session, &key).map(|_| ()),
                    KvOpKind::Upsert => {
                        self.fill_value(id, iter + 1);
                        kv.upsert(engine, session, &key, &self.val_buf)
                    }
                    KvOpKind::Rmw => {
                        let vb = self.cfg.value_bytes;
                        kv.rmw(engine, session, &key, |old| {
                            let mut v = old.map_or_else(|| vec![0u8; vb], <[u8]>::to_vec);
                            if v.len() >= 8 {
                                let c = u64::from_le_bytes(v[..8].try_into().unwrap());
                                v[..8].copy_from_slice(&c.wrapping_add(1).to_le_bytes());
                            }
                            v
                        })
                        .map(|_| ())
                    }
                    KvOpKind::Delete => kv.delete(engine, session, &key).map(|_| ()),
                };
                r.map_err(engine_err)?;
            }
            issued += batch;
            engine.compute(self.cfg.compute_slice);
        }
        if self.cfg.checkpoint_every > 0 && (iter + 1) % self.cfg.checkpoint_every == 0 {
            kv.checkpoint(engine).map_err(engine_err)?;
        }
        self.kv = Some(kv);
        Ok(())
    }

    fn comm_pattern(&self) -> CommPattern {
        // Shared-nothing partitions: no inter-rank application
        // traffic (clients are external).
        CommPattern::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_chkpt::{CheckpointEngine, EngineConfig};
    use nvm_emu::{MemoryDevice, VirtualClock};

    const MB: usize = 1 << 20;

    fn mk_engine() -> CheckpointEngine {
        let dram = MemoryDevice::dram(256 * MB);
        let nvm = MemoryDevice::pcm(256 * MB);
        CheckpointEngine::new(
            0,
            &dram,
            &nvm,
            128 * MB,
            VirtualClock::new(),
            EngineConfig::default(),
        )
        .unwrap()
    }

    fn small_cfg() -> KvServingConfig {
        KvServingConfig {
            keys: 64,
            value_bytes: 32,
            ops_per_iteration: 128,
            batch: 32,
            kv: KvConfig {
                initial_index_slots: 64,
                segment_bytes: 8192,
                max_sessions: 2,
                trace_ops: false,
            },
            ..KvServingConfig::default()
        }
    }

    #[test]
    fn splitmix_is_pinned() {
        // Reference values from the canonical splitmix64.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xe220a8397b1dcdaf);
        assert_eq!(splitmix64(&mut s), 0x6e789e6aa1b965f4);
    }

    #[test]
    fn zipfian_is_skewed_and_in_range() {
        let z = Zipfian::new(1000, 0.99);
        let mut rng = 42u64;
        let mut counts = vec![0u64; 1000];
        for _ in 0..20_000 {
            let i = z.next(&mut rng);
            counts[i as usize] += 1;
        }
        // Hottest item dominates; everything stays in range.
        assert!(counts[0] > 1000, "item 0 drew {}", counts[0]);
        assert!(counts[0] > 10 * counts[500].max(1));
        let top10: u64 = counts[..10].iter().sum();
        assert!(top10 > 4000, "top-10 mass {top10}");
    }

    #[test]
    fn zipfian_theta_zero_is_roughly_uniform() {
        let z = Zipfian::new(100, 0.0);
        let mut rng = 7u64;
        let mut counts = vec![0u64; 100];
        for _ in 0..50_000 {
            counts[z.next(&mut rng) as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*max < 4 * *min, "min {min} max {max}");
    }

    #[test]
    fn mix_draw_matches_percentages() {
        let mix = KvMix::b();
        let mut rng = 3u64;
        let mut reads = 0;
        for _ in 0..10_000 {
            if mix.draw(&mut rng) == KvOpKind::Read {
                reads += 1;
            }
        }
        assert!((9000..=9900).contains(&reads), "reads {reads}");
    }

    #[test]
    fn key_formatting_is_fixed_width() {
        let mut buf = [0u8; KEY_BYTES];
        fill_key(&mut buf, 0);
        assert_eq!(&buf, b"user000000000000");
        fill_key(&mut buf, 987_654_321_012);
        assert_eq!(&buf, b"user987654321012");
    }

    #[test]
    fn workload_serves_and_checkpoints() {
        let mut e = mk_engine();
        let mut w = KvServingWorkload::new(0, small_cfg());
        w.setup(&mut e).unwrap();
        let preloaded = w.stats().unwrap();
        assert_eq!(preloaded.occupied_slots, 64);
        for iter in 0..3 {
            w.iterate(&mut e, iter).unwrap();
        }
        let stats = w.stats().unwrap();
        assert_eq!(stats.token, 3, "one CPR token per iteration");
        assert!(stats.log_bytes > preloaded.log_bytes);
        e.nvchkptall().unwrap();
    }

    #[test]
    fn same_rank_same_seed_is_deterministic() {
        let run = || {
            let mut e = mk_engine();
            let mut w = KvServingWorkload::new(3, small_cfg());
            w.setup(&mut e).unwrap();
            for iter in 0..2 {
                w.iterate(&mut e, iter).unwrap();
            }
            (w.stats().unwrap(), e.clock().now().as_nanos())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_ranks_draw_different_streams() {
        let a = KvServingWorkload::new(0, small_cfg()).rng;
        let b = KvServingWorkload::new(1, small_cfg()).rng;
        assert_ne!(a, b);
    }
}
