//! Golden trace-analysis regression gate.
//!
//! The quick-preset analyzer report (critical-path blame + virtual-time
//! rollup over the traced GTC run) must be (a) byte-identical
//! regardless of rank-execution thread count and (b) byte-identical to
//! the committed `experiments/blame_baseline.json`. There is no
//! tolerance: any drift in the simulation model *or* the analyzer
//! shows up here as a diff. Regenerate the baseline after an
//! intentional change with
//! `BLESS=1 cargo test -p nvm-bench --test blame_golden`.
//!
//! `BLESS=1` also regenerates the committed paper-preset policy
//! comparison `experiments/blame.json` (the artifact
//! `blame::tests::committed_paper_rows_show_dcpcp_exposing_less_than_cpc`
//! asserts the headline claim against), so both stay in lockstep with
//! the model.

use nvm_bench::experiments::{analyze, blame};
use nvm_bench::scale::Scale;
use nvm_obs::to_stable_json;
use std::path::PathBuf;

fn experiments_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("experiments")
}

#[test]
fn quick_analysis_is_thread_invariant_and_matches_baseline() {
    let (_, serial_report) = analyze::run(&Scale::quick());
    let serial = to_stable_json(&serial_report);
    let (_, threaded_report) = analyze::run(&Scale::quick().with_threads(4));
    let threaded = to_stable_json(&threaded_report);
    assert_eq!(
        serial, threaded,
        "analysis report must be bit-identical at any thread count"
    );

    let path = experiments_dir().join("blame_baseline.json");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&path, &serial).expect("write baseline");
        // Same bytes `run_all`'s write_json produces, so a paper run
        // and a bless leave the committed artifact identical.
        let rows = blame::run(&Scale::paper());
        let body = serde_json::to_string_pretty(&rows).expect("rows serialize");
        std::fs::write(experiments_dir().join("blame.json"), body).expect("write blame.json");
        return;
    }
    let committed = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing baseline {}: {e}", path.display()));
    assert_eq!(
        serial, committed,
        "quick-preset analysis diverged from experiments/blame_baseline.json \
         (BLESS=1 regenerates it after an intentional change)"
    );
}
