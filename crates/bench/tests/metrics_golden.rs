//! Golden metrics-snapshot regression gate.
//!
//! The quick-preset metered GTC run must produce a metrics report that
//! is (a) byte-identical regardless of rank-execution thread count and
//! (b) byte-identical to the committed
//! `experiments/metrics_baseline.json`. There is no tolerance: any
//! drift in the simulation model shows up here as a diff. Regenerate
//! the baseline after an intentional model change with
//! `BLESS=1 cargo test -p nvm-bench --test metrics_golden`.

use nvm_bench::experiments::metrics;
use nvm_bench::scale::Scale;
use std::path::PathBuf;

fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("experiments/metrics_baseline.json")
}

#[test]
fn quick_metrics_are_thread_invariant_and_match_baseline() {
    let serial = metrics::to_stable_json(&metrics::run(&Scale::quick()));
    let threaded = metrics::to_stable_json(&metrics::run(&Scale::quick().with_threads(4)));
    assert_eq!(
        serial, threaded,
        "metrics report must be bit-identical at any thread count"
    );

    let path = baseline_path();
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&path, &serial).expect("write baseline");
        return;
    }
    let committed = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing baseline {}: {e}", path.display()));
    assert_eq!(
        serial, committed,
        "quick-preset metrics diverged from experiments/metrics_baseline.json \
         (BLESS=1 regenerates it after an intentional model change)"
    );
}
