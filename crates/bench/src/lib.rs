//! Benchmark harness for the NVM-checkpoints reproduction.
//!
//! Each paper table/figure has a module under [`experiments`] exposing
//! `run(...)` (serializable rows) and `render(...)` (markdown table),
//! plus a thin binary under `src/bin/`. `run_all` executes everything
//! and drops JSON into `experiments/` at the workspace root.

#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod scale;
