//! Reporting helpers: markdown tables and JSON result emission.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::Path;

/// A simple markdown table builder used by every experiment binary.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Render as a markdown string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "\n## {}\n", self.title);
        let widths: Vec<usize> = self
            .header
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain([h.len()])
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let fmt_row = |cells: &[String]| {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(&widths) {
                let _ = write!(line, " {c:<w$} |");
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{:-<1$}|", "", w + 2);
        }
        let _ = writeln!(out, "{sep}");
        for r in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(r));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Write a serializable result to `experiments/<name>.json` under the
/// workspace root (best effort — benches still print to stdout).
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(|p| p.join("experiments"))
        .unwrap_or_else(|| Path::new("experiments").to_path_buf());
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(json) = serde_json::to_string_pretty(value) {
        let _ = std::fs::write(path, json);
    }
}

/// Format bytes as MB with one decimal.
pub fn mb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1 << 20) as f64)
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new("Demo", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| a | bb |"));
        assert!(s.contains("| 1 | 2  |"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        Table::new("x", &["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn helpers_format() {
        assert_eq!(mb(1 << 20), "1.0");
        assert_eq!(pct(0.465), "46.5%");
    }
}
