//! Regenerate the rank-scaling sweep (`scaling_ranks.json`): wall
//! clock and peak RSS vs rank count for byte-materialized,
//! CRC-verified runs with device spill, plus the hard-failure
//! recovery probe at the largest rank count. `--quick` stops the
//! sweep at 128 ranks; `--threads N` runs ranks on N worker threads.
use nvm_bench::experiments::scaling_ranks;
use nvm_bench::report::write_json;
use nvm_bench::scale::RunArgs;

fn main() {
    let args = RunArgs::from_env();
    let out = scaling_ranks::run(&args.scale());
    scaling_ranks::render(&out).print();
    println!(
        "\nrecovery probe at {} ranks: source {}, {} chunks bit-verified, {:.2} MB fetched",
        out.recovery.ranks,
        out.recovery.source,
        out.recovery.verified_chunks,
        out.recovery.bytes_fetched_mb
    );
    write_json("scaling_ranks", &out);
}
