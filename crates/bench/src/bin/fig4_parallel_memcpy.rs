//! Regenerate Figure 4 (parallel memcpy bandwidth). Pass `--measure`
//! to also run real copies on this host.
use nvm_bench::experiments::fig4;
use nvm_bench::report::write_json;

fn main() {
    let measure = std::env::args().any(|a| a == "--measure");
    let r = fig4::run(measure);
    for t in fig4::render(&r) {
        t.print();
    }
    write_json("fig4_parallel_memcpy", &r);
}
