//! Regenerate the kv-serving policy comparison (`kv_serving.json`).
//! `--quick` and `--threads N` available; results are bit-identical at
//! any thread count.
use nvm_bench::experiments::kv_serving;
use nvm_bench::report::write_json;
use nvm_bench::scale::RunArgs;

fn main() {
    let scale = RunArgs::from_env().remote_scale();
    let rows = kv_serving::run(&scale);
    kv_serving::render(&rows).print();
    println!(
        "\nexposed checkpoint time on the serving path: dcpcp {:.1} ms vs stop-the-world {:.1} ms",
        kv_serving::exposed(&rows, "dcpcp") as f64 / 1e6,
        kv_serving::exposed(&rows, "none") as f64 / 1e6,
    );
    write_json("kv_serving", &rows);
}
