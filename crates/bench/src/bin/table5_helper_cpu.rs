//! Regenerate Table V (helper core CPU utilization).
use nvm_bench::experiments::table5;
use nvm_bench::report::write_json;
use nvm_bench::scale::Scale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        Scale::quick()
    } else {
        Scale::paper_remote()
    };
    let rows = table5::run(&scale);
    table5::render(&rows).print();
    write_json("table5_helper_cpu", &rows);
}
