//! Regenerate the Section-IV MADBench2 motivation experiment. Pass
//! `--real` to also measure real memcpy-vs-tmpfs on this host.
use nvm_bench::experiments::madbench;
use nvm_bench::report::write_json;

fn main() {
    let rows = madbench::run();
    madbench::render(
        "MADBench2 — ramdisk vs in-memory checkpoint (cost model)",
        &rows,
    )
    .print();
    write_json("madbench_ramdisk_vs_memory", &rows);
    if std::env::args().any(|a| a == "--real") {
        let real = madbench::run_real();
        if real.is_empty() {
            eprintln!("real mode unavailable (no writable tmpfs)");
        } else {
            madbench::render("MADBench2 — measured on this host", &real).print();
            write_json("madbench_real", &real);
        }
    }
}
