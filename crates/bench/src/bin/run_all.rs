//! Run every experiment in sequence and emit all tables + JSON.
//! `--quick` runs the reduced presets (CI-friendly); `--threads N`
//! runs cluster simulations on N rank-execution worker threads
//! (results are bit-identical at any thread count); `--trace PATH`
//! additionally runs a traced GTC simulation and writes its event
//! stream to PATH (`.jsonl` for line-delimited JSON, anything else for
//! Chrome `trace_event` JSON viewable in chrome://tracing or
//! Perfetto); `--metrics PATH` runs a metered GTC simulation and
//! writes its metrics report to PATH as stable-ordered JSON plus a
//! Prometheus text exposition alongside it; `--analyze PATH` runs a
//! traced GTC simulation through the `nvm-obs` analyzer and writes the
//! critical-path blame + rollup report to PATH as stable JSON plus a
//! folded-stack flamegraph alongside it; `--analyze-from TRACE`
//! analyzes a previously recorded JSONL trace instead (the report is a
//! pure function of the stream, so the output matches the live run the
//! trace came from byte for byte); `--store DIR` runs the
//! durable-store recovery experiment, leaving one container file per
//! rank under DIR and timing per-rank recovery from those files alone.
//! `--store` combines with `--trace`: the traced run then attaches the
//! stores too, so store write/commit events appear in the exported
//! stream. Unknown flags abort with usage.
use nvm_bench::experiments::*;
use nvm_bench::report::write_json;
use nvm_bench::scale::RunArgs;

fn main() {
    let args = RunArgs::from_env();
    let scale = args.scale();
    let remote_scale = args.remote_scale();
    let threads = args.thread_count();

    println!(
        "# NVM-checkpoints — full experiment suite ({}, {} rank-execution thread{})",
        if args.quick {
            "quick preset"
        } else {
            "paper preset"
        },
        threads,
        if threads == 1 { "" } else { "s" }
    );

    let t1 = table1::run();
    table1::render(&t1).print();
    write_json("table1_device_params", &t1);

    let f4 = fig4::run(false);
    for t in fig4::render(&f4) {
        t.print();
    }
    write_json("fig4_parallel_memcpy", &f4);

    let mad = madbench::run();
    madbench::render(
        "MADBench2 — ramdisk vs in-memory checkpoint (cost model)",
        &mad,
    )
    .print();
    write_json("madbench_ramdisk_vs_memory", &mad);

    let t4 = table4::run();
    table4::render(&t4).print();
    write_json("table4_chunk_distribution", &t4);

    for (fig, app, title) in [
        (
            "fig7_lammps_local",
            "lammps",
            "Figure 7 — LAMMPS local checkpoint",
        ),
        ("fig8_gtc_local", "gtc", "Figure 8 — GTC local checkpoint"),
        ("cm1_local", "cm1", "CM1 local checkpoint"),
    ] {
        let rows = local::run(app, &scale);
        local::render(title, &rows).print();
        write_json(fig, &rows);
    }

    let f9 = fig9::run(&remote_scale);
    fig9::render(&f9).print();
    let (pre, nopre) = fig9::average_overheads(&f9);
    println!(
        "\naverage overhead: pre-copy {:.1}% vs no-pre-copy {:.1}% ({:.0}% reduction)",
        pre * 100.0,
        nopre * 100.0,
        (1.0 - pre / nopre) * 100.0
    );
    write_json("fig9_gtc_remote_efficiency", &f9);

    let f10 = fig10::run(&remote_scale);
    fig10::render(&f10).print();
    println!("\n{}", fig10::summary(&f10));
    write_json("fig10_peak_interconnect", &f10);

    let t5 = table5::run(&remote_scale);
    table5::render(&t5).print();
    write_json("table5_helper_cpu", &t5);

    let mv = model_val::run();
    model_val::render(&mv).print();
    write_json("model_validation", &mv);
    let rel = cluster_sim::ReliabilityParams::zheng_ftc_charm();
    println!(
        "\nbuddy-pair reliability (Zheng et al. configuration): P(unrecoverable) = {:.6}% \
(paper quotes 0.000977%), ~{:.0} recoverable single-node failures over the run",
        cluster_sim::unrecoverable_probability(&rel) * 100.0,
        cluster_sim::expected_failures(&rel),
    );

    let ml = multilevel_recovery::run(&scale);
    for t in multilevel_recovery::render(&ml) {
        t.print();
    }
    if !ml.serial_threaded_identical {
        eprintln!("WARNING: remote-buddy recovery differed serial vs threaded");
    }
    write_json("multilevel_recovery", &ml);

    let sc = scaling::run(&scale);
    scaling::render(&sc).print();
    write_json("scaling_threads", &sc);

    // The rank-scaling sweep (`scaling_ranks`) is a dedicated binary:
    // its peak-RSS column reads the process-wide VmHWM, which cannot
    // reset below the residue the twenty experiments above leave
    // behind, so it must run in a fresh process to measure anything.

    let g = ablations::run_granularity(&scale);
    ablations::render_granularity(&g).print();
    write_json("ablation_granularity", &g);
    let p = ablations::run_prediction(&scale);
    ablations::render_prediction(&p).print();
    write_json("ablation_prediction", &p);
    let v = ablations::run_versioning(&scale);
    ablations::render_versioning(&v).print();
    write_json("ablation_versions", &v);
    let s = ablations::run_serialized(&scale);
    ablations::render_serialized(&s).print();
    write_json("ablation_serialized_copy", &s);

    let bl = blame::run(&scale);
    blame::render(&bl).print();
    println!(
        "\nexposed checkpoint time on the critical path: dcpcp {:.1} ms vs cpc {:.1} ms",
        blame::exposed(&bl, "dcpcp") as f64 / 1e6,
        blame::exposed(&bl, "cpc") as f64 / 1e6,
    );
    write_json("blame", &bl);

    let kv = kv_serving::run(&remote_scale);
    kv_serving::render(&kv).print();
    println!(
        "\nexposed checkpoint time on the serving path: dcpcp {:.1} ms vs stop-the-world {:.1} ms",
        kv_serving::exposed(&kv, "dcpcp") as f64 / 1e6,
        kv_serving::exposed(&kv, "none") as f64 / 1e6,
    );
    write_json("kv_serving", &kv);

    let restart = extensions::run_restart();
    let compression = extensions::run_compression();
    let redundancy = extensions::run_redundancy();
    let wear = extensions::run_wear();
    let energy = extensions::run_energy();
    for t in extensions::render(&restart, &compression, &redundancy, &wear, &energy) {
        t.print();
    }
    write_json("ext_restart_strategies", &restart);
    write_json("ext_compression", &compression);
    write_json("ext_redundancy", &redundancy);
    write_json("ext_wear_leveling", &wear);
    write_json("ext_energy", &energy);

    if let Some(path) = &args.trace {
        // With --store too, the traced run attaches containers of its
        // own under DIR/trace (so store events appear in the stream)
        // without touching the recovery experiment's containers, which
        // land directly under DIR below.
        let trace_store = args
            .store
            .as_deref()
            .map(|d| std::path::Path::new(d).join("trace"));
        let (events, summary) = tracing::run(&scale, trace_store.as_deref());
        match tracing::export(&events, path) {
            Ok(()) => {
                tracing::render(&summary, path).print();
                write_json("trace_summary", &summary);
            }
            Err(e) => eprintln!("failed to write trace to {path}: {e}"),
        }
    }

    if let Some(path) = &args.analyze {
        let (events, report) = analyze::run(&scale);
        match analyze::export(&report, &events, path) {
            Ok(folded) => {
                analyze::render(&report, path).print();
                println!("folded-stack flamegraph written to {folded}.");
            }
            Err(e) => eprintln!("failed to write analysis to {path}: {e}"),
        }
    }

    if let Some(trace_path) = &args.analyze_from {
        match std::fs::read_to_string(trace_path) {
            Ok(text) => match nvm_trace::read_jsonl(&text) {
                Ok(events) => {
                    let report = nvm_obs::analyze(&events, nvm_obs::DEFAULT_BUCKET_NS);
                    let path = format!("{trace_path}.analysis.json");
                    match analyze::export(&report, &events, &path) {
                        Ok(folded) => {
                            analyze::render(&report, &path).print();
                            println!("folded-stack flamegraph written to {folded}.");
                        }
                        Err(e) => eprintln!("failed to write analysis to {path}: {e}"),
                    }
                }
                Err(e) => eprintln!("cannot analyze {trace_path}: {e}"),
            },
            Err(e) => eprintln!("cannot read {trace_path}: {e}"),
        }
    }

    if let Some(path) = &args.metrics {
        let report = metrics::run(&scale);
        match metrics::export(&report, path) {
            Ok(prom) => {
                metrics::render(&report, path).print();
                println!("Prometheus exposition written to {prom}.");
            }
            Err(e) => eprintln!("failed to write metrics to {path}: {e}"),
        }
    }

    if let Some(dir) = &args.store {
        let rows = store::run(&scale, std::path::Path::new(dir));
        store::render(&rows).print();
        write_json("store_recovery", &rows);
        println!("per-rank container files left under {dir}.");
    }

    println!("\nJSON written to experiments/ at the workspace root.");
}
