//! Regenerate Figure 8 (GTC local checkpoint). `--quick` available.
use nvm_bench::experiments::local;
use nvm_bench::report::write_json;
use nvm_bench::scale::Scale;

fn main() {
    let scale = Scale::from_args();
    let rows = local::run("gtc", &scale);
    local::render("Figure 8 — GTC local checkpoint (48 ranks)", &rows).print();
    write_json("fig8_gtc_local", &rows);
}
