//! Regenerate Figure 10 (LAMMPS peak interconnect usage timeline).
use nvm_bench::experiments::fig10;
use nvm_bench::report::write_json;
use nvm_bench::scale::Scale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        Scale::quick()
    } else {
        Scale::paper_remote()
    };
    let r = fig10::run(&scale);
    fig10::render(&r).print();
    println!("\n{}", fig10::summary(&r));
    write_json("fig10_peak_interconnect", &r);
}
