//! Regenerate Figure 9 (GTC efficiency with remote checkpointing).
use nvm_bench::experiments::fig9;
use nvm_bench::report::write_json;
use nvm_bench::scale::Scale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        Scale::quick()
    } else {
        Scale::paper_remote()
    };
    let rows = fig9::run(&scale);
    fig9::render(&rows).print();
    let (pre, nopre) = fig9::average_overheads(&rows);
    println!(
        "\naverage overhead: pre-copy {:.1}% vs no-pre-copy {:.1}% ({:.0}% reduction; paper: 6.2% vs 10.6%, ~40%)",
        pre * 100.0,
        nopre * 100.0,
        (1.0 - pre / nopre) * 100.0
    );
    write_json("fig9_gtc_remote_efficiency", &rows);
}
