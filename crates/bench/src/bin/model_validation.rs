//! Cross-validate the Section-III closed-form model against the
//! simulator.
use nvm_bench::experiments::model_val;
use nvm_bench::report::write_json;

fn main() {
    let rows = model_val::run();
    model_val::render(&rows).print();
    write_json("model_validation", &rows);

    // The Zheng et al. buddy-pair reliability figure the paper quotes
    // in Section IV.
    let p = cluster_sim::ReliabilityParams::zheng_ftc_charm();
    println!(
        "
buddy-pair reliability (Zheng et al. configuration):          P(unrecoverable) = {:.6}% (paper quotes 0.000977%),          ~{:.0} recoverable single-node failures over the run",
        cluster_sim::unrecoverable_probability(&p) * 100.0,
        cluster_sim::expected_failures(&p),
    );
}
