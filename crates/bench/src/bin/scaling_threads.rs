//! Regenerate the thread-scaling sweep (`scaling_threads.json`):
//! measured wall clock, projected speedup from the serial run's
//! busy/serial decomposition, and the bit-identity check per thread
//! count. `--quick` runs the reduced preset.
use nvm_bench::experiments::scaling;
use nvm_bench::report::write_json;
use nvm_bench::scale::Scale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        Scale::quick()
    } else {
        Scale::paper()
    };
    let sweep = scaling::run(&scale);
    scaling::render(&sweep).print();
    write_json("scaling_threads", &sweep);
}
