//! Regenerate Table IV (chunk size distributions).
use nvm_bench::experiments::table4;
use nvm_bench::report::write_json;

fn main() {
    let rows = table4::run();
    table4::render(&rows).print();
    write_json("table4_chunk_distribution", &rows);
}
