//! Regenerate the CM1 local-checkpoint result (Section VI text: <5%
//! pre-copy benefit). `--quick` available.
use nvm_bench::experiments::local;
use nvm_bench::report::write_json;
use nvm_bench::scale::Scale;

fn main() {
    let scale = Scale::from_args();
    let rows = local::run("cm1", &scale);
    local::render("CM1 local checkpoint (48 ranks)", &rows).print();
    write_json("cm1_local", &rows);
}
