//! Run the extension experiments: restart strategies, compression,
//! redundancy schemes, and wear leveling.
use nvm_bench::experiments::extensions;
use nvm_bench::report::write_json;

fn main() {
    let restart = extensions::run_restart();
    let compression = extensions::run_compression();
    let redundancy = extensions::run_redundancy();
    let wear = extensions::run_wear();
    let energy = extensions::run_energy();
    for t in extensions::render(&restart, &compression, &redundancy, &wear, &energy) {
        t.print();
    }
    write_json("ext_restart_strategies", &restart);
    write_json("ext_compression", &compression);
    write_json("ext_redundancy", &redundancy);
    write_json("ext_wear_leveling", &wear);
    write_json("ext_energy", &energy);
}
