//! Run all design-choice ablations. `--quick` available.
use nvm_bench::experiments::ablations;
use nvm_bench::report::write_json;
use nvm_bench::scale::Scale;

fn main() {
    let scale = Scale::from_args();
    let g = ablations::run_granularity(&scale);
    ablations::render_granularity(&g).print();
    write_json("ablation_granularity", &g);
    let p = ablations::run_prediction(&scale);
    ablations::render_prediction(&p).print();
    write_json("ablation_prediction", &p);
    let v = ablations::run_versioning(&scale);
    ablations::render_versioning(&v).print();
    write_json("ablation_versions", &v);
    let s = ablations::run_serialized(&scale);
    ablations::render_serialized(&s).print();
    write_json("ablation_serialized_copy", &s);
}
