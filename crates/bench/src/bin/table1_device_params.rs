//! Regenerate Table I (device parameters, model + measured).
use nvm_bench::experiments::table1;
use nvm_bench::report::write_json;

fn main() {
    let rows = table1::run();
    table1::render(&rows).print();
    write_json("table1_device_params", &rows);
}
