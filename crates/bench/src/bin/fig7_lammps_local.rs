//! Regenerate Figure 7 (LAMMPS local checkpoint, pre-copy vs no
//! pre-copy vs ramdisk). `--quick` for the reduced preset.
use nvm_bench::experiments::local;
use nvm_bench::report::write_json;
use nvm_bench::scale::Scale;

fn main() {
    let scale = Scale::from_args();
    let rows = local::run("lammps", &scale);
    local::render("Figure 7 — LAMMPS local checkpoint (48 ranks)", &rows).print();
    write_json("fig7_lammps_local", &rows);
}
