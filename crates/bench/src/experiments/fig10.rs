//! Figure 10 — LAMMPS peak interconnect usage over the application
//! timeline: pre-copy vs no-pre-copy remote checkpointing.
//!
//! Expected shape: the no-pre-copy line shows tall bursts at every
//! remote checkpoint (all data at once); pre-copy spreads the same
//! volume across the interval, roughly halving the peak (up to 46%
//! lower). The pre-copy trace also shows an *initial* spike — the
//! learning phase, before the delay-based optimizations engage.

use crate::experiments::{cluster_config, run_cluster};
use crate::report::Table;
use crate::scale::Scale;
use cluster_sim::{RemoteConfig, RunOptions};
use nvm_chkpt::PrecopyPolicy;
use nvm_emu::SimDuration;
use serde::Serialize;

/// The Figure-10 result: two timelines plus summary stats.
#[derive(Clone, Debug, Serialize)]
pub struct Fig10Result {
    /// Bucket width, seconds.
    pub bucket_s: f64,
    /// Bytes per bucket, pre-copy run (node 0).
    pub precopy_series: Vec<f64>,
    /// Bytes per bucket, no-pre-copy run (node 0).
    pub noprecopy_series: Vec<f64>,
    /// Peak bucket bytes, pre-copy.
    pub precopy_peak: f64,
    /// Peak bucket bytes, no pre-copy.
    pub noprecopy_peak: f64,
    /// Peak reduction fraction (paper: up to 0.46).
    pub peak_reduction: f64,
    /// Total bytes shipped, pre-copy (may exceed no-pre-copy: re-sent
    /// re-dirtied chunks).
    pub precopy_total: f64,
    /// Total bytes shipped, no pre-copy.
    pub noprecopy_total: f64,
}

/// Run both LAMMPS remote configurations and extract node-0 traces.
pub fn run(scale: &Scale) -> Fig10Result {
    let app = "lammps";
    let interval = SimDuration::from_secs((scale.local_interval.as_nanos() / 1_000_000_000) * 2);
    let run_one = |precopy: bool| {
        let policy = if precopy {
            PrecopyPolicy::Dcpcp
        } else {
            PrecopyPolicy::None
        };
        let mut cfg = cluster_config(scale, policy);
        cfg.remote = Some(RemoteConfig::infiniband(interval, precopy));
        run_cluster(cfg, app, scale, RunOptions::new())
    };
    let pre = run_one(true);
    let nopre = run_one(false);
    let pre_trace = &pre.link_traces[0];
    let nopre_trace = &nopre.link_traces[0];
    let precopy_peak = pre_trace.peak_bytes();
    let noprecopy_peak = nopre_trace.peak_bytes();
    Fig10Result {
        bucket_s: pre_trace.bucket_width().as_secs_f64(),
        precopy_series: pre_trace.series().to_vec(),
        noprecopy_series: nopre_trace.series().to_vec(),
        precopy_peak,
        noprecopy_peak,
        peak_reduction: 1.0 - precopy_peak / noprecopy_peak.max(1.0),
        precopy_total: pre_trace.total_bytes(),
        noprecopy_total: nopre_trace.total_bytes(),
    }
}

/// Render the timeline (downsampled to at most 40 rows).
pub fn render(r: &Fig10Result) -> Table {
    let mut t = Table::new(
        "Figure 10 — LAMMPS peak interconnect usage (node 0, MB per bucket)",
        &["t (s)", "Pre-copy (MB)", "No pre-copy (MB)"],
    );
    let len = r.precopy_series.len().max(r.noprecopy_series.len());
    let step = len.div_ceil(40).max(1);
    let mb = (1 << 20) as f64;
    for i in (0..len).step_by(step) {
        let window = |s: &[f64]| -> f64 { s.iter().skip(i).take(step).sum::<f64>() };
        t.row(vec![
            format!("{:.0}", i as f64 * r.bucket_s),
            format!("{:.1}", window(&r.precopy_series) / mb),
            format!("{:.1}", window(&r.noprecopy_series) / mb),
        ]);
    }
    t
}

/// Summary lines.
pub fn summary(r: &Fig10Result) -> String {
    let mb = (1 << 20) as f64;
    format!(
        "peak: pre-copy {:.1} MB vs no-pre-copy {:.1} MB per bucket => {:.0}% peak reduction\n\
         volume: pre-copy {:.0} MB vs no-pre-copy {:.0} MB shipped",
        r.precopy_peak / mb,
        r.noprecopy_peak / mb,
        r.peak_reduction * 100.0,
        r.precopy_total / mb,
        r.noprecopy_total / mb,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig10_peak_reduction() {
        // Full-size chunks on few ranks: the peak difference comes
        // from staging rates, so per-node volume must exceed one
        // bucket's worth of wire time.
        let mut scale = Scale::quick();
        scale.size_scale = 1.0;
        scale.iterations = 12;
        let r = run(&scale);
        assert!(
            r.peak_reduction > 0.3,
            "expected a sizeable peak reduction, got {:.2}",
            r.peak_reduction
        );
        assert!(r.noprecopy_peak > 0.0 && r.precopy_peak > 0.0);
        assert!(!render(&r).is_empty());
        assert!(summary(&r).contains("peak reduction"));
    }
}
