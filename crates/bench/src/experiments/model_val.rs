//! Section-III model validation — the closed-form model against the
//! simulator on a uniform workload.
//!
//! The model and the simulator share parameters (data size, NVM
//! bandwidth, interval, MTBFs); agreement within a modest tolerance
//! cross-validates both: the simulator's accounting implements the
//! equations, and the equations summarize the simulator.

use crate::report::Table;
use cluster_sim::{
    evaluate, Cluster, ClusterConfig, FailureConfig, ModelParams, RunOptions, UniformWorkload,
    Workload,
};
use nvm_chkpt::PrecopyPolicy;
use nvm_emu::SimDuration;
use serde::Serialize;

/// One validation row.
#[derive(Clone, Debug, Serialize)]
pub struct ModelValRow {
    /// NVM bandwidth per core, MB/s.
    pub bw_mb: u32,
    /// Soft-failure MTBF, seconds.
    pub mtbf_soft_s: u64,
    /// Closed-form predicted total time, s.
    pub model_s: f64,
    /// Simulated total time, s.
    pub sim_s: f64,
    /// Relative error (sim vs model).
    pub rel_error: f64,
    /// Simulated soft failures.
    pub sim_failures: u64,
    /// Model-expected soft failures.
    pub model_failures: f64,
}

const MB: usize = 1 << 20;

/// Run the validation sweep.
pub fn run() -> Vec<ModelValRow> {
    let chunks = 4usize;
    let chunk_bytes = 4 * MB;
    let data_bytes = (chunks * chunk_bytes) as u64;
    let compute_per_iter = SimDuration::from_secs(5);
    let iterations: u64 = 40;
    let interval = SimDuration::from_secs(10); // checkpoint every 2 iters
    let mtbf_soft = 120u64;

    let mut rows = Vec::new();
    for bw_mb in [200u32, 400, 800] {
        let bw = bw_mb as f64 * MB as f64;
        // --- simulator ---
        let mut cfg = ClusterConfig::new(1, 2);
        cfg.container_bytes = chunks * chunk_bytes * 2 + (8 << 20);
        cfg.engine = cfg.engine.with_precopy(PrecopyPolicy::None);
        cfg.nvm_bw_per_core = Some(bw);
        cfg.local_interval = Some(interval);
        cfg.iterations = iterations;
        cfg.failures = Some(FailureConfig {
            seed: 3,
            mtbf_soft: SimDuration::from_secs(mtbf_soft),
            mtbf_hard: SimDuration::from_secs(1_000_000_000),
        });
        cfg.failure_horizon = SimDuration::from_secs(3600);
        let factory = move |_g: u64| -> Box<dyn Workload> {
            Box::new(UniformWorkload::new(
                chunks,
                chunk_bytes,
                compute_per_iter,
                0,
            ))
        };
        let sim = Cluster::new(cfg, factory)
            .run(RunOptions::new())
            .expect("run")
            .result;

        // --- closed form ---
        let t_compute = compute_per_iter * iterations;
        let t_lcl = SimDuration::from_secs_f64(data_bytes as f64 / bw);
        let params = ModelParams {
            t_compute,
            data_bytes,
            nvm_bw_core: bw,
            local_interval: interval,
            k: 1,
            remote_overhead: SimDuration::ZERO,
            mtbf_local: SimDuration::from_secs(mtbf_soft),
            mtbf_remote: SimDuration::from_secs(1_000_000_000),
            r_local: t_lcl, // restart reads what the checkpoint wrote
            r_remote: SimDuration::ZERO,
        };
        let pred = evaluate(&params);
        let model_s = pred.t_total.as_secs_f64();
        let sim_s = sim.total_time.as_secs_f64();
        rows.push(ModelValRow {
            bw_mb,
            mtbf_soft_s: mtbf_soft,
            model_s,
            sim_s,
            rel_error: (sim_s - model_s).abs() / model_s,
            sim_failures: sim.soft_failures,
            model_failures: pred.f_local,
        });
    }
    rows
}

/// Render the validation table.
pub fn render(rows: &[ModelValRow]) -> Table {
    let mut t = Table::new(
        "Section III model vs simulator (uniform workload, no pre-copy)",
        &[
            "NVM BW/core (MB/s)",
            "Model T_total (s)",
            "Sim T_total (s)",
            "Rel. error",
            "Model failures",
            "Sim failures",
        ],
    );
    for r in rows {
        t.row(vec![
            r.bw_mb.to_string(),
            format!("{:.1}", r.model_s),
            format!("{:.1}", r.sim_s),
            format!("{:.1}%", r.rel_error * 100.0),
            format!("{:.1}", r.model_failures),
            r.sim_failures.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_and_sim_agree_within_tolerance() {
        let rows = run();
        for r in &rows {
            // One seeded failure draw vs an expectation: generous
            // tolerance, but both must be the same order.
            assert!(
                r.rel_error < 0.35,
                "model {:.1}s vs sim {:.1}s at {} MB/s",
                r.model_s,
                r.sim_s,
                r.bw_mb
            );
        }
        // More bandwidth, less total time in the model. (The simulated
        // times also shrink in expectation, but a single seeded failure
        // draw can shift rollback losses by more than the checkpoint
        // savings at this scale, so only the model is asserted
        // monotone.)
        assert!(rows[2].model_s < rows[0].model_s);
    }
}
