//! Trace analysis (`run_all --analyze <path>` / `--analyze-from <trace>`).
//!
//! Live mode runs the same traced GTC simulation as `--trace`, feeds
//! the merged event stream through the `nvm-obs` analyzer, and writes
//! the blame + rollup report to `path` as stable-ordered pretty JSON
//! plus a folded-stack flamegraph alongside it (`<path>.folded`, or
//! `.folded` replacing a `.json` extension — the format
//! `flamegraph.pl`/`inferno` consume directly).
//!
//! Offline mode (`--analyze-from`) loads a previously recorded JSONL
//! trace instead of running anything, validating its schema header
//! ([`nvm_trace::read_jsonl`] — a newer-versioned trace is a typed
//! error, a headerless one upgrades as legacy v1). Because the report
//! is a pure function of the event stream, analyzing a recorded trace
//! yields byte-identical output to analyzing the run it came from —
//! CI diffs the two.

use crate::experiments::tracing;
use crate::report::Table;
use crate::scale::Scale;
use nvm_obs::{analyze, to_folded, to_stable_json, AnalysisReport, DEFAULT_BUCKET_NS};
use nvm_trace::TraceEvent;

/// Run the traced simulation and analyze its stream (live mode).
/// Returns the events too so callers can also export the raw trace.
pub fn run(scale: &Scale) -> (Vec<TraceEvent>, AnalysisReport) {
    let (events, _summary) = tracing::run(scale, None);
    let report = analyze(&events, DEFAULT_BUCKET_NS);
    (events, report)
}

/// Analyze a recorded JSONL trace (offline mode). Schema-version
/// mismatches surface as [`nvm_trace::TraceReadError::Schema`].
pub fn from_recorded(text: &str) -> Result<AnalysisReport, nvm_trace::TraceReadError> {
    let events = nvm_trace::read_jsonl(text)?;
    Ok(analyze(&events, DEFAULT_BUCKET_NS))
}

/// Sibling path for the folded-stack flamegraph.
pub fn folded_path(path: &str) -> String {
    match path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.folded"),
        None => format!("{path}.folded"),
    }
}

/// Write the report to `path` as stable JSON and the flamegraph to
/// [`folded_path`]. Returns the flamegraph path.
pub fn export(
    report: &AnalysisReport,
    events: &[TraceEvent],
    path: &str,
) -> std::io::Result<String> {
    std::fs::write(path, to_stable_json(report))?;
    let folded = folded_path(path);
    std::fs::write(&folded, to_folded(events))?;
    Ok(folded)
}

/// Render the blame headline as a table.
pub fn render(report: &AnalysisReport, path: &str) -> Table {
    let b = &report.blame;
    let mut t = Table::new(
        &format!("Blame — critical-path decomposition (written to {path})"),
        &[
            "Wall (s)",
            "Critical path (s)",
            "Exposed ckpt",
            "Hidden ckpt",
            "Overlap eff",
            "Comm stall",
            "Recovery",
            "Epochs",
        ],
    );
    t.row(vec![
        format!("{:.2}", b.wall_ns as f64 / 1e9),
        format!("{:.2}", b.critical_path_ns as f64 / 1e9),
        format!("{:.1}%", b.exposed_checkpoint_fraction * 100.0),
        format!("{:.1}%", b.hidden_checkpoint_fraction * 100.0),
        format!("{:.3}", b.overlap_efficiency),
        format!("{:.1}%", b.comm_stall_share * 100.0),
        format!("{:.1}%", b.recovery_share * 100.0),
        b.epochs.len().to_string(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_and_offline_analysis_agree_byte_for_byte() {
        let (events, live) = run(&Scale::quick());
        assert!(live.events > 0);
        assert!(live.blame.critical_path_ns > 0);
        assert!(live.blame.critical_path_ns <= live.blame.wall_ns);
        // Round-trip through the JSONL recording and re-analyze: the
        // report is a pure function of the stream, so the bytes match.
        let recorded = nvm_trace::to_jsonl(&events);
        let offline = from_recorded(&recorded).expect("recorded trace loads");
        assert_eq!(to_stable_json(&live), to_stable_json(&offline));
        let table = render(&live, "analysis.json");
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn newer_schema_traces_are_rejected_with_a_typed_error() {
        let future = format!("{{\"schema_version\":{}}}\n", nvm_trace::SCHEMA_VERSION + 1);
        match from_recorded(&future) {
            Err(nvm_trace::TraceReadError::Schema { found, supported }) => {
                assert_eq!(found, nvm_trace::SCHEMA_VERSION + 1);
                assert_eq!(supported, nvm_trace::SCHEMA_VERSION);
            }
            other => panic!("expected schema error, got {other:?}"),
        }
    }

    #[test]
    fn folded_path_swaps_extension() {
        assert_eq!(folded_path("a.json"), "a.folded");
        assert_eq!(folded_path("out/analysis"), "out/analysis.folded");
    }

    #[test]
    fn quick_flamegraph_is_well_formed() {
        let (events, report) = run(&Scale::quick());
        let folded = to_folded(&events);
        let mut ranks = std::collections::BTreeSet::new();
        for line in folded.lines() {
            let (stack, weight) = line.rsplit_once(' ').expect("stack<space>weight");
            assert!(weight.parse::<u64>().is_ok(), "bad weight in {line:?}");
            let frames: Vec<&str> = stack.split(';').collect();
            assert!(frames.len() >= 2, "stack too shallow: {line:?}");
            assert!(frames[0].starts_with("rank_"), "bad root frame: {line:?}");
            ranks.insert(frames[0].to_string());
        }
        assert_eq!(ranks.len() as u64, report.blame.ranks);
    }
}
