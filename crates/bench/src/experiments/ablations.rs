//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **Protection granularity** — chunk-level (the paper's choice) vs
//!    page-level protection: page granularity storms the fault handler
//!    when checkpoint data fully changes (6-12 µs per fault, ~3 s/GB).
//! 2. **Prediction** — CPC vs DCPC vs DCPCP: what the delay and the
//!    prediction table each buy in wasted (re-copied) pre-copy bytes.
//! 3. **Versioning** — double vs single NVM versions: space cost of
//!    crash consistency.
//! 4. **Serialized checkpoint core** (Dong et al.) — one dedicated
//!    core copying all ranks' data serially vs every core copying its
//!    own data in parallel under contention.

use crate::experiments::{cluster_config, make_app, run_cluster};
use crate::report::Table;
use crate::scale::Scale;
use cluster_sim::RunOptions;
use nvm_chkpt::{
    CheckpointEngine, EngineConfig, Granularity, Materialization, PrecopyPolicy, Versioning,
};
use nvm_emu::{MemoryDevice, VirtualClock};
use serde::Serialize;

/// Granularity ablation row.
#[derive(Clone, Debug, Serialize)]
pub struct GranularityRow {
    /// Chunk or page protection.
    pub granularity: String,
    /// Total execution time, s.
    pub total_s: f64,
    /// Protection faults taken.
    pub faults: u64,
    /// Time lost to fault handling, s.
    pub fault_time_s: f64,
}

/// Run the granularity ablation on LAMMPS.
pub fn run_granularity(scale: &Scale) -> Vec<GranularityRow> {
    [Granularity::Chunk, Granularity::Page]
        .iter()
        .map(|&g| {
            let mut cfg = cluster_config(scale, PrecopyPolicy::Cpc);
            cfg.engine = cfg.engine.with_granularity(g);
            let r = run_cluster(cfg, "lammps", scale, RunOptions::new());
            GranularityRow {
                granularity: format!("{g:?}"),
                total_s: r.total_time.as_secs_f64(),
                faults: r.engine_stats.faults,
                fault_time_s: r.engine_stats.fault_time.as_secs_f64(),
            }
        })
        .collect()
}

/// Prediction ablation row.
#[derive(Clone, Debug, Serialize)]
pub struct PredictionRow {
    /// Policy name.
    pub policy: String,
    /// Total execution time, s.
    pub total_s: f64,
    /// Wasted (re-copied) pre-copy bytes per rank, MB.
    pub wasted_mb: f64,
    /// Total data moved to NVM per rank, MB.
    pub moved_mb: f64,
}

/// Run the prediction ablation on LAMMPS (its hot chunk is the point).
pub fn run_prediction(scale: &Scale) -> Vec<PredictionRow> {
    [
        PrecopyPolicy::Cpc,
        PrecopyPolicy::Dcpc,
        PrecopyPolicy::Dcpcp,
    ]
    .iter()
    .map(|&p| {
        let cfg = cluster_config(scale, p);
        let r = run_cluster(cfg, "lammps", scale, RunOptions::new());
        let ranks = scale.total_ranks() as f64;
        let mb = (1 << 20) as f64;
        PredictionRow {
            policy: format!("{p:?}"),
            total_s: r.total_time.as_secs_f64(),
            wasted_mb: r.engine_stats.wasted_precopy_bytes as f64 / ranks / mb,
            moved_mb: r.engine_stats.total_copied_bytes() as f64 / ranks / mb,
        }
    })
    .collect()
}

/// Versioning ablation row.
#[derive(Clone, Debug, Serialize)]
pub struct VersioningRow {
    /// Single or double.
    pub versioning: String,
    /// NVM bytes reserved for shadow versions, MB.
    pub nvm_mb: f64,
    /// Checkpoints completed.
    pub checkpoints: u64,
}

/// Run the versioning ablation on a single LAMMPS rank.
pub fn run_versioning(scale: &Scale) -> Vec<VersioningRow> {
    [Versioning::Double, Versioning::Single]
        .iter()
        .map(|&v| {
            let dram = MemoryDevice::dram(2 << 30);
            let nvm = MemoryDevice::pcm(4 << 30);
            let clock = VirtualClock::new();
            let cfg = EngineConfig::builder()
                .materialization(Materialization::Synthetic)
                .checksums(false)
                .versioning(v)
                .build()
                .expect("valid versioning-ablation config");
            let mut engine =
                CheckpointEngine::new(0, &dram, &nvm, scale.container_bytes(), clock, cfg)
                    .expect("engine");
            let mut app = make_app("lammps", scale);
            app.setup(&mut engine).expect("setup");
            for i in 0..4 {
                app.iterate(&mut engine, i).expect("iter");
                engine.nvchkptall().expect("ckpt");
            }
            VersioningRow {
                versioning: format!("{v:?}"),
                nvm_mb: engine.heap().arena_stats().allocated as f64 / (1 << 20) as f64,
                checkpoints: engine.epoch(),
            }
        })
        .collect()
}

/// Serialized-copy ablation row.
#[derive(Clone, Debug, Serialize)]
pub struct SerializedRow {
    /// Scheme name.
    pub scheme: String,
    /// Time to drain one coordinated node checkpoint, s.
    pub drain_s: f64,
}

/// Compare parallel contended copying (all ranks at once) with a
/// dedicated single checkpoint core copying every rank's data serially
/// (Dong et al.'s design, which the paper argues against for small
/// checkpoint sizes).
pub fn run_serialized(scale: &Scale) -> Vec<SerializedRow> {
    let nvm = MemoryDevice::pcm(1 << 30);
    let per_rank_bytes = (433.0 * scale.size_scale * (1 << 20) as f64) as u64;
    let ranks = scale.ranks_per_node;
    // Parallel: every rank copies its own data, sharing the device.
    let bw_parallel = nvm.per_core_bandwidth(ranks, 32 << 20);
    let parallel_s = per_rank_bytes as f64 / bw_parallel;
    // Serialized: one core copies rank after rank at single-stream bw.
    let bw_single = nvm.per_core_bandwidth(1, 32 << 20);
    let serial_s = (per_rank_bytes * ranks as u64) as f64 / bw_single;
    vec![
        SerializedRow {
            scheme: format!("parallel ({ranks} contended cores)"),
            drain_s: parallel_s,
        },
        SerializedRow {
            scheme: "serialized (1 dedicated core)".to_string(),
            drain_s: serial_s,
        },
    ]
}

/// Render helpers.
pub fn render_granularity(rows: &[GranularityRow]) -> Table {
    let mut t = Table::new(
        "Ablation — chunk vs page protection granularity (LAMMPS)",
        &["Granularity", "Total (s)", "Faults", "Fault time (s)"],
    );
    for r in rows {
        t.row(vec![
            r.granularity.clone(),
            format!("{:.1}", r.total_s),
            r.faults.to_string(),
            format!("{:.3}", r.fault_time_s),
        ]);
    }
    t
}

/// Render the prediction ablation.
pub fn render_prediction(rows: &[PredictionRow]) -> Table {
    let mut t = Table::new(
        "Ablation — pre-copy policy (LAMMPS hot chunks)",
        &["Policy", "Total (s)", "Wasted (MB/rank)", "Moved (MB/rank)"],
    );
    for r in rows {
        t.row(vec![
            r.policy.clone(),
            format!("{:.1}", r.total_s),
            format!("{:.1}", r.wasted_mb),
            format!("{:.1}", r.moved_mb),
        ]);
    }
    t
}

/// Render the versioning ablation.
pub fn render_versioning(rows: &[VersioningRow]) -> Table {
    let mut t = Table::new(
        "Ablation — single vs double NVM versions (one LAMMPS rank)",
        &["Versioning", "NVM reserved (MB)", "Checkpoints"],
    );
    for r in rows {
        t.row(vec![
            r.versioning.clone(),
            format!("{:.0}", r.nvm_mb),
            r.checkpoints.to_string(),
        ]);
    }
    t
}

/// Render the serialized-copy ablation.
pub fn render_serialized(rows: &[SerializedRow]) -> Table {
    let mut t = Table::new(
        "Ablation — parallel contended copy vs dedicated serial checkpoint core",
        &["Scheme", "Node drain time (s)"],
    );
    for r in rows {
        t.row(vec![r.scheme.clone(), format!("{:.2}", r.drain_s)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_granularity_faults_far_more() {
        let scale = Scale::quick();
        let rows = run_granularity(&scale);
        assert_eq!(rows.len(), 2);
        let chunk = &rows[0];
        let page = &rows[1];
        assert!(
            page.faults > 10 * chunk.faults,
            "page {} vs chunk {}",
            page.faults,
            chunk.faults
        );
        assert!(page.fault_time_s > chunk.fault_time_s);
    }

    #[test]
    fn dcpcp_wastes_least() {
        let scale = Scale::quick();
        let rows = run_prediction(&scale);
        let cpc = &rows[0];
        let dcpcp = &rows[2];
        assert!(
            dcpcp.wasted_mb <= cpc.wasted_mb,
            "DCPCP {} MB vs CPC {} MB wasted",
            dcpcp.wasted_mb,
            cpc.wasted_mb
        );
    }

    #[test]
    fn single_versioning_halves_nvm_space() {
        let scale = Scale::quick();
        let rows = run_versioning(&scale);
        let double = &rows[0];
        let single = &rows[1];
        let ratio = double.nvm_mb / single.nvm_mb;
        assert!((1.8..2.2).contains(&ratio), "ratio {ratio}");
        assert_eq!(double.checkpoints, 4);
    }

    #[test]
    fn serialization_is_slower_for_moderate_sizes() {
        let scale = Scale::quick();
        let rows = run_serialized(&scale);
        assert!(
            rows[1].drain_s > rows[0].drain_s,
            "serialized must lose: {rows:?}"
        );
    }
}
