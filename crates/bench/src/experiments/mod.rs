//! One module per paper table/figure, plus ablations.
//!
//! Each module exposes `run(...) -> Vec<Row>` returning serializable
//! rows and `render(...) -> Table` for human-readable output, so the
//! thin binaries and the `run_all` aggregator share one code path.

pub mod ablations;
pub mod analyze;
pub mod blame;
pub mod extensions;
pub mod fig10;
pub mod fig4;
pub mod fig9;
pub mod kv_serving;
pub mod local;
pub mod madbench;
pub mod metrics;
pub mod model_val;
pub mod multilevel_recovery;
pub mod scaling;
pub mod scaling_ranks;
pub mod store;
pub mod table1;
pub mod table4;
pub mod table5;
pub mod tracing;

use crate::scale::Scale;
use cluster_sim::{Cluster, ClusterConfig, RunOptions, RunResult, Workload};
use hpc_workloads::SyntheticApp;
use nvm_chkpt::PrecopyPolicy;

/// Run `cfg` with every rank hosting the named application at `scale`
/// — the shared call path for experiments that only need the
/// deterministic [`RunResult`].
pub fn run_cluster(cfg: ClusterConfig, app: &str, scale: &Scale, opts: RunOptions) -> RunResult {
    let app = app.to_string();
    let scale = *scale;
    Cluster::new(cfg, move |_| make_app(&app, &scale))
        .run(opts)
        .expect("cluster run")
        .result
}

/// Build one rank's workload for a named application at the given
/// scale.
pub fn make_app(app: &str, scale: &Scale) -> Box<dyn Workload> {
    let a = match app {
        "gtc" => SyntheticApp::gtc_scaled(scale.size_scale),
        "lammps" => SyntheticApp::lammps_scaled(scale.size_scale),
        "cm1" => SyntheticApp::cm1_scaled(scale.size_scale),
        other => panic!("unknown app {other}"),
    };
    Box::new(a.with_compute(scale.compute_per_iter))
}

/// Cluster configuration for a scale preset and pre-copy policy.
pub fn cluster_config(scale: &Scale, policy: PrecopyPolicy) -> ClusterConfig {
    let mut c = ClusterConfig::new(scale.nodes, scale.ranks_per_node);
    c.container_bytes = scale.container_bytes();
    c.engine = c.engine.with_precopy(policy);
    c.local_interval = Some(scale.local_interval);
    c.iterations = scale.iterations;
    c.threads = scale.threads;
    c
}

/// Effective NVM bandwidth values (MB/s per core) swept on the x-axis
/// of Figures 7, 8 and 9.
pub const BW_SWEEP_MB: [u32; 5] = [100, 200, 400, 800, 1600];
