//! Durable-store recovery experiment (`run_all --store DIR`).
//!
//! Runs a GTC cluster simulation with a per-rank container file under
//! `DIR` (mirroring is cost-free in virtual time, so the run itself is
//! identical to an unattached one), then revives every rank in a
//! brand-new "process" — fresh devices, fresh clock — from its file
//! alone, once per restart strategy. The rows compare eager, parallel
//! and lazy recovery-from-media times; the quick-preset output is
//! committed as `experiments/store_recovery.json`.

use crate::experiments::{cluster_config, make_app};
use crate::report::Table;
use crate::scale::Scale;
use cluster_sim::{Cluster, RankRecovery, RunOptions};
use nvm_chkpt::{CheckpointEngine, PrecopyPolicy, RestartStrategy, Tracer};
use nvm_emu::{MemoryDevice, VirtualClock};
use nvm_store::FileStore;
use serde::Serialize;
use std::path::Path;

/// One restart strategy's recovery measurements, aggregated over every
/// rank's container.
#[derive(Clone, Debug, Serialize)]
pub struct StoreRow {
    /// Restart strategy.
    pub strategy: String,
    /// Containers recovered (one per rank).
    pub ranks: usize,
    /// Chunks per rank's container.
    pub chunks_per_rank: usize,
    /// Last committed epoch found in the containers.
    pub recovered_epoch: u64,
    /// Mean virtual time until the application regains control, ms.
    pub mean_restart_ms: f64,
    /// Worst rank's time until control, ms.
    pub max_restart_ms: f64,
    /// Mean virtual time until every chunk is restored (lazy pays
    /// here), ms.
    pub mean_hot_ms: f64,
    /// Payload bytes actually fetched from media, MB over all ranks.
    pub payload_read_mb: f64,
}

/// Run the store-attached simulation, then recover every rank from
/// its container file under `dir` once per restart strategy.
pub fn run(scale: &Scale, dir: &Path) -> Vec<StoreRow> {
    let config = cluster_config(scale, PrecopyPolicy::Dcpcp);
    let engine_config = config.engine;
    let container_bytes = config.container_bytes;
    Cluster::new(config, {
        let scale = *scale;
        move |_| make_app("gtc", &scale)
    })
    .run(RunOptions::new().with_store_dir(dir))
    .expect("store-attached run");

    let recoveries = Cluster::recover_dir(dir).expect("recover store dir");
    assert!(!recoveries.is_empty(), "run left no containers in {dir:?}");

    let mut rows = Vec::new();
    for (name, strategy) in [
        ("eager", RestartStrategy::Eager),
        ("parallel x4", RestartStrategy::Parallel { streams: 4 }),
        ("lazy", RestartStrategy::Lazy),
    ] {
        let mut control = Vec::new();
        let mut hot = Vec::new();
        let mut payload_bytes = 0u64;
        let mut chunks_per_rank = 0usize;
        let mut epoch = 0u64;
        for RankRecovery { path, state, .. } in &recoveries {
            let store = FileStore::open_existing(path).expect("reopen container");
            let dram = MemoryDevice::dram(container_bytes + (64 << 20));
            let nvm = MemoryDevice::pcm(container_bytes * 2 + (8 << 20));
            let clock = VirtualClock::new();
            let t0 = clock.now();
            let (mut engine, _report) = CheckpointEngine::restart_from_store(
                &dram,
                &nvm,
                container_bytes,
                clock.clone(),
                engine_config,
                strategy,
                Box::new(store),
                Tracer::disabled(),
            )
            .expect("restart from container");
            control.push(clock.now().since(t0).as_secs_f64() * 1e3);
            // Touch every chunk: lazy pays its restores here, the
            // other strategies already did.
            for rec in &state.chunks {
                engine.write_synthetic(rec.id, 0, 1).expect("touch chunk");
            }
            hot.push(clock.now().since(t0).as_secs_f64() * 1e3);
            let stats = engine.persistence_stats().expect("store attached");
            payload_bytes += stats.payload_read_bytes;
            chunks_per_rank = state.chunks.len();
            epoch = state.epoch.expect("run committed at least one epoch");
        }
        let n = control.len().max(1) as f64;
        rows.push(StoreRow {
            strategy: name.to_string(),
            ranks: recoveries.len(),
            chunks_per_rank,
            recovered_epoch: epoch,
            mean_restart_ms: control.iter().sum::<f64>() / n,
            max_restart_ms: control.iter().copied().fold(0.0, f64::max),
            mean_hot_ms: hot.iter().sum::<f64>() / n,
            payload_read_mb: payload_bytes as f64 / (1 << 20) as f64,
        });
    }
    rows
}

/// Render the recovery comparison.
pub fn render(rows: &[StoreRow]) -> Table {
    let mut t = Table::new(
        "Durable store — per-rank recovery from container files",
        &[
            "Strategy",
            "Ranks",
            "Chunks/rank",
            "Epoch",
            "Restart (ms)",
            "Worst (ms)",
            "Hot (ms)",
            "Media read (MB)",
        ],
    );
    for r in rows {
        t.row(vec![
            r.strategy.clone(),
            r.ranks.to_string(),
            r.chunks_per_rank.to_string(),
            r.recovered_epoch.to_string(),
            format!("{:.2}", r.mean_restart_ms),
            format!("{:.2}", r.max_restart_ms),
            format!("{:.2}", r.mean_hot_ms),
            format!("{:.2}", r.payload_read_mb),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_emu::TempDir;

    #[test]
    fn quick_store_experiment_produces_consistent_rows() {
        let tmp = TempDir::new("bench-store").unwrap();
        let rows = run(&Scale::quick(), tmp.path());
        assert_eq!(rows.len(), 3);
        let ranks = Scale::quick().total_ranks();
        for r in &rows {
            assert_eq!(r.ranks, ranks);
            assert!(r.chunks_per_rank > 0);
            assert!(r.mean_hot_ms >= r.mean_restart_ms);
        }
        let eager = &rows[0];
        let lazy = &rows[2];
        assert!(
            lazy.mean_restart_ms < eager.mean_restart_ms,
            "lazy must regain control faster than eager ({} vs {})",
            lazy.mean_restart_ms,
            eager.mean_restart_ms
        );
        // Every strategy ends up reading the same payload volume once
        // all chunks are hot.
        assert!((eager.payload_read_mb - lazy.payload_read_mb).abs() < 1e-9);
    }
}
