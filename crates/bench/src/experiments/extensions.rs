//! Extension experiments — features beyond the paper's evaluation,
//! from its future-work and related-work sections:
//!
//! * restart strategies (eager / parallel / lazy) — the paper's
//!   explicit future work on recovery;
//! * checkpoint compression (mcrEngine-style volume reduction);
//! * XOR-parity remote redundancy vs full replication (diskless
//!   checkpointing);
//! * start-gap wear leveling under checkpoint write traffic.

use crate::report::Table;
use nvm_chkpt::compress::{compress, CompressionModel};
use nvm_chkpt::{CheckpointEngine, EngineConfig, RestartStrategy};
use nvm_emu::{MemoryDevice, StartGap, VirtualClock};
use nvm_paging::ChunkId;
use rdma_sim::{ParityStore, RemoteStore};
use serde::Serialize;

const MB: usize = 1 << 20;

/// One restart-strategy measurement.
#[derive(Clone, Debug, Serialize)]
pub struct RestartRow {
    /// Strategy name.
    pub strategy: String,
    /// Time until the application regains control, ms.
    pub time_to_control_ms: f64,
    /// Time until the full working set is hot (all chunks restored), ms.
    pub time_to_hot_ms: f64,
}

/// Measure restart strategies on a 16-chunk, 128 MB process.
pub fn run_restart() -> Vec<RestartRow> {
    let build = || {
        let dram = MemoryDevice::dram(512 * MB);
        let nvm = MemoryDevice::pcm(512 * MB);
        let clock = VirtualClock::new();
        let cfg = EngineConfig::builder()
            .checksums(false)
            .materialization(nvm_chkpt::Materialization::Synthetic)
            .build()
            .expect("valid restart-bench config");
        let mut e = CheckpointEngine::new(0, &dram, &nvm, 300 * MB, clock.clone(), cfg).unwrap();
        let mut ids = Vec::new();
        for i in 0..16 {
            let id = e.nvmalloc(&format!("c{i}"), 8 * MB, true).unwrap();
            e.write_synthetic(id, 0, 8 * MB).unwrap();
            ids.push(id);
        }
        e.nvchkptall().unwrap();
        let region = e.metadata_region();
        drop(e);
        (dram, nvm, clock, region, cfg, ids)
    };

    let mut rows = Vec::new();
    for (name, strategy) in [
        ("eager", RestartStrategy::Eager),
        ("parallel x4", RestartStrategy::Parallel { streams: 4 }),
        ("lazy", RestartStrategy::Lazy),
    ] {
        let (dram, nvm, clock, region, cfg, ids) = build();
        let t0 = clock.now();
        let (mut e, _report) =
            CheckpointEngine::restart_with(&dram, &nvm, region, clock.clone(), cfg, strategy)
                .unwrap();
        let control = clock.now().since(t0);
        // Touch everything: lazy pays here, the others already did.
        for id in &ids {
            e.write_synthetic(*id, 0, 1).unwrap();
        }
        let hot = clock.now().since(t0);
        rows.push(RestartRow {
            strategy: name.to_string(),
            time_to_control_ms: control.as_secs_f64() * 1e3,
            time_to_hot_ms: hot.as_secs_f64() * 1e3,
        });
    }
    rows
}

/// One compression measurement.
#[derive(Clone, Debug, Serialize)]
pub struct CompressionRow {
    /// Data shape.
    pub data: String,
    /// Input MB.
    pub in_mb: f64,
    /// Output MB.
    pub out_mb: f64,
    /// Compression ratio (out/in).
    pub ratio: f64,
    /// CPU cost of compressing, ms (model).
    pub cpu_ms: f64,
    /// Wire time saved on a 4 GB/s link, ms.
    pub wire_saved_ms: f64,
}

/// Compress three checkpoint-like data shapes.
pub fn run_compression() -> Vec<CompressionRow> {
    let model = CompressionModel::default();
    let shapes: Vec<(&str, Vec<u8>)> = vec![
        ("zero-heavy (fresh allocation)", {
            let mut v = vec![0u8; 16 * MB];
            for i in (0..v.len()).step_by(8192) {
                v[i] = 1;
            }
            v
        }),
        ("piecewise-constant field", {
            (0..16 * MB).map(|i| (i / 65536) as u8).collect()
        }),
        ("high-entropy particles", {
            (0..16 * MB)
                .map(|i| ((i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 33) as u8)
                .collect()
        }),
    ];
    shapes
        .into_iter()
        .map(|(name, data)| {
            let out = compress(&data);
            let link_bw = 4.0e9;
            let saved_bytes = data.len().saturating_sub(out.len()) as f64;
            CompressionRow {
                data: name.to_string(),
                in_mb: data.len() as f64 / MB as f64,
                out_mb: out.len() as f64 / MB as f64,
                ratio: out.len() as f64 / data.len() as f64,
                cpu_ms: model.compress_cost(data.len() as u64).as_secs_f64() * 1e3,
                wire_saved_ms: saved_bytes / link_bw * 1e3,
            }
        })
        .collect()
}

/// One redundancy-scheme measurement.
#[derive(Clone, Debug, Serialize)]
pub struct RedundancyRow {
    /// Scheme name.
    pub scheme: String,
    /// Remote storage per group, MB.
    pub storage_mb: f64,
    /// Survives any single node loss?
    pub single_loss_ok: bool,
    /// Survives two simultaneous losses in the group?
    pub double_loss_ok: bool,
}

/// Compare full replication against a 4+1 parity group for a 4-node
/// group with 32 MB of checkpoint data per node.
pub fn run_redundancy() -> Vec<RedundancyRow> {
    let group = 4usize;
    let per_node = 32 * MB;
    let chunk = ChunkId(1);
    let blocks: Vec<Vec<u8>> = (0..group as u64)
        .map(|r| {
            (0..per_node)
                .map(|i| (i as u8).wrapping_mul(13).wrapping_add(r as u8))
                .collect()
        })
        .collect();

    // Full replication: every node's data copied to its buddy.
    let mut replication = RemoteStore::new(&MemoryDevice::pcm(512 * MB), true);
    for (r, b) in blocks.iter().enumerate() {
        replication.put(r as u64, chunk, b).unwrap();
    }
    replication.commit_rank(0, 0);

    // Parity: one XOR block for the whole group.
    let mut parity = ParityStore::new(&MemoryDevice::pcm(512 * MB), group);
    let refs: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
    parity.encode(chunk, &refs).unwrap();
    let survivors: Vec<&[u8]> = blocks[1..].iter().map(|b| b.as_slice()).collect();
    let (recovered, _) = parity.recover(chunk, &survivors).unwrap();
    assert_eq!(recovered, blocks[0], "parity recovery must be exact");

    vec![
        RedundancyRow {
            scheme: format!("replication (buddy copy x{group})"),
            storage_mb: replication.stored_bytes() as f64 / MB as f64,
            single_loss_ok: true,
            double_loss_ok: true,
        },
        RedundancyRow {
            scheme: format!("XOR parity ({group}+1)"),
            storage_mb: parity.storage_bytes() as f64 / MB as f64,
            single_loss_ok: true,
            double_loss_ok: false,
        },
    ]
}

/// One wear-leveling measurement.
#[derive(Clone, Debug, Serialize)]
pub struct WearRow {
    /// Mapping scheme.
    pub scheme: String,
    /// Max writes on the hottest frame.
    pub max_wear: u64,
    /// Max/mean imbalance.
    pub imbalance: f64,
    /// Projected years to first frame death at one checkpoint per
    /// minute (10^8 endurance).
    pub years_to_death: f64,
}

/// Checkpoint write traffic (hot metadata page + uniform data pages)
/// through identity mapping vs start-gap.
pub fn run_wear() -> Vec<WearRow> {
    let frames = 257;
    let writes_per_ckpt = 64u64; // data pages touched per checkpoint
    let ckpts = 20_000u64;

    // Identity mapping: metadata page 0 written every checkpoint.
    let mut identity = vec![0u64; frames];
    for _ in 0..ckpts {
        identity[0] += writes_per_ckpt / 4; // hot metadata/commit page
        for w in identity[1..=(writes_per_ckpt as usize)].iter_mut() {
            *w += 1;
        }
    }
    let id_max = *identity.iter().max().unwrap();
    let id_mean = identity.iter().sum::<u64>() as f64 / frames as f64;

    // Start-gap over the same traffic.
    let mut sg = StartGap::new(frames, 64);
    for _ in 0..ckpts {
        for _ in 0..writes_per_ckpt / 4 {
            sg.write(0);
        }
        for p in 1..=(writes_per_ckpt as usize) {
            sg.write(p);
        }
    }

    // Hottest frame's wear per checkpoint decides lifetime: at one
    // checkpoint per minute and 10^8 endurance,
    // years = (10^8 / wear_per_ckpt) minutes.
    let years = |max_wear: u64| {
        let wear_per_ckpt = max_wear as f64 / ckpts as f64;
        (1e8 / wear_per_ckpt) / (60.0 * 24.0 * 365.25)
    };
    vec![
        WearRow {
            scheme: "identity mapping".into(),
            max_wear: id_max,
            imbalance: id_max as f64 / id_mean,
            years_to_death: years(id_max),
        },
        WearRow {
            scheme: "start-gap".into(),
            max_wear: sg.max_wear(),
            imbalance: sg.wear_imbalance(),
            years_to_death: years(sg.max_wear()),
        },
    ]
}

/// One energy measurement.
#[derive(Clone, Debug, Serialize)]
pub struct EnergyRow {
    /// Pre-copy policy.
    pub policy: String,
    /// Bytes moved to NVM, MB.
    pub moved_mb: f64,
    /// NVM write energy spent, joules.
    pub nvm_joules: f64,
    /// Energy per committed checkpoint byte, nJ/B.
    pub nj_per_committed_byte: f64,
}

/// NVM write energy by policy: PCM writes cost 40x DRAM per bit
/// (Table I), so every wasted pre-copy burns real energy — DCPCP's
/// prediction is an energy optimization too.
pub fn run_energy() -> Vec<EnergyRow> {
    use nvm_chkpt::PrecopyPolicy;
    use nvm_emu::SimDuration;
    [
        PrecopyPolicy::None,
        PrecopyPolicy::Cpc,
        PrecopyPolicy::Dcpcp,
    ]
    .iter()
    .map(|&policy| {
        let dram = MemoryDevice::dram(512 * MB);
        let nvm = MemoryDevice::pcm(512 * MB);
        let cfg = EngineConfig::builder()
            .checksums(false)
            .materialization(nvm_chkpt::Materialization::Synthetic)
            .precopy(policy)
            .build()
            .expect("valid prediction-bench config");
        let mut e =
            CheckpointEngine::new(0, &dram, &nvm, 200 * MB, VirtualClock::new(), cfg).unwrap();
        // One steady chunk plus one hot chunk rewritten 3x/iteration.
        let steady = e.nvmalloc("steady", 32 * MB, true).unwrap();
        let hot = e.nvmalloc("hot", 16 * MB, true).unwrap();
        let mut committed = 0u64;
        for _ in 0..6 {
            e.write_synthetic(steady, 0, 32 * MB).unwrap();
            for _ in 0..3 {
                e.write_synthetic(hot, 0, 16 * MB).unwrap();
                e.compute(SimDuration::from_secs(3));
            }
            e.nvchkptall().unwrap();
            // Each epoch commits the full 48 MB checkpoint set; wasted
            // pre-copies move extra bytes without committing more.
            committed += 48 * MB as u64;
        }
        let stats = nvm.stats();
        EnergyRow {
            policy: format!("{policy:?}"),
            moved_mb: stats.bytes_written as f64 / MB as f64,
            nvm_joules: stats.energy.joules(),
            nj_per_committed_byte: stats.energy.joules() * 1e9 / committed as f64,
        }
    })
    .collect()
}

/// Render all extension tables.
pub fn render(
    restart: &[RestartRow],
    compression: &[CompressionRow],
    redundancy: &[RedundancyRow],
    wear: &[WearRow],
    energy: &[EnergyRow],
) -> Vec<Table> {
    let mut t1 = Table::new(
        "Extension — restart strategies (16 x 8 MB chunks)",
        &["Strategy", "Time to control (ms)", "Time to hot set (ms)"],
    );
    for r in restart {
        t1.row(vec![
            r.strategy.clone(),
            format!("{:.1}", r.time_to_control_ms),
            format!("{:.1}", r.time_to_hot_ms),
        ]);
    }
    let mut t2 = Table::new(
        "Extension — checkpoint compression (16 MB inputs)",
        &["Data", "Out (MB)", "Ratio", "CPU (ms)", "Wire saved (ms)"],
    );
    for r in compression {
        t2.row(vec![
            r.data.clone(),
            format!("{:.2}", r.out_mb),
            format!("{:.3}", r.ratio),
            format!("{:.1}", r.cpu_ms),
            format!("{:.1}", r.wire_saved_ms),
        ]);
    }
    let mut t3 = Table::new(
        "Extension — remote redundancy schemes (4 nodes x 32 MB)",
        &["Scheme", "Storage (MB)", "1-loss", "2-loss"],
    );
    for r in redundancy {
        t3.row(vec![
            r.scheme.clone(),
            format!("{:.0}", r.storage_mb),
            r.single_loss_ok.to_string(),
            r.double_loss_ok.to_string(),
        ]);
    }
    let mut t4 = Table::new(
        "Extension — wear leveling under checkpoint traffic (20k checkpoints)",
        &[
            "Scheme",
            "Max frame wear",
            "Imbalance",
            "Years to first death @1 ckpt/min",
        ],
    );
    for r in wear {
        t4.row(vec![
            r.scheme.clone(),
            r.max_wear.to_string(),
            format!("{:.1}x", r.imbalance),
            format!("{:.1}", r.years_to_death),
        ]);
    }
    let mut t5 = Table::new(
        "Extension — NVM write energy by pre-copy policy (hot-chunk workload)",
        &[
            "Policy",
            "Moved (MB)",
            "NVM energy (J)",
            "nJ / committed byte",
        ],
    );
    for r in energy {
        t5.row(vec![
            r.policy.clone(),
            format!("{:.0}", r.moved_mb),
            format!("{:.3}", r.nvm_joules),
            format!("{:.2}", r.nj_per_committed_byte),
        ]);
    }
    vec![t1, t2, t3, t4, t5]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restart_strategies_order_as_expected() {
        let rows = run_restart();
        let eager = &rows[0];
        let parallel = &rows[1];
        let lazy = &rows[2];
        assert!(parallel.time_to_control_ms < eager.time_to_control_ms);
        assert!(lazy.time_to_control_ms < parallel.time_to_control_ms);
        // Lazy pays later: time-to-hot is comparable to eager's.
        assert!(lazy.time_to_hot_ms > lazy.time_to_control_ms * 5.0);
    }

    #[test]
    fn compression_shapes_behave() {
        let rows = run_compression();
        assert!(rows[0].ratio < 0.01, "zero-heavy: {}", rows[0].ratio);
        assert!(rows[1].ratio < 0.02, "piecewise: {}", rows[1].ratio);
        assert!(rows[2].ratio >= 1.0, "entropy: {}", rows[2].ratio);
    }

    #[test]
    fn parity_uses_quarter_the_storage() {
        let rows = run_redundancy();
        assert!((rows[0].storage_mb / rows[1].storage_mb - 4.0).abs() < 0.1);
        assert!(!rows[1].double_loss_ok);
    }

    #[test]
    fn cpc_burns_more_energy_than_dcpcp() {
        let rows = run_energy();
        let cpc = rows.iter().find(|r| r.policy == "Cpc").unwrap();
        let dcpcp = rows.iter().find(|r| r.policy == "Dcpcp").unwrap();
        let none = rows.iter().find(|r| r.policy == "None").unwrap();
        assert!(
            cpc.nvm_joules > dcpcp.nvm_joules,
            "CPC {} J vs DCPCP {} J",
            cpc.nvm_joules,
            dcpcp.nvm_joules
        );
        // DCPCP's energy is close to the no-pre-copy floor.
        assert!(dcpcp.nvm_joules <= none.nvm_joules * 1.25);
    }

    #[test]
    fn start_gap_beats_identity() {
        let rows = run_wear();
        assert!(rows[1].max_wear * 4 < rows[0].max_wear);
        assert!(rows[1].imbalance < rows[0].imbalance);
        assert!(rows[1].years_to_death > rows[0].years_to_death);
    }
}
