//! Key-value serving under checkpoint policies (`run_all` table,
//! `kv_serving.json`).
//!
//! Runs the zipfian `nvm-kv` serving workload
//! ([`hpc_workloads::KvServingWorkload`]) once per pre-copy policy and
//! reports serving throughput, op-latency percentiles, CPR token
//! counts, and — via the `nvm-obs` blame analyzer — how much
//! checkpoint time each policy exposes on the serving critical path.
//! The stop-the-world baseline is `PrecopyPolicy::None` (every local
//! checkpoint is a full coordinated stop); the CPR-style non-blocking
//! configuration is `Dcpcp`, which hides most of the copy work behind
//! the compute slices between operation batches.
//!
//! Unlike the HPC experiments, the kv runs need real bytes: the store
//! reads its own records back, so the engine is forced to
//! [`Materialization::Bytes`] with checksums on, and the per-rank
//! container is sized for serving state (megabytes) rather than the
//! ~900 MB HPC footprint.
//!
//! The paper-preset rows are committed as `experiments/kv_serving.json`
//! (96 ranks x 24 iterations x 512 ops = 1,179,648 serving ops beyond
//! preload); the headline — CPR non-blocking checkpoints expose
//! strictly less serving-path time than stop-the-world — is asserted
//! against that committed artifact, since the quick preset is too
//! small for the ordering to be reliable.

use crate::experiments::blame::POLICIES;
use crate::report::Table;
use crate::scale::Scale;
use cluster_sim::{Cluster, ClusterConfig, RunOptions};
use hpc_workloads::{KvServingConfig, KvServingWorkload};
use nvm_chkpt::{Materialization, PrecopyPolicy};
use nvm_kv::KvConfig;
use nvm_metrics::names;
use nvm_obs::blame;
use serde::{Deserialize, Serialize};

/// One policy's serving + blame summary.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KvRow {
    /// Pre-copy policy name (`none` = stop-the-world baseline).
    pub policy: String,
    /// Total ranks serving.
    pub ranks: u64,
    /// Serving operations recorded across all ranks. Preload upserts
    /// run during `setup`, before the cluster attaches metrics, so
    /// they are deliberately absent.
    pub total_ops: u64,
    /// Virtual wall time, nanoseconds.
    pub wall_ns: u64,
    /// `total_ops / wall_s`.
    pub throughput_ops_per_s: f64,
    /// Median op latency, virtual nanoseconds.
    pub p50_op_ns: u64,
    /// 99th-percentile op latency, virtual nanoseconds.
    pub p99_op_ns: u64,
    /// CPR tokens published across all ranks.
    pub tokens: u64,
    /// Record-log bytes appended across all ranks.
    pub log_appended_bytes: u64,
    /// Critical-path length, nanoseconds.
    pub critical_path_ns: u64,
    /// Checkpoint time exposed on the critical path, nanoseconds.
    pub exposed_checkpoint_ns: u64,
    /// `exposed_checkpoint_ns / critical_path_ns`.
    pub exposed_checkpoint_fraction: f64,
    /// Checkpoint copy time hidden under serving compute, nanoseconds.
    pub hidden_precopy_ns: u64,
}

/// Per-rank serving configuration for a scale preset. The quick
/// preset shrinks the key space and batch size; the paper preset
/// serves 4096 keys x 128-byte values per rank, 512 ops per
/// iteration, YCSB-A mix at theta 0.99.
pub fn serving_config(scale: &Scale) -> KvServingConfig {
    let mut cfg = if scale.size_scale < 1.0 {
        KvServingConfig {
            keys: 128,
            value_bytes: 32,
            ops_per_iteration: 64,
            batch: 16,
            kv: KvConfig {
                initial_index_slots: 256,
                segment_bytes: 64 << 10,
                max_sessions: 2,
                trace_ops: true,
            },
            ..KvServingConfig::default()
        }
    } else {
        KvServingConfig {
            keys: 4096,
            value_bytes: 128,
            ops_per_iteration: 512,
            batch: 64,
            kv: KvConfig {
                initial_index_slots: 8192,
                segment_bytes: 1 << 20,
                max_sessions: 2,
                // Paper scale serves >1M ops; per-op trace events
                // would dominate the stream without changing blame.
                trace_ops: false,
            },
            ..KvServingConfig::default()
        }
    };
    // Spread the iteration's compute budget evenly across batches so
    // the serving run spans the same virtual time as the HPC apps and
    // the local-checkpoint interval fires the same number of times.
    let batches = cfg.ops_per_iteration.div_ceil(cfg.batch).max(1);
    cfg.compute_slice =
        nvm_emu::SimDuration::from_nanos(scale.compute_per_iter.as_nanos() / batches);
    cfg
}

/// Cluster configuration for the serving runs: the shared HPC config
/// with the engine forced to real-byte materialization (the store
/// reads its records back) and the container sized for kv state.
pub fn kv_cluster_config(scale: &Scale, policy: PrecopyPolicy) -> ClusterConfig {
    let mut c = crate::experiments::cluster_config(scale, policy);
    c.container_bytes = 32 << 20;
    c.engine = c
        .engine
        .with_materialization(Materialization::Bytes)
        .with_checksums(true);
    c
}

/// Run the serving workload once per policy and summarize each run.
pub fn run(scale: &Scale) -> Vec<KvRow> {
    POLICIES
        .iter()
        .map(|&(policy, name)| {
            let cfg = kv_cluster_config(scale, policy);
            let serving = serving_config(scale);
            let r = Cluster::new(cfg, {
                move |rank| Box::new(KvServingWorkload::new(rank as u32, serving.clone()))
            })
            .run(RunOptions::new().with_trace(true).with_metrics(true))
            .expect("kv serving run")
            .result;
            let snap = r.metrics.expect("metrics captured").snapshot;
            let total_ops = snap.counter(names::KV_UPSERTS_TOTAL)
                + snap.counter(names::KV_READS_TOTAL)
                + snap.counter(names::KV_RMWS_TOTAL)
                + snap.counter(names::KV_DELETES_TOTAL);
            let op_ns = snap.histograms.get(names::KV_OP_NS);
            let b = blame(&r.trace);
            let wall_ns = r.total_time.as_nanos();
            KvRow {
                policy: name.to_string(),
                ranks: scale.total_ranks() as u64,
                total_ops,
                wall_ns,
                throughput_ops_per_s: total_ops as f64 / (wall_ns as f64 / 1e9),
                p50_op_ns: op_ns.map_or(0, |h| h.p50),
                p99_op_ns: op_ns.map_or(0, |h| h.p99),
                tokens: snap.counter(names::KV_CHECKPOINT_TOKENS_TOTAL),
                log_appended_bytes: snap.counter(names::KV_LOG_APPENDED_BYTES_TOTAL),
                critical_path_ns: b.critical_path_ns,
                exposed_checkpoint_ns: b.exposed_checkpoint_ns,
                exposed_checkpoint_fraction: b.exposed_checkpoint_fraction,
                hidden_precopy_ns: b.hidden_precopy_ns,
            }
        })
        .collect()
}

/// A policy's exposed checkpoint nanoseconds. Panics if the row is
/// missing.
pub fn exposed(rows: &[KvRow], policy: &str) -> u64 {
    rows.iter()
        .find(|r| r.policy == policy)
        .unwrap_or_else(|| panic!("no {policy} row"))
        .exposed_checkpoint_ns
}

/// Render the comparison.
pub fn render(rows: &[KvRow]) -> Table {
    let mut t = Table::new(
        "KV serving — throughput and exposed checkpoint time by policy (zipfian YCSB-A)",
        &[
            "Policy",
            "Ops",
            "Kops/s",
            "p99 op (us)",
            "Tokens",
            "Exposed ckpt (ms)",
            "Exposed frac",
            "Hidden (ms)",
        ],
    );
    for r in rows {
        t.row(vec![
            r.policy.clone(),
            format!("{}", r.total_ops),
            format!("{:.1}", r.throughput_ops_per_s / 1e3),
            format!("{:.2}", r.p99_op_ns as f64 / 1e3),
            format!("{}", r.tokens),
            format!("{:.1}", r.exposed_checkpoint_ns as f64 / 1e6),
            format!("{:.4}", r.exposed_checkpoint_fraction),
            format!("{:.1}", r.hidden_precopy_ns as f64 / 1e6),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row<'a>(rows: &'a [KvRow], policy: &str) -> &'a KvRow {
        rows.iter().find(|r| r.policy == policy).unwrap()
    }

    #[test]
    fn quick_rows_serve_on_every_policy() {
        let scale = Scale::quick();
        let rows = run(&scale);
        assert_eq!(rows.len(), POLICIES.len());
        let ranks = scale.total_ranks() as u64;
        let serving = serving_config(&scale);
        for r in &rows {
            assert_eq!(r.ranks, ranks);
            // Every serving op lands in the counters (preload runs
            // before metrics attach and is deliberately absent).
            assert_eq!(
                r.total_ops,
                ranks * scale.iterations * serving.ops_per_iteration,
                "{r:?}"
            );
            assert!(r.throughput_ops_per_s > 0.0, "{r:?}");
            // One CPR token per rank per iteration.
            assert_eq!(r.tokens, ranks * scale.iterations, "{r:?}");
            assert!(r.log_appended_bytes > 0, "{r:?}");
            assert!(
                r.critical_path_ns > 0 && r.critical_path_ns <= r.wall_ns,
                "{r:?}"
            );
            assert!(r.exposed_checkpoint_ns > 0, "{r:?}");
            assert!(
                (0.0..=1.0).contains(&r.exposed_checkpoint_fraction),
                "{r:?}"
            );
            assert!(r.p99_op_ns >= r.p50_op_ns, "{r:?}");
        }
        // The stop-the-world baseline hides nothing; every pre-copy
        // policy overlaps some copy work with serving compute.
        assert_eq!(row(&rows, "none").hidden_precopy_ns, 0);
        for name in ["cpc", "dcpc", "dcpcp"] {
            assert!(row(&rows, name).hidden_precopy_ns > 0, "{name}");
        }
        assert_eq!(render(&rows).len(), POLICIES.len());
    }

    #[test]
    fn threaded_rows_match_serial_exactly() {
        let serial = run(&Scale::quick());
        let threaded = run(&Scale::quick().with_threads(2));
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&threaded).unwrap(),
            "kv serving rows must be bit-identical at any thread count"
        );
    }

    #[test]
    fn committed_paper_rows_show_cpr_beating_stop_the_world() {
        // The headline is a paper-scale effect: assert it against the
        // committed artifact so regenerating the rows re-checks it.
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .unwrap()
            .join("experiments/kv_serving.json");
        let rows: Vec<KvRow> = serde_json::from_str(
            &std::fs::read_to_string(&path).expect("kv_serving.json committed"),
        )
        .expect("kv_serving.json parses");
        let none = row(&rows, "none");
        let dcpcp = row(&rows, "dcpcp");
        assert!(none.ranks >= 64, "paper rows serve at >= 64 ranks");
        assert!(
            none.total_ops >= 1_000_000,
            "paper rows serve >= 1M ops, got {}",
            none.total_ops
        );
        assert!(none.throughput_ops_per_s > 0.0);
        assert!(
            dcpcp.exposed_checkpoint_ns < none.exposed_checkpoint_ns,
            "CPR non-blocking ({} ns exposed) must beat stop-the-world ({} ns)",
            dcpcp.exposed_checkpoint_ns,
            none.exposed_checkpoint_ns
        );
        assert!(dcpcp.hidden_precopy_ns > 0 && none.hidden_precopy_ns == 0);
        // Less exposed stall also shows up as serving throughput.
        assert!(dcpcp.throughput_ops_per_s > none.throughput_ops_per_s);
    }
}
