//! Table V — average CPU utilization of the dedicated checkpoint
//! helper core, no-pre-copy vs pre-copy, across checkpoint data sizes.
//!
//! Paper's rows (per-core data → helper utilization):
//!
//! | Data/core (MB) | No pre-copy | Pre-copy |
//! |----------------|-------------|----------|
//! | 370            | 12.85%      | 24.48%   |
//! | 472            | 13.40%      | 25.12%   |
//! | 588            | 14.82%      | 28.31%   |
//!
//! Pre-copy roughly doubles the helper's utilization (continuous
//! scanning + incremental re-shipping) but stays small node-wide
//! (~2.5% of 12 cores).

use crate::experiments::{cluster_config, run_cluster};
use crate::report::Table;
use crate::scale::Scale;
use cluster_sim::{RemoteConfig, RunOptions};
use nvm_chkpt::PrecopyPolicy;
use nvm_emu::SimDuration;
use serde::Serialize;

/// One Table-V row.
#[derive(Clone, Debug, Serialize)]
pub struct Table5Row {
    /// Checkpoint data per core, MB.
    pub data_mb: u32,
    /// Helper core utilization without pre-copy.
    pub noprecopy_util: f64,
    /// Helper core utilization with pre-copy.
    pub precopy_util: f64,
    /// Node-wide utilization with pre-copy (12 cores).
    pub node_wide: f64,
}

/// The paper's data sizes.
pub const DATA_SIZES_MB: [u32; 3] = [370, 472, 588];

/// Run the Table-V experiment (LAMMPS profile scaled to each size —
/// Table V sits in the paper's LAMMPS remote-checkpoint discussion,
/// and LAMMPS's steady rewrite pattern means both modes ship the same
/// volume, isolating the incremental-vs-bulk CPU cost).
pub fn run(scale: &Scale) -> Vec<Table5Row> {
    DATA_SIZES_MB
        .iter()
        .map(|&mb| {
            // Scale LAMMPS's 410 MB profile to the row's target.
            let mut s = *scale;
            s.size_scale = scale.size_scale * mb as f64 / 410.0;
            let interval = SimDuration::from_secs(60);
            let run_one = |precopy: bool| {
                let policy = if precopy {
                    PrecopyPolicy::Dcpcp
                } else {
                    PrecopyPolicy::None
                };
                let mut cfg = cluster_config(&s, policy);
                cfg.remote = Some(RemoteConfig::infiniband(interval, precopy));
                run_cluster(cfg, "lammps", &s, RunOptions::new())
            };
            let pre = run_one(true);
            let nopre = run_one(false);
            let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
            let precopy_util = avg(&pre.helper_utilization);
            Table5Row {
                data_mb: mb,
                noprecopy_util: avg(&nopre.helper_utilization),
                precopy_util,
                node_wide: precopy_util / 12.0,
            }
        })
        .collect()
}

/// Render Table V.
pub fn render(rows: &[Table5Row]) -> Table {
    let mut t = Table::new(
        "Table V — checkpoint helper core average CPU utilization",
        &[
            "Data/core (MB)",
            "No pre-copy util",
            "Pre-copy util",
            "Node-wide (12 cores)",
        ],
    );
    for r in rows {
        t.row(vec![
            r.data_mb.to_string(),
            format!("{:.2}%", r.noprecopy_util * 100.0),
            format!("{:.2}%", r.precopy_util * 100.0),
            format!("{:.2}%", r.node_wide * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table5_precopy_works_harder() {
        let mut scale = Scale::quick();
        scale.iterations = 12;
        let rows = run(&scale);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(
                r.precopy_util > r.noprecopy_util,
                "pre-copy helper must be busier: {r:?}"
            );
            assert!(r.precopy_util < 1.0, "still a fraction of one core");
        }
        // Utilization grows with data size.
        assert!(rows[2].noprecopy_util >= rows[0].noprecopy_util);
    }
}
