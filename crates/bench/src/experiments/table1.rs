//! Table I — NVM vs DRAM hardware parameters, plus measured latencies
//! of the emulated devices (sanity check that the emulation charges
//! what the table says).

use crate::report::Table;
use nvm_emu::{DeviceParams, MemoryDevice, PAGE_SIZE};
use serde::Serialize;

/// One device row.
#[derive(Clone, Debug, Serialize)]
pub struct DeviceRow {
    /// Device name.
    pub device: String,
    /// Write bandwidth GB/s.
    pub write_bw_gb: f64,
    /// Configured page write latency, ns.
    pub page_write_ns: u64,
    /// Configured page read latency, ns.
    pub page_read_ns: u64,
    /// Measured one-page write cost on the emulated device, ns.
    pub measured_write_ns: u64,
    /// Measured one-page read cost, ns.
    pub measured_read_ns: u64,
    /// Write endurance.
    pub endurance: u64,
    /// Relative write energy per bit.
    pub energy_x: f64,
}

/// Run the Table-I experiment.
pub fn run() -> Vec<DeviceRow> {
    let mut rows = Vec::new();
    for (name, params) in [("DRAM", DeviceParams::dram()), ("PCM", DeviceParams::pcm())] {
        let dev = MemoryDevice::new(params, 16 << 20);
        let r = dev.alloc(PAGE_SIZE).unwrap();
        let wcost = dev.write(r, 0, &[0xAB; PAGE_SIZE], 1).unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        let rcost = dev.read(r, 0, &mut buf, 1).unwrap();
        rows.push(DeviceRow {
            device: name.to_string(),
            write_bw_gb: params.write_bandwidth / 1e9,
            page_write_ns: params.page_write_latency.as_nanos(),
            page_read_ns: params.page_read_latency.as_nanos(),
            measured_write_ns: wcost.as_nanos(),
            measured_read_ns: rcost.as_nanos(),
            endurance: params.write_endurance,
            energy_x: params.write_energy_pj_per_bit,
        });
    }
    rows
}

/// Render the rows as the paper's Table I.
pub fn render(rows: &[DeviceRow]) -> Table {
    let mut t = Table::new(
        "Table I — NVM vs DRAM hardware performance (model + measured)",
        &[
            "Device",
            "Write BW (GB/s)",
            "Page write (ns)",
            "Page read (ns)",
            "Measured write (ns)",
            "Measured read (ns)",
            "Endurance",
            "Energy/bit (x)",
        ],
    );
    for r in rows {
        t.row(vec![
            r.device.clone(),
            format!("{:.1}", r.write_bw_gb),
            r.page_write_ns.to_string(),
            r.page_read_ns.to_string(),
            r.measured_write_ns.to_string(),
            r.measured_read_ns.to_string(),
            format!("{:e}", r.endurance as f64),
            format!("{:.0}", r.energy_x),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_paper_ratios() {
        let rows = run();
        assert_eq!(rows.len(), 2);
        let dram = &rows[0];
        let pcm = &rows[1];
        assert!((dram.write_bw_gb / pcm.write_bw_gb - 4.0).abs() < 0.01);
        assert_eq!(pcm.page_write_ns, 1000);
        assert!(pcm.measured_write_ns >= pcm.page_write_ns);
        assert!(dram.measured_write_ns < pcm.measured_write_ns);
        assert!((pcm.energy_x - 40.0).abs() < 1e-9);
        assert!(!render(&rows).is_empty());
    }
}
