//! Figure 9 — GTC application efficiency with remote checkpointing:
//! asynchronous pre-copy vs asynchronous no-pre-copy, across effective
//! NVM bandwidth and remote checkpoint interval.
//!
//! Efficiency = ideal (no failures, no checkpoints) runtime over
//! actual runtime. Paper headlines: pre-copy reaches ~0.98 efficiency
//! at high bandwidth/long intervals; averaged across apps, pre-copy
//! adds 6.2% runtime vs 10.6% for no-pre-copy (~40% reduction).

use crate::experiments::{cluster_config, run_cluster, BW_SWEEP_MB};
use crate::report::Table;
use crate::scale::Scale;
use cluster_sim::{RemoteConfig, RunOptions};
use nvm_chkpt::PrecopyPolicy;
use nvm_emu::SimDuration;
use serde::Serialize;

/// One (bandwidth, interval, policy) cell of Figure 9.
#[derive(Clone, Debug, Serialize)]
pub struct Fig9Row {
    /// Effective NVM bandwidth per core, MB/s.
    pub bw_mb: u32,
    /// Remote checkpoint interval, seconds.
    pub remote_interval_s: u64,
    /// Remote pre-copy enabled?
    pub precopy: bool,
    /// Application efficiency (ideal / actual).
    pub efficiency: f64,
    /// Runtime overhead vs ideal.
    pub overhead: f64,
    /// Remote checkpoints committed.
    pub remote_checkpoints: u64,
}

/// Remote intervals swept (the paper varies 47-180 s).
pub const REMOTE_INTERVALS_S: [u64; 3] = [47, 90, 180];

/// Run the sweep for GTC.
pub fn run(scale: &Scale) -> Vec<Fig9Row> {
    let app = "gtc";
    let ideal_cfg = cluster_config(scale, PrecopyPolicy::None).ideal_variant();
    let ideal = run_cluster(ideal_cfg, app, scale, RunOptions::new());

    let mut rows = Vec::new();
    for &bw in &BW_SWEEP_MB {
        for &interval in &REMOTE_INTERVALS_S {
            for precopy in [true, false] {
                let policy = if precopy {
                    PrecopyPolicy::Dcpcp
                } else {
                    PrecopyPolicy::None
                };
                let mut cfg = cluster_config(scale, policy);
                cfg.nvm_bw_per_core = Some(bw as f64 * (1 << 20) as f64);
                cfg.remote = Some(RemoteConfig::infiniband(
                    SimDuration::from_secs(interval),
                    precopy,
                ));
                let r = run_cluster(cfg, app, scale, RunOptions::new());
                let eff = r.efficiency_vs(&ideal);
                rows.push(Fig9Row {
                    bw_mb: bw,
                    remote_interval_s: interval,
                    precopy,
                    efficiency: eff,
                    overhead: 1.0 / eff - 1.0,
                    remote_checkpoints: r.remote_checkpoints,
                });
            }
        }
    }
    rows
}

/// Average overheads across the sweep: `(precopy, no_precopy)`.
pub fn average_overheads(rows: &[Fig9Row]) -> (f64, f64) {
    let avg = |p: bool| {
        let v: Vec<f64> = rows
            .iter()
            .filter(|r| r.precopy == p)
            .map(|r| r.overhead)
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    (avg(true), avg(false))
}

/// Render the sweep.
pub fn render(rows: &[Fig9Row]) -> Table {
    let mut t = Table::new(
        "Figure 9 — GTC efficiency with remote checkpointing",
        &[
            "NVM BW/core (MB/s)",
            "Remote interval (s)",
            "Policy",
            "Efficiency",
            "Overhead",
            "Remote ckpts",
        ],
    );
    for r in rows {
        t.row(vec![
            r.bw_mb.to_string(),
            r.remote_interval_s.to_string(),
            if r.precopy { "pre-copy" } else { "no pre-copy" }.to_string(),
            format!("{:.3}", r.efficiency),
            format!("{:.1}%", r.overhead * 100.0),
            r.remote_checkpoints.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_precopy_dominates() {
        let mut scale = Scale::quick();
        scale.iterations = 10;
        let rows = run(&scale);
        assert_eq!(rows.len(), BW_SWEEP_MB.len() * REMOTE_INTERVALS_S.len() * 2);
        let (pre, nopre) = average_overheads(&rows);
        assert!(
            pre < nopre,
            "pre-copy average overhead {pre:.3} must beat {nopre:.3}"
        );
        for r in &rows {
            assert!(r.efficiency > 0.0 && r.efficiency <= 1.0 + 1e-9, "{r:?}");
        }
    }
}
