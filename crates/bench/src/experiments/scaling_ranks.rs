//! Rank-scaling experiment: wall-clock and peak RSS vs rank count,
//! 8 → 1024 ranks, byte-materialized with CRC verification on.
//!
//! This charts what the spill-through-`nvm-store` backend and the
//! hierarchical merge tree buy: without them a byte-materialized run
//! keeps every rank's working copy, both NVM version slots, and the
//! buddy node's remote images in process RAM — O(ranks) resident
//! bytes — and folds every rank's trace/metrics/stat state through
//! one serial coordinator loop. With them, image bytes live in
//! per-device spill files (devices charge identical virtual costs, so
//! results are bit-identical) and the coordinator folds O(shards)
//! pre-merged buffers.
//!
//! Each row reports the measured peak RSS next to the *naive
//! projection* — measured RSS plus the spill files' live-byte
//! high-water mark, i.e. what the same run would have held resident
//! had every image stayed in RAM. The largest row also injects a hard
//! node failure to prove the recovery ladder still streams buddy
//! images back from the spill files and bit-verifies every fetched
//! chunk at scale.
//!
//! The paper-preset output is committed as
//! `experiments/scaling_ranks.json`.

use crate::report::Table;
use crate::scale::Scale;
use cluster_sim::{
    Cluster, ClusterConfig, FailureEvent, FailureKind, FailureSchedule, RemoteConfig, RunOptions,
    UniformWorkload, Workload,
};
use nvm_chkpt::{EngineConfig, Materialization, PrecopyPolicy};
use nvm_emu::{SimDuration, SimTime};
use serde::Serialize;
use std::time::Instant;

/// Ranks per node at every point of the sweep (nodes = ranks / 8).
pub const RANKS_PER_NODE: usize = 8;

/// The full sweep (paper preset).
pub const RANK_SWEEP: [usize; 5] = [8, 32, 128, 512, 1024];

/// The CI-friendly prefix of the sweep (quick preset).
pub const RANK_SWEEP_QUICK: [usize; 3] = [8, 32, 128];

/// Per-rank checkpoint payload: 4 chunks x 64 KiB. Small enough that
/// a 1024-rank sweep finishes in seconds, large enough that resident
/// image bytes would dominate RSS without spilling.
const CHUNKS: usize = 4;
const CHUNK_BYTES: usize = 64 * 1024;

/// One rank-count measurement.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Total ranks simulated.
    pub ranks: usize,
    /// Nodes hosting them.
    pub nodes: usize,
    /// Merge shards the coordinator folded (the serial floor).
    pub shards: usize,
    /// Host wall-clock for the run, milliseconds.
    pub wall_ms: f64,
    /// Peak resident set during the run, MB (`VmHWM`, reset per row).
    pub peak_rss_mb: f64,
    /// Spill files' live-byte high-water mark, MB — image bytes that
    /// stayed out of RAM.
    pub spilled_peak_mb: f64,
    /// Naive in-RAM-images projection: measured RSS plus the spilled
    /// peak, MB.
    pub naive_rss_mb: f64,
    /// `peak_rss_mb / naive_rss_mb` — the acceptance gate holds this
    /// below 0.25 at 1024 ranks.
    pub rss_vs_naive: f64,
    /// Region bytes left resident despite spilling (0 = full
    /// coverage).
    pub resident_mb: f64,
    /// Virtual (simulated) seconds — identical shape at every rank
    /// count.
    pub virtual_secs: f64,
}

/// The hard-failure probe at the largest rank count.
#[derive(Clone, Debug, Serialize)]
pub struct RecoveryProbe {
    /// Ranks in the probed run.
    pub ranks: usize,
    /// Ladder rung that served the restart.
    pub source: String,
    /// Chunks bit-verified against their recovered images.
    pub verified_chunks: u64,
    /// Bytes streamed back over the interconnect, MB.
    pub bytes_fetched_mb: f64,
}

/// Full experiment output.
#[derive(Clone, Debug, Serialize)]
pub struct ScalingRanks {
    /// One row per rank count.
    pub rows: Vec<Row>,
    /// Hard-failure recovery at the sweep's largest rank count.
    pub recovery: RecoveryProbe,
}

/// Reset the kernel's peak-RSS watermark for this process (Linux
/// `clear_refs`; a no-op elsewhere, where per-row peaks then
/// monotonically accumulate and overstate later rows).
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// Current `VmHWM` in bytes (0 when `/proc` is unavailable).
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse::<u64>().ok())
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

/// Byte-materialized, CRC-verified, buddy-replicated configuration at
/// `ranks` total ranks.
fn config(ranks: usize, threads: usize) -> ClusterConfig {
    ClusterConfig::builder()
        .nodes(ranks.div_ceil(RANKS_PER_NODE))
        .ranks_per_node(RANKS_PER_NODE)
        .container_bytes((CHUNKS * CHUNK_BYTES) * 2 + (1 << 20))
        .engine(
            EngineConfig::builder()
                .materialization(Materialization::Bytes)
                .checksums(true)
                .precopy(PrecopyPolicy::Dcpcp)
                .node_concurrency(RANKS_PER_NODE)
                .build()
                .expect("valid scaling engine config"),
        )
        .local_interval(Some(SimDuration::from_secs(5)))
        .remote(RemoteConfig::infiniband(SimDuration::from_secs(10), true))
        .iterations(8)
        .threads(threads)
        .build()
        .expect("valid scaling config")
}

fn factory(_g: u64) -> Box<dyn Workload> {
    Box::new(UniformWorkload::new(
        CHUNKS,
        CHUNK_BYTES,
        SimDuration::from_secs(2),
        CHUNK_BYTES as u64,
    ))
}

/// Run the sweep; quick preset stops at 128 ranks.
pub fn run(scale: &Scale) -> ScalingRanks {
    let sweep: &[usize] = if scale.nodes < Scale::paper().nodes {
        &RANK_SWEEP_QUICK
    } else {
        &RANK_SWEEP
    };
    let mb = (1 << 20) as f64;
    let rows = sweep
        .iter()
        .map(|&ranks| {
            let cfg = config(ranks, scale.threads);
            let (nodes, shards) = (cfg.nodes, cfg.shard_count());
            reset_peak_rss();
            let start = Instant::now();
            let outcome = Cluster::new(cfg, factory)
                .run(RunOptions::new())
                .expect("scaling run");
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            let rss = peak_rss_bytes() as f64 / mb;
            let spill = outcome.spill.expect("byte runs spill by default");
            let spilled = spill.peak_bytes as f64 / mb;
            let naive = rss + spilled;
            Row {
                ranks,
                nodes,
                shards,
                wall_ms,
                peak_rss_mb: rss,
                spilled_peak_mb: spilled,
                naive_rss_mb: naive,
                rss_vs_naive: rss / naive.max(1e-9),
                resident_mb: spill.resident_bytes as f64 / mb,
                virtual_secs: outcome.result.total_time.as_secs_f64(),
            }
        })
        .collect::<Vec<_>>();

    // Hard node failure at the largest rank count, after the first
    // remote boundary: recovery must stream the buddy images back out
    // of the spill files and bit-verify every chunk.
    let max_ranks = *sweep.last().expect("non-empty sweep");
    let cfg =
        config(max_ranks, scale.threads).with_failure_schedule(FailureSchedule::from_events(vec![
            FailureEvent {
                at: SimTime::from_secs(11),
                kind: FailureKind::Hard,
                node: 1,
            },
        ]));
    let result = Cluster::new(cfg, factory)
        .run(RunOptions::new())
        .expect("recovery probe run")
        .result;
    let rec = result.recovery.first().expect("one hard failure injected");
    let recovery = RecoveryProbe {
        ranks: max_ranks,
        source: rec.source.name().to_string(),
        verified_chunks: rec.verified_chunks,
        bytes_fetched_mb: rec.bytes_fetched as f64 / mb,
    };

    ScalingRanks { rows, recovery }
}

/// Markdown table for the sweep.
pub fn render(out: &ScalingRanks) -> Table {
    let mut t = Table::new(
        "Rank scaling — wall-clock and peak RSS vs rank count (byte-materialized, spilled)",
        &[
            "ranks",
            "nodes",
            "shards",
            "wall ms",
            "peak RSS (MB)",
            "spilled peak (MB)",
            "naive RSS (MB)",
            "RSS/naive",
        ],
    );
    for r in &out.rows {
        t.row(vec![
            r.ranks.to_string(),
            r.nodes.to_string(),
            r.shards.to_string(),
            format!("{:.0}", r.wall_ms),
            format!("{:.1}", r.peak_rss_mb),
            format!("{:.1}", r.spilled_peak_mb),
            format!("{:.1}", r.naive_rss_mb),
            format!("{:.2}", r.rss_vs_naive),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_spills_and_recovers_at_scale() {
        let out = run(&Scale::quick());
        assert_eq!(out.rows.len(), RANK_SWEEP_QUICK.len());
        for r in &out.rows {
            assert_eq!(r.nodes * RANKS_PER_NODE, r.ranks);
            assert!(r.shards <= r.nodes);
            // Every row pushed its image bytes to spill files, fully.
            assert!(r.spilled_peak_mb > 0.0, "{r:?}");
            assert_eq!(r.resident_mb, 0.0, "{r:?}");
            assert!(r.rss_vs_naive <= 1.0);
        }
        // Spilled volume grows with rank count (more images).
        assert!(out.rows.last().unwrap().spilled_peak_mb > out.rows[0].spilled_peak_mb);
        // The serial merge floor stays sublinear in ranks.
        let last = out.rows.last().unwrap();
        assert!(last.shards * last.shards <= last.ranks * 4);
        // The hard failure recovered from the buddy rung with every
        // chunk bit-verified out of the spilled images.
        assert_eq!(out.recovery.source, "remote-buddy");
        assert!(out.recovery.verified_chunks > 0);
        assert!(out.recovery.bytes_fetched_mb > 0.0);
        assert_eq!(render(&out).len(), out.rows.len());
    }
}
